// crossem_match — command-line cross-modal entity matching.
//
// Maps relational CSV tables and JSON documents into the unified graph,
// loads an image repository given as patch-feature rows, and emits the
// matching set S as CSV.
//
// Usage:
//   crossem_match --table birds=birds.csv [--json extra.json]
//                 --images patches.csv [--output matches.csv]
//                 [--prompt hard|soft|baseline] [--epochs N]
//                 [--model model.ckpt] [--save-model model.ckpt]
//                 [--checkpoint train.ckpt] [--resume]
//                 [--checkpoint-every N]
//                 [--train-steps N] [--seed N]
//                 [--min-probability P] [--mutual]
//                 [--telemetry-out FILE.jsonl] [--trace-out FILE.json]
//                 [--plan-stats]
//
// Image file format: one patch per row,
//   image_id,f0,f1,...,f{D-1}
// rows sharing image_id form one image (patch counts are padded to the
// repository maximum with zero patches).
//
// Without --model, a small CLIP is trained on self-captions derived
// from the mapped graph paired with the given images of each entity
// (requires image_id values equal to entity labels, or entity labels
// prefixed: "<entity label>#<n>").
//
// --checkpoint names a resumable *training* checkpoint for the prompt
// tuning phase: Fit writes it every --checkpoint-every epochs, and with
// --resume an interrupted run picks up exactly where it left off
// (bit-for-bit identical to an uninterrupted run).
//
// Observability: --telemetry-out appends one JSON object per tuning
// epoch (loss, gradient norm, phase timing breakdown) to FILE.jsonl;
// --trace-out enables span tracing for the whole run and writes a
// Chrome trace_event JSON loadable in Perfetto / chrome://tracing;
// --plan-stats dumps the execution-plan trace/replay/invalidation
// counters (tensor/plan.h) after the run.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/crossem.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "graph/data_mapping.h"
#include "graph/stats.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"

namespace {

using namespace crossem;

struct Args {
  std::vector<std::pair<std::string, std::string>> tables;  // name, path
  std::vector<std::string> jsons;
  std::string images_path;
  std::string output_path;
  std::string model;
  std::string save_model;
  std::string checkpoint;
  bool resume = false;
  int64_t checkpoint_every = 1;
  std::string prompt = "hard";
  int64_t epochs = 4;
  int64_t train_steps = 200;
  uint64_t seed = 7;
  /// Drop pairs whose Eq. 4 matching probability falls below this.
  float min_probability = 0.0f;
  /// Keep only mutual nearest neighbours (high-precision subset).
  bool mutual = false;
  std::string telemetry_out;  // per-epoch JSONL training telemetry
  std::string trace_out;      // Chrome trace_event JSON (Perfetto)
  /// Dump execution-plan trace/replay counters after the run.
  bool plan_stats = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: crossem_match --table NAME=FILE.csv [--json FILE] "
               "--images FILE.csv\n"
               "       [--output FILE.csv] [--prompt hard|soft|baseline] "
               "[--epochs N]\n"
               "       [--model FILE] [--save-model FILE]\n"
               "       [--checkpoint FILE] [--resume] [--checkpoint-every N]\n"
               "       [--train-steps N] [--seed N]\n"
               "       [--min-probability P] [--mutual]\n"
               "       [--telemetry-out FILE.jsonl] [--trace-out FILE.json]\n"
               "       [--plan-stats]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--table") {
      const char* v = next();
      if (v == nullptr) return false;
      std::string spec = v;
      size_t eq = spec.find('=');
      if (eq == std::string::npos) return false;
      args->tables.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (flag == "--json") {
      const char* v = next();
      if (v == nullptr) return false;
      args->jsons.push_back(v);
    } else if (flag == "--images") {
      const char* v = next();
      if (v == nullptr) return false;
      args->images_path = v;
    } else if (flag == "--output") {
      const char* v = next();
      if (v == nullptr) return false;
      args->output_path = v;
    } else if (flag == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      args->model = v;
    } else if (flag == "--save-model") {
      const char* v = next();
      if (v == nullptr) return false;
      args->save_model = v;
    } else if (flag == "--checkpoint") {
      const char* v = next();
      if (v == nullptr) return false;
      args->checkpoint = v;
    } else if (flag == "--resume") {
      args->resume = true;
    } else if (flag == "--checkpoint-every") {
      const char* v = next();
      if (v == nullptr) return false;
      args->checkpoint_every = std::atoll(v);
    } else if (flag == "--prompt") {
      const char* v = next();
      if (v == nullptr) return false;
      args->prompt = v;
    } else if (flag == "--epochs") {
      const char* v = next();
      if (v == nullptr) return false;
      args->epochs = std::atoll(v);
    } else if (flag == "--train-steps") {
      const char* v = next();
      if (v == nullptr) return false;
      args->train_steps = std::atoll(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--min-probability") {
      const char* v = next();
      if (v == nullptr) return false;
      args->min_probability = static_cast<float>(std::atof(v));
    } else if (flag == "--mutual") {
      args->mutual = true;
    } else if (flag == "--telemetry-out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->telemetry_out = v;
    } else if (flag == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->trace_out = v;
    } else if (flag == "--plan-stats") {
      args->plan_stats = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args->images_path.empty() &&
         (!args->tables.empty() || !args->jsons.empty());
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot read '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Entity label for an image id "<label>" or "<label>#<n>".
std::string EntityOfImageId(const std::string& id) {
  size_t hash = id.find('#');
  return hash == std::string::npos ? id : id.substr(0, hash);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  // Tracing covers everything from here on (pre-training, tuning,
  // matching); the file is written just before exit.
  if (!args.trace_out.empty()) obs::SetTraceEnabled(true);

  // -- Data mapping ------------------------------------------------------
  graph::GraphBuilder builder;
  for (const auto& [name, path] : args.tables) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    auto table = graph::ParseCsv(name, text.value());
    if (!table.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   table.status().ToString().c_str());
      return 1;
    }
    if (auto st = builder.AddTable(table.value()); !st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
  }
  for (const std::string& path : args.jsons) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    auto doc = graph::ParseJson(text.value());
    if (!doc.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    if (auto st = builder.AddJson(doc.value()); !st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
  }
  const graph::Graph& g = builder.graph();
  std::fprintf(stderr, "mapped graph: %s\n",
               graph::ComputeGraphStats(g).ToString().c_str());

  // -- Images ----------------------------------------------------------------
  auto repo = data::LoadImageRepositoryCsv(args.images_path);
  if (!repo.ok()) {
    std::fprintf(stderr, "%s\n", repo.status().ToString().c_str());
    return 1;
  }
  const data::ImageRepository& images = repo.value();
  const int64_t patch_dim = images.patches.size(2);
  std::fprintf(stderr, "images: %zu (up to %lld patches of dim %lld)\n",
               images.ids.size(),
               static_cast<long long>(images.patches.size(1)),
               static_cast<long long>(patch_dim));

  // -- Model -----------------------------------------------------------------
  text::Vocabulary vocab;
  for (const std::string& w : g.UniqueWords()) vocab.AddWord(w);
  for (const char* w : {"a", "photo", "of", "with", "and", "in"}) {
    vocab.AddWord(w);
  }
  clip::ClipConfig cc;
  cc.vocab_size = vocab.size();
  cc.text_context = 64;
  cc.patch_dim = patch_dim;
  cc.max_patches = images.patches.size(1) + 1;
  Rng rng(args.seed);
  clip::ClipModel model(cc, &rng);
  text::Tokenizer tokenizer(&vocab, cc.text_context);

  if (!args.model.empty()) {
    if (auto st = nn::LoadCheckpoint(&model, args.model); !st.ok()) {
      std::fprintf(stderr, "model: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded model %s\n", args.model.c_str());
  } else {
    // Self-supervised pre-training on (entity serialization, entity
    // image) pairs, when image ids name their entities.
    core::HardPromptOptions hp;
    core::HardPromptGenerator prompts(&g, hp);
    std::vector<std::pair<graph::VertexId, int64_t>> pairs;
    for (size_t img = 0; img < images.ids.size(); ++img) {
      graph::VertexId v = g.FindVertex(EntityOfImageId(images.ids[img]));
      if (v >= 0) pairs.emplace_back(v, static_cast<int64_t>(img));
    }
    if (pairs.empty()) {
      std::fprintf(stderr,
                   "no image ids match entity labels and no --model "
                   "given; cannot train\n");
      return 1;
    }
    std::fprintf(stderr, "training on %zu aligned (entity, image) pairs\n",
                 pairs.size());
    nn::AdamW opt(model.Parameters(), 3e-3f);
    for (int64_t step = 0; step < args.train_steps; ++step) {
      const int64_t batch =
          std::min<int64_t>(12, static_cast<int64_t>(pairs.size()));
      auto pick = rng.SampleWithoutReplacement(
          static_cast<int64_t>(pairs.size()), batch);
      std::vector<std::string> captions;
      std::vector<Tensor> patch_rows;
      for (int64_t k : pick) {
        captions.push_back(prompts.Generate(pairs[static_cast<size_t>(k)].first));
        const int64_t img = pairs[static_cast<size_t>(k)].second;
        patch_rows.push_back(ops::Reshape(
            ops::Slice(images.patches, 0, img, img + 1),
            {images.patches.size(1), patch_dim}));
      }
      Tensor te = model.text().Forward(tokenizer.EncodeBatch(captions));
      Tensor ie = model.image().Forward(ops::Stack(patch_rows));
      Tensor loss = model.ContrastiveLoss(te, ie);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model.Parameters(), 5.0f);
      opt.Step();
    }
  }
  if (!args.save_model.empty()) {
    if (auto st = nn::SaveCheckpoint(model, args.save_model); !st.ok()) {
      std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved model %s\n", args.save_model.c_str());
  }

  // -- Matching -----------------------------------------------------------------
  core::CrossEmOptions options;
  if (args.prompt == "hard") {
    options.prompt_mode = core::PromptMode::kHard;
  } else if (args.prompt == "soft") {
    options.prompt_mode = core::PromptMode::kSoft;
  } else if (args.prompt == "baseline") {
    options.prompt_mode = core::PromptMode::kBaseline;
  } else {
    std::fprintf(stderr, "unknown --prompt '%s'\n", args.prompt.c_str());
    return 2;
  }
  options.epochs = args.epochs;
  options.seed = args.seed;
  options.checkpoint_path = args.checkpoint;
  options.resume = args.resume;
  options.checkpoint_every_epochs = args.checkpoint_every;
  options.telemetry_path = args.telemetry_out;
  core::CrossEm matcher(&model, &g, &tokenizer, options);
  std::vector<graph::VertexId> entities = builder.entity_vertices();
  if (auto fit = matcher.Fit(entities, images.patches); !fit.ok()) {
    std::fprintf(stderr, "fit: %s\n", fit.status().ToString().c_str());
    return 1;
  }
  auto matches =
      args.mutual ? matcher.FindMutualMatches(entities, images.patches)
                  : matcher.FindMatches(entities, images.patches,
                                        args.min_probability);
  if (args.mutual && args.min_probability > 0.0f) {
    // FindMutualMatches has no threshold parameter; both paths report
    // the Eq. 4 probability as the score, so filter uniformly here.
    matches.erase(std::remove_if(matches.begin(), matches.end(),
                                 [&](const core::MatchingPair& m) {
                                   return m.score < args.min_probability;
                                 }),
                  matches.end());
  }

  std::FILE* out = stdout;
  if (!args.output_path.empty()) {
    out = std::fopen(args.output_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write '%s'\n", args.output_path.c_str());
      return 1;
    }
  }
  std::fprintf(out, "entity,image_id,probability\n");
  for (const auto& m : matches) {
    std::fprintf(out, "%s,%s,%.6f\n", g.VertexLabel(m.vertex).c_str(),
                 images.ids[static_cast<size_t>(m.image)].c_str(), m.score);
  }
  if (out != stdout) std::fclose(out);
  std::fprintf(stderr, "wrote %zu matching pairs\n", matches.size());

  if (args.plan_stats) {
    // Execution-plan health (tensor/plan.h): a tuned run should show a
    // handful of traces, a replay count near the number of tuning steps,
    // and zero invalidations unless kernels/parameters changed mid-run.
    auto& reg = obs::MetricsRegistry::Default();
    std::fprintf(stderr, "plan stats:\n");
    for (const char* name :
         {"plan_traces_total", "plan_replays_total",
          "plan_backward_replays_total",
          "plan_invalidations_kernel_table_total",
          "plan_invalidations_stale_params_total",
          "plan_invalidations_incomplete_capture_total"}) {
      std::fprintf(stderr, "  %-44s %lld\n", name,
                   static_cast<long long>(reg.GetCounter(name)->Value()));
    }
  }

  if (!args.trace_out.empty()) {
    if (!obs::WriteChromeTrace(args.trace_out)) {
      std::fprintf(stderr, "cannot write trace '%s'\n",
                   args.trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %lld trace spans to %s\n",
                 static_cast<long long>(obs::SpanCount()),
                 args.trace_out.c_str());
  }
  return 0;
}
