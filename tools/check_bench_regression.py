#!/usr/bin/env python3
"""Bench regression gate for the fused-kernel / tensor-pool / plan reports.

Compares freshly generated bench reports against committed baselines.
Because CI machines differ from the machine that produced the baseline,
the gate compares the *relative* columns, which are stable across hosts:

  - fused-vs-reference speedups may not fall more than --threshold below
    the committed value (a fused kernel quietly losing its win is the
    regression this catches);
  - fit_pool_hit_rate may not fall below --hit-rate-floor;
  - optionally (--parallel), every multi-thread record in the parallel
    report must keep speedup >= (1 - threshold), i.e. parallelism must
    never make an op meaningfully slower than its baseline;
  - optionally (--plan-baseline/--plan-current), the execution-plan report
    (BENCH_plan.json) rides the same relative gate: the fit_step plan
    speedups may not regress more than --threshold below the committed
    ratios, and fit_step_replay_rate may not fall below
    --replay-rate-floor (re-traces after warmup mean the invalidation
    logic is thrashing);
  - optionally (--resilience), the sharded-serving chaos report
    (BENCH_resilience.json) is gated on its behavioral invariants: no
    arm may report query errors, the blackhole arm must keep mean
    coverage >= --coverage-floor and every faulted arm must keep class
    recall@10 >= 0.95x the healthy arm. Latency ratios are printed for
    context only (CI boxes are too noisy to gate tail latency);
  - optionally (--net), the HTTP front-end report (BENCH_net.json) is
    gated on behavior: the nominal arm must complete with zero 5xx
    responses, zero transport errors, and p99 under
    --net-p99-ceiling-us; overload arms must stay transport-clean
    (the server sheds with 429s instead of hanging or crashing), with
    their latencies printed as context. With --net-expect-recorder the
    report must also carry the time-series flight recorder's summary:
    at least one sample taken and zero ticks dropped during the
    nominal arm (a drop there means the sampler stalled on an
    unsaturated box);
  - optionally (--serve-quant), the quantized serving report
    (BENCH_serve_quant.json) is gated on its acceptance invariants:
    every arm keeps recall@10 >= --quant-recall-floor after exact
    re-rank, the compressed formats respect their bytes/entity
    ceilings relative to f32 (f16 <= 0.55x, int8 <= 0.30x — these are
    arithmetic properties of the block layout, host-independent), and
    int8 must keep qps_per_gb >= --quant-qps-per-gb-floor x the f32
    arm's (the whole point of scanning compressed rows).

Absolute ns_per_iter values are printed for context but never gated.
Exit code 0 = pass, 1 = regression, 2 = usage/data error.
"""

import argparse
import json
import sys


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    records = doc.get("records")
    if not isinstance(records, list):
        print(f"error: {path} has no 'records' array", file=sys.stderr)
        sys.exit(2)
    by_key = {}
    for r in records:
        key = (r.get("op"), r.get("size"), r.get("threads"))
        by_key[key] = r
    return by_key


def compare_reports(baseline, current, args, failures):
    """Generic relative gate: every baseline record must exist in the
    current run and keep its speedup within --threshold; *_rate records
    are floor-gated instead."""
    for key, base in sorted(baseline.items()):
        op, size, threads = key
        cur = current.get(key)
        if cur is None:
            failures.append(f"{op}|{size}|{threads}: missing from current run")
            continue
        base_ratio = base.get("speedup", 0.0)
        cur_ratio = cur.get("speedup", 0.0)
        note = (f"{op}|{size}|{threads}: speedup {cur_ratio:.3f} "
                f"(baseline {base_ratio:.3f}), "
                f"{cur.get('ns_per_iter', 0.0):.0f} ns/iter")
        if op == "fit_pool_hit_rate":
            if cur_ratio < args.hit_rate_floor:
                failures.append(
                    f"{note} -- pool hit rate below {args.hit_rate_floor}")
            else:
                print(f"ok   {note}")
            continue
        if op == "fit_step_replay_rate":
            if cur_ratio < args.replay_rate_floor:
                failures.append(
                    f"{note} -- plan replay rate below "
                    f"{args.replay_rate_floor} (re-traces after warmup)")
            else:
                print(f"ok   {note}")
            continue
        if op.endswith("_ref") or base_ratio <= 0.0:
            # Reference-side records anchor the ratios; nothing to gate.
            print(f"info {note}")
            continue
        if cur_ratio < base_ratio * (1.0 - args.threshold):
            failures.append(
                f"{note} -- regressed more than {args.threshold:.0%}")
        else:
            print(f"ok   {note}")


def load_resilience(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    arms = doc.get("resilience")
    if not isinstance(arms, list) or not arms:
        print(f"error: {path} has no 'resilience' array", file=sys.stderr)
        sys.exit(2)
    return {a.get("arm"): a for a in arms}


def check_resilience(arms, args, failures):
    """Behavioral gate for the chaos arms: errors, coverage, recall.

    These are invariants of the resilience engine itself (retries,
    breakers, partial merges), not host-speed artifacts, so unlike the
    relative speedup gates they compare against fixed floors rather
    than a committed baseline run.
    """
    healthy = arms.get("healthy")
    if healthy is None:
        failures.append("resilience: no 'healthy' arm in report")
        return
    healthy_p99 = healthy.get("latency_p99_us", 0)
    for name, arm in sorted(arms.items()):
        errors = arm.get("errors", -1)
        coverage = arm.get("coverage_mean", 0.0)
        recall_ratio = arm.get("recall_ratio", 0.0)
        p99 = arm.get("latency_p99_us", 0)
        note = (f"resilience|{name}: errors {errors}, coverage "
                f"{coverage:.3f}, recall_ratio {recall_ratio:.3f}, "
                f"p99 {p99}us")
        ok = True
        if errors != 0:
            failures.append(f"{note} -- queries errored under faults")
            ok = False
        if name == "healthy" and coverage < 1.0:
            failures.append(f"{note} -- healthy arm lost coverage")
            ok = False
        if name == "blackhole" and coverage < args.coverage_floor:
            failures.append(
                f"{note} -- coverage below {args.coverage_floor}")
            ok = False
        if name == "delay_hedge" and coverage < 1.0:
            failures.append(
                f"{note} -- hedging failed to restore full coverage")
            ok = False
        if recall_ratio < 0.95:
            failures.append(f"{note} -- recall below 0.95x healthy")
            ok = False
        if ok:
            print(f"ok   {note}")
        if name != "healthy" and healthy_p99 > 0:
            print(f"info resilience|{name}: p99 ratio vs healthy "
                  f"{p99 / healthy_p99:.2f}x")


def load_net(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    arms = doc.get("net")
    if not isinstance(arms, list) or not arms:
        print(f"error: {path} has no 'net' array", file=sys.stderr)
        sys.exit(2)
    return {a.get("name"): a for a in arms}, doc.get("recorder")


def check_net(arms, args, failures):
    """Behavioral gate for the HTTP front-end arms.

    Nominal load must be served cleanly: every request answered, no 5xx,
    no transport errors, and tail latency under the ceiling. Overload
    arms only have to prove the front door held (admission sheds with
    429s; a hang or crash shows up as transport errors), since their
    latency is by construction unbounded on a saturated box.
    """
    nominal = arms.get("nominal")
    if nominal is None:
        failures.append("net: no 'nominal' arm in report")
    for name, arm in sorted(arms.items()):
        sent = arm.get("sent", 0)
        completed = arm.get("completed", 0)
        transport = arm.get("transport_errors", -1)
        s5xx = arm.get("status_5xx", -1)
        s429 = arm.get("status_429", 0)
        p99 = arm.get("p99_us", 0)
        note = (f"net|{name}: sent {sent}, completed {completed}, "
                f"transport_errors {transport}, 5xx {s5xx}, 429 {s429}, "
                f"p99 {p99}us")
        ok = True
        if sent <= 0:
            failures.append(f"{note} -- arm sent no requests")
            ok = False
        if transport != 0:
            failures.append(f"{note} -- transport errors (server hung, "
                            "crashed, or dropped connections)")
            ok = False
        if name == "nominal":
            if s5xx != 0:
                failures.append(f"{note} -- 5xx at nominal load")
                ok = False
            if completed != sent:
                failures.append(f"{note} -- unanswered requests at "
                                "nominal load")
                ok = False
            if p99 > args.net_p99_ceiling_us:
                failures.append(f"{note} -- p99 above ceiling "
                                f"{args.net_p99_ceiling_us:.0f}us")
                ok = False
        if ok:
            print(f"ok   {note}")
        if name != "nominal" and sent > 0:
            print(f"info net|{name}: shed rate {s429 / max(sent, 1):.2f} "
                  f"(429s under overload are the design working)")


def check_net_recorder(recorder, failures):
    """Flight-recorder gate: the bench ran a TimeSeriesRecorder beside
    the arms; it must have sampled, and must not have dropped a tick
    during the nominal arm (overload-arm drops are informational)."""
    if not isinstance(recorder, dict):
        failures.append("net: no 'recorder' object in report "
                        "(--net-expect-recorder)")
        return
    samples = recorder.get("samples", 0)
    dropped = recorder.get("dropped", 0)
    nominal_dropped = recorder.get("nominal_dropped", -1)
    note = (f"net|recorder: samples {samples}, dropped {dropped}, "
            f"nominal_dropped {nominal_dropped}")
    ok = True
    if samples <= 0:
        failures.append(f"{note} -- recorder took no samples")
        ok = False
    if nominal_dropped != 0:
        failures.append(f"{note} -- recorder dropped ticks during the "
                        "nominal arm (or did not report)")
        ok = False
    if ok:
        print(f"ok   {note}")
        if dropped > 0:
            print(f"info net|recorder: {dropped} total drops occurred "
                  "outside the nominal arm (overload; informational)")


def load_serve_quant(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    arms = doc.get("quant")
    if not isinstance(arms, list) or not arms:
        print(f"error: {path} has no 'quant' array", file=sys.stderr)
        sys.exit(2)
    return {a.get("format"): a for a in arms}


# bytes/entity ceilings relative to the f32 arm, by format. These are
# properties of the block layout (2 B/dim for f16; 1 B/dim + 4 B per
# 32-element scale block for int8), so they hold on every host.
QUANT_BYTES_CEILINGS = {"f32": 1.0, "f16": 0.55, "int8": 0.30}


def check_serve_quant(arms, args, failures):
    """Acceptance gate for the quantized serving arms: recall after
    re-rank, bytes/entity ceilings, and the int8 QPS/GB win."""
    f32 = arms.get("f32")
    if f32 is None:
        failures.append("serve_quant: no 'f32' arm in report")
        return
    for name in ("f32", "f16", "int8"):
        arm = arms.get(name)
        if arm is None:
            failures.append(f"serve_quant|{name}: arm missing from report")
            continue
        recall = arm.get("recall_at_10", 0.0)
        ratio = arm.get("bytes_ratio", 99.0)
        qps_per_gb = arm.get("qps_per_gb", 0.0)
        note = (f"serve_quant|{name}: recall@10 {recall:.4f}, "
                f"bytes/entity {arm.get('bytes_per_entity', 0.0):.1f} "
                f"({ratio:.3f}x), {arm.get('qps', 0.0):.0f} qps, "
                f"{qps_per_gb:.0f} qps/GB")
        ok = True
        if recall < args.quant_recall_floor:
            failures.append(
                f"{note} -- recall below {args.quant_recall_floor} "
                "(the exact re-rank is not holding)")
            ok = False
        if ratio > QUANT_BYTES_CEILINGS[name]:
            failures.append(
                f"{note} -- bytes/entity above the "
                f"{QUANT_BYTES_CEILINGS[name]:.2f}x f32 ceiling")
            ok = False
        if name == "int8":
            f32_qpg = f32.get("qps_per_gb", 0.0)
            win = qps_per_gb / f32_qpg if f32_qpg > 0 else 0.0
            if win < args.quant_qps_per_gb_floor:
                failures.append(
                    f"{note} -- qps/GB only {win:.2f}x f32 (floor "
                    f"{args.quant_qps_per_gb_floor}x)")
                ok = False
            else:
                print(f"info serve_quant|int8: qps/GB {win:.2f}x f32")
        if ok:
            print(f"ok   {note}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline",
                    help="committed BENCH_fused.json")
    ap.add_argument("--current",
                    help="freshly generated fused report (required with "
                         "--baseline)")
    ap.add_argument("--parallel",
                    help="freshly generated BENCH_parallel.json (optional)")
    ap.add_argument("--plan-baseline",
                    help="committed BENCH_plan.json (optional)")
    ap.add_argument("--plan-current",
                    help="freshly generated plan report (required with "
                         "--plan-baseline)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed relative drop (default 0.15)")
    ap.add_argument("--hit-rate-floor", type=float, default=0.99,
                    help="minimum steady-state pool hit rate")
    ap.add_argument("--replay-rate-floor", type=float, default=0.99,
                    help="minimum steady-state plan replay rate")
    ap.add_argument("--resilience",
                    help="freshly generated BENCH_resilience.json (optional)")
    ap.add_argument("--coverage-floor", type=float, default=0.70,
                    help="minimum mean coverage for the blackhole arm "
                         "(1 of 4 shards down => 0.75 expected)")
    ap.add_argument("--net",
                    help="freshly generated BENCH_net.json (optional)")
    ap.add_argument("--net-p99-ceiling-us", type=float, default=500000,
                    help="nominal-arm p99 ceiling in microseconds "
                         "(default 500ms; CI boxes are slow)")
    ap.add_argument("--net-expect-recorder", action="store_true",
                    help="require the BENCH_net.json 'recorder' summary: "
                         "samples > 0 and nominal_dropped == 0")
    ap.add_argument("--serve-quant",
                    help="freshly generated BENCH_serve_quant.json "
                         "(optional)")
    ap.add_argument("--quant-recall-floor", type=float, default=0.99,
                    help="minimum recall@10 after exact re-rank, every "
                         "format (default 0.99)")
    ap.add_argument("--quant-qps-per-gb-floor", type=float, default=2.0,
                    help="minimum int8 qps/GB as a multiple of the f32 "
                         "arm's (default 2.0)")
    args = ap.parse_args()

    if not (args.baseline or args.resilience or args.net
            or args.serve_quant):
        print("error: nothing to gate (pass --baseline/--current, "
              "--resilience, or --net)", file=sys.stderr)
        return 2
    if bool(args.baseline) != bool(args.current):
        print("error: --baseline and --current go together",
              file=sys.stderr)
        return 2

    failures = []
    if args.baseline:
        compare_reports(load_records(args.baseline),
                        load_records(args.current), args, failures)

    if args.plan_baseline:
        if not args.plan_current:
            print("error: --plan-baseline requires --plan-current",
                  file=sys.stderr)
            return 2
        compare_reports(load_records(args.plan_baseline),
                        load_records(args.plan_current), args, failures)

    if args.resilience:
        check_resilience(load_resilience(args.resilience), args, failures)

    if args.net:
        net_arms, net_recorder = load_net(args.net)
        check_net(net_arms, args, failures)
        if args.net_expect_recorder:
            check_net_recorder(net_recorder, failures)

    if args.serve_quant:
        check_serve_quant(load_serve_quant(args.serve_quant), args, failures)

    if args.parallel:
        for key, cur in sorted(load_records(args.parallel).items()):
            op, size, threads = key
            if not isinstance(threads, (int, float)) or threads < 2:
                continue
            ratio = cur.get("speedup", 0.0)
            note = f"{op}|{size}|{threads}: speedup {ratio:.3f}"
            if ratio < 1.0 - args.threshold:
                failures.append(
                    f"{note} -- parallel run slower than 1-thread baseline")
            else:
                print(f"ok   {note}")

    if failures:
        print("\nBENCH REGRESSIONS:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall bench gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
