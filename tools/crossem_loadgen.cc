// crossem_loadgen — open-loop Poisson load generator for the HTTP
// front end (crossem_serve http).
//
//   crossem_loadgen --host ADDR --port N --entity LABEL [--entity ...]
//       [--qps R ...] [--duration-s S] [--connections N]
//       [--tenant NAME] [--k N] [--deadline-ms N] [--seed N]
//       [--out BENCH_net.json]
//
// Each --qps value is one arm: a fresh Poisson arrival schedule at that
// offered load, driven open-loop (arrivals never wait for responses,
// so server queueing shows up as latency, not as reduced load). The
// report per arm — offered vs achieved QPS, per-status counts, exact
// p50/p90/p99 measured from the scheduled arrival — is printed to
// stderr and written to --out as the BENCH_net.json document consumed
// by tools/check_bench_regression.py --net.
//
// Entities can also be piped in: `--entities-from -` reads one label
// per line from stdin (or from a file path).
//
// After the arms finish, --history-out fetches the server's
// /metrics/history flight-recorder dump and --tracez-out fetches the
// tail-sampled request traces (/debug/tracez?format=json), writing each
// JSON document next to BENCH_net.json for offline graphing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "net/loadgen.h"

namespace {

using namespace crossem;

struct Args {
  std::string host = "127.0.0.1";
  int64_t port = 8080;
  std::vector<std::string> entities;
  std::string entities_from;
  std::vector<double> qps_arms;
  double duration_s = 2.0;
  int64_t connections = 2;
  std::string tenant = "bench";
  int64_t k = 5;
  int64_t deadline_ms = 0;
  uint64_t seed = 1;
  std::string out;
  std::string history_out;
  std::string tracez_out;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: crossem_loadgen --port N --entity LABEL [--entity ...]\n"
      "  [--host ADDR] [--qps R ...] [--duration-s S] [--connections N]\n"
      "  [--tenant NAME] [--k N] [--deadline-ms N] [--seed N]\n"
      "  [--entities-from FILE|-] [--out BENCH_net.json]\n"
      "  [--history-out HISTORY.json] [--tracez-out TRACEZ.json]\n"
      "each --qps value is one open-loop Poisson arm;\n"
      "--history-out/--tracez-out fetch /metrics/history and\n"
      "/debug/tracez?format=json from the server after the arms\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--host") {
      if ((v = next()) == nullptr) return false;
      args->host = v;
    } else if (flag == "--port") {
      if ((v = next()) == nullptr) return false;
      args->port = std::atoll(v);
    } else if (flag == "--entity") {
      if ((v = next()) == nullptr) return false;
      args->entities.push_back(v);
    } else if (flag == "--entities-from") {
      if ((v = next()) == nullptr) return false;
      args->entities_from = v;
    } else if (flag == "--qps") {
      if ((v = next()) == nullptr) return false;
      args->qps_arms.push_back(std::atof(v));
    } else if (flag == "--duration-s") {
      if ((v = next()) == nullptr) return false;
      args->duration_s = std::atof(v);
    } else if (flag == "--connections") {
      if ((v = next()) == nullptr) return false;
      args->connections = std::atoll(v);
    } else if (flag == "--tenant") {
      if ((v = next()) == nullptr) return false;
      args->tenant = v;
    } else if (flag == "--k") {
      if ((v = next()) == nullptr) return false;
      args->k = std::atoll(v);
    } else if (flag == "--deadline-ms") {
      if ((v = next()) == nullptr) return false;
      args->deadline_ms = std::atoll(v);
    } else if (flag == "--seed") {
      if ((v = next()) == nullptr) return false;
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--out") {
      if ((v = next()) == nullptr) return false;
      args->out = v;
    } else if (flag == "--history-out") {
      if ((v = next()) == nullptr) return false;
      args->history_out = v;
    } else if (flag == "--tracez-out") {
      if ((v = next()) == nullptr) return false;
      args->tracez_out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (!args->entities_from.empty()) {
    std::istream* in = &std::cin;
    std::ifstream file;
    if (args->entities_from != "-") {
      file.open(args->entities_from);
      if (!file) {
        std::fprintf(stderr, "cannot read '%s'\n",
                     args->entities_from.c_str());
        return false;
      }
      in = &file;
    }
    for (std::string line; std::getline(*in, line);) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) args->entities.push_back(line);
    }
  }
  if (args->port <= 0 || args->entities.empty()) return false;
  if (args->qps_arms.empty()) args->qps_arms.push_back(20.0);
  return true;
}

void PrintReport(const net::LoadGenReport& r) {
  std::fprintf(
      stderr,
      "arm %s: offered %.1f qps achieved %.1f qps over %.2fs | "
      "sent %lld completed %lld transport_errors %lld | "
      "200:%lld 206:%lld 429:%lld 4xx:%lld 503:%lld 504:%lld "
      "other-5xx:%lld | "
      "p50 %lldus p90 %lldus p99 %lldus max %lldus\n",
      r.name.c_str(), r.offered_qps, r.achieved_qps, r.duration_s,
      static_cast<long long>(r.sent), static_cast<long long>(r.completed),
      static_cast<long long>(r.transport_errors),
      static_cast<long long>(r.status_200),
      static_cast<long long>(r.status_206),
      static_cast<long long>(r.status_429),
      static_cast<long long>(r.status_4xx),
      static_cast<long long>(r.status_503),
      static_cast<long long>(r.status_504),
      static_cast<long long>(r.status_5xx - r.status_503 - r.status_504),
      static_cast<long long>(r.latency_p50_us),
      static_cast<long long>(r.latency_p90_us),
      static_cast<long long>(r.latency_p99_us),
      static_cast<long long>(r.latency_max_us));
}

/// GETs `target` from the server and writes the body to `path`.
bool FetchToFile(const Args& args, const std::string& target,
                 const std::string& path) {
  net::HttpClient client(args.host, static_cast<int>(args.port));
  net::HttpRequest request;
  request.method = "GET";
  request.target = target;
  request.version = "HTTP/1.1";
  request.headers.emplace_back("Host", args.host);
  auto response = client.RoundTrip(request, 5 * 1000 * 1000);
  if (!response.ok()) {
    std::fprintf(stderr, "GET %s: %s\n", target.c_str(),
                 response.status().ToString().c_str());
    return false;
  }
  if (response.value().status != 200) {
    std::fprintf(stderr, "GET %s: HTTP %d\n", target.c_str(),
                 response.value().status);
    return false;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  out << response.value().body;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  std::vector<net::LoadGenReport> arms;
  for (size_t a = 0; a < args.qps_arms.size(); ++a) {
    net::LoadGenOptions options;
    options.host = args.host;
    options.port = static_cast<int>(args.port);
    options.entities = args.entities;
    options.qps = args.qps_arms[a];
    options.duration_micros =
        static_cast<int64_t>(args.duration_s * 1e6);
    options.connections = args.connections;
    options.tenant = args.tenant;
    options.k = args.k;
    options.deadline_ms = args.deadline_ms;
    options.seed = args.seed + a;  // independent schedule per arm
    options.name = "qps" + std::to_string(static_cast<int64_t>(
                               args.qps_arms[a]));
    auto report = net::RunLoadGen(options);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    PrintReport(report.value());
    arms.push_back(report.value());
  }
  std::printf("%s", net::RenderBenchNetJson(arms).c_str());
  if (!args.out.empty()) {
    if (auto st = net::WriteBenchNetJson(args.out, arms); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  // Server-side dumps are best-effort diagnostics: a server without a
  // recorder answers 404, which fails the fetch but not the run.
  if (!args.history_out.empty() &&
      FetchToFile(args, "/metrics/history", args.history_out)) {
    std::fprintf(stderr, "wrote %s\n", args.history_out.c_str());
  }
  if (!args.tracez_out.empty() &&
      FetchToFile(args, "/debug/tracez?format=json", args.tracez_out)) {
    std::fprintf(stderr, "wrote %s\n", args.tracez_out.c_str());
  }
  return 0;
}
