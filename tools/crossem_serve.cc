// crossem_serve — build, query, and serve online matching indexes.
//
// Four modes:
//
//   crossem_serve build-index --table NAME=FILE.csv [--json FILE]
//       --images patches.csv --model model.ckpt --index repo.cidx
//       [--backend flat|hnsw] [--quant f32|f16|int8] [--rerank-k N]
//       [--hnsw-m N] [--ef-construction N]
//       [--prompt hard|soft|baseline] [--seed N]
//     Encodes every image with the frozen model and writes the
//     embedding index (CEMCKPT2, CRC-checked, atomic). --quant stores
//     rows block-quantized (DESIGN.md §17): scans score on compressed
//     rows, then the top --rerank-k candidates are re-ranked against an
//     exact f32 side file ("<index>.f32rank") before the final top-k.
//
//   crossem_serve query --table NAME=FILE.csv [--json FILE]
//       --index repo.cidx --model model.ckpt --entity LABEL [...]
//       [--k N] [--min-probability P] [--patch-dim D] [--max-patches P]
//     Answers one MatchService request per --entity and prints
//     entity,image_id,similarity,probability CSV to stdout.
//
//   crossem_serve stdin-batch --table NAME=FILE.csv [--json FILE]
//       --index repo.cidx --model model.ckpt
//       [--k N] [--clients N] [--deadline-us N] [--max-batch N]
//       [--max-wait-us N] [--queue N] [--patch-dim D] [--max-patches P]
//     Reads entity labels from stdin (one per line) and serves them
//     through N concurrent client threads — the micro-batching,
//     admission-control path production traffic takes. Per-request
//     results go to stdout; rejections and the final stats line to
//     stderr. Malformed query lines (empty or control characters) are
//     reported as machine-readable JSON error lines on stderr and make
//     the exit status nonzero.
//
//   crossem_serve http --table NAME=FILE.csv [--json FILE]
//       --index repo.cidx --model model.ckpt
//       [--host H] [--port P] [--http-threads N] [--shards N]
//       [--max-inflight N] [--tenant-rate R] [--tenant-burst B]
//       [--k N] [--patch-dim D] [--max-patches P]
//     Serves /v1/match, /healthz, /metrics, /metrics/history,
//     /debug/tracez, and /admin/snapshot over HTTP/1.1 (DESIGN.md
//     §15-16): per-tenant token-bucket quotas keyed by the x-tenant
//     header, a global concurrency limiter, deadlines from
//     x-deadline-ms, request tracing (traceparent / x-request-id
//     adopted and echoed), a time-series flight recorder
//     (--history-interval-ms, 0 disables), and zero-downtime index
//     hot-swaps via POST /admin/snapshot {"index": PATH}. Runs until
//     SIGINT/SIGTERM.
//
// The model checkpoint must have been written against the same graph
// inputs (the vocabulary is rebuilt from the mapped graph). query and
// stdin-batch do not need --images: pass the --patch-dim / --max-patches
// the model was built with (build-index prints them).
//
// Observability: --stats-out FILE (query and stdin-batch modes) writes
// the process-wide metrics registry — including the crossem_serve_*
// request/batch/cache/latency instruments — in Prometheus text
// exposition format after the run; --trace-out FILE enables span
// tracing and writes a Chrome trace_event JSON (Perfetto).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/crossem.h"
#include "net/match_app.h"
#include "net/server.h"
#include "data/dataset.h"
#include "graph/data_mapping.h"
#include "nn/serialize.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/index.h"
#include "serve/service.h"
#include "serve/sharded.h"
#include "serve/snapshot.h"
#include "text/tokenizer.h"

namespace {

using namespace crossem;

struct Args {
  std::string mode;
  std::vector<std::pair<std::string, std::string>> tables;  // name, path
  std::vector<std::string> jsons;
  std::string images_path;
  std::string index_path;
  std::string model;
  std::string backend = "flat";
  std::string prompt = "hard";
  std::vector<std::string> entities;
  int64_t k = 5;
  float min_probability = 0.0f;
  int64_t hnsw_m = 16;
  int64_t ef_construction = 128;
  int64_t ef_search = 64;
  int64_t clients = 4;
  int64_t deadline_us = 0;
  int64_t max_batch = 16;
  int64_t max_wait_us = 2000;
  int64_t queue = 256;
  int64_t cache = 4096;
  int64_t cache_bytes = 0;     // optional embedding-cache byte cap
  std::string quant = "f32";   // row storage format (build-index + cache)
  int64_t rerank_k = 0;        // quantized re-rank depth; 0 = default
  int64_t shards = 1;  // > 1 serves through ShardedMatchService
  int64_t patch_dim = 0;    // model config when --images is absent
  int64_t max_patches = 0;  // ditto (repository max, pre-padding)
  uint64_t seed = 7;
  // http mode
  std::string host = "127.0.0.1";
  int64_t port = 8080;
  int64_t http_threads = 4;
  int64_t max_inflight = 128;
  double tenant_rate = 200.0;
  double tenant_burst = 100.0;
  // Flight-recorder sampling period for /metrics/history (0 disables).
  int64_t history_interval_ms = 250;
  std::string stats_out;  // Prometheus text exposition of the registry
  std::string trace_out;  // Chrome trace_event JSON (Perfetto)
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: crossem_serve MODE [flags]\n"
      "modes:\n"
      "  build-index  --table NAME=FILE.csv [--json FILE] --images FILE.csv\n"
      "               --model FILE --index FILE [--backend flat|hnsw]\n"
      "               [--quant f32|f16|int8] [--rerank-k N]\n"
      "               [--hnsw-m N] [--ef-construction N]\n"
      "               [--prompt hard|soft|baseline] [--seed N]\n"
      "  query        --table NAME=FILE.csv [--json FILE] --index FILE\n"
      "               --model FILE --entity LABEL [--entity LABEL ...]\n"
      "               [--k N] [--min-probability P] [--ef-search N]\n"
      "               [--patch-dim D] [--max-patches P]\n"
      "  stdin-batch  --table NAME=FILE.csv [--json FILE] --index FILE\n"
      "               --model FILE [--k N] [--clients N] [--deadline-us N]\n"
      "               [--max-batch N] [--max-wait-us N] [--queue N]\n"
      "               [--cache N] [--patch-dim D] [--max-patches P]\n"
      "  http         --table NAME=FILE.csv [--json FILE] --index FILE\n"
      "               --model FILE [--host ADDR] [--port N]\n"
      "               [--http-threads N] [--max-inflight N]\n"
      "               [--tenant-rate R] [--tenant-burst B] [--k N]\n"
      "               [--patch-dim D] [--max-patches P]\n"
      "               [--history-interval-ms N]\n"
      "               [--quant f32|f16|int8] [--cache-bytes N]\n"
      "               serves POST /v1/match, /healthz, /metrics (+json),\n"
      "               /metrics/history, /debug/tracez, and\n"
      "               /admin/snapshot until SIGINT/SIGTERM\n"
      "query/stdin-batch also take [--shards N] (partition the index and\n"
      "serve through the resilient scatter-gather engine: retries, hedged\n"
      "requests, circuit breakers, partial results with coverage),\n"
      "[--stats-out FILE] (Prometheus text) and [--trace-out FILE]\n"
      "(Chrome trace_event JSON)\n"
      "all serving modes take [--quant f32|f16|int8] (embedding-cache\n"
      "storage format) and [--cache-bytes N] (cache byte cap)\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->mode = argv[1];
  if (args->mode != "build-index" && args->mode != "query" &&
      args->mode != "stdin-batch" && args->mode != "http") {
    std::fprintf(stderr, "unknown mode: %s\n", args->mode.c_str());
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    auto next_i64 = [&](int64_t* out) {
      const char* v = next();
      if (v == nullptr) return false;
      *out = std::atoll(v);
      return true;
    };
    if (flag == "--table") {
      const char* v = next();
      if (v == nullptr) return false;
      std::string spec = v;
      size_t eq = spec.find('=');
      if (eq == std::string::npos) return false;
      args->tables.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (flag == "--json") {
      const char* v = next();
      if (v == nullptr) return false;
      args->jsons.push_back(v);
    } else if (flag == "--images") {
      const char* v = next();
      if (v == nullptr) return false;
      args->images_path = v;
    } else if (flag == "--index") {
      const char* v = next();
      if (v == nullptr) return false;
      args->index_path = v;
    } else if (flag == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      args->model = v;
    } else if (flag == "--backend") {
      const char* v = next();
      if (v == nullptr) return false;
      args->backend = v;
    } else if (flag == "--prompt") {
      const char* v = next();
      if (v == nullptr) return false;
      args->prompt = v;
    } else if (flag == "--entity") {
      const char* v = next();
      if (v == nullptr) return false;
      args->entities.push_back(v);
    } else if (flag == "--min-probability") {
      const char* v = next();
      if (v == nullptr) return false;
      args->min_probability = static_cast<float>(std::atof(v));
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--k") {
      if (!next_i64(&args->k)) return false;
    } else if (flag == "--hnsw-m") {
      if (!next_i64(&args->hnsw_m)) return false;
    } else if (flag == "--ef-construction") {
      if (!next_i64(&args->ef_construction)) return false;
    } else if (flag == "--ef-search") {
      if (!next_i64(&args->ef_search)) return false;
    } else if (flag == "--clients") {
      if (!next_i64(&args->clients)) return false;
    } else if (flag == "--deadline-us") {
      if (!next_i64(&args->deadline_us)) return false;
    } else if (flag == "--max-batch") {
      if (!next_i64(&args->max_batch)) return false;
    } else if (flag == "--max-wait-us") {
      if (!next_i64(&args->max_wait_us)) return false;
    } else if (flag == "--queue") {
      if (!next_i64(&args->queue)) return false;
    } else if (flag == "--cache") {
      if (!next_i64(&args->cache)) return false;
    } else if (flag == "--cache-bytes") {
      if (!next_i64(&args->cache_bytes)) return false;
    } else if (flag == "--quant") {
      const char* v = next();
      if (v == nullptr) return false;
      args->quant = v;
    } else if (flag == "--rerank-k") {
      if (!next_i64(&args->rerank_k)) return false;
    } else if (flag == "--shards") {
      if (!next_i64(&args->shards)) return false;
      if (args->shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return false;
      }
    } else if (flag == "--patch-dim") {
      if (!next_i64(&args->patch_dim)) return false;
    } else if (flag == "--max-patches") {
      if (!next_i64(&args->max_patches)) return false;
    } else if (flag == "--host") {
      const char* v = next();
      if (v == nullptr) return false;
      args->host = v;
    } else if (flag == "--port") {
      if (!next_i64(&args->port)) return false;
    } else if (flag == "--http-threads") {
      if (!next_i64(&args->http_threads)) return false;
    } else if (flag == "--max-inflight") {
      if (!next_i64(&args->max_inflight)) return false;
    } else if (flag == "--tenant-rate") {
      const char* v = next();
      if (v == nullptr) return false;
      args->tenant_rate = std::atof(v);
    } else if (flag == "--tenant-burst") {
      const char* v = next();
      if (v == nullptr) return false;
      args->tenant_burst = std::atof(v);
    } else if (flag == "--history-interval-ms") {
      if (!next_i64(&args->history_interval_ms)) return false;
    } else if (flag == "--stats-out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->stats_out = v;
    } else if (flag == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->trace_out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->tables.empty() && args->jsons.empty()) return false;
  if (args->index_path.empty() || args->model.empty()) return false;
  if (args->mode == "build-index" && args->images_path.empty()) return false;
  if (args->mode == "query" && args->entities.empty()) return false;
  return true;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot read '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Writes the requested observability outputs after a serving run:
/// --stats-out gets the process-wide registry (crossem_serve_* and
/// everything else) as Prometheus text; --trace-out gets the recorded
/// spans as Chrome trace_event JSON. Returns false if a requested file
/// could not be written.
bool WriteObservability(const Args& args) {
  bool ok = true;
  if (!args.stats_out.empty()) {
    std::ofstream out(args.stats_out, std::ios::trunc);
    out << obs::ExportPrometheus(obs::MetricsRegistry::Default().Snapshot());
    out.flush();
    if (!out) {
      std::fprintf(stderr, "cannot write stats '%s'\n",
                   args.stats_out.c_str());
      ok = false;
    }
  }
  if (!args.trace_out.empty() && !obs::WriteChromeTrace(args.trace_out)) {
    std::fprintf(stderr, "cannot write trace '%s'\n", args.trace_out.c_str());
    ok = false;
  }
  return ok;
}

/// Everything a mode needs: the mapped graph, the model restored from
/// --model, a tokenizer over the graph vocabulary, and the matcher.
struct Setup {
  graph::GraphBuilder builder;
  std::unique_ptr<text::Vocabulary> vocab;
  std::unique_ptr<clip::ClipModel> model;
  std::unique_ptr<text::Tokenizer> tokenizer;
  std::unique_ptr<core::CrossEm> matcher;
  data::ImageRepository images;  // only when --images was given
  bool have_images = false;
};

int BuildSetup(const Args& args, Setup* s) {
  for (const auto& [name, path] : args.tables) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    auto table = graph::ParseCsv(name, text.value());
    if (!table.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   table.status().ToString().c_str());
      return 1;
    }
    if (auto st = s->builder.AddTable(table.value()); !st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
  }
  for (const std::string& path : args.jsons) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    auto doc = graph::ParseJson(text.value());
    if (!doc.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    if (auto st = s->builder.AddJson(doc.value()); !st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
  }

  int64_t patch_dim = args.patch_dim;
  int64_t max_patches = args.max_patches;
  if (!args.images_path.empty()) {
    auto repo = data::LoadImageRepositoryCsv(args.images_path);
    if (!repo.ok()) {
      std::fprintf(stderr, "%s\n", repo.status().ToString().c_str());
      return 1;
    }
    s->images = repo.value();
    s->have_images = true;
    patch_dim = s->images.patches.size(2);
    max_patches = s->images.patches.size(1);
  }
  if (patch_dim <= 0 || max_patches <= 0) {
    std::fprintf(stderr,
                 "need --images, or the model's --patch-dim and "
                 "--max-patches (build-index prints them)\n");
    return 2;
  }

  // The vocabulary must be rebuilt exactly as at model-training time
  // (crossem_match's recipe) or the checkpoint will not load.
  s->vocab = std::make_unique<text::Vocabulary>();
  for (const std::string& w : s->builder.graph().UniqueWords()) {
    s->vocab->AddWord(w);
  }
  for (const char* w : {"a", "photo", "of", "with", "and", "in"}) {
    s->vocab->AddWord(w);
  }
  clip::ClipConfig cc;
  cc.vocab_size = s->vocab->size();
  cc.text_context = 64;
  cc.patch_dim = patch_dim;
  cc.max_patches = max_patches + 1;
  Rng rng(args.seed);
  s->model = std::make_unique<clip::ClipModel>(cc, &rng);
  s->tokenizer = std::make_unique<text::Tokenizer>(s->vocab.get(), cc.text_context);
  if (auto st = nn::LoadCheckpoint(s->model.get(), args.model); !st.ok()) {
    std::fprintf(stderr, "model: %s\n", st.ToString().c_str());
    return 1;
  }

  core::CrossEmOptions options;
  if (args.prompt == "hard") {
    options.prompt_mode = core::PromptMode::kHard;
  } else if (args.prompt == "soft") {
    options.prompt_mode = core::PromptMode::kSoft;
  } else if (args.prompt == "baseline") {
    options.prompt_mode = core::PromptMode::kBaseline;
  } else {
    std::fprintf(stderr, "unknown --prompt '%s'\n", args.prompt.c_str());
    return 2;
  }
  options.seed = args.seed;
  s->matcher = std::make_unique<core::CrossEm>(
      s->model.get(), &s->builder.graph(), s->tokenizer.get(), options);
  return 0;
}

int RunBuildIndex(const Args& args, Setup* s) {
  serve::quant::QuantFormat format;
  if (!serve::quant::ParseFormat(args.quant, &format)) {
    std::fprintf(stderr, "unknown --quant '%s' (want f32|f16|int8)\n",
                 args.quant.c_str());
    return 2;
  }
  std::unique_ptr<serve::EmbeddingIndex> index;
  if (args.backend == "flat") {
    index = std::make_unique<serve::FlatIndex>(format);
  } else if (args.backend == "hnsw") {
    serve::HnswOptions ho;
    ho.M = args.hnsw_m;
    ho.ef_construction = args.ef_construction;
    ho.ef_search = args.ef_search;
    index = std::make_unique<serve::HnswIndex>(ho, format);
  } else {
    std::fprintf(stderr, "unknown --backend '%s'\n", args.backend.c_str());
    return 2;
  }
  if (args.rerank_k > 0) index->set_rerank_k(args.rerank_k);

  Tensor embeddings = s->matcher->EncodeImages(s->images.patches);
  if (auto st = index->Add(embeddings, s->images.ids); !st.ok()) {
    std::fprintf(stderr, "add: %s\n", st.ToString().c_str());
    return 1;
  }
  index->set_model_fingerprint(s->matcher->EncoderFingerprint());
  if (auto st = index->Save(args.index_path); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "wrote %s index (%s): %lld vectors of dim %lld -> %s\n"
               "query with: --patch-dim %lld --max-patches %lld\n",
               index->backend().c_str(), serve::quant::FormatName(format),
               static_cast<long long>(index->size()),
               static_cast<long long>(index->dim()), args.index_path.c_str(),
               static_cast<long long>(s->images.patches.size(2)),
               static_cast<long long>(s->images.patches.size(1)));
  return 0;
}

void PrintMatches(std::FILE* out, const std::string& entity,
                  const serve::MatchResponse& response) {
  for (const serve::RankedMatch& m : response.matches) {
    std::fprintf(out, "%s,%s,%.6f,%.6f\n", entity.c_str(),
                 m.image_id.c_str(), m.similarity, m.probability);
  }
}

/// The serving engine behind every online mode, now the same
/// SnapshotManager the HTTP front end hot-swaps through: the index is
/// loaded (with the fingerprint handshake), optionally hash-partitioned
/// across --shards, and served via a leased ServingSnapshot.
struct Engine {
  std::unique_ptr<serve::SnapshotManager> manager;

  Result<serve::MatchResponse> Match(const serve::MatchRequest& request) {
    serve::SnapshotLease lease = manager->Acquire();
    if (!lease) return Status::Unavailable("no index snapshot is live");
    return lease->Match(request);
  }
  void Shutdown() { manager->Shutdown(); }
  /// The final stderr stats line(s); call before Shutdown().
  void PrintStats() {
    serve::SnapshotLease lease = manager->Acquire();
    if (!lease) return;
    std::fprintf(stderr, "%s\n", lease->Stats().ToString().c_str());
    if (lease->sharded()) {
      std::fprintf(stderr, "%s\n", lease->Resilience().ToString().c_str());
    }
  }
};

int BuildEngine(const Args& args, Setup* s, Engine* engine) {
  serve::quant::QuantFormat cache_format;
  if (!serve::quant::ParseFormat(args.quant, &cache_format)) {
    std::fprintf(stderr, "unknown --quant '%s' (want f32|f16|int8)\n",
                 args.quant.c_str());
    return 2;
  }
  serve::EngineOptions eo;
  eo.base.max_batch = args.max_batch;
  eo.base.max_wait_micros = args.max_wait_us;
  eo.base.max_queue = args.queue;
  eo.base.cache_capacity = args.cache;
  eo.base.cache_max_bytes = args.cache_bytes;
  eo.base.cache_format = cache_format;
  eo.shards = args.shards;
  engine->manager =
      std::make_unique<serve::SnapshotManager>(s->matcher.get(), eo);
  if (auto st = engine->manager->LoadAndSwap(args.index_path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  serve::SnapshotLease lease = engine->manager->Acquire();
  if (lease && lease->sharded()) {
    std::fprintf(stderr, "serving %lld rows across %lld shards\n",
                 static_cast<long long>(lease->rows()),
                 static_cast<long long>(lease->shards()));
  }
  return 0;
}

/// Operators see partial answers: per-request degraded coverage goes to
/// stderr (stdout stays a clean CSV of matches).
void WarnIfDegraded(const std::string& label,
                    const serve::MatchResponse& response) {
  if (response.degraded) {
    std::fprintf(stderr, "%s: degraded response, coverage %.2f\n",
                 label.c_str(), response.coverage);
  }
}

int RunQuery(const Args& args, Setup* s) {
  Engine engine;
  if (int rc = BuildEngine(args, s, &engine); rc != 0) return rc;

  std::printf("entity,image_id,similarity,probability\n");
  int failures = 0;
  for (const std::string& label : args.entities) {
    graph::VertexId v = s->builder.graph().FindVertex(label);
    if (v < 0) {
      std::fprintf(stderr, "%s: no such entity\n", label.c_str());
      ++failures;
      continue;
    }
    serve::MatchRequest request;
    request.vertex = v;
    request.k = args.k;
    request.min_probability = args.min_probability;
    request.deadline_micros = args.deadline_us;
    auto result = engine.Match(request);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", label.c_str(),
                   result.status().ToString().c_str());
      ++failures;
      continue;
    }
    WarnIfDegraded(label, result.value());
    PrintMatches(stdout, label, result.value());
  }
  engine.PrintStats();
  engine.Shutdown();
  if (!WriteObservability(args)) return 1;
  return failures == 0 ? 0 : 1;
}

/// A stdin-batch query line is malformed when it is blank (empty or
/// whitespace-only) or carries ASCII control characters — neither can
/// be an entity label, and silently skipping them would make a
/// truncated or corrupted query file look fully served.
bool IsMalformedQueryLine(const std::string& line) {
  bool has_content = false;
  for (char c : line) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u == 0x7f) return true;  // control character
    if (c != ' ') has_content = true;
  }
  return !has_content;
}

int RunStdinBatch(const Args& args, Setup* s) {
  Engine engine;
  if (int rc = BuildEngine(args, s, &engine); rc != 0) return rc;

  std::vector<std::string> labels;
  int64_t malformed = 0;
  int64_t line_number = 0;
  for (std::string line; std::getline(std::cin, line);) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (IsMalformedQueryLine(line)) {
      // Machine-readable rejection on stderr; the run exits nonzero
      // instead of pretending the query file was fully served.
      std::fprintf(stderr,
                   "{\"error\":\"malformed_query\",\"line\":%lld,"
                   "\"query\":%s}\n",
                   static_cast<long long>(line_number),
                   obs::JsonString(line).c_str());
      ++malformed;
      continue;
    }
    labels.push_back(line);
  }

  std::printf("entity,image_id,similarity,probability\n");
  std::atomic<size_t> cursor{0};
  std::atomic<int64_t> failed{0};
  std::mutex out_mu;
  const int64_t clients = std::max<int64_t>(1, args.clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      for (;;) {
        const size_t i = cursor.fetch_add(1);
        if (i >= labels.size()) return;
        const std::string& label = labels[i];
        graph::VertexId v = s->builder.graph().FindVertex(label);
        if (v < 0) {
          std::lock_guard<std::mutex> lock(out_mu);
          std::fprintf(stderr, "%s: no such entity\n", label.c_str());
          ++failed;
          continue;
        }
        serve::MatchRequest request;
        request.vertex = v;
        request.k = args.k;
        request.min_probability = args.min_probability;
        request.deadline_micros = args.deadline_us;
        auto result = engine.Match(request);
        std::lock_guard<std::mutex> lock(out_mu);
        if (!result.ok()) {
          std::fprintf(stderr, "%s: %s\n", label.c_str(),
                       result.status().ToString().c_str());
          ++failed;
        } else {
          WarnIfDegraded(label, result.value());
          PrintMatches(stdout, label, result.value());
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  engine.PrintStats();
  engine.Shutdown();
  if (!WriteObservability(args)) return 1;
  return (failed.load() == 0 && malformed == 0) ? 0 : 1;
}

std::atomic<bool> g_http_stop{false};
void HandleStopSignal(int) { g_http_stop.store(true); }

/// `crossem_serve http`: the network front end. Serves /v1/match,
/// /healthz, /metrics, and /admin/snapshot until SIGINT/SIGTERM, then
/// stops the listener, drains in-flight requests, and prints the final
/// stats line.
int RunHttp(const Args& args, Setup* s) {
  Engine engine;
  if (int rc = BuildEngine(args, s, &engine); rc != 0) return rc;

  net::MatchAppOptions app_options;
  app_options.admission.max_inflight = args.max_inflight;
  app_options.admission.tenant_rate = args.tenant_rate;
  app_options.admission.tenant_burst = args.tenant_burst;
  app_options.default_k = args.k;
  // Every request gets a trace; the tracez buffer tail-samples which
  // completed traces are retained for /debug/tracez.
  app_options.trace_all_requests = true;
  net::MatchApp app(&s->builder.graph(), engine.manager.get(), app_options);

  // Flight recorder behind /metrics/history (--history-interval-ms 0
  // disables the sampler and the route answers 404).
  std::unique_ptr<obs::TimeSeriesRecorder> recorder;
  if (args.history_interval_ms > 0) {
    obs::TimeSeriesOptions ts_options;
    ts_options.interval_micros = args.history_interval_ms * 1000;
    recorder = std::make_unique<obs::TimeSeriesRecorder>(
        &obs::MetricsRegistry::Default(), ts_options);
    app.set_recorder(recorder.get());
    recorder->Start();
  }

  net::HttpServerOptions server_options;
  server_options.host = args.host;
  server_options.port = static_cast<int>(args.port);
  server_options.workers = args.http_threads;
  net::HttpServer server(
      server_options,
      [&app](const net::HttpRequest& request) { return app.Handle(request); });
  if (auto st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "listening on %s:%d\n", args.host.c_str(),
               server.port());

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_http_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "shutting down\n");
  server.Stop();
  if (recorder != nullptr) recorder->Stop();
  engine.PrintStats();
  engine.Shutdown();
  if (!WriteObservability(args)) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (!args.trace_out.empty()) obs::SetTraceEnabled(true);
  Setup setup;
  if (int rc = BuildSetup(args, &setup); rc != 0) return rc;
  if (args.mode == "build-index") return RunBuildIndex(args, &setup);
  if (args.mode == "query") return RunQuery(args, &setup);
  if (args.mode == "http") return RunHttp(args, &setup);
  return RunStdinBatch(args, &setup);
}
