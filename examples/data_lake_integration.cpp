// Data-lake integration: map a relational CSV table and a JSON document
// into the unified graph (paper Sec. II-A), resolve entities across the
// two sources, and match the mapped entities against a synthetic image
// repository with CrossEM.
//
//   $ ./build/examples/data_lake_integration
#include <cstdio>
#include <map>

#include "clip/pretrain.h"
#include "core/crossem.h"
#include "graph/data_mapping.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"

namespace {

using namespace crossem;

// Patch features for "images" of the mapped entities: each attribute
// value gets a visual code; an image of an entity shows noisy codes of
// its attribute values (exactly the world model of src/data/world.h,
// rebuilt here for user-supplied data).
Tensor MakeImage(const graph::Graph& g, graph::VertexId entity,
                 std::map<std::string, std::vector<float>>* codebook,
                 int64_t patch_dim, Rng* rng) {
  std::vector<std::vector<float>> patches;
  for (graph::EdgeId e : g.OutEdges(entity)) {
    const std::string& value = g.VertexLabel(g.GetEdge(e).dst);
    auto it = codebook->find(value);
    if (it == codebook->end()) {
      std::vector<float> code(static_cast<size_t>(patch_dim));
      for (auto& x : code) x = static_cast<float>(rng->Normal());
      it = codebook->emplace(value, std::move(code)).first;
    }
    std::vector<float> patch = it->second;
    for (auto& x : patch) x += static_cast<float>(rng->Normal(0.0, 0.2));
    patches.push_back(std::move(patch));
  }
  while (patches.size() < 4) {  // background noise patches
    std::vector<float> noise(static_cast<size_t>(patch_dim));
    for (auto& x : noise) x = static_cast<float>(rng->Normal(0.0, 0.2));
    patches.push_back(std::move(noise));
  }
  Tensor t = Tensor::Zeros({static_cast<int64_t>(patches.size()), patch_dim});
  for (size_t p = 0; p < patches.size(); ++p) {
    std::copy(patches[p].begin(), patches[p].end(),
              t.data() + static_cast<int64_t>(p) * patch_dim);
  }
  return t;
}

}  // namespace

int main() {
  using namespace crossem;

  // 1. Two heterogeneous sources describing the same animals.
  const char* kCsv =
      "name,crown,wings,tail\n"
      "laysan albatross,white crown,long wings,black tail\n"
      "downy woodpecker,red crown,short wings,spotted tail\n"
      "snow goose,white crown,broad wings,grey tail\n";
  auto table = graph::ParseCsv("birds", kCsv);
  if (!table.ok()) {
    std::printf("CSV error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  auto json = graph::ParseJson(R"([
    {"name": "laysan albatross", "habitat": {"name": "pacific", "climate": "mild"}},
    {"name": "downy woodpecker", "habitat": {"name": "forest", "climate": "temperate"}}
  ])");
  if (!json.ok()) {
    std::printf("JSON error: %s\n", json.status().ToString().c_str());
    return 1;
  }

  // 2. Data mapping into one unified graph.
  graph::GraphBuilder builder;
  if (auto st = builder.AddTable(table.value()); !st.ok()) {
    std::printf("table mapping failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (auto st = builder.AddJson(json.value()); !st.ok()) {
    std::printf("json mapping failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const graph::Graph& g = builder.graph();
  std::printf("unified graph: %lld vertices, %lld edges, %zu entities\n",
              static_cast<long long>(g.NumVertices()),
              static_cast<long long>(g.NumEdges()),
              builder.entity_vertices().size());

  // Cross-source resolution: the albatross row and the albatross JSON
  // object share one vertex, so its prompt sees BOTH sources.
  core::HardPromptOptions hp;
  hp.hops = 2;
  core::HardPromptGenerator prompts(&g, hp);
  graph::VertexId albatross = g.FindVertex("laysan albatross");
  std::printf("\nstructure-aware prompt for '%s':\n  %s\n",
              g.VertexLabel(albatross).c_str(),
              prompts.Generate(albatross).c_str());

  // 3. Images for the three bird entities (attribute-driven patches).
  const int64_t patch_dim = 12;
  Rng rng(11);
  std::map<std::string, std::vector<float>> codebook;
  std::vector<graph::VertexId> birds;
  for (const char* name :
       {"laysan albatross", "downy woodpecker", "snow goose"}) {
    birds.push_back(g.FindVertex(name));
  }
  std::vector<Tensor> image_list;
  std::vector<int64_t> image_entity;  // ground truth for the printout
  for (size_t b = 0; b < birds.size(); ++b) {
    for (int i = 0; i < 4; ++i) {
      image_list.push_back(MakeImage(g, birds[b], &codebook, patch_dim, &rng));
      image_entity.push_back(static_cast<int64_t>(b));
    }
  }
  Tensor images = ops::Stack(image_list);

  // 4. A small CLIP trained on captions derived from the mapped graph
  //    (stand-in for a pre-trained checkpoint covering this domain).
  text::Vocabulary vocab;
  for (const std::string& w : g.UniqueWords()) vocab.AddWord(w);
  for (const char* w : {"a", "photo", "of", "with", "and"}) vocab.AddWord(w);
  clip::ClipConfig cc;
  cc.vocab_size = vocab.size();
  cc.text_context = 48;
  cc.patch_dim = patch_dim;
  clip::ClipModel model(cc, &rng);
  text::Tokenizer tokenizer(&vocab, cc.text_context);
  {
    nn::AdamW opt(model.Parameters(), 3e-3f);
    for (int step = 0; step < 240; ++step) {
      std::vector<std::string> captions;
      std::vector<Tensor> patch_rows;
      for (size_t b = 0; b < birds.size(); ++b) {
        captions.push_back(prompts.Generate(birds[b]));
        patch_rows.push_back(
            MakeImage(g, birds[b], &codebook, patch_dim, &rng));
      }
      Tensor text_emb = model.text().Forward(tokenizer.EncodeBatch(captions));
      Tensor image_emb = model.image().Forward(ops::Stack(patch_rows));
      Tensor loss = model.ContrastiveLoss(text_emb, image_emb);
      opt.ZeroGrad();
      loss.Backward();
      opt.Step();
    }
  }

  // 5. Match with CrossEM (hard prompts; the model is now domain-tuned).
  core::CrossEmOptions options;
  options.prompt_mode = core::PromptMode::kHard;
  options.hard = hp;
  core::CrossEm matcher(&model, &g, &tokenizer, options);
  auto pairs = matcher.FindMatches(birds, images);
  std::printf("\nmatching set S:\n");
  int correct = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const bool ok =
        image_entity[static_cast<size_t>(pairs[i].image)] ==
        static_cast<int64_t>(i);
    correct += ok;
    std::printf("  %-20s -> image #%lld  p=%.3f %s\n",
                g.VertexLabel(pairs[i].vertex).c_str(),
                static_cast<long long>(pairs[i].image), pairs[i].score,
                ok ? "[correct]" : "[wrong]");
  }
  std::printf("%d / %zu entities matched to one of their own images\n",
              correct, pairs.size());
  return 0;
}
