// Multi-modal knowledge graph integration (the paper's case study,
// Sec. V-D) on a small FB15K-237-IMG-like dataset: attach images to
// knowledge-graph entities, comparing a classical KG-embedding approach
// (DistMult) against cross-modal entity matching (CrossEM+).
//
//   $ ./build/examples/kg_integration
#include <cstdio>

#include "baselines/kge.h"
#include "clip/pretrain.h"
#include "core/crossem.h"
#include "data/dataset.h"
#include "eval/metrics.h"

int main() {
  using namespace crossem;

  data::CrossModalDataset dataset =
      data::BuildDataset(data::Fb2kLikeConfig(0.4));
  std::printf("%s: %lld vertices, %lld edges (relation-heavy KG style)\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.graph.NumVertices()),
              static_cast<long long>(dataset.graph.NumEdges()));

  // Shared pre-trained CLIP for CrossEM.
  clip::ClipConfig cc;
  cc.vocab_size = dataset.vocab.size();
  cc.text_context = 48;
  cc.patch_dim = dataset.world->config().patch_dim;
  Rng rng(23);
  clip::ClipModel model(cc, &rng);
  text::Tokenizer tokenizer(&dataset.vocab, cc.text_context);
  clip::PretrainConfig pc;
  pc.epochs = 40;
  std::vector<int64_t> all_classes;
  for (int64_t c = 0; c < dataset.world->num_classes(); ++c) {
    all_classes.push_back(c);
  }
  auto pretrained =
      clip::PretrainClip(&model, *dataset.world, all_classes, tokenizer, pc);
  if (!pretrained.ok()) {
    std::printf("pre-training failed\n");
    return 1;
  }

  // Integration task: test entities vs the full image repository; the
  // KGE baseline additionally sees the train-class has_image links.
  baselines::BaselineContext ctx;
  ctx.dataset = &dataset;
  ctx.tokenizer = &tokenizer;
  std::vector<int64_t> vertex_classes;
  for (int64_t c : dataset.test_classes) {
    ctx.vertices.push_back(dataset.entities[static_cast<size_t>(c)]);
    vertex_classes.push_back(c);
  }
  std::vector<int64_t> all_idx(dataset.images.size());
  for (size_t i = 0; i < all_idx.size(); ++i) {
    all_idx[i] = static_cast<int64_t>(i);
    ctx.image_classes.push_back(dataset.images[i].true_class);
  }
  ctx.images = dataset.StackImages(all_idx);
  ctx.seed = 5;

  // DistMult link prediction.
  baselines::KgeBaseline distmult;
  if (auto st = distmult.Fit(ctx); !st.ok()) {
    std::printf("DistMult fit failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto kge_scores = distmult.Score(ctx);
  auto kge_metrics = eval::ComputeRankingMetricsByClass(
      kge_scores.value(), vertex_classes, ctx.image_classes);

  // CrossEM+ matching (unsupervised, same candidate pool).
  core::CrossEmOptions options = core::CrossEmPlusOptions();
  options.epochs = 4;
  options.learning_rate = 1e-3f;
  core::CrossEm matcher(&model, &dataset.graph, &tokenizer, options);
  if (auto fit = matcher.Fit(ctx.vertices, ctx.images); !fit.ok()) {
    std::printf("CrossEM+ fit failed: %s\n", fit.status().ToString().c_str());
    return 1;
  }
  Tensor em_scores = matcher.ScoreMatrix(ctx.vertices, ctx.images);
  auto em_metrics = eval::ComputeRankingMetricsByClass(
      em_scores, vertex_classes, ctx.image_classes);

  std::printf("\nintegration accuracy (ranking all %lld images per entity):\n",
              static_cast<long long>(ctx.images.size(0)));
  std::printf("  DistMult  H@1 %5.1f  H@5 %5.1f  MRR %.3f\n",
              kge_metrics.hits_at_1, kge_metrics.hits_at_5, kge_metrics.mrr);
  std::printf("  CrossEM+  H@1 %5.1f  H@5 %5.1f  MRR %.3f\n",
              em_metrics.hits_at_1, em_metrics.hits_at_5, em_metrics.mrr);
  std::printf("\ncross-modal EM %s the link-prediction baseline.\n",
              em_metrics.mrr > kge_metrics.mrr ? "outperforms" : "trails");
  return 0;
}
