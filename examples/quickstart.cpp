// Quickstart: build a tiny data lake, pre-train the mini-CLIP, and match
// graph entities against images with CrossEM+ — the whole public API in
// one file.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "clip/pretrain.h"
#include "core/crossem.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "eval/per_class.h"

int main() {
  using namespace crossem;

  // 1. A synthetic cross-modal dataset: a heterogeneous graph of bird
  //    entities with attribute vertices, plus an image repository drawn
  //    from the same generative world (see src/data/world.h).
  data::CrossModalDataset dataset = data::BuildDataset(data::CubLikeConfig(0.8));
  std::printf("dataset %s: %lld vertices, %lld edges, %zu images\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.graph.NumVertices()),
              static_cast<long long>(dataset.graph.NumEdges()),
              dataset.images.size());

  // 2. Pre-train the multi-modal model (the stand-in for downloading a
  //    CLIP checkpoint).
  clip::ClipConfig clip_config;
  clip_config.vocab_size = dataset.vocab.size();
  clip_config.text_context = 48;
  clip_config.patch_dim = dataset.world->config().patch_dim;
  Rng rng(7);
  clip::ClipModel model(clip_config, &rng);
  text::Tokenizer tokenizer(&dataset.vocab, clip_config.text_context);

  clip::PretrainConfig pretrain;
  pretrain.epochs = 40;
  std::vector<int64_t> all_classes;
  for (int64_t c = 0; c < dataset.world->num_classes(); ++c) {
    all_classes.push_back(c);
  }
  auto pretrain_stats =
      clip::PretrainClip(&model, *dataset.world, all_classes, tokenizer,
                         pretrain);
  if (!pretrain_stats.ok()) {
    std::printf("pre-training failed: %s\n",
                pretrain_stats.status().ToString().c_str());
    return 1;
  }
  std::printf("pre-trained CLIP: contrastive loss %.3f -> %.3f\n",
              pretrain_stats.value().epoch_loss.front(),
              pretrain_stats.value().final_loss);

  // 3. The matching task: test-class entities vs their images.
  std::vector<graph::VertexId> vertices;
  std::vector<int64_t> vertex_classes;
  for (int64_t c : dataset.test_classes) {
    vertices.push_back(dataset.entities[static_cast<size_t>(c)]);
    vertex_classes.push_back(c);
  }
  auto image_indices = dataset.TestImageIndices();
  Tensor images = dataset.StackImages(image_indices);
  std::vector<int64_t> image_classes;
  for (int64_t i : image_indices) {
    image_classes.push_back(dataset.images[static_cast<size_t>(i)].true_class);
  }

  // 4. CrossEM+: unsupervised prompt tuning, then matching.
  core::CrossEmOptions options = core::CrossEmPlusOptions();
  options.epochs = 4;
  options.learning_rate = 1e-3f;
  core::CrossEm matcher(&model, &dataset.graph, &tokenizer, options);
  auto fit = matcher.Fit(vertices, images);
  if (!fit.ok()) {
    std::printf("tuning failed: %s\n", fit.status().ToString().c_str());
    return 1;
  }
  std::printf("tuned %zu epochs, %.2fs/epoch, peak %.1f MB\n",
              fit.value().epochs.size(), fit.value().AvgEpochSeconds(),
              fit.value().peak_bytes / (1024.0 * 1024.0));

  // 5. Inspect the matching set S and the accuracy.
  auto pairs = matcher.FindMatches(vertices, images, /*min_probability=*/0.0f);
  std::printf("\nmatching pairs (vertex -> image, probability):\n");
  for (size_t i = 0; i < pairs.size() && i < 5; ++i) {
    const auto& p = pairs[i];
    const int64_t img_cls =
        image_classes[static_cast<size_t>(p.image)];
    std::printf("  %-28s -> image #%lld (class %s)  p=%.3f %s\n",
                dataset.graph.VertexLabel(p.vertex).c_str(),
                static_cast<long long>(p.image),
                dataset.world->ClassName(img_cls).c_str(), p.score,
                dataset.world->ClassName(vertex_classes[i]) ==
                        dataset.world->ClassName(img_cls)
                    ? "[correct]"
                    : "[wrong]");
  }

  Tensor scores = matcher.ScoreMatrix(vertices, images);
  auto metrics = eval::ComputeRankingMetricsByClass(scores, vertex_classes,
                                                    image_classes);
  std::printf("\nCrossEM+ accuracy: H@1 %.1f  H@3 %.1f  H@5 %.1f  MRR %.3f\n",
              metrics.hits_at_1, metrics.hits_at_3, metrics.hits_at_5,
              metrics.mrr);

  // 6. Error analysis: which entities get confused with which.
  auto confusions = eval::TopConfusions(
      eval::ComputeQueryDiagnostics(scores, vertex_classes, image_classes),
      /*max_pairs=*/3);
  if (!confusions.empty()) {
    std::printf("\ntop confusions:\n");
    for (const auto& c : confusions) {
      std::printf("  %s mistaken for %s (%lld queries)\n",
                  dataset.world->ClassName(c.true_class).c_str(),
                  dataset.world->ClassName(c.predicted_class).c_str(),
                  static_cast<long long>(c.count));
    }
  }
  return 0;
}
