// Extension demo (the paper's future work, Sec. VII: "explore a general
// prompt-tuning method to support more data management tasks such as
// data cleaning"): screen suspicious attribute edges of a multi-modal KG
// with PCP-style property closeness (paper Sec. IV-A, Eq. 8).
//
// Idea: in an integrated multi-modal KG, an attribute edge (entity e)
// --has--> (attribute a) claims that e's images contain a patch showing
// a. Other entities holding a provide visual REFERENCES for what a looks
// like; if no patch of e's images is close to any reference patch, the
// edge is suspicious. We corrupt one attribute edge per test entity and
// check the detector ranks the corruptions on top.
//
//   $ ./build/examples/attribute_cleaning
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "data/dataset.h"
#include "graph/graph.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace {

using namespace crossem;

/// Max cosine similarity of the single patch `p` ([D]) against any patch
/// in pool `b` ([Pb, D]).
float BestMatchOfPatch(const Tensor& p, const Tensor& b) {
  Tensor pn = ops::L2Normalize(ops::Reshape(p, {1, p.numel()}));
  Tensor bn = ops::L2Normalize(b);
  Tensor sim = ops::MatMul(pn, ops::Transpose(bn, 0, 1));
  float best = -2.0f;
  for (int64_t i = 0; i < sim.numel(); ++i) best = std::max(best, sim.at(i));
  return best;
}

/// Mines attribute `a`'s visual reference from its holders' image pools:
/// the patch of holders[0] that is most CONSISTENTLY present (min over
/// the other holders of its best match) — a patch showing `a` recurs in
/// every holder, patches showing holder-specific attributes do not.
/// Returns an undefined tensor when holders.size() < 2.
Tensor MineReferencePatch(const std::vector<const Tensor*>& holders) {
  if (holders.size() < 2) return Tensor();
  const Tensor& pool = *holders[0];
  int64_t best_patch = -1;
  float best_consistency = -2.0f;
  for (int64_t p = 0; p < pool.size(0); ++p) {
    Tensor patch = ops::Reshape(ops::Slice(pool, 0, p, p + 1),
                                {pool.size(1)});
    float consistency = 2.0f;
    for (size_t h = 1; h < holders.size(); ++h) {
      consistency = std::min(consistency,
                             BestMatchOfPatch(patch, *holders[h]));
    }
    if (consistency > best_consistency) {
      best_consistency = consistency;
      best_patch = p;
    }
  }
  return ops::Reshape(ops::Slice(pool, 0, best_patch, best_patch + 1),
                      {pool.size(1)});
}

}  // namespace

int main() {
  using namespace crossem;

  // Curated KG photographs: crisp (low noise) and complete (every
  // attribute visible in some patch).
  data::DatasetConfig dc = data::CubLikeConfig(0.8);
  dc.attrs_shown_per_image = dc.world.attrs_per_class;
  dc.world.patch_noise = 0.10f;
  data::CrossModalDataset dataset = data::BuildDataset(dc);
  graph::Graph graph = dataset.graph;  // copy we can corrupt

  std::vector<graph::VertexId> entities;
  std::vector<int64_t> entity_class;
  for (int64_t c : dataset.test_classes) {
    entities.push_back(dataset.entities[static_cast<size_t>(c)]);
    entity_class.push_back(c);
  }

  // -- Inject one wrong attribute edge per test entity --------------------
  struct Corruption {
    graph::VertexId entity;
    std::string wrong_attribute;
  };
  std::vector<Corruption> injected;
  Rng rng(5);
  for (size_t k = 0; k < entities.size(); ++k) {
    std::vector<graph::VertexId> candidates;
    for (graph::VertexId v = 0; v < graph.NumVertices(); ++v) {
      bool is_entity = false;
      for (graph::VertexId e : dataset.entities) is_entity |= (e == v);
      if (is_entity) continue;
      bool already = false;
      for (graph::VertexId n : graph.Neighbors(entities[k])) {
        already |= (n == v);
      }
      if (!already) candidates.push_back(v);
    }
    graph::VertexId wrong = candidates[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    (void)graph.AddEdge(entities[k], wrong, "has suspicious trait");
    injected.push_back({entities[k], graph.VertexLabel(wrong)});
  }
  std::printf("injected %zu wrong attribute edges (one per test entity)\n",
              injected.size());

  // -- Visual support via property closeness ---------------------------------
  // Pool every entity's image patches ([sum P, D] per entity) — the whole
  // KG provides reference holders, not just the screened entities.
  std::map<graph::VertexId, Tensor> entity_patches;
  for (size_t c = 0; c < dataset.entities.size(); ++c) {
    std::vector<Tensor> rows;
    for (const auto& img : dataset.images) {
      if (img.true_class == static_cast<int64_t>(c)) {
        rows.push_back(img.patches);
      }
    }
    entity_patches[dataset.entities[c]] = ops::Concat(rows, 0);
  }

  struct Suspicion {
    graph::VertexId entity;
    std::string attribute;
    float score;  // higher = more suspicious
  };
  std::vector<Suspicion> suspicions;
  for (size_t ei = 0; ei < entities.size(); ++ei) {
    const graph::VertexId entity = entities[ei];
    for (graph::VertexId attr : graph.Neighbors(entity)) {
      // Reference holders: every OTHER entity in the KG with an edge to
      // `attr`.
      std::vector<const Tensor*> holders;
      for (graph::VertexId other : dataset.entities) {
        if (other == entity) continue;
        for (graph::VertexId n : graph.Neighbors(other)) {
          if (n == attr) {
            holders.push_back(&entity_patches.at(other));
            break;
          }
        }
      }
      Tensor reference = MineReferencePatch(holders);
      if (!reference.defined()) continue;  // too few holders to screen
      const float support =
          BestMatchOfPatch(reference, entity_patches.at(entity));
      suspicions.push_back({entity, graph.VertexLabel(attr), -support});
    }
  }
  std::sort(suspicions.begin(), suspicions.end(),
            [](const Suspicion& a, const Suspicion& b) {
              return a.score > b.score;
            });

  // -- Report -------------------------------------------------------------------
  std::printf("\nmost suspicious attribute edges (top 8):\n");
  int found_in_top = 0;
  for (size_t i = 0; i < suspicions.size() && i < 8; ++i) {
    bool is_injected = false;
    for (const auto& c : injected) {
      is_injected |= (c.entity == suspicions[i].entity &&
                      c.wrong_attribute == suspicions[i].attribute);
    }
    found_in_top += is_injected;
    std::printf("  %-28s -- %-18s  visual support %.3f %s\n",
                graph.VertexLabel(suspicions[i].entity).c_str(),
                suspicions[i].attribute.c_str(), -suspicions[i].score,
                is_injected ? "[injected corruption]" : "");
  }

  double sum_injected = 0, sum_clean = 0;
  int64_t n_injected = 0, n_clean = 0;
  std::vector<size_t> injected_ranks;
  for (size_t i = 0; i < suspicions.size(); ++i) {
    bool is_injected = false;
    for (const auto& c : injected) {
      is_injected |= (c.entity == suspicions[i].entity &&
                      c.wrong_attribute == suspicions[i].attribute);
    }
    if (is_injected) {
      sum_injected += suspicions[i].score;
      ++n_injected;
      injected_ranks.push_back(i + 1);
    } else {
      sum_clean += suspicions[i].score;
      ++n_clean;
    }
  }
  std::sort(injected_ranks.begin(), injected_ranks.end());
  std::printf("\n%d injected corruptions in the top 8 (of %lld screened)\n",
              found_in_top, static_cast<long long>(n_injected));
  std::printf("mean suspicion: injected %+0.4f vs clean %+0.4f\n",
              sum_injected / std::max<int64_t>(n_injected, 1),
              sum_clean / std::max<int64_t>(n_clean, 1));
  if (!injected_ranks.empty()) {
    std::printf("median injected rank: %zu of %zu (uniform would be %zu)\n",
                injected_ranks[injected_ranks.size() / 2], suspicions.size(),
                suspicions.size() / 2);
  }
  return 0;
}
