#include "text/tokenizer.h"

#include <cctype>

#include "util/logging.h"

namespace crossem {
namespace text {

Vocabulary::Vocabulary() {
  words_ = {"[PAD]", "[CLS]", "[SEP]", "[MASK]", "[UNK]"};
  for (size_t i = 0; i < words_.size(); ++i) {
    index_.emplace(words_[i], static_cast<int64_t>(i));
  }
}

int64_t Vocabulary::AddWord(const std::string& word) {
  auto it = index_.find(word);
  if (it != index_.end()) return it->second;
  const int64_t id = size();
  words_.push_back(word);
  index_.emplace(word, id);
  return id;
}

int64_t Vocabulary::Id(const std::string& word) const {
  auto it = index_.find(word);
  return it == index_.end() ? kUnk : it->second;
}

const std::string& Vocabulary::Word(int64_t id) const {
  CROSSEM_CHECK_GE(id, 0);
  CROSSEM_CHECK_LT(id, size());
  return words_[static_cast<size_t>(id)];
}

bool Vocabulary::Contains(const std::string& word) const {
  return index_.count(word) > 0;
}

std::vector<std::string> SplitWords(const std::string& text) {
  std::vector<std::string> words;
  std::string current;
  auto is_word_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
           c == '_';
  };
  auto flush = [&]() {
    // Trim leading/trailing separators kept inside words.
    while (!current.empty() &&
           (current.front() == '-' || current.front() == '_')) {
      current.erase(current.begin());
    }
    while (!current.empty() &&
           (current.back() == '-' || current.back() == '_')) {
      current.pop_back();
    }
    if (!current.empty()) words.push_back(current);
    current.clear();
  };
  for (char c : text) {
    if (is_word_char(c)) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      flush();
    }
  }
  flush();
  return words;
}

Tokenizer::Tokenizer(const Vocabulary* vocab, int64_t max_len)
    : vocab_(vocab), max_len_(max_len) {
  CROSSEM_CHECK(vocab != nullptr);
  CROSSEM_CHECK_GE(max_len, 3);  // room for [CLS] x [SEP]
}

std::vector<int64_t> Tokenizer::Encode(const std::string& text) const {
  std::vector<int64_t> ids;
  ids.push_back(Vocabulary::kCls);
  for (const std::string& w : SplitWords(text)) {
    if (static_cast<int64_t>(ids.size()) >= max_len_ - 1) break;  // truncate
    ids.push_back(vocab_->Id(w));
  }
  ids.push_back(Vocabulary::kSep);
  return ids;
}

std::vector<int64_t> Tokenizer::EncodePadded(const std::string& text) const {
  std::vector<int64_t> ids = Encode(text);
  ids.resize(static_cast<size_t>(max_len_), Vocabulary::kPad);
  return ids;
}

std::vector<std::vector<int64_t>> Tokenizer::EncodeBatch(
    const std::vector<std::string>& texts) const {
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(texts.size());
  size_t longest = 0;
  for (const std::string& t : texts) {
    rows.push_back(Encode(t));
    longest = std::max(longest, rows.back().size());
  }
  for (auto& row : rows) row.resize(longest, Vocabulary::kPad);
  return rows;
}

std::string Tokenizer::Decode(const std::vector<int64_t>& ids) const {
  std::string out;
  for (int64_t id : ids) {
    if (!out.empty()) out += ' ';
    out += vocab_->Word(id);
  }
  return out;
}

}  // namespace text
}  // namespace crossem
