// Vocabulary and word-level tokenizer for the mini-CLIP text encoder.
//
// Mirrors the interface contract CrossEM relies on (paper Sec. III-B):
// sequences are wrapped as {[CLS], tokens..., [SEP]}, and the encoder has
// a maximum context length (77 for the pre-trained CLIP; CrossEM extends
// it to 512 during prompt learning). Tokens beyond the context length are
// truncated — the hard-prompt drawback the soft prompt avoids.
#ifndef CROSSEM_TEXT_TOKENIZER_H_
#define CROSSEM_TEXT_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace crossem {
namespace text {

/// Token-id table with reserved special tokens.
class Vocabulary {
 public:
  static constexpr int64_t kPad = 0;
  static constexpr int64_t kCls = 1;
  static constexpr int64_t kSep = 2;
  static constexpr int64_t kMask = 3;
  static constexpr int64_t kUnk = 4;
  static constexpr int64_t kNumSpecial = 5;

  Vocabulary();

  /// Adds a word if absent; returns its id either way.
  int64_t AddWord(const std::string& word);

  /// Id of a word, or kUnk when unknown.
  int64_t Id(const std::string& word) const;

  /// Inverse lookup ("[CLS]" etc. for specials).
  const std::string& Word(int64_t id) const;

  bool Contains(const std::string& word) const;

  int64_t size() const { return static_cast<int64_t>(words_.size()); }

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, int64_t> index_;
};

/// Splits text into lowercase word tokens. Letters, digits and intra-word
/// hyphens/underscores are kept ("long-wings" is one token); all other
/// characters separate tokens.
std::vector<std::string> SplitWords(const std::string& text);

/// Encodes text into fixed policy token-id sequences against a vocabulary.
class Tokenizer {
 public:
  /// `vocab` must outlive the tokenizer. `max_len` is the context length
  /// including the [CLS]/[SEP] wrappers.
  Tokenizer(const Vocabulary* vocab, int64_t max_len);

  /// {[CLS], word ids..., [SEP]}, truncated to max_len (the [SEP] is kept).
  std::vector<int64_t> Encode(const std::string& text) const;

  /// Encode + right-pad with [PAD] to exactly max_len.
  std::vector<int64_t> EncodePadded(const std::string& text) const;

  /// Encodes a batch and right-pads every row to the batch's longest row
  /// (cheaper than max_len padding: attention cost is quadratic in T).
  std::vector<std::vector<int64_t>> EncodeBatch(
      const std::vector<std::string>& texts) const;

  /// Space-joined words; specials rendered as "[CLS]" etc.
  std::string Decode(const std::vector<int64_t>& ids) const;

  int64_t max_len() const { return max_len_; }
  const Vocabulary& vocab() const { return *vocab_; }

 private:
  const Vocabulary* vocab_;
  int64_t max_len_;
};

}  // namespace text
}  // namespace crossem

#endif  // CROSSEM_TEXT_TOKENIZER_H_
