// Multi-head self/cross attention and the Transformer encoder block.
#ifndef CROSSEM_NN_ATTENTION_H_
#define CROSSEM_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace crossem {
namespace nn {

/// Scaled dot-product multi-head attention.
///
/// Supports self-attention (query == context) and cross-attention
/// (the co-attention streams of ViLBERT-style baselines).
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t model_dim, int64_t num_heads, Rng* rng);

  /// query: [B, Tq, D], context: [B, Tk, D].
  /// key_padding_mask (optional): [B, Tk] with 1 = valid, 0 = padded.
  Tensor Forward(const Tensor& query, const Tensor& context,
                 const Tensor& key_padding_mask = Tensor()) const;

  /// Self-attention convenience (query and context are the same sequence).
  Tensor ForwardSelf(const Tensor& x,
                     const Tensor& key_padding_mask = Tensor()) const {
    return Forward(x, x, key_padding_mask);
  }

 private:
  int64_t model_dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

/// Pre-LayerNorm Transformer encoder block:
///   x = x + MHA(LN(x));  x = x + MLP(LN(x)).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t model_dim, int64_t num_heads, int64_t mlp_dim,
                   Rng* rng, float dropout = 0.0f);

  Tensor Forward(const Tensor& x, const Tensor& key_padding_mask = Tensor(),
                 Rng* rng = nullptr) const;

 private:
  MultiHeadAttention attn_;
  LayerNorm ln1_;
  LayerNorm ln2_;
  Linear fc1_;
  Linear fc2_;
  float dropout_;
};

/// A stack of TransformerBlocks with a final LayerNorm.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int64_t num_layers, int64_t model_dim, int64_t num_heads,
                     int64_t mlp_dim, Rng* rng, float dropout = 0.0f);

  Tensor Forward(const Tensor& x, const Tensor& key_padding_mask = Tensor(),
                 Rng* rng = nullptr) const;

  int64_t num_layers() const { return static_cast<int64_t>(blocks_.size()); }

 private:
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  LayerNorm final_ln_;
};

}  // namespace nn
}  // namespace crossem

#endif  // CROSSEM_NN_ATTENTION_H_
