#include "nn/module.h"

#include "util/logging.h"

namespace crossem {
namespace nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, p] : NamedParameters()) out.push_back(p);
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& [name, p] : params_) out.emplace_back(name, p);
  for (const auto& [name, child] : children_) {
    for (const auto& [cname, p] : child->NamedParameters()) {
      out.emplace_back(name + "." + cname, p);
    }
  }
  return out;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const Tensor& p : Parameters()) n += p.numel();
  return n;
}

void Module::SetRequiresGrad(bool value) {
  for (Tensor p : Parameters()) p.set_requires_grad(value);
}

void Module::ZeroGrad() {
  for (Tensor p : Parameters()) p.ZeroGrad();
}

std::vector<Tensor> Module::SnapshotParameters() const {
  std::vector<Tensor> out;
  for (const Tensor& p : Parameters()) out.push_back(p.Clone());
  return out;
}

void Module::RestoreParameters(const std::vector<Tensor>& snapshot) {
  std::vector<Tensor> params = Parameters();
  CROSSEM_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    CROSSEM_CHECK_EQ(params[i].numel(), snapshot[i].numel());
    std::copy_n(snapshot[i].data(), snapshot[i].numel(), params[i].data());
  }
}

void Module::BindToPlan(plan::ExecutionPlan* plan) const {
  CROSSEM_CHECK(plan != nullptr);
  plan->BindParams(Parameters());
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

Tensor Module::RegisterParameter(std::string name, Tensor tensor) {
  CROSSEM_CHECK(tensor.defined());
  tensor.set_requires_grad(true);
  params_.emplace_back(std::move(name), tensor);
  return params_.back().second;
}

void Module::RegisterModule(std::string name, Module* child) {
  CROSSEM_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace nn
}  // namespace crossem
