// Checkpoint I/O: save/load a module's named parameters to a binary file.
//
// Format (little-endian):
//   magic "CEMCKPT1" | int64 count |
//   per parameter: int64 name_len | name bytes | int64 rank |
//                  int64 dims[rank] | float data[numel]
//
// Loading matches parameters by name and shape; any mismatch fails the
// whole load without partially mutating the module.
#ifndef CROSSEM_NN_SERIALIZE_H_
#define CROSSEM_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace crossem {
namespace nn {

/// Writes all named parameters of `module` to `path`.
Status SaveCheckpoint(const Module& module, const std::string& path);

/// Loads a checkpoint written by SaveCheckpoint into `module`. The
/// module's architecture (names and shapes) must match exactly.
Status LoadCheckpoint(Module* module, const std::string& path);

}  // namespace nn
}  // namespace crossem

#endif  // CROSSEM_NN_SERIALIZE_H_
