// Checkpoint I/O: durable, corruption-detecting serialization of module
// parameters and full training state.
//
// Format v2 ("CEMCKPT2", little-endian):
//
//   magic "CEMCKPT2" | i64 record_count
//   per record:
//     i64 name_len | name bytes | u32 kind | shape-or-size | payload |
//     u32 crc32(name, kind, shape, payload)
//       kind 0 (f32 tensor): i64 rank | i64 dims[rank] | f32 data[numel]
//       kind 1 (raw bytes):  i64 byte_count | bytes
//       kind 2 (packed):     i64 rank | i64 dims[rank] | i64 elem_size |
//                            data[numel * elem_size] — a shaped array of
//                            opaque fixed-size elements (f16 rows, int8
//                            blocks, ... of the quantized serving path)
//   trailer:
//     u32 crc32 over the record CRCs, in order | magic "CEM2END\n"
//
// Robustness properties:
//   - every record carries a CRC-32, so bit rot and torn writes are
//     detected, not silently loaded;
//   - the trailer chains all record CRCs, so record reordering,
//     insertion or truncation at a record boundary is also detected;
//   - writes are atomic: data goes to "<path>.tmp", is fsync'ed, and
//     only then renamed over <path> — a crash mid-save never clobbers
//     the previous checkpoint, and failed saves remove their tmp file;
//   - loads stage everything in memory and validate names, shapes and
//     checksums before the first byte of module state is mutated.
//
// Version 1 files ("CEMCKPT1": no checksums, parameters only) remain
// readable; new files are always written as v2.
//
// All file I/O goes through the crossem::io wrappers, so every failure
// mode is exercisable via util/fault_injection.h.
#ifndef CROSSEM_NN_SERIALIZE_H_
#define CROSSEM_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "nn/optimizer.h"
#include "util/status.h"

namespace crossem {
namespace nn {

// -- Generic record access ----------------------------------------------------
//
// The v2 format is a plain stream of named records; the record layer is
// public so other subsystems (e.g. the serving layer's embedding
// indexes) get CRC-checked, atomically-written persistence without
// inventing a new file format.

/// Record kinds of the v2 layout.
inline constexpr uint32_t kRecordTensor = 0;  // f32 tensor with a shape
inline constexpr uint32_t kRecordBytes = 1;   // raw byte string
inline constexpr uint32_t kRecordPacked = 2;  // shaped non-f32 element array

/// One named entry of a checkpoint file.
struct CheckpointRecord {
  std::string name;
  uint32_t kind = kRecordTensor;
  Shape shape;              // kRecordTensor, kRecordPacked
  std::vector<float> f32;   // kRecordTensor payload
  std::string bytes;        // kRecordBytes / kRecordPacked payload
  int64_t elem_size = 0;    // kRecordPacked: bytes per element

  static CheckpointRecord TensorRecord(std::string name, Shape shape,
                                       std::vector<float> data);
  static CheckpointRecord BytesRecord(std::string name, std::string data);
  /// A shaped array of opaque `elem_size`-byte elements;
  /// `data.size() == numel(shape) * elem_size` must hold.
  static CheckpointRecord PackedRecord(std::string name, Shape shape,
                                       int64_t elem_size, std::string data);

  /// CRC over name bytes, kind, shape/size fields and payload — the
  /// value stored after the record and chained into the trailer.
  uint32_t Crc() const;
};

/// Writes `records` to `path` as one atomic v2 file (tmp + fsync +
/// rename; a failed save removes its tmp file and leaves `path` intact).
Status SaveRecordFile(const std::vector<CheckpointRecord>& records,
                      const std::string& path);

/// Reads a checkpoint file (v1 or v2) into `records`, validating magic,
/// bounds, per-record CRCs and the trailer before returning anything.
Status LoadRecordFile(const std::string& path,
                      std::vector<CheckpointRecord>* records);

/// CRC-32 fingerprint over a module's named parameters (names, shapes
/// and values, in registration order). Two modules fingerprint equal iff
/// they would serialize identically — the serving layer keys embedding
/// caches and index files on this to detect model/index mismatches.
uint32_t ModuleFingerprint(const Module& module);

/// Writes all named parameters of `module` to `path` (format v2,
/// atomically).
Status SaveCheckpoint(const Module& module, const std::string& path);

/// Loads a checkpoint (v1 or v2) into `module`. Every module parameter
/// must be present with a matching shape; extra records — e.g. the
/// "state/..." and "soft_prompt...." records of a training checkpoint
/// written by CrossEm::Fit — are ignored, and a "model." name prefix is
/// accepted, so a module can be restored from a TrainState bundle too.
/// Any mismatch or corruption fails the whole load without partially
/// mutating the module.
Status LoadCheckpoint(Module* module, const std::string& path);

/// Everything beyond raw parameters that bit-for-bit training resume
/// needs: the AdamW moments/step, the (possibly backed-off) learning
/// rate, the data-order RNG, the index of the next epoch to run, and the
/// PCP proximity matrix (undefined when mini-batch generation is off).
struct TrainState {
  int64_t next_epoch = 0;
  float learning_rate = 0.0f;
  Adam::State optimizer;
  std::string rng_state;
  Tensor proximity;
};

/// Writes a training checkpoint: the given named parameter tensors plus
/// `state`, as one atomic v2 file.
Status SaveTrainState(
    const std::vector<std::pair<std::string, Tensor>>& params,
    const TrainState& state, const std::string& path);

/// Restores a training checkpoint written by SaveTrainState: every
/// tensor in `params` is overwritten from its same-named record and
/// `state` is filled in. Validates everything (names, shapes, CRCs)
/// before mutating any tensor.
Status LoadTrainState(
    const std::vector<std::pair<std::string, Tensor>>& params,
    TrainState* state, const std::string& path);

}  // namespace nn
}  // namespace crossem

#endif  // CROSSEM_NN_SERIALIZE_H_
