#include "nn/layers.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  CROSSEM_CHECK_GT(in_features, 0);
  CROSSEM_CHECK_GT(out_features, 0);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = RegisterParameter(
      "weight",
      Tensor::Rand({in_features, out_features}, rng, -bound, bound));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

Tensor Linear::Forward(const Tensor& x, ops::BiasAct act) const {
  CROSSEM_CHECK_EQ(x.size(-1), in_features_);
  Tensor y = ops::MatMul(x, weight_);
  if (bias_.defined() && ops::GetFusedKernels() == ops::FusedKernels::kFused) {
    return ops::BiasActivation(y, bias_, act);
  }
  if (bias_.defined()) y = ops::Add(y, bias_);
  switch (act) {
    case ops::BiasAct::kNone:
      return y;
    case ops::BiasAct::kRelu:
      return ops::Relu(y);
    case ops::BiasAct::kGelu:
      return ops::Gelu(y);
  }
  return y;
}

Embedding::Embedding(int64_t num_embeddings, int64_t dim, Rng* rng,
                     float init_stddev)
    : num_embeddings_(num_embeddings), dim_(dim) {
  CROSSEM_CHECK_GT(num_embeddings, 0);
  CROSSEM_CHECK_GT(dim, 0);
  table_ = RegisterParameter(
      "table", Tensor::Randn({num_embeddings, dim}, rng, init_stddev));
}

Tensor Embedding::Forward(const std::vector<int64_t>& indices) const {
  return ops::IndexSelect(table_, indices);
}

Tensor Embedding::ForwardSlot(const plan::IndexSlot& indices) const {
  return ops::IndexSelectSlot(table_, indices);
}

LayerNorm::LayerNorm(int64_t dim, float eps) : dim_(dim), eps_(eps) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({dim}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  CROSSEM_CHECK_EQ(x.size(-1), dim_);
  if (ops::GetFusedKernels() == ops::FusedKernels::kFused) {
    return ops::LayerNormFused(x, gamma_, beta_, eps_);
  }
  Tensor mean = ops::Mean(x, -1, /*keepdim=*/true);
  Tensor centered = ops::Sub(x, mean);
  Tensor var = ops::Mean(ops::Mul(centered, centered), -1, /*keepdim=*/true);
  Tensor inv_std = ops::Pow(ops::AddScalar(var, eps_), -0.5f);
  Tensor normalized = ops::Mul(centered, inv_std);
  return ops::Add(ops::Mul(normalized, gamma_), beta_);
}

}  // namespace nn
}  // namespace crossem
