// First-order optimizers: SGD (with momentum), Adam, and AdamW.
//
// The paper trains with AdamW; SGD and Adam are provided for the baselines
// and ablations. Parameters whose requires_grad flag is off (frozen
// modules) are skipped, which is how prompt tuning updates only the
// prompt-side parameters.
//
// Adam exposes its full state (step count + moment vectors) via
// ExportState/ImportState so a training run can be checkpointed and
// resumed bit-for-bit (see nn/serialize.h TrainState).
#ifndef CROSSEM_NN_OPTIMIZER_H_
#define CROSSEM_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace crossem {
namespace nn {

/// Base optimizer: owns the parameter list, learning rate and grad
/// clearing.
class Optimizer {
 public:
  Optimizer(std::vector<Tensor> params, float lr);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients accumulated on the parameters.
  virtual void Step() = 0;

  /// Zero-fills all parameter gradients.
  void ZeroGrad();

  /// The learning rate applied by subsequent Step calls. Mutable so the
  /// training loop's divergence guard can back off (halve) on rollback.
  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 protected:
  std::vector<Tensor> params_;
  float lr_;
};

/// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void Step() override;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba). `weight_decay` is classic L2 (added to the gradient).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  /// Complete resumable state: step count plus first/second moment
  /// vectors, one slot per parameter (empty until that parameter's first
  /// update — the slots are allocated lazily).
  struct State {
    int64_t step = 0;
    std::vector<std::vector<float>> m;
    std::vector<std::vector<float>> v;
  };

  /// Deep-copies the current state (for checkpointing / rollback).
  State ExportState() const;

  /// Restores a state captured by ExportState. Fails if the slot count
  /// or any populated slot's size disagrees with the parameter list.
  Status ImportState(const State& state);

 protected:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  bool decoupled_decay_ = false;  // AdamW when true
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// AdamW: Adam with decoupled weight decay (the paper's optimizer).
class AdamW : public Adam {
 public:
  AdamW(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
        float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.01f);
};

/// Rescales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm (NaN/Inf when any gradient is
/// non-finite — callers use this as a divergence signal and must then
/// skip the update).
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

}  // namespace nn
}  // namespace crossem

#endif  // CROSSEM_NN_OPTIMIZER_H_
