// Core layers: Linear, Embedding, LayerNorm.
#ifndef CROSSEM_NN_LAYERS_H_
#define CROSSEM_NN_LAYERS_H_

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace crossem {
namespace nn {

/// Affine map y = x W + b with W of shape [in, out].
class Linear : public Module {
 public:
  /// Xavier-uniform weight init; zero bias. `bias` may be disabled.
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);

  /// x: [..., in] -> act([..., out]). When `act` is not kNone the
  /// activation is applied after the bias add — through the fused
  /// BiasActivation kernel when fused kernels are enabled, otherwise as
  /// the composed Add + activation graph (bitwise-identical either way).
  Tensor Forward(const Tensor& x, ops::BiasAct act = ops::BiasAct::kNone) const;

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;
  Tensor bias_;  // undefined when bias is disabled
};

/// Lookup table [num_embeddings, dim]; rows gathered by integer id.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng* rng,
            float init_stddev = 0.02f);

  /// indices -> [len(indices), dim].
  Tensor Forward(const std::vector<int64_t>& indices) const;

  /// Slot form for execution plans: the lookup re-reads the slot at every
  /// replay (ops::IndexSelectSlot).
  Tensor ForwardSlot(const plan::IndexSlot& indices) const;

  const Tensor& table() const { return table_; }
  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  Tensor table_;
};

/// Layer normalization over the last dimension, with learned gain/bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) const;

 private:
  int64_t dim_;
  float eps_;
  Tensor gamma_;
  Tensor beta_;
};

}  // namespace nn
}  // namespace crossem

#endif  // CROSSEM_NN_LAYERS_H_
