#include "nn/graph_agg.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace nn {

Tensor NeighborMeanMatrix(const AdjacencyList& neighbors) {
  const int64_t n = static_cast<int64_t>(neighbors.size());
  CROSSEM_CHECK_GT(n, 0);
  Tensor a = Tensor::Zeros({n, n});
  float* p = a.data();
  for (int64_t i = 0; i < n; ++i) {
    const auto& nbrs = neighbors[static_cast<size_t>(i)];
    if (nbrs.empty()) {
      p[i * n + i] = 1.0f;  // isolated vertex: average over itself
      continue;
    }
    const float w = 1.0f / static_cast<float>(nbrs.size());
    for (int64_t j : nbrs) {
      CROSSEM_CHECK_GE(j, 0);
      CROSSEM_CHECK_LT(j, n);
      p[i * n + j] += w;
    }
  }
  return a;
}

Tensor MeanAggregate(const Tensor& features, const Tensor& neighbor_mean,
                     float alpha) {
  CROSSEM_CHECK_GE(alpha, 0.0f);
  CROSSEM_CHECK_LE(alpha, 1.0f);
  Tensor agg = ops::MatMul(neighbor_mean, features);
  return ops::Add(ops::MulScalar(features, alpha),
                  ops::MulScalar(agg, 1.0f - alpha));
}

GraphSageLayer::GraphSageLayer(int64_t in_dim, int64_t out_dim, Rng* rng)
    : proj_(2 * in_dim, out_dim, rng) {
  RegisterModule("proj", &proj_);
}

Tensor GraphSageLayer::Forward(const Tensor& features,
                               const Tensor& neighbor_mean) const {
  Tensor agg = ops::MatMul(neighbor_mean, features);
  Tensor cat = ops::Concat({features, agg}, /*dim=*/1);
  return ops::Relu(proj_.Forward(cat));
}

}  // namespace nn
}  // namespace crossem
