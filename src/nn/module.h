// Base class for neural-network modules (PyTorch-style parameter registry).
#ifndef CROSSEM_NN_MODULE_H_
#define CROSSEM_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/plan.h"
#include "tensor/tensor.h"

namespace crossem {
namespace nn {

/// A composable unit owning parameters and child modules.
///
/// Parameters registered via RegisterParameter are returned (recursively)
/// by Parameters(), which is what optimizers consume. Freezing a module
/// (e.g. the CLIP image encoder during prompt tuning) is done with
/// SetRequiresGrad(false).
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children.
  std::vector<Tensor> Parameters() const;

  /// Parameters with dotted path names ("encoder.layer0.wq.weight").
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total parameter element count.
  int64_t NumParameters() const;

  /// Toggles requires_grad on every parameter (freeze / unfreeze).
  void SetRequiresGrad(bool value);

  /// Zero-fills accumulated gradients on every parameter.
  void ZeroGrad();

  /// Deep-copies all parameter values (for checkpoint/restore across
  /// experiment arms sharing one pre-trained model).
  std::vector<Tensor> SnapshotParameters() const;

  /// Writes back values captured by SnapshotParameters. The module's
  /// architecture must be unchanged.
  void RestoreParameters(const std::vector<Tensor>& snapshot);

  /// Training mode toggles stochastic layers (dropout). Propagates to
  /// children.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Pins this module's parameter storages into `plan` so replaying a
  /// schedule traced through this module is rejected as stale if the
  /// parameters are ever reallocated (plan::ExecutionPlan::Validate).
  void BindToPlan(plan::ExecutionPlan* plan) const;

 protected:
  Module() = default;

  /// Registers and returns a parameter tensor (requires_grad is forced on).
  Tensor RegisterParameter(std::string name, Tensor tensor);

  /// Registers a child (non-owning; children are members of the subclass).
  void RegisterModule(std::string name, Module* child);

 private:
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace crossem

#endif  // CROSSEM_NN_MODULE_H_
