#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace crossem {
namespace nn {

namespace {

constexpr char kMagicV1[8] = {'C', 'E', 'M', 'C', 'K', 'P', 'T', '1'};
constexpr char kMagicV2[8] = {'C', 'E', 'M', 'C', 'K', 'P', 'T', '2'};
constexpr char kMagicEnd[8] = {'C', 'E', 'M', '2', 'E', 'N', 'D', '\n'};

constexpr uint32_t kKindTensor = kRecordTensor;
constexpr uint32_t kKindBytes = kRecordBytes;
constexpr uint32_t kKindPacked = kRecordPacked;

// Parse limits: no legitimate checkpoint comes close, and they keep a
// corrupt length field from driving a huge allocation.
constexpr int64_t kMaxNameLen = 4096;
constexpr int64_t kMaxRank = 16;
constexpr int64_t kMaxElemSize = 64;

/// RAII FILE handle.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

using Record = CheckpointRecord;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Accumulates fwrite failures so call sites stay linear.
class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}

  void Raw(const void* p, size_t n) {
    if (ok_ && n > 0) ok_ = io::Fwrite(p, 1, n, f_) == n;
  }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

/// Serializes `records` in v2 layout to an open stream.
bool WriteRecordsTo(std::FILE* f, const std::vector<Record>& records) {
  Writer w(f);
  w.Raw(kMagicV2, sizeof(kMagicV2));
  w.I64(static_cast<int64_t>(records.size()));
  uint32_t file_crc = 0;
  for (const Record& r : records) {
    w.I64(static_cast<int64_t>(r.name.size()));
    w.Raw(r.name.data(), r.name.size());
    w.U32(r.kind);
    if (r.kind == kKindTensor) {
      w.I64(static_cast<int64_t>(r.shape.size()));
      for (int64_t d : r.shape) w.I64(d);
      w.Raw(r.f32.data(), r.f32.size() * sizeof(float));
    } else if (r.kind == kKindPacked) {
      w.I64(static_cast<int64_t>(r.shape.size()));
      for (int64_t d : r.shape) w.I64(d);
      w.I64(r.elem_size);
      w.Raw(r.bytes.data(), r.bytes.size());
    } else {
      w.I64(static_cast<int64_t>(r.bytes.size()));
      w.Raw(r.bytes.data(), r.bytes.size());
    }
    const uint32_t crc = r.Crc();
    w.U32(crc);
    file_crc = Crc32Update(file_crc, &crc, sizeof(crc));
  }
  w.U32(file_crc);
  w.Raw(kMagicEnd, sizeof(kMagicEnd));
  return w.ok();
}

/// Atomic save: write to "<path>.tmp", fsync, rename over `path`. On any
/// failure the tmp file is removed and `path` is left untouched.
Status WriteRecordsAtomic(const std::vector<Record>& records,
                          const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    FilePtr f(io::Fopen(tmp, "wb"));
    if (!f) {
      return Status::IOError("cannot open '" + tmp + "' for writing");
    }
    Status st = Status::OK();
    if (!WriteRecordsTo(f.get(), records)) {
      st = Status::IOError("write failed: '" + tmp + "'");
    } else if (io::Fflush(f.get()) != 0) {
      st = Status::IOError("flush failed: '" + tmp + "'");
    } else if (io::Fsync(f.get()) != 0) {
      st = Status::IOError("fsync failed: '" + tmp + "'");
    }
    if (!st.ok()) {
      f.reset();
      io::Remove(tmp);
      return st;
    }
  }
  if (io::Rename(tmp, path) != 0) {
    io::Remove(tmp);
    return Status::IOError("rename failed: '" + tmp + "' -> '" + path + "'");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Slurps the file; loads then parse and validate fully in memory, so a
/// failed load can never leave partial state anywhere.
Result<std::string> ReadWholeFile(const std::string& path) {
  FilePtr f(io::Fopen(path, "rb"));
  if (!f) return Status::IOError("cannot open '" + path + "' for reading");
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const size_t n = io::Fread(buf, 1, sizeof(buf), f.get());
    data.append(buf, n);
    if (n < sizeof(buf)) {
      // A short count from a real fread means EOF or a stream error; an
      // injected fault sets neither flag. Both non-EOF cases are I/O
      // failures.
      if (!std::feof(f.get())) {
        return Status::IOError("read failed: '" + path + "'");
      }
      break;
    }
  }
  return data;
}

/// Bounds-checked sequential reader over an in-memory file image.
class Cursor {
 public:
  Cursor(const std::string& data) : p_(data.data()), left_(data.size()) {}

  bool Raw(void* out, size_t n) {
    if (n > left_) return false;
    std::memcpy(out, p_, n);
    p_ += n;
    left_ -= n;
    return true;
  }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  size_t remaining() const { return left_; }

 private:
  const char* p_;
  size_t left_;
};

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::ParseError("corrupt checkpoint '" + path + "': " + what);
}

/// Parses the v1 layout (no checksums; every record is a tensor).
Status ParseV1(Cursor* c, const std::string& path,
               std::vector<Record>* out) {
  int64_t count = 0;
  if (!c->I64(&count) || count < 0) return Corrupt(path, "bad header");
  for (int64_t i = 0; i < count; ++i) {
    int64_t name_len = 0;
    if (!c->I64(&name_len) || name_len < 0 || name_len > kMaxNameLen) {
      return Corrupt(path, "bad parameter name");
    }
    std::string name(static_cast<size_t>(name_len), '\0');
    if (!c->Raw(name.data(), name.size())) {
      return Corrupt(path, "truncated");
    }
    int64_t rank = 0;
    if (!c->I64(&rank) || rank < 0 || rank > kMaxRank) {
      return Corrupt(path, "bad parameter rank");
    }
    Shape shape(static_cast<size_t>(rank));
    for (auto& d : shape) {
      if (!c->I64(&d) || d < 0) return Corrupt(path, "bad parameter shape");
    }
    std::vector<float> data(static_cast<size_t>(ShapeNumel(shape)));
    if (!c->Raw(data.data(), data.size() * sizeof(float))) {
      return Corrupt(path, "truncated");
    }
    out->push_back(
        Record::TensorRecord(std::move(name), std::move(shape),
                             std::move(data)));
  }
  return Status::OK();
}

/// Parses and checksum-verifies the v2 layout.
Status ParseV2(Cursor* c, const std::string& path,
               std::vector<Record>* out) {
  int64_t count = 0;
  if (!c->I64(&count) || count < 0) return Corrupt(path, "bad header");
  uint32_t file_crc = 0;
  for (int64_t i = 0; i < count; ++i) {
    Record r;
    int64_t name_len = 0;
    if (!c->I64(&name_len) || name_len < 0 || name_len > kMaxNameLen) {
      return Corrupt(path, "bad record name");
    }
    r.name.resize(static_cast<size_t>(name_len));
    if (!c->Raw(r.name.data(), r.name.size())) {
      return Corrupt(path, "truncated");
    }
    if (!c->U32(&r.kind) ||
        (r.kind != kKindTensor && r.kind != kKindBytes &&
         r.kind != kKindPacked)) {
      return Corrupt(path, "bad record kind");
    }
    if (r.kind == kKindTensor || r.kind == kKindPacked) {
      int64_t rank = 0;
      if (!c->I64(&rank) || rank < 0 || rank > kMaxRank) {
        return Corrupt(path, "bad record rank");
      }
      r.shape.resize(static_cast<size_t>(rank));
      for (auto& d : r.shape) {
        if (!c->I64(&d) || d < 0) return Corrupt(path, "bad record shape");
      }
      const int64_t numel = ShapeNumel(r.shape);
      if (r.kind == kKindPacked) {
        if (!c->I64(&r.elem_size) || r.elem_size <= 0 ||
            r.elem_size > kMaxElemSize) {
          return Corrupt(path, "bad record element size");
        }
      }
      const int64_t elem =
          r.kind == kKindPacked ? r.elem_size
                                : static_cast<int64_t>(sizeof(float));
      if (static_cast<size_t>(numel) * static_cast<size_t>(elem) >
          c->remaining()) {
        return Corrupt(path, "truncated");
      }
      if (r.kind == kKindPacked) {
        r.bytes.resize(static_cast<size_t>(numel * elem));
        if (!c->Raw(r.bytes.data(), r.bytes.size())) {
          return Corrupt(path, "truncated");
        }
      } else {
        r.f32.resize(static_cast<size_t>(numel));
        if (!c->Raw(r.f32.data(), r.f32.size() * sizeof(float))) {
          return Corrupt(path, "truncated");
        }
      }
    } else {
      int64_t byte_count = 0;
      if (!c->I64(&byte_count) || byte_count < 0 ||
          static_cast<size_t>(byte_count) > c->remaining()) {
        return Corrupt(path, "bad record size");
      }
      r.bytes.resize(static_cast<size_t>(byte_count));
      if (!c->Raw(r.bytes.data(), r.bytes.size())) {
        return Corrupt(path, "truncated");
      }
    }
    uint32_t stored_crc = 0;
    if (!c->U32(&stored_crc)) return Corrupt(path, "truncated");
    if (stored_crc != r.Crc()) {
      return Corrupt(path, "record '" + r.name + "' fails its checksum");
    }
    file_crc = Crc32Update(file_crc, &stored_crc, sizeof(stored_crc));
    out->push_back(std::move(r));
  }
  uint32_t stored_file_crc = 0;
  char end[8];
  if (!c->U32(&stored_file_crc) || !c->Raw(end, sizeof(end))) {
    return Corrupt(path, "missing trailer");
  }
  if (std::memcmp(end, kMagicEnd, sizeof(end)) != 0) {
    return Corrupt(path, "bad trailer magic");
  }
  if (stored_file_crc != file_crc) {
    return Corrupt(path, "trailer fails the whole-file checksum");
  }
  if (c->remaining() != 0) {
    return Corrupt(path, "trailing garbage after trailer");
  }
  return Status::OK();
}

/// Reads a checkpoint of either version into validated records.
Status ReadRecords(const std::string& path, std::vector<Record>* out,
                   int* version) {
  std::string data;
  CROSSEM_ASSIGN_OR_RETURN(data, ReadWholeFile(path));
  Cursor c(data);
  char magic[8];
  if (!c.Raw(magic, sizeof(magic))) {
    return Status::ParseError("'" + path + "' is not a CrossEM checkpoint");
  }
  if (std::memcmp(magic, kMagicV2, sizeof(magic)) == 0) {
    *version = 2;
    return ParseV2(&c, path, out);
  }
  if (std::memcmp(magic, kMagicV1, sizeof(magic)) == 0) {
    *version = 1;
    return ParseV1(&c, path, out);
  }
  return Status::ParseError("'" + path + "' is not a CrossEM checkpoint");
}

/// Looks up the tensor record for a parameter: exact name first, then
/// with the "model." prefix a training checkpoint adds.
const Record* FindTensorRecord(
    const std::map<std::string, const Record*>& by_name,
    const std::string& name) {
  auto it = by_name.find(name);
  if (it == by_name.end()) it = by_name.find("model." + name);
  if (it == by_name.end() || it->second->kind != kKindTensor) {
    return nullptr;
  }
  return it->second;
}

/// Validates that every parameter has a matching tensor record; only
/// after every check passes are values copied into the tensors.
Status RestoreParams(
    const std::vector<std::pair<std::string, Tensor>>& params,
    const std::vector<Record>& records, const std::string& path,
    bool allow_model_prefix) {
  std::map<std::string, const Record*> by_name;
  for (const Record& r : records) by_name.emplace(r.name, &r);
  std::vector<const Record*> matched;
  matched.reserve(params.size());
  for (const auto& [name, tensor] : params) {
    const Record* r = allow_model_prefix
                          ? FindTensorRecord(by_name, name)
                          : [&]() -> const Record* {
                              auto it = by_name.find(name);
                              return it != by_name.end() &&
                                             it->second->kind == kKindTensor
                                         ? it->second
                                         : nullptr;
                            }();
    if (r == nullptr) {
      return Status::NotFound("checkpoint '" + path +
                              "' missing parameter '" + name + "'");
    }
    if (r->shape != tensor.shape()) {
      return Status::InvalidArgument(
          "shape mismatch for '" + name + "': checkpoint " +
          ShapeToString(r->shape) + " vs module " +
          ShapeToString(tensor.shape()));
    }
    matched.push_back(r);
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor tensor = params[i].second;
    std::copy(matched[i]->f32.begin(), matched[i]->f32.end(), tensor.data());
  }
  return Status::OK();
}

// -- TrainState record names ------------------------------------------------

constexpr char kStateNextEpoch[] = "state/next_epoch";
constexpr char kStateLearningRate[] = "state/learning_rate";
constexpr char kStateAdamStep[] = "state/adam/step";
constexpr char kStateAdamSlots[] = "state/adam/slots";
constexpr char kStateRng[] = "state/rng";
constexpr char kStateProximity[] = "state/proximity";

std::string EncodeI64(int64_t v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::string EncodeF32(float v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
}

Status DecodeI64(const Record& r, int64_t* v) {
  if (r.kind != kKindBytes || r.bytes.size() != sizeof(*v)) {
    return Status::ParseError("record '" + r.name + "' is not an i64");
  }
  std::memcpy(v, r.bytes.data(), sizeof(*v));
  return Status::OK();
}
Status DecodeF32(const Record& r, float* v) {
  if (r.kind != kKindBytes || r.bytes.size() != sizeof(*v)) {
    return Status::ParseError("record '" + r.name + "' is not an f32");
  }
  std::memcpy(v, r.bytes.data(), sizeof(*v));
  return Status::OK();
}

}  // namespace

CheckpointRecord CheckpointRecord::TensorRecord(std::string name, Shape shape,
                                                std::vector<float> data) {
  CheckpointRecord r;
  r.name = std::move(name);
  r.kind = kRecordTensor;
  r.shape = std::move(shape);
  r.f32 = std::move(data);
  return r;
}

CheckpointRecord CheckpointRecord::BytesRecord(std::string name,
                                               std::string data) {
  CheckpointRecord r;
  r.name = std::move(name);
  r.kind = kRecordBytes;
  r.bytes = std::move(data);
  return r;
}

CheckpointRecord CheckpointRecord::PackedRecord(std::string name, Shape shape,
                                                int64_t elem_size,
                                                std::string data) {
  CROSSEM_CHECK_EQ(static_cast<int64_t>(data.size()),
                   ShapeNumel(shape) * elem_size);
  CheckpointRecord r;
  r.name = std::move(name);
  r.kind = kRecordPacked;
  r.shape = std::move(shape);
  r.elem_size = elem_size;
  r.bytes = std::move(data);
  return r;
}

uint32_t CheckpointRecord::Crc() const {
  uint32_t crc = Crc32Update(0, name.data(), name.size());
  crc = Crc32Update(crc, &kind, sizeof(kind));
  if (kind == kRecordTensor) {
    const int64_t rank = static_cast<int64_t>(shape.size());
    crc = Crc32Update(crc, &rank, sizeof(rank));
    for (int64_t d : shape) crc = Crc32Update(crc, &d, sizeof(d));
    crc = Crc32Update(crc, f32.data(), f32.size() * sizeof(float));
  } else if (kind == kRecordPacked) {
    const int64_t rank = static_cast<int64_t>(shape.size());
    crc = Crc32Update(crc, &rank, sizeof(rank));
    for (int64_t d : shape) crc = Crc32Update(crc, &d, sizeof(d));
    crc = Crc32Update(crc, &elem_size, sizeof(elem_size));
    crc = Crc32Update(crc, bytes.data(), bytes.size());
  } else {
    const int64_t count = static_cast<int64_t>(bytes.size());
    crc = Crc32Update(crc, &count, sizeof(count));
    crc = Crc32Update(crc, bytes.data(), bytes.size());
  }
  return crc;
}

Status SaveRecordFile(const std::vector<CheckpointRecord>& records,
                      const std::string& path) {
  return WriteRecordsAtomic(records, path);
}

Status LoadRecordFile(const std::string& path,
                      std::vector<CheckpointRecord>* records) {
  if (records == nullptr) return Status::InvalidArgument("records is null");
  int version = 0;
  return ReadRecords(path, records, &version);
}

uint32_t ModuleFingerprint(const Module& module) {
  uint32_t crc = 0;
  for (const auto& [name, tensor] : module.NamedParameters()) {
    crc = Crc32Update(crc, name.data(), name.size());
    const int64_t rank = static_cast<int64_t>(tensor.shape().size());
    crc = Crc32Update(crc, &rank, sizeof(rank));
    for (int64_t d : tensor.shape()) crc = Crc32Update(crc, &d, sizeof(d));
    crc = Crc32Update(crc, tensor.data(),
                      static_cast<size_t>(tensor.numel()) * sizeof(float));
  }
  return crc;
}

Status SaveCheckpoint(const Module& module, const std::string& path) {
  std::vector<Record> records;
  // Mutable binding so ToVector() takes its move-out path: snapshot
  // tensors are stolen outright, live parameter handles (aliased with the
  // module) fall back to a copy.
  for (auto&& [name, tensor] : module.NamedParameters()) {
    Shape shape = tensor.shape();
    records.push_back(Record::TensorRecord(name, std::move(shape),
                                           std::move(tensor).ToVector()));
  }
  return WriteRecordsAtomic(records, path);
}

Status LoadCheckpoint(Module* module, const std::string& path) {
  if (module == nullptr) return Status::InvalidArgument("module is null");
  std::vector<Record> records;
  int version = 0;
  CROSSEM_RETURN_NOT_OK(ReadRecords(path, &records, &version));
  return RestoreParams(module->NamedParameters(), records, path,
                       /*allow_model_prefix=*/true);
}

Status SaveTrainState(
    const std::vector<std::pair<std::string, Tensor>>& params,
    const TrainState& state, const std::string& path) {
  std::vector<Record> records;
  for (const auto& [name, tensor] : params) {
    records.push_back(
        Record::TensorRecord(name, tensor.shape(), tensor.ToVector()));
  }
  records.push_back(
      Record::BytesRecord(kStateNextEpoch, EncodeI64(state.next_epoch)));
  records.push_back(Record::BytesRecord(kStateLearningRate,
                                        EncodeF32(state.learning_rate)));
  records.push_back(
      Record::BytesRecord(kStateAdamStep, EncodeI64(state.optimizer.step)));
  CROSSEM_CHECK_EQ(state.optimizer.m.size(), state.optimizer.v.size());
  records.push_back(Record::BytesRecord(
      kStateAdamSlots,
      EncodeI64(static_cast<int64_t>(state.optimizer.m.size()))));
  for (size_t i = 0; i < state.optimizer.m.size(); ++i) {
    records.push_back(Record::TensorRecord(
        "state/adam/m/" + std::to_string(i),
        {static_cast<int64_t>(state.optimizer.m[i].size())},
        state.optimizer.m[i]));
    records.push_back(Record::TensorRecord(
        "state/adam/v/" + std::to_string(i),
        {static_cast<int64_t>(state.optimizer.v[i].size())},
        state.optimizer.v[i]));
  }
  records.push_back(Record::BytesRecord(kStateRng, state.rng_state));
  if (state.proximity.defined()) {
    records.push_back(Record::TensorRecord(kStateProximity,
                                           state.proximity.shape(),
                                           state.proximity.ToVector()));
  }
  return WriteRecordsAtomic(records, path);
}

Status LoadTrainState(
    const std::vector<std::pair<std::string, Tensor>>& params,
    TrainState* state, const std::string& path) {
  if (state == nullptr) return Status::InvalidArgument("state is null");
  std::vector<Record> records;
  int version = 0;
  CROSSEM_RETURN_NOT_OK(ReadRecords(path, &records, &version));
  if (version < 2) {
    return Status::ParseError("'" + path +
                              "' is a v1 checkpoint without training state");
  }
  std::map<std::string, const Record*> by_name;
  for (const Record& r : records) by_name.emplace(r.name, &r);
  auto find = [&](const std::string& name) -> const Record* {
    auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : it->second;
  };
  auto require = [&](const std::string& name) -> Result<const Record*> {
    const Record* r = find(name);
    if (r == nullptr) {
      return Status::ParseError("'" + path + "' lacks training-state record '" +
                                name + "'");
    }
    return r;
  };

  // Decode every piece of state into locals first — the caller's tensors
  // and `state` are only touched once the whole file has validated.
  TrainState loaded;
  {
    const Record* r;
    CROSSEM_ASSIGN_OR_RETURN(r, require(kStateNextEpoch));
    CROSSEM_RETURN_NOT_OK(DecodeI64(*r, &loaded.next_epoch));
    CROSSEM_ASSIGN_OR_RETURN(r, require(kStateLearningRate));
    CROSSEM_RETURN_NOT_OK(DecodeF32(*r, &loaded.learning_rate));
    CROSSEM_ASSIGN_OR_RETURN(r, require(kStateAdamStep));
    CROSSEM_RETURN_NOT_OK(DecodeI64(*r, &loaded.optimizer.step));
    int64_t slots = 0;
    CROSSEM_ASSIGN_OR_RETURN(r, require(kStateAdamSlots));
    CROSSEM_RETURN_NOT_OK(DecodeI64(*r, &slots));
    if (slots < 0 || slots > static_cast<int64_t>(records.size())) {
      return Status::ParseError("'" + path + "' has a bad adam slot count");
    }
    for (int64_t i = 0; i < slots; ++i) {
      for (const char* kind : {"m", "v"}) {
        CROSSEM_ASSIGN_OR_RETURN(
            r, require("state/adam/" + std::string(kind) + "/" +
                       std::to_string(i)));
        if (r->kind != kKindTensor || r->shape.size() != 1) {
          return Status::ParseError("'" + path + "' has a bad adam moment");
        }
        auto& dst = kind[0] == 'm' ? loaded.optimizer.m : loaded.optimizer.v;
        dst.push_back(r->f32);
      }
    }
    CROSSEM_ASSIGN_OR_RETURN(r, require(kStateRng));
    if (r->kind != kKindBytes) {
      return Status::ParseError("'" + path + "' has a bad RNG record");
    }
    loaded.rng_state = r->bytes;
    if (const Record* prox = find(kStateProximity)) {
      if (prox->kind != kKindTensor) {
        return Status::ParseError("'" + path + "' has a bad proximity record");
      }
      loaded.proximity = Tensor::FromVector(prox->shape, prox->f32);
    }
  }
  CROSSEM_RETURN_NOT_OK(RestoreParams(params, records, path,
                                      /*allow_model_prefix=*/false));
  *state = std::move(loaded);
  return Status::OK();
}

}  // namespace nn
}  // namespace crossem
