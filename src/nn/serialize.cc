#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "util/logging.h"

namespace crossem {
namespace nn {

namespace {

constexpr char kMagic[8] = {'C', 'E', 'M', 'C', 'K', 'P', 'T', '1'};

/// RAII FILE handle.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteI64(std::FILE* f, int64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadI64(std::FILE* f, int64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");
  auto params = module.NamedParameters();
  if (std::fwrite(kMagic, sizeof(kMagic), 1, f.get()) != 1 ||
      !WriteI64(f.get(), static_cast<int64_t>(params.size()))) {
    return Status::IOError("write failed: " + path);
  }
  for (const auto& [name, tensor] : params) {
    if (!WriteI64(f.get(), static_cast<int64_t>(name.size())) ||
        std::fwrite(name.data(), 1, name.size(), f.get()) != name.size() ||
        !WriteI64(f.get(), tensor.dim())) {
      return Status::IOError("write failed: " + path);
    }
    for (int64_t d = 0; d < tensor.dim(); ++d) {
      if (!WriteI64(f.get(), tensor.size(d))) {
        return Status::IOError("write failed: " + path);
      }
    }
    const size_t n = static_cast<size_t>(tensor.numel());
    if (std::fwrite(tensor.data(), sizeof(float), n, f.get()) != n) {
      return Status::IOError("write failed: " + path);
    }
  }
  return Status::OK();
}

Status LoadCheckpoint(Module* module, const std::string& path) {
  if (module == nullptr) return Status::InvalidArgument("module is null");
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open '" + path + "' for reading");

  char magic[8];
  if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("'" + path + "' is not a CrossEM checkpoint");
  }
  int64_t count = 0;
  if (!ReadI64(f.get(), &count) || count < 0) {
    return Status::ParseError("corrupt checkpoint header");
  }

  // Read everything first so the module is never partially mutated.
  std::map<std::string, std::pair<Shape, std::vector<float>>> loaded;
  for (int64_t i = 0; i < count; ++i) {
    int64_t name_len = 0;
    if (!ReadI64(f.get(), &name_len) || name_len < 0 || name_len > 4096) {
      return Status::ParseError("corrupt parameter name");
    }
    std::string name(static_cast<size_t>(name_len), '\0');
    if (name_len > 0 &&
        std::fread(name.data(), 1, name.size(), f.get()) != name.size()) {
      return Status::ParseError("truncated checkpoint");
    }
    int64_t rank = 0;
    if (!ReadI64(f.get(), &rank) || rank < 0 || rank > 16) {
      return Status::ParseError("corrupt parameter rank");
    }
    Shape shape(static_cast<size_t>(rank));
    for (auto& d : shape) {
      if (!ReadI64(f.get(), &d) || d < 0) {
        return Status::ParseError("corrupt parameter shape");
      }
    }
    std::vector<float> data(static_cast<size_t>(ShapeNumel(shape)));
    if (!data.empty() &&
        std::fread(data.data(), sizeof(float), data.size(), f.get()) !=
            data.size()) {
      return Status::ParseError("truncated checkpoint");
    }
    loaded.emplace(std::move(name), std::make_pair(std::move(shape),
                                                   std::move(data)));
  }

  auto params = module->NamedParameters();
  if (params.size() != loaded.size()) {
    return Status::InvalidArgument(
        "checkpoint holds " + std::to_string(loaded.size()) +
        " parameters, module expects " + std::to_string(params.size()));
  }
  for (auto& [name, tensor] : params) {
    auto it = loaded.find(name);
    if (it == loaded.end()) {
      return Status::NotFound("checkpoint missing parameter '" + name + "'");
    }
    if (it->second.first != tensor.shape()) {
      return Status::InvalidArgument(
          "shape mismatch for '" + name + "': checkpoint " +
          ShapeToString(it->second.first) + " vs module " +
          ShapeToString(tensor.shape()));
    }
  }
  for (auto& [name, tensor] : params) {
    const auto& data = loaded.at(name).second;
    std::copy(data.begin(), data.end(), tensor.data());
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace crossem
