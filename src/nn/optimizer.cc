#include "nn/optimizer.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace crossem {
namespace nn {

namespace {
/// A parameter participates in the update if it is trainable and has
/// received a gradient this step.
bool Updatable(const Tensor& p) {
  return p.requires_grad() && p.grad().defined();
}

/// Shared-registry optimizer instruments, resolved once; the per-step
/// cost is one atomic increment + one atomic store.
struct StepMetrics {
  obs::Counter* steps =
      obs::MetricsRegistry::Default().GetCounter("crossem_optimizer_steps_total");
  obs::Counter* updated_params = obs::MetricsRegistry::Default().GetCounter(
      "crossem_optimizer_updated_parameters_total");
  obs::Gauge* lr = obs::MetricsRegistry::Default().GetGauge(
      "crossem_optimizer_learning_rate");
};

StepMetrics& Metrics() {
  static StepMetrics metrics;
  return metrics;
}
}  // namespace

Optimizer::Optimizer(std::vector<Tensor> params, float lr)
    : params_(std::move(params)), lr_(lr) {}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  velocity_.resize(params_.size());
}

void Sgd::Step() {
  CROSSEM_TRACE_SPAN("optimizer_step");
  StepMetrics& metrics = Metrics();
  metrics.steps->Increment();
  metrics.lr->Set(static_cast<double>(lr_));
  int64_t updated = 0;
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!Updatable(p)) continue;
    ++updated;
    const float* g = p.grad().data();
    float* w = p.data();
    const int64_t n = p.numel();
    if (momentum_ > 0.0f) {
      auto& vel = velocity_[i];
      if (vel.empty()) vel.assign(static_cast<size_t>(n), 0.0f);
      for (int64_t j = 0; j < n; ++j) {
        vel[static_cast<size_t>(j)] =
            momentum_ * vel[static_cast<size_t>(j)] + g[j];
        w[j] -= lr_ * vel[static_cast<size_t>(j)];
      }
    } else {
      for (int64_t j = 0; j < n; ++j) w[j] -= lr_ * g[j];
    }
  }
  metrics.updated_params->Add(updated);
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

Adam::State Adam::ExportState() const {
  State state;
  state.step = t_;
  state.m = m_;
  state.v = v_;
  return state;
}

Status Adam::ImportState(const State& state) {
  if (state.step < 0) {
    return Status::InvalidArgument("optimizer step count is negative");
  }
  if (state.m.size() != params_.size() || state.v.size() != params_.size()) {
    return Status::InvalidArgument(
        "optimizer state holds " + std::to_string(state.m.size()) +
        " moment slots, expected " + std::to_string(params_.size()));
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    const size_t numel = static_cast<size_t>(params_[i].numel());
    if ((!state.m[i].empty() && state.m[i].size() != numel) ||
        (!state.v[i].empty() && state.v[i].size() != numel)) {
      return Status::InvalidArgument(
          "optimizer moment size mismatch at slot " + std::to_string(i));
    }
  }
  t_ = state.step;
  m_ = state.m;
  v_ = state.v;
  return Status::OK();
}

void Adam::Step() {
  CROSSEM_TRACE_SPAN("optimizer_step");
  StepMetrics& metrics = Metrics();
  metrics.steps->Increment();
  metrics.lr->Set(static_cast<double>(lr_));
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  int64_t updated = 0;
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!Updatable(p)) continue;
    ++updated;
    const float* g = p.grad().data();
    float* w = p.data();
    const int64_t n = p.numel();
    auto& m = m_[i];
    auto& v = v_[i];
    if (m.empty()) {
      m.assign(static_cast<size_t>(n), 0.0f);
      v.assign(static_cast<size_t>(n), 0.0f);
    }
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j];
      if (!decoupled_decay_ && weight_decay_ > 0.0f) {
        grad += weight_decay_ * w[j];
      }
      const size_t js = static_cast<size_t>(j);
      m[js] = beta1_ * m[js] + (1.0f - beta1_) * grad;
      v[js] = beta2_ * v[js] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[js] / bc1;
      const float vhat = v[js] / bc2;
      float update = lr_ * mhat / (std::sqrt(vhat) + eps_);
      if (decoupled_decay_ && weight_decay_ > 0.0f) {
        update += lr_ * weight_decay_ * w[j];
      }
      w[j] -= update;
    }
  }
  metrics.updated_params->Add(updated);
}

AdamW::AdamW(std::vector<Tensor> params, float lr, float beta1, float beta2,
             float eps, float weight_decay)
    : Adam(std::move(params), lr, beta1, beta2, eps, weight_decay) {
  decoupled_decay_ = true;
}

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  CROSSEM_CHECK_GT(max_norm, 0.0f);
  double total = 0.0;
  for (const Tensor& p : params) {
    if (!Updatable(p)) continue;
    const float* g = p.grad().data();
    for (int64_t j = 0; j < p.numel(); ++j) {
      total += static_cast<double>(g[j]) * g[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (const Tensor& p : params) {
      if (!Updatable(p)) continue;
      float* g = p.grad().data();
      for (int64_t j = 0; j < p.numel(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

}  // namespace nn
}  // namespace crossem
