// Graph feature aggregation used by the soft-prompt generator (Eq. 6) and
// the GPPT baseline: mean-neighbor aggregation ("GNN" in the paper) and a
// GraphSAGE-style learned aggregation layer.
#ifndef CROSSEM_NN_GRAPH_AGG_H_
#define CROSSEM_NN_GRAPH_AGG_H_

#include <cstdint>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace crossem {
namespace nn {

/// Adjacency lists: neighbors[i] holds the neighbor ids of vertex i.
using AdjacencyList = std::vector<std::vector<int64_t>>;

/// Dense row-normalized neighbor-average operator A (N x N), so that
/// MatMul(A, H) yields per-vertex neighbor means. Vertices with no
/// neighbors average over themselves. Not differentiable w.r.t. structure
/// (A is a constant), fully differentiable w.r.t. features.
Tensor NeighborMeanMatrix(const AdjacencyList& neighbors);

/// Simple GNN aggregation (the paper's Eq. 6 backbone for CUB/SUN):
///   out = alpha * H + (1 - alpha) * A H.
Tensor MeanAggregate(const Tensor& features, const Tensor& neighbor_mean,
                     float alpha);

/// One GraphSAGE layer (the paper's backbone for FB15K):
///   out = ReLU(W [h_v ; mean_{u in N(v)} h_u]).
class GraphSageLayer : public Module {
 public:
  GraphSageLayer(int64_t in_dim, int64_t out_dim, Rng* rng);

  /// features: [N, in], neighbor_mean: precomputed NeighborMeanMatrix.
  Tensor Forward(const Tensor& features, const Tensor& neighbor_mean) const;

 private:
  Linear proj_;
};

}  // namespace nn
}  // namespace crossem

#endif  // CROSSEM_NN_GRAPH_AGG_H_
