#include "nn/attention.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace nn {

MultiHeadAttention::MultiHeadAttention(int64_t model_dim, int64_t num_heads,
                                       Rng* rng)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads),
      wq_(model_dim, model_dim, rng),
      wk_(model_dim, model_dim, rng),
      wv_(model_dim, model_dim, rng),
      wo_(model_dim, model_dim, rng) {
  CROSSEM_CHECK_EQ(head_dim_ * num_heads_, model_dim_)
      << "model_dim must be divisible by num_heads";
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
}

Tensor MultiHeadAttention::Forward(const Tensor& query, const Tensor& context,
                                   const Tensor& key_padding_mask) const {
  CROSSEM_CHECK_EQ(query.dim(), 3);
  CROSSEM_CHECK_EQ(context.dim(), 3);
  const int64_t b = query.size(0);
  const int64_t tq = query.size(1);
  const int64_t tk = context.size(1);
  CROSSEM_CHECK_EQ(context.size(0), b);

  // Project and split heads: [B, T, D] -> [B, H, T, Dh].
  auto split_heads = [&](const Tensor& x, int64_t t) {
    Tensor r = ops::Reshape(x, {b, t, num_heads_, head_dim_});
    return ops::Transpose(r, 1, 2);
  };
  Tensor q = split_heads(wq_.Forward(query), tq);
  Tensor k = split_heads(wk_.Forward(context), tk);
  Tensor v = split_heads(wv_.Forward(context), tk);

  // Attention scores: [B, H, Tq, Tk].
  Tensor scores = ops::MatMul(q, ops::Transpose(k, -1, -2));
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  if (key_padding_mask.defined()) {
    CROSSEM_CHECK_EQ(key_padding_mask.dim(), 2);
    CROSSEM_CHECK_EQ(key_padding_mask.size(0), b);
    CROSSEM_CHECK_EQ(key_padding_mask.size(1), tk);
  }

  Tensor attn;
  if (ops::GetFusedKernels() == ops::FusedKernels::kFused) {
    attn = ops::ScaledMaskedSoftmax(scores, scale, key_padding_mask);
  } else {
    scores = ops::MulScalar(scores, scale);
    if (key_padding_mask.defined()) {
      // (mask - 1) * 1e9 gives 0 for valid keys, -1e9 for padded ones;
      // broadcast [B, 1, 1, Tk] over heads and query positions.
      Tensor bias = ops::MulScalar(
          ops::AddScalar(key_padding_mask.Detach(), -1.0f), 1e9f);
      bias = ops::Reshape(bias, {b, 1, 1, tk});
      scores = ops::Add(scores, bias);
    }
    attn = ops::Softmax(scores);
  }
  Tensor ctx = ops::MatMul(attn, v);  // [B, H, Tq, Dh]
  ctx = ops::Transpose(ctx, 1, 2);    // [B, Tq, H, Dh]
  ctx = ops::Reshape(ctx, {b, tq, model_dim_});
  return wo_.Forward(ctx);
}

TransformerBlock::TransformerBlock(int64_t model_dim, int64_t num_heads,
                                   int64_t mlp_dim, Rng* rng, float dropout)
    : attn_(model_dim, num_heads, rng),
      ln1_(model_dim),
      ln2_(model_dim),
      fc1_(model_dim, mlp_dim, rng),
      fc2_(mlp_dim, model_dim, rng),
      dropout_(dropout) {
  RegisterModule("attn", &attn_);
  RegisterModule("ln1", &ln1_);
  RegisterModule("ln2", &ln2_);
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
}

Tensor TransformerBlock::Forward(const Tensor& x,
                                 const Tensor& key_padding_mask,
                                 Rng* rng) const {
  Tensor n1 = ln1_.Forward(x);
  Tensor h = ops::Add(x, attn_.Forward(n1, n1, key_padding_mask));
  Tensor mlp =
      fc2_.Forward(fc1_.Forward(ln2_.Forward(h), ops::BiasAct::kGelu));
  mlp = ops::Dropout(mlp, dropout_, training() && rng != nullptr, rng);
  return ops::Add(h, mlp);
}

TransformerEncoder::TransformerEncoder(int64_t num_layers, int64_t model_dim,
                                       int64_t num_heads, int64_t mlp_dim,
                                       Rng* rng, float dropout)
    : final_ln_(model_dim) {
  CROSSEM_CHECK_GT(num_layers, 0);
  for (int64_t i = 0; i < num_layers; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        model_dim, num_heads, mlp_dim, rng, dropout));
    RegisterModule("layer" + std::to_string(i), blocks_.back().get());
  }
  RegisterModule("final_ln", &final_ln_);
}

Tensor TransformerEncoder::Forward(const Tensor& x,
                                   const Tensor& key_padding_mask,
                                   Rng* rng) const {
  Tensor h = x;
  for (const auto& block : blocks_) {
    h = block->Forward(h, key_padding_mask, rng);
  }
  return final_ln_.Forward(h);
}

}  // namespace nn
}  // namespace crossem
