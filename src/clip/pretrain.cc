#include "clip/pretrain.h"

#include <algorithm>

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace clip {

Result<PretrainStats> PretrainClip(ClipModel* model, const data::World& world,
                                   const std::vector<int64_t>& classes,
                                   const text::Tokenizer& tokenizer,
                                   const PretrainConfig& config) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  if (classes.empty()) {
    return Status::InvalidArgument("no pre-training classes given");
  }
  for (int64_t c : classes) {
    if (c < 0 || c >= world.num_classes()) {
      return Status::OutOfRange("pre-training class id out of range");
    }
  }

  Rng rng(config.seed);
  model->SetTraining(true);
  nn::AdamW optimizer(model->Parameters(), config.learning_rate);

  PretrainStats stats;
  const int64_t batch =
      std::min<int64_t>(config.batch_size,
                        static_cast<int64_t>(classes.size()));
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (int64_t step = 0; step < config.batches_per_epoch; ++step) {
      // Distinct classes per batch so InfoNCE negatives are true negatives.
      auto pick = rng.SampleWithoutReplacement(
          static_cast<int64_t>(classes.size()), batch);
      std::vector<std::string> captions;
      std::vector<Tensor> patch_list;
      for (int64_t k : pick) {
        const int64_t cls = classes[static_cast<size_t>(k)];
        int64_t caption_cls = cls;
        if (rng.Bernoulli(config.caption_noise)) {
          caption_cls = classes[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(classes.size()) - 1))];
        }
        captions.push_back(world.SampleCaption(
            caption_cls, config.caption_attrs, &rng,
            /*include_name=*/rng.Bernoulli(config.name_mention_prob)));
        patch_list.push_back(
            world
                .SampleImage(cls, config.patches_per_image,
                             config.attrs_shown_per_image, &rng)
                .patches);
      }
      Tensor text_emb = model->text().Forward(tokenizer.EncodeBatch(captions));
      Tensor image_emb = model->image().Forward(ops::Stack(patch_list));
      Tensor loss = model->ContrastiveLoss(text_emb, image_emb);
      optimizer.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model->Parameters(), config.grad_clip);
      optimizer.Step();
      epoch_loss += loss.item();
    }
    stats.epoch_loss.push_back(
        static_cast<float>(epoch_loss / config.batches_per_epoch));
  }
  stats.final_loss = stats.epoch_loss.empty() ? 0.0f : stats.epoch_loss.back();
  model->SetTraining(false);
  return stats;
}

}  // namespace clip
}  // namespace crossem
