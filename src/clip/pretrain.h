// Contrastive pre-training of the miniature CLIP on a synthetic
// caption-image corpus (the stand-in for the 400M-pair web corpus of the
// real CLIP; see DESIGN.md substitution table).
//
// Like the web-scale corpus of the real CLIP, the synthetic corpus covers
// entities of the whole world (pass all classes), but with caption noise
// and limited exposure, so the resulting zero-shot alignment is decent
// yet imperfect — the gap CrossEM's prompt tuning closes. The dataset's
// train/test split scopes the *matching task*, not the pre-training
// corpus (the paper's CLIP likewise saw "laysan albatross" on the web).
#ifndef CROSSEM_CLIP_PRETRAIN_H_
#define CROSSEM_CLIP_PRETRAIN_H_

#include <cstdint>
#include <vector>

#include "clip/clip.h"
#include "data/world.h"
#include "text/tokenizer.h"
#include "util/status.h"

namespace crossem {
namespace clip {

struct PretrainConfig {
  int64_t epochs = 25;
  int64_t batches_per_epoch = 20;
  int64_t batch_size = 12;
  int64_t patches_per_image = 8;
  int64_t attrs_shown_per_image = 4;
  int64_t caption_attrs = 3;
  /// Probability a caption is replaced by a random other class's caption
  /// (web-scale label noise).
  float caption_noise = 0.10f;
  /// Probability a caption names its entity. Web captions mostly
  /// describe appearance without naming the species/entity, so the
  /// pre-trained model aligns attribute words strongly but entity names
  /// only partially — exactly the gap the paper's structure-aware
  /// prompts close (Sec. II-C).
  float name_mention_prob = 0.45f;
  float learning_rate = 3e-3f;
  float grad_clip = 5.0f;
  uint64_t seed = 99;
};

/// Statistics of one pre-training run.
struct PretrainStats {
  std::vector<float> epoch_loss;
  float final_loss = 0.0f;
};

/// Trains `model` in place on captions/images of `classes` drawn from
/// `world`. Returns per-epoch losses.
Result<PretrainStats> PretrainClip(ClipModel* model, const data::World& world,
                                   const std::vector<int64_t>& classes,
                                   const text::Tokenizer& tokenizer,
                                   const PretrainConfig& config);

}  // namespace clip
}  // namespace crossem

#endif  // CROSSEM_CLIP_PRETRAIN_H_
