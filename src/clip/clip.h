// Miniature CLIP: a dual-encoder multi-modal model (paper Sec. II-B).
//
// Architecture mirrors the real CLIP at reduced scale:
//   - TextEncoder: token + positional embeddings -> Transformer ->
//     projection of the [CLS] position into the joint space.
//   - ImageEncoder: linear patch embedding + learned [CLS] patch ->
//     Transformer -> projection into the joint space.
//   - learned log-temperature, symmetric InfoNCE contrastive loss
//     (paper Eq. 2-3), and the matching probability of Eq. 4.
//
// Images are *bags of patch features* ([P, patch_dim] tensors): the paper
// itself consumes patch features everywhere (ViT patches in CLIP, ResNet
// patches in PCP), so pixel decoding is out of scope (see DESIGN.md).
//
// The text encoder supports a second entry point taking pre-built input
// embeddings (ForwardFromEmbeddings) — the "feature-based text encoder"
// of paper Fig. 4(b) that the soft prompt injects into.
#ifndef CROSSEM_CLIP_CLIP_H_
#define CROSSEM_CLIP_CLIP_H_

#include <cstdint>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/plan.h"
#include "tensor/tensor.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace crossem {
namespace clip {

/// Model hyper-parameters (defaults are the repo's CPU-scale CLIP).
struct ClipConfig {
  int64_t vocab_size = 0;      // required
  int64_t text_context = 32;   // max token length (77 in the paper's CLIP)
  int64_t model_dim = 48;      // transformer width (shared by both towers)
  int64_t text_layers = 2;
  int64_t text_heads = 4;
  int64_t image_layers = 2;
  int64_t image_heads = 4;
  int64_t mlp_ratio = 4;
  int64_t patch_dim = 16;      // input patch feature dimension
  int64_t max_patches = 32;    // max patches per image (for positions)
  int64_t embed_dim = 32;      // joint embedding space
  float init_temperature = 0.07f;  // tau in Eq. 2-4
};

/// Transformer text tower.
class TextEncoder : public nn::Module {
 public:
  TextEncoder(const ClipConfig& config, Rng* rng);

  /// Token + positional embeddings for a padded batch: [B, T, D].
  Tensor EmbedTokens(const std::vector<std::vector<int64_t>>& batch) const;

  /// Padding mask (1 = real token, 0 = [PAD]) for a padded batch: [B, T].
  Tensor PaddingMask(const std::vector<std::vector<int64_t>>& batch) const;

  /// Full pass over padded token-id rows -> joint embeddings [B, embed_dim]
  /// (L2-normalized).
  Tensor Forward(const std::vector<std::vector<int64_t>>& batch) const;

  /// Feature-based entry (paper Fig. 4b): caller supplies the input
  /// embedding sequence [B, T, D] (e.g. label tokens + injected soft
  /// prompt vectors) and a [B, T] mask. Position embeddings are added
  /// here. Returns L2-normalized [B, embed_dim].
  Tensor ForwardFromEmbeddings(const Tensor& input_embeddings,
                               const Tensor& mask) const;

  int64_t context_length() const { return config_.text_context; }
  int64_t model_dim() const { return config_.model_dim; }
  const nn::Embedding& token_embedding() const { return token_embedding_; }

 private:
  ClipConfig config_;
  nn::Embedding token_embedding_;
  Tensor positional_;  // [text_context, model_dim]
  nn::TransformerEncoder encoder_;
  nn::Linear projection_;
};

/// Transformer image tower over patch features.
class ImageEncoder : public nn::Module {
 public:
  ImageEncoder(const ClipConfig& config, Rng* rng);

  /// patches: [B, P, patch_dim] -> L2-normalized [B, embed_dim].
  Tensor Forward(const Tensor& patches) const;

 private:
  ClipConfig config_;
  nn::Linear patch_embedding_;
  Tensor cls_token_;    // [1, 1, model_dim]
  nn::TransformerEncoder encoder_;
  nn::Linear projection_;
};

/// The full dual-encoder model with a learned temperature.
class ClipModel : public nn::Module {
 public:
  ClipModel(const ClipConfig& config, Rng* rng);

  TextEncoder& text() { return text_; }
  const TextEncoder& text() const { return text_; }
  ImageEncoder& image() { return image_; }
  const ImageEncoder& image() const { return image_; }

  /// Current temperature tau (always positive; exp of the learned log).
  Tensor Temperature() const;

  /// Cosine-similarity matrix [Nt, Ni] of already-normalized embeddings.
  static Tensor SimilarityMatrix(const Tensor& text_emb,
                                 const Tensor& image_emb);

  /// Symmetric InfoNCE over a batch where text i matches image i
  /// (paper Eq. 2-3): averages the text->image and image->text
  /// cross-entropies at temperature tau.
  Tensor ContrastiveLoss(const Tensor& text_emb, const Tensor& image_emb) const;

  /// Contrastive loss with explicit positive assignments: text row i's
  /// positive image is `targets[i]` (used by CrossEM's pseudo-labeled
  /// tuning where positives are top-similarity pairs).
  Tensor ContrastiveLoss(const Tensor& text_emb, const Tensor& image_emb,
                         const std::vector<int64_t>& targets) const;

  /// Slot form for execution plans: `targets` is re-read at every replay,
  /// so one traced loss serves every step with the same pair count. The
  /// image->text direction reuses the same slot (its row selection is
  /// exactly `targets`); the inverse labels 0..n-1 are constant.
  Tensor ContrastiveLossSlot(const Tensor& text_emb, const Tensor& image_emb,
                             const plan::IndexSlot& targets) const;

  /// Matching probability p(v, I) of Eq. 4 for every (row, column):
  /// softmax over images of tau^{-1}-scaled cosine similarities.
  /// Returns [Nt, Ni]; computed without gradient tracking.
  Tensor MatchingProbability(const Tensor& text_emb,
                             const Tensor& image_emb) const;

  const ClipConfig& config() const { return config_; }

 private:
  ClipConfig config_;
  TextEncoder text_;
  ImageEncoder image_;
  Tensor log_temperature_;  // scalar parameter
};

}  // namespace clip
}  // namespace crossem

#endif  // CROSSEM_CLIP_CLIP_H_
