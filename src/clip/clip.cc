#include "clip/clip.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace clip {

TextEncoder::TextEncoder(const ClipConfig& config, Rng* rng)
    : config_(config),
      token_embedding_(config.vocab_size, config.model_dim, rng),
      encoder_(config.text_layers, config.model_dim, config.text_heads,
               config.mlp_ratio * config.model_dim, rng),
      projection_(config.model_dim, config.embed_dim, rng) {
  CROSSEM_CHECK_GT(config.vocab_size, 0);
  positional_ = RegisterParameter(
      "positional",
      Tensor::Randn({config.text_context, config.model_dim}, rng, 0.02f));
  RegisterModule("token_embedding", &token_embedding_);
  RegisterModule("encoder", &encoder_);
  RegisterModule("projection", &projection_);
}

Tensor TextEncoder::EmbedTokens(
    const std::vector<std::vector<int64_t>>& batch) const {
  CROSSEM_CHECK(!batch.empty());
  const int64_t t = static_cast<int64_t>(batch[0].size());
  CROSSEM_CHECK_LE(t, config_.text_context);
  std::vector<int64_t> flat;
  flat.reserve(batch.size() * static_cast<size_t>(t));
  for (const auto& row : batch) {
    CROSSEM_CHECK_EQ(static_cast<int64_t>(row.size()), t)
        << "token batch rows must be padded to equal length";
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const int64_t b = static_cast<int64_t>(batch.size());
  Tensor tok = token_embedding_.Forward(flat);          // [B*T, D]
  tok = ops::Reshape(tok, {b, t, config_.model_dim});
  Tensor pos = ops::Slice(positional_, 0, 0, t);        // [T, D]
  return ops::Add(tok, pos);                            // broadcast over B
}

Tensor TextEncoder::PaddingMask(
    const std::vector<std::vector<int64_t>>& batch) const {
  const int64_t b = static_cast<int64_t>(batch.size());
  const int64_t t = static_cast<int64_t>(batch[0].size());
  Tensor mask = Tensor::Zeros({b, t});
  float* m = mask.data();
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      if (batch[static_cast<size_t>(i)][static_cast<size_t>(j)] !=
          text::Vocabulary::kPad) {
        m[i * t + j] = 1.0f;
      }
    }
  }
  return mask;
}

Tensor TextEncoder::Forward(
    const std::vector<std::vector<int64_t>>& batch) const {
  Tensor x = EmbedTokens(batch);
  Tensor mask = PaddingMask(batch);
  Tensor h = encoder_.Forward(x, mask);
  // Sequence-level embedding: head projection of the [CLS] position
  // (paper Sec. III-B, "sequence-based text encoder").
  Tensor cls = ops::Reshape(ops::Slice(h, 1, 0, 1),
                            {h.size(0), config_.model_dim});
  return ops::L2Normalize(projection_.Forward(cls));
}

Tensor TextEncoder::ForwardFromEmbeddings(const Tensor& input_embeddings,
                                          const Tensor& mask) const {
  CROSSEM_CHECK_EQ(input_embeddings.dim(), 3);
  const int64_t t = input_embeddings.size(1);
  CROSSEM_CHECK_LE(t, config_.text_context);
  Tensor pos = ops::Slice(positional_, 0, 0, t);
  Tensor x = ops::Add(input_embeddings, pos);
  Tensor h = encoder_.Forward(x, mask);
  Tensor cls = ops::Reshape(ops::Slice(h, 1, 0, 1),
                            {h.size(0), config_.model_dim});
  return ops::L2Normalize(projection_.Forward(cls));
}

ImageEncoder::ImageEncoder(const ClipConfig& config, Rng* rng)
    : config_(config),
      patch_embedding_(config.patch_dim, config.model_dim, rng),
      encoder_(config.image_layers, config.model_dim, config.image_heads,
               config.mlp_ratio * config.model_dim, rng),
      projection_(config.model_dim, config.embed_dim, rng) {
  cls_token_ = RegisterParameter(
      "cls_token", Tensor::Randn({1, 1, config.model_dim}, rng, 0.02f));
  RegisterModule("patch_embedding", &patch_embedding_);
  RegisterModule("encoder", &encoder_);
  RegisterModule("projection", &projection_);
}

Tensor ImageEncoder::Forward(const Tensor& patches) const {
  CROSSEM_CHECK_EQ(patches.dim(), 3);
  CROSSEM_CHECK_EQ(patches.size(-1), config_.patch_dim);
  const int64_t b = patches.size(0);
  const int64_t p = patches.size(1);
  CROSSEM_CHECK_LE(p, config_.max_patches);

  Tensor x = patch_embedding_.Forward(patches);  // [B, P, D]
  // Prepend the learned [CLS] patch, tiled across the batch by a broadcast
  // add (one op instead of a b-way concat).
  Tensor cls_batch =
      ops::Add(Tensor::Zeros({b, 1, config_.model_dim}), cls_token_);
  // No positional embeddings: images are BAGS of patch features (see
  // DESIGN.md) — the encoder must be permutation-invariant over patches.
  x = ops::Concat({cls_batch, x}, 1);  // [B, P+1, D]
  Tensor h = encoder_.Forward(x);
  Tensor pooled = ops::Reshape(ops::Slice(h, 1, 0, 1),
                               {b, config_.model_dim});
  return ops::L2Normalize(projection_.Forward(pooled));
}

ClipModel::ClipModel(const ClipConfig& config, Rng* rng)
    : config_(config), text_(config, rng), image_(config, rng) {
  CROSSEM_CHECK_GT(config.init_temperature, 0.0f);
  CROSSEM_CHECK_LE(config.init_temperature, 1.0f);
  log_temperature_ = RegisterParameter(
      "log_temperature",
      Tensor::Scalar(std::log(config.init_temperature)));
  RegisterModule("text", &text_);
  RegisterModule("image", &image_);
}

Tensor ClipModel::Temperature() const { return ops::Exp(log_temperature_); }

Tensor ClipModel::SimilarityMatrix(const Tensor& text_emb,
                                   const Tensor& image_emb) {
  CROSSEM_CHECK_EQ(text_emb.dim(), 2);
  CROSSEM_CHECK_EQ(image_emb.dim(), 2);
  CROSSEM_CHECK_EQ(text_emb.size(1), image_emb.size(1));
  // MatMulTransB consumes image_emb in its natural [I, E] layout — bitwise
  // equal to MatMul(text, Transpose(image)) without materializing the
  // transpose (which on small batches used to cost more than the GEMM).
  return ops::MatMulTransB(text_emb, image_emb);
}

Tensor ClipModel::ContrastiveLoss(const Tensor& text_emb,
                                  const Tensor& image_emb) const {
  CROSSEM_CHECK_EQ(text_emb.size(0), image_emb.size(0));
  std::vector<int64_t> diag(static_cast<size_t>(text_emb.size(0)));
  for (size_t i = 0; i < diag.size(); ++i) diag[i] = static_cast<int64_t>(i);
  return ContrastiveLoss(text_emb, image_emb, diag);
}

Tensor ClipModel::ContrastiveLoss(const Tensor& text_emb,
                                  const Tensor& image_emb,
                                  const std::vector<int64_t>& targets) const {
  CROSSEM_CHECK_EQ(static_cast<int64_t>(targets.size()), text_emb.size(0));
  // Logits scaled by 1/tau (Eq. 3's exp(sim)/tau inside the softmax).
  Tensor inv_tau = ops::Div(Tensor::Scalar(1.0f), Temperature());
  Tensor logits = ops::Mul(SimilarityMatrix(text_emb, image_emb), inv_tau);
  // Text -> image direction.
  Tensor loss_t2i = ops::NllLoss(ops::LogSoftmax(logits), targets);
  // Image -> text direction: image targets[i] should pick text row i.
  // Build the inverse assignment where defined; images without an
  // assigned text are skipped by restricting rows.
  Tensor logits_i2t = ops::Transpose(logits, 0, 1);
  std::vector<int64_t> rows;
  std::vector<int64_t> inv_targets;
  for (size_t i = 0; i < targets.size(); ++i) {
    rows.push_back(targets[i]);
    inv_targets.push_back(static_cast<int64_t>(i));
  }
  Tensor picked = ops::IndexSelect(logits_i2t, rows);
  Tensor loss_i2t = ops::NllLoss(ops::LogSoftmax(picked), inv_targets);
  // Average of the two directions (Eq. 2's symmetric l(x_i,x_j)+l(x_j,x_i)).
  return ops::MulScalar(ops::Add(loss_t2i, loss_i2t), 0.5f);
}

Tensor ClipModel::ContrastiveLossSlot(const Tensor& text_emb,
                                      const Tensor& image_emb,
                                      const plan::IndexSlot& targets) const {
  CROSSEM_CHECK(targets != nullptr);
  const int64_t n = text_emb.size(0);
  CROSSEM_CHECK_EQ(static_cast<int64_t>(targets->size()), n);
  // Same graph as the vector form, op for op, with the per-step index
  // inputs routed through slots so a traced plan re-reads them on replay.
  Tensor inv_tau = ops::Div(Tensor::Scalar(1.0f), Temperature());
  Tensor logits = ops::Mul(SimilarityMatrix(text_emb, image_emb), inv_tau);
  Tensor loss_t2i = ops::NllLossSlot(ops::LogSoftmax(logits), targets);
  // Image -> text: the row selection is exactly `targets` (image
  // targets[i] picks text row i), so the slot is shared; the inverse
  // labels are the constant identity.
  Tensor logits_i2t = ops::Transpose(logits, 0, 1);
  Tensor picked = ops::IndexSelectSlot(logits_i2t, targets);
  std::vector<int64_t> inv(static_cast<size_t>(n));
  for (size_t i = 0; i < inv.size(); ++i) inv[i] = static_cast<int64_t>(i);
  Tensor loss_i2t =
      ops::NllLossSlot(ops::LogSoftmax(picked), plan::MakeIndexSlot(inv));
  return ops::MulScalar(ops::Add(loss_t2i, loss_i2t), 0.5f);
}

Tensor ClipModel::MatchingProbability(const Tensor& text_emb,
                                      const Tensor& image_emb) const {
  NoGradGuard guard;
  Tensor inv_tau = ops::Div(Tensor::Scalar(1.0f), Temperature());
  Tensor logits = ops::Mul(SimilarityMatrix(text_emb, image_emb), inv_tau);
  return ops::Softmax(logits);
}

}  // namespace clip
}  // namespace crossem
