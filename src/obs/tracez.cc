#include "obs/tracez.h"

#include <algorithm>
#include <utility>

#include "obs/json.h"

namespace crossem {
namespace obs {
namespace {

void AppendArgsJson(const std::vector<SpanArg>& args, std::string* out) {
  *out += "{";
  bool first = true;
  for (const SpanArg& a : args) {
    if (!first) *out += ",";
    first = false;
    *out += JsonString(a.key);
    *out += ":";
    switch (a.type) {
      case SpanArg::Type::kInt:
        *out += JsonNumber(a.int_value);
        break;
      case SpanArg::Type::kDouble:
        *out += JsonNumber(a.double_value);
        break;
      case SpanArg::Type::kString:
        *out += JsonString(a.string_value);
        break;
    }
  }
  *out += "}";
}

void AppendTraceJson(const RequestTrace& trace, bool slow, std::string* out) {
  *out += "{\"trace_id\":" + JsonString(TraceIdHex(trace.trace_id())) +
          ",\"request_id\":" + JsonString(trace.request_id()) +
          ",\"tenant\":" + JsonString(trace.tenant()) +
          ",\"status\":" + JsonNumber(int64_t{trace.http_status()}) +
          ",\"duration_us\":" + JsonNumber(trace.duration_us()) +
          ",\"degraded\":" + (trace.degraded() ? "true" : "false") +
          ",\"slow\":" + (slow ? "true" : "false") +
          ",\"dropped_spans\":" + JsonNumber(trace.dropped_spans()) +
          ",\"spans\":[";
  const uint64_t base_ns = trace.start_ns();
  bool first = true;
  for (const RequestSpanRecord& s : trace.Spans()) {
    if (!first) *out += ",";
    first = false;
    const uint64_t rel_ns = s.start_ns >= base_ns ? s.start_ns - base_ns : 0;
    *out += "{\"name\":" + JsonString(s.name) +
            ",\"span_id\":" + JsonString(SpanIdHex(s.span_id)) +
            ",\"parent_span_id\":" + JsonString(SpanIdHex(s.parent_span_id)) +
            ",\"start_us\":" +
            JsonNumber(static_cast<int64_t>(rel_ns / 1000)) + ",\"duration_us\":" +
            JsonNumber(static_cast<int64_t>(s.duration_ns / 1000)) +
            ",\"args\":";
    AppendArgsJson(s.args, out);
    *out += "}";
  }
  *out += "]}";
}

}  // namespace

TracezBuffer& TracezBuffer::Default() {
  static TracezBuffer* buffer = new TracezBuffer();  // never freed
  return *buffer;
}

TracezBuffer::TracezBuffer(TracezOptions options) : options_(options) {}

bool TracezBuffer::IsSlowLocked(int64_t duration_us) const {
  int64_t threshold = options_.slow_threshold_us;
  if (duration_us_.count() >= options_.min_samples_for_p99) {
    threshold = std::min(threshold, duration_us_.Percentile(0.99));
  }
  return duration_us > threshold;
}

void TracezBuffer::Record(std::shared_ptr<const RequestTrace> trace) {
  if (trace == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  duration_us_.Record(trace->duration_us());
  Entry entry;
  entry.interesting = trace->http_status() >= 400 || trace->degraded() ||
                      IsSlowLocked(trace->duration_us());
  entry.trace = std::move(trace);
  entries_.push_back(std::move(entry));
  while (static_cast<int64_t>(entries_.size()) > options_.capacity) {
    // Evict the oldest fast-ok trace; only when every retained trace is
    // interesting does the oldest interesting one go.
    auto victim = std::find_if(entries_.begin(), entries_.end(),
                               [](const Entry& e) { return !e.interesting; });
    if (victim == entries_.end()) victim = entries_.begin();
    entries_.erase(victim);
    ++evicted_;
  }
}

std::vector<std::shared_ptr<const RequestTrace>> TracezBuffer::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const RequestTrace>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.trace);
  return out;
}

int64_t TracezBuffer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

int64_t TracezBuffer::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

int64_t TracezBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

int64_t TracezBuffer::slow_threshold_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t threshold = options_.slow_threshold_us;
  if (duration_us_.count() >= options_.min_samples_for_p99) {
    threshold = std::min(threshold, duration_us_.Percentile(0.99));
  }
  return threshold;
}

std::string TracezBuffer::RenderJson() const {
  std::deque<Entry> entries;
  int64_t recorded, evicted, threshold;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries = entries_;
    recorded = recorded_;
    evicted = evicted_;
    threshold = options_.slow_threshold_us;
    if (duration_us_.count() >= options_.min_samples_for_p99) {
      threshold = std::min(threshold, duration_us_.Percentile(0.99));
    }
  }
  std::string out = "{\"recorded\":" + JsonNumber(recorded) +
                    ",\"evicted\":" + JsonNumber(evicted) +
                    ",\"slow_threshold_us\":" + JsonNumber(threshold) +
                    ",\"traces\":[";
  bool first = true;
  for (const Entry& e : entries) {
    if (!first) out += ",";
    first = false;
    AppendTraceJson(*e.trace, e.interesting && e.trace->http_status() < 400 &&
                                  !e.trace->degraded(),
                    &out);
  }
  out += "]}";
  return out;
}

std::string TracezBuffer::RenderHtml() const {
  std::deque<Entry> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries = entries_;
  }
  std::string out =
      "<!doctype html><html><head><title>tracez</title></head><body>"
      "<h1>Request traces</h1>"
      "<p>Append <code>?format=json</code> for the span trees.</p>"
      "<table border=\"1\" cellpadding=\"4\">"
      "<tr><th>trace id</th><th>request id</th><th>tenant</th>"
      "<th>status</th><th>duration (us)</th><th>degraded</th>"
      "<th>spans</th></tr>";
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const RequestTrace& t = *it->trace;
    // Request ids and tenants come from client headers; escape the HTML
    // metacharacters before interpolating them into the table.
    auto escape = [](const std::string& s) {
      std::string safe;
      safe.reserve(s.size());
      for (char c : s) {
        if (c == '<') {
          safe += "&lt;";
        } else if (c == '>') {
          safe += "&gt;";
        } else if (c == '&') {
          safe += "&amp;";
        } else {
          safe.push_back(c);
        }
      }
      return safe;
    };
    out += "<tr><td>" + TraceIdHex(t.trace_id()) + "</td><td>" +
           escape(t.request_id()) + "</td><td>" + escape(t.tenant()) +
           "</td><td>" + std::to_string(t.http_status()) + "</td><td>" +
           std::to_string(t.duration_us()) + "</td><td>" +
           (t.degraded() ? "yes" : "no") + "</td><td>" +
           std::to_string(t.Spans().size()) + "</td></tr>";
  }
  out += "</table></body></html>";
  return out;
}

void TracezBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  recorded_ = 0;
  evicted_ = 0;
}

}  // namespace obs
}  // namespace crossem
