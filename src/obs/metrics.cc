#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"

namespace crossem {
namespace obs {

namespace {

/// Bucket index for a value: floor(log2(v)) clamped to the table.
int BucketFor(int64_t value) {
  if (value < 1) return 0;
  int b = 0;
  while (value > 1 && b < Histogram::kBuckets - 1) {
    value >>= 1;
    ++b;
  }
  return b;
}

/// Raises an atomic maximum (relaxed; monotonic so CAS loop suffices).
void AtomicMax(std::atomic<int64_t>* slot, int64_t value) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (cur < value &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<int64_t>* slot, int64_t value) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (cur > value &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(int64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMax(&max_, value);
  AtomicMin(&min_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    const int64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  AtomicMax(&max_, other.max());
  const int64_t omin = other.min_.load(std::memory_order_relaxed);
  AtomicMin(&min_, omin);
}

int64_t Histogram::min() const {
  const int64_t m = min_.load(std::memory_order_relaxed);
  return m == std::numeric_limits<int64_t>::max() ? 0 : m;
}

int64_t Histogram::Percentile(double q) const {
  const int64_t count = this->count();
  if (count == 0) return 0;
  // Exact at the edges: the log2 upper-bound readout would otherwise
  // report a bucket bound for a quantile whose value is known precisely.
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  // Rank of the q-quantile observation (1-based, ceiling).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count))));
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper bound of bucket b, clamped into the observed range so a
      // single-value histogram (or a quantile landing in the min/max
      // bucket) reports an actually-observed value.
      return std::clamp(BucketUpperBound(b), min(), max());
    }
  }
  return max();
}

double Histogram::Mean() const {
  const int64_t count = this->count();
  return count == 0
             ? 0.0
             : static_cast<double>(sum()) / static_cast<double>(count);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

namespace {

/// obs sits below util in the link order, so it cannot use
/// CROSSEM_CHECK; a kind clash is a programmer error worth an abort.
[[noreturn]] void KindClash(const std::string& name) {
  std::fprintf(stderr,
               "[FATAL obs/metrics] instrument '%s' already registered "
               "with a different kind\n",
               name.c_str());
  std::abort();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = kinds_.emplace(name, Kind::kCounter);
  if (!inserted && it->second != Kind::kCounter) KindClash(name);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = kinds_.emplace(name, Kind::kGauge);
  if (!inserted && it->second != Kind::kGauge) KindClash(name);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = kinds_.emplace(name, Kind::kHistogram);
  if (!inserted && it->second != Kind::kHistogram) KindClash(name);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.name = name;
    v.count = h->count();
    v.sum = h->sum();
    v.min = h->min();
    v.max = h->max();
    v.p50 = h->Percentile(0.50);
    v.p99 = h->Percentile(0.99);
    v.mean = h->Mean();
    for (int b = 0; b < Histogram::kBuckets; ++b) v.buckets[b] = h->bucket(b);
    snap.histograms.push_back(std::move(v));
  }
  return snap;  // std::map iteration is already name-sorted
}

std::string SanitizeMetricName(const std::string& name) {
  std::string out = name;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) out[i] = '_';
  }
  return out.empty() ? "_" : out;
}

namespace {

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = SanitizeMetricName(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = SanitizeMetricName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatDouble(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = SanitizeMetricName(h.name);
    out += "# TYPE " + name + " histogram\n";
    int highest = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[b] != 0) highest = b;
    }
    int64_t cumulative = 0;
    for (int b = 0; b <= highest; ++b) {
      cumulative += h.buckets[b];
      out += name + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string ExportJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += JsonString(c.name) + ":" + JsonNumber(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += JsonString(g.name) + ":" + JsonNumber(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += JsonString(h.name) + ":{\"count\":" + JsonNumber(h.count) +
           ",\"sum\":" + JsonNumber(h.sum) + ",\"min\":" + JsonNumber(h.min) +
           ",\"max\":" + JsonNumber(h.max) + ",\"mean\":" + JsonNumber(h.mean) +
           ",\"p50\":" + JsonNumber(h.p50) + ",\"p99\":" + JsonNumber(h.p99) +
           "}";
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace crossem
