// Tiny JSON-emission helpers shared by the metrics/trace/telemetry
// exporters. Emission only — parsing lives in src/graph/json.h (which
// the obs tests use to round-trip what these helpers produce).
#ifndef CROSSEM_OBS_JSON_H_
#define CROSSEM_OBS_JSON_H_

#include <cstdint>
#include <string>

namespace crossem {
namespace obs {

/// Returns `s` as a quoted JSON string literal (control characters,
/// quotes and backslashes escaped).
std::string JsonString(const std::string& s);

/// Renders a double as a JSON number. JSON has no NaN/Inf, so non-finite
/// values become null — a telemetry line with a diverged loss must stay
/// machine-parseable.
std::string JsonNumber(double v);

std::string JsonNumber(int64_t v);

}  // namespace obs
}  // namespace crossem

#endif  // CROSSEM_OBS_JSON_H_
