#include "obs/timeseries.h"

#include <chrono>
#include <utility>

#include "obs/json.h"

namespace crossem {
namespace obs {

using Clock = std::chrono::steady_clock;

TimeSeriesRecorder::TimeSeriesRecorder(MetricsRegistry* registry,
                                       TimeSeriesOptions options)
    : registry_(registry), options_(options), start_(Clock::now()) {}

TimeSeriesRecorder::~TimeSeriesRecorder() { Stop(); }

void TimeSeriesRecorder::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  sampler_ = std::thread([this] { Loop(); });
}

void TimeSeriesRecorder::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  sampler_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void TimeSeriesRecorder::Loop() {
  const auto interval = std::chrono::microseconds(options_.interval_micros);
  auto next = Clock::now() + interval;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_until(lock, next, [this] { return stop_; });
      if (stop_) return;
    }
    if (Clock::now() < next) continue;  // spurious wake
    SampleOnce();
    next += interval;
    const auto now = Clock::now();
    if (now >= next) {
      // Sampling overran: account every fully missed tick as dropped
      // and resynchronize so we do not burst to catch up.
      const int64_t missed = (now - next) / interval + 1;
      next += missed * interval;
      std::lock_guard<std::mutex> lock(mu_);
      dropped_ += missed;
    }
  }
}

void TimeSeriesRecorder::Append(const std::string& name, int64_t t_us,
                                double value) {
  Ring& ring = series_[name];
  ring.t_us.push_back(t_us);
  ring.v.push_back(value);
  while (static_cast<int64_t>(ring.t_us.size()) > options_.points_per_metric) {
    ring.t_us.pop_front();
    ring.v.pop_front();
  }
}

void TimeSeriesRecorder::SampleOnce() {
  const MetricsSnapshot snapshot = registry_->Snapshot();
  const int64_t t_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - start_)
                           .count();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : snapshot.counters) {
    Append(c.name, t_us, static_cast<double>(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    Append(g.name, t_us, g.value);
  }
  for (const auto& h : snapshot.histograms) {
    Append(h.name, t_us, static_cast<double>(h.p50));
    Append(h.name + ":count", t_us, static_cast<double>(h.count));
  }
  ++samples_;
}

TimeSeriesRecorder::Stats TimeSeriesRecorder::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.samples = samples_;
  stats.dropped = dropped_;
  return stats;
}

int64_t TimeSeriesRecorder::PointCount(const std::string& metric) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(metric);
  if (it == series_.end()) return 0;
  return static_cast<int64_t>(it->second.t_us.size());
}

std::string TimeSeriesRecorder::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"interval_us\":" + JsonNumber(options_.interval_micros) +
                    ",\"samples\":" + JsonNumber(samples_) +
                    ",\"dropped\":" + JsonNumber(dropped_) + ",\"series\":{";
  bool first = true;
  for (const auto& [name, ring] : series_) {
    if (!first) out += ",";
    first = false;
    out += JsonString(name) + ":{\"t_us\":[";
    bool first_point = true;
    for (int64_t t : ring.t_us) {
      if (!first_point) out += ",";
      first_point = false;
      out += JsonNumber(t);
    }
    out += "],\"v\":[";
    first_point = true;
    for (double v : ring.v) {
      if (!first_point) out += ",";
      first_point = false;
      out += JsonNumber(v);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace crossem
