#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <utility>

#include "obs/json.h"

namespace crossem {
namespace obs {

namespace {

/// Nanoseconds on the steady clock.
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Trace epoch: timestamps are reported relative to the first use so
/// exported traces start near t=0.
uint64_t TraceEpochNs() {
  static const uint64_t epoch = NowNs();
  return epoch;
}

bool TraceEnvDefault() {
  const char* env = std::getenv("CROSSEM_TRACE");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{TraceEnvDefault()};
  return enabled;
}

/// Per-thread span sink. The owning thread appends; the exporter reads
/// under the same mutex, which is uncontended except during export.
struct ThreadBuffer {
  std::mutex mu;
  uint64_t thread_id = 0;
  std::string name;  // Chrome "thread_name" lane label; empty = unnamed
  std::vector<SpanRecord> spans;
};

/// Registry of every thread's buffer. Buffers are shared_ptr so they
/// outlive their thread (spans from exited pool workers still export).
class Tracer {
 public:
  static Tracer& Instance() {
    static Tracer* tracer = new Tracer();  // never freed
    return *tracer;
  }

  std::shared_ptr<ThreadBuffer> RegisterThread() {
    auto buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->thread_id = next_thread_id_++;
    buffers_.push_back(buffer);
    return buffer;
  }

  std::vector<SpanRecord> Collect() {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      buffers = buffers_;
    }
    std::vector<SpanRecord> out;
    for (const auto& b : buffers) {
      std::lock_guard<std::mutex> lock(b->mu);
      out.insert(out.end(), b->spans.begin(), b->spans.end());
    }
    return out;
  }

  void Clear() {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      buffers = buffers_;
    }
    for (const auto& b : buffers) {
      std::lock_guard<std::mutex> lock(b->mu);
      b->spans.clear();
    }
  }

  int64_t Count() {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      buffers = buffers_;
    }
    int64_t n = 0;
    for (const auto& b : buffers) {
      std::lock_guard<std::mutex> lock(b->mu);
      n += static_cast<int64_t>(b->spans.size());
    }
    return n;
  }

  std::vector<std::pair<uint64_t, std::string>> ThreadNames() {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      buffers = buffers_;
    }
    std::vector<std::pair<uint64_t, std::string>> out;
    for (const auto& b : buffers) {
      std::lock_guard<std::mutex> lock(b->mu);
      if (!b->name.empty()) out.emplace_back(b->thread_id, b->name);
    }
    return out;
  }

 private:
  Tracer() = default;

  std::mutex mu_;
  uint64_t next_thread_id_ = 1;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer =
      Tracer::Instance().RegisterThread();
  return *buffer;
}

}  // namespace

bool TraceEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetTraceEnabled(bool enabled) {
  if (enabled) TraceEpochNs();  // pin the epoch before the first span
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name)
    : enabled_(TraceEnabled()), name_(name) {
  if (enabled_) start_ns_ = NowNs();
}

TraceSpan::~TraceSpan() {
  if (!enabled_) return;
  const uint64_t end_ns = NowNs();
  SpanRecord record;
  record.name = name_;
  const uint64_t epoch = TraceEpochNs();
  record.start_ns = start_ns_ >= epoch ? start_ns_ - epoch : 0;
  record.duration_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  record.args = std::move(args_);
  ThreadBuffer& buffer = LocalBuffer();
  record.thread_id = buffer.thread_id;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.spans.push_back(std::move(record));
}

TraceSpan& TraceSpan::Arg(const char* key, int64_t value) {
  if (!enabled_) return *this;
  SpanArg arg;
  arg.key = key;
  arg.type = SpanArg::Type::kInt;
  arg.int_value = value;
  args_.push_back(std::move(arg));
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, double value) {
  if (!enabled_) return *this;
  SpanArg arg;
  arg.key = key;
  arg.type = SpanArg::Type::kDouble;
  arg.double_value = value;
  args_.push_back(std::move(arg));
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, const std::string& value) {
  if (!enabled_) return *this;
  SpanArg arg;
  arg.key = key;
  arg.type = SpanArg::Type::kString;
  arg.string_value = value;
  args_.push_back(std::move(arg));
  return *this;
}

void AppendSpanRecord(SpanRecord record) {
  if (!TraceEnabled()) return;
  const uint64_t epoch = TraceEpochNs();
  record.start_ns = record.start_ns >= epoch ? record.start_ns - epoch : 0;
  ThreadBuffer& buffer = LocalBuffer();
  record.thread_id = buffer.thread_id;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.spans.push_back(std::move(record));
}

void SetThreadName(const std::string& name) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.name = name;
}

std::vector<SpanRecord> CollectSpans() { return Tracer::Instance().Collect(); }

int64_t SpanCount() { return Tracer::Instance().Count(); }

void ClearTrace() { Tracer::Instance().Clear(); }

namespace {

void AppendHexArg(const char* key, uint64_t hi, uint64_t lo, bool wide,
                  std::string* out) {
  static const char* digits = "0123456789abcdef";
  *out += JsonString(key);
  *out += ":\"";
  if (wide) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out->push_back(digits[(hi >> shift) & 0xf]);
    }
  }
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(digits[(lo >> shift) & 0xf]);
  }
  out->push_back('"');
}

}  // namespace

std::string ChromeTraceJson() {
  const std::vector<SpanRecord> spans = CollectSpans();
  std::string out = "{\"traceEvents\":[";
  // Metadata events first: the process lane name and one thread_name
  // event per named thread, so Perfetto shows readable lanes.
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"crossem\"}}";
  for (const auto& [tid, name] : Tracer::Instance().ThreadNames()) {
    out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":" + JsonString(name) +
           "}}";
  }
  for (const SpanRecord& s : spans) {
    out += ",";
    // Chrome trace timestamps/durations are microseconds (double).
    out += "{\"name\":" + JsonString(s.name) +
           ",\"cat\":\"crossem\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(s.thread_id) +
           ",\"ts\":" + JsonNumber(static_cast<double>(s.start_ns) / 1000.0) +
           ",\"dur\":" +
           JsonNumber(static_cast<double>(s.duration_ns) / 1000.0);
    const bool has_ids = s.span_id != 0 || (s.trace_hi | s.trace_lo) != 0;
    if (!s.args.empty() || has_ids) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (has_ids) {
        AppendHexArg("trace_id", s.trace_hi, s.trace_lo, true, &out);
        out += ",";
        AppendHexArg("span_id", 0, s.span_id, false, &out);
        out += ",";
        AppendHexArg("parent_span_id", 0, s.parent_span_id, false, &out);
        first_arg = false;
      }
      for (const SpanArg& a : s.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += JsonString(a.key);
        out += ":";
        switch (a.type) {
          case SpanArg::Type::kInt:
            out += JsonNumber(a.int_value);
            break;
          case SpanArg::Type::kDouble:
            out += JsonNumber(a.double_value);
            break;
          case SpanArg::Type::kString:
            out += JsonString(a.string_value);
            break;
        }
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ChromeTraceJson();
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace crossem
