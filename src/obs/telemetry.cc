#include "obs/telemetry.h"

#include "obs/json.h"

namespace crossem {
namespace obs {

std::string EpochTelemetryJson(const EpochTelemetry& t) {
  std::string out = "{";
  out += "\"epoch\":" + JsonNumber(t.epoch);
  out += ",\"loss\":" + JsonNumber(t.loss);
  out += ",\"grad_norm\":" + JsonNumber(t.grad_norm);
  out += ",\"learning_rate\":" + JsonNumber(t.learning_rate);
  out += ",\"num_batches\":" + JsonNumber(t.num_batches);
  out += ",\"num_pairs\":" + JsonNumber(t.num_pairs);
  out += ",\"bad_batches\":" + JsonNumber(t.bad_batches);
  out += ",\"retries\":" + JsonNumber(t.retries);
  out += ",\"peak_bytes\":" + JsonNumber(t.peak_bytes);
  out += ",\"seconds\":" + JsonNumber(t.seconds);
  out += ",\"batch_gen_seconds\":" + JsonNumber(t.batch_gen_seconds);
  out += ",\"encode_seconds\":" + JsonNumber(t.encode_seconds);
  out += ",\"score_seconds\":" + JsonNumber(t.score_seconds);
  out += ",\"backward_seconds\":" + JsonNumber(t.backward_seconds);
  out += ",\"optimizer_seconds\":" + JsonNumber(t.optimizer_seconds);
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace crossem
