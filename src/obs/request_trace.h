// Request-scoped distributed tracing for the serving stack.
//
// A RequestTrace is minted (or adopted from an incoming `traceparent` /
// `x-request-id` header) at HTTP ingress and rides through the engine as
// a shared_ptr on serve::MatchRequest: admission, snapshot leases, the
// batched MatchService, and every ShardedMatchService shard attempt
// (retries, hedges, breaker skips) record child spans into it. The
// result is one connected span tree per request, retrievable from
// /debug/tracez and — when the process-wide Chrome tracer is enabled —
// mirrored into the Perfetto export with trace/span/parent ids.
//
// Cost model: a null trace pointer is the off state. Every hot-path
// hook is `if (request.trace) {...}` — one pointer test, cheaper than
// the tracer's relaxed atomic load, honoring the existing contract.
// When a trace is attached, each span append takes one uncontended
// mutex acquisition on the per-request record vector (bounded at
// kMaxSpans; overflow increments a drop counter instead of growing).
#ifndef CROSSEM_OBS_REQUEST_TRACE_H_
#define CROSSEM_OBS_REQUEST_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace crossem {
namespace obs {

/// 128-bit W3C trace id. All-zero is invalid (per the traceparent spec).
struct TraceId {
  uint64_t hi = 0;
  uint64_t lo = 0;
  bool valid() const { return (hi | lo) != 0; }
};

/// 32 lowercase hex chars.
std::string TraceIdHex(const TraceId& id);
/// 16 lowercase hex chars.
std::string SpanIdHex(uint64_t id);

/// Mints a fresh (process-unique, well-mixed) trace id / span id.
TraceId MintTraceId();
uint64_t MintSpanId();

/// Derives a stable trace id from an arbitrary x-request-id string so
/// repeated queries with the same id land on the same trace identity.
TraceId DeriveTraceId(const std::string& request_id);

/// Parses a W3C `traceparent` header ("00-<32hex>-<16hex>-<2hex>").
/// Returns false (outputs untouched) on malformed input or all-zero ids.
bool ParseTraceparent(const std::string& value, TraceId* trace_id,
                      uint64_t* parent_span_id);

/// Renders "00-<trace>-<span>-01" (sampled flag set: we recorded it).
std::string FormatTraceparent(const TraceId& trace_id, uint64_t span_id);

/// Steady-clock nanoseconds (same clock as span timestamps).
uint64_t RequestNowNs();

/// One finished span inside a request trace.
struct RequestSpanRecord {
  const char* name = "";  // string literal
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root
  uint64_t start_ns = 0;        // absolute steady-clock ns
  uint64_t duration_ns = 0;
  std::vector<SpanArg> args;
};

/// Shared, thread-safe span collector for one request. Created at HTTP
/// ingress, completed (status/duration/degraded) when the response is
/// written, then handed to the tracez buffer for tail sampling.
class RequestTrace {
 public:
  // Bounds the per-request record vector; appends past the cap are
  // counted in dropped_spans() instead of stored.
  static constexpr int64_t kMaxSpans = 512;

  RequestTrace(TraceId trace_id, std::string request_id, std::string tenant);

  const TraceId& trace_id() const { return trace_id_; }
  const std::string& request_id() const { return request_id_; }
  const std::string& tenant() const { return tenant_; }
  uint64_t root_span_id() const { return root_span_id_; }
  uint64_t start_ns() const { return start_ns_; }

  /// Appends a finished span (any thread). Also mirrors the span into
  /// the process-wide Chrome tracer when that is enabled, carrying the
  /// trace/span/parent ids so the Perfetto export connects the tree.
  void Record(const char* name, uint64_t span_id, uint64_t parent_span_id,
              uint64_t start_ns, uint64_t duration_ns,
              std::vector<SpanArg> args);

  /// Marks the request finished. Records the root span ("request",
  /// span_id = root_span_id) covering the whole request.
  void Complete(int http_status, int64_t duration_us, bool degraded);

  bool completed() const;
  int http_status() const;
  int64_t duration_us() const;
  bool degraded() const;
  int64_t dropped_spans() const;

  /// Copy of the spans recorded so far.
  std::vector<RequestSpanRecord> Spans() const;

 private:
  const TraceId trace_id_;
  const std::string request_id_;
  const std::string tenant_;
  const uint64_t root_span_id_;
  const uint64_t start_ns_;

  mutable std::mutex mu_;
  std::vector<RequestSpanRecord> spans_;
  int64_t dropped_spans_ = 0;
  bool completed_ = false;
  int http_status_ = 0;
  int64_t duration_us_ = 0;
  bool degraded_ = false;
};

/// RAII child span on a RequestTrace. A null trace makes every method a
/// single-branch no-op, so call sites need no conditionals of their own.
class RequestSpan {
 public:
  RequestSpan(std::shared_ptr<RequestTrace> trace, const char* name,
              uint64_t parent_span_id);
  ~RequestSpan() { End(); }

  RequestSpan(const RequestSpan&) = delete;
  RequestSpan& operator=(const RequestSpan&) = delete;

  /// This span's id, for parenting children (0 when disabled).
  uint64_t span_id() const { return span_id_; }

  RequestSpan& Arg(const char* key, int64_t value);
  RequestSpan& Arg(const char* key, double value);
  RequestSpan& Arg(const char* key, const std::string& value);

  /// Records the span now (idempotent; the destructor calls it too).
  void End();

 private:
  std::shared_ptr<RequestTrace> trace_;
  const char* name_;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint64_t start_ns_ = 0;
  std::vector<SpanArg> args_;
};

}  // namespace obs
}  // namespace crossem

#endif  // CROSSEM_OBS_REQUEST_TRACE_H_
