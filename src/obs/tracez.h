// Tail-sampled buffer of completed request traces behind /debug/tracez.
//
// Every completed request's RequestTrace is offered to the buffer; a
// bounded ring keeps the most recent ones, but eviction is biased so
// the interesting traces survive: errors (HTTP >= 400), degraded
// responses (206), and slow requests (duration above the live p99 of
// everything recorded, with an absolute floor for the cold start) are
// only evicted once there are no fast-ok traces left to drop. The
// result: after a load drill the buffer still holds the requests worth
// debugging, not just the last N.
//
// Thread-safe; Record() is one mutex acquisition plus a histogram
// update, called once per completed request (never on the per-span hot
// path).
#ifndef CROSSEM_OBS_TRACEZ_H_
#define CROSSEM_OBS_TRACEZ_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/request_trace.h"

namespace crossem {
namespace obs {

struct TracezOptions {
  // Maximum retained traces.
  int64_t capacity = 256;
  // Absolute slow threshold used until enough durations have been seen
  // to trust the live p99 (and as a floor afterwards).
  int64_t slow_threshold_us = 100000;
  // Durations recorded before the live p99 participates in "slow".
  int64_t min_samples_for_p99 = 64;
};

class TracezBuffer {
 public:
  /// Process-wide buffer used by the HTTP front end.
  static TracezBuffer& Default();

  explicit TracezBuffer(TracezOptions options = {});

  /// Offers a completed trace for retention (null traces are ignored).
  void Record(std::shared_ptr<const RequestTrace> trace);

  /// All retained traces, oldest first.
  std::vector<std::shared_ptr<const RequestTrace>> Snapshot() const;

  int64_t recorded() const;  // total offered
  int64_t evicted() const;   // dropped to make room
  int64_t size() const;

  /// Current duration threshold above which a trace counts as slow.
  int64_t slow_threshold_us() const;

  /// {"recorded":N,"evicted":N,"slow_threshold_us":N,"traces":[...]}
  /// with each trace's span tree inlined (start_us relative to the
  /// trace start).
  std::string RenderJson() const;

  /// Minimal HTML table (request id, status, duration, spans) for
  /// humans hitting /debug/tracez in a browser.
  std::string RenderHtml() const;

  /// Drops all retained traces and counters (tests).
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const RequestTrace> trace;
    bool interesting = false;  // error / degraded / slow at record time
  };

  bool IsSlowLocked(int64_t duration_us) const;

  const TracezOptions options_;
  mutable std::mutex mu_;
  std::deque<Entry> entries_;
  Histogram duration_us_;  // live duration distribution for the p99 gate
  int64_t recorded_ = 0;
  int64_t evicted_ = 0;
};

}  // namespace obs
}  // namespace crossem

#endif  // CROSSEM_OBS_TRACEZ_H_
