// Per-epoch training telemetry records (JSONL).
//
// CrossEm::Fit (and any other training loop) fills one EpochTelemetry
// per epoch and appends EpochTelemetryJson() + '\n' to its --telemetry-out
// sink, producing a machine-readable training log: one JSON object per
// line with the loss/grad-norm curve, divergence-guard activity, and the
// wall-clock phase breakdown the paper's Table III measures
// (encode / score / backward / optimizer).
//
// Formatting lives here (schema in one place, reused by the tests);
// file I/O stays with the caller so obs keeps zero dependencies.
#ifndef CROSSEM_OBS_TELEMETRY_H_
#define CROSSEM_OBS_TELEMETRY_H_

#include <cstdint>
#include <string>

namespace crossem {
namespace obs {

struct EpochTelemetry {
  int64_t epoch = 0;
  double loss = 0.0;
  /// Mean pre-clip global gradient L2 norm over the epoch's good batches.
  double grad_norm = 0.0;
  double learning_rate = 0.0;
  int64_t num_batches = 0;
  int64_t num_pairs = 0;
  int64_t bad_batches = 0;
  int64_t retries = 0;
  int64_t peak_bytes = 0;
  /// Epoch wall time and its phase breakdown, seconds. The phases do not
  /// sum to `seconds`: batch bookkeeping and the divergence-guard
  /// snapshot sit outside them.
  double seconds = 0.0;
  double batch_gen_seconds = 0.0;
  double encode_seconds = 0.0;
  double score_seconds = 0.0;
  double backward_seconds = 0.0;
  double optimizer_seconds = 0.0;
};

/// One compact JSON object (no trailing newline). Non-finite values
/// (e.g. a diverged loss) render as null so every line stays parseable.
std::string EpochTelemetryJson(const EpochTelemetry& t);

}  // namespace obs
}  // namespace crossem

#endif  // CROSSEM_OBS_TELEMETRY_H_
