// Time-series flight recorder: a background thread samples the
// MetricsRegistry snapshot at a fixed interval into bounded per-metric
// rings, so coverage, degraded fraction, and per-tenant shed rates can
// be plotted over a load drill instead of read as a single end-of-run
// total. Served as JSON from /metrics/history and dumped by
// crossem_loadgen / bench_net next to BENCH_net.json.
//
// Sampling detail: counters and gauges record their value under the
// metric name; histograms record their p50 under the bare name plus
// the observation count under "<name>:count" (rates are recoverable by
// differencing). A sampler tick that overruns its interval counts the
// missed ticks as dropped — the CI gate fails the nominal bench arm if
// that ever happens, since it means the snapshot walk can't keep up.
//
// The recorder runs beside the serving hot path, never on it: one
// snapshot per interval, all state behind the recorder's own mutex.
#ifndef CROSSEM_OBS_TIMESERIES_H_
#define CROSSEM_OBS_TIMESERIES_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace crossem {
namespace obs {

struct TimeSeriesOptions {
  // Sampling period. CI uses 100ms; production defaults coarser.
  int64_t interval_micros = 250000;
  // Points retained per metric (ring; oldest evicted first).
  int64_t points_per_metric = 512;
};

class TimeSeriesRecorder {
 public:
  struct Stats {
    int64_t samples = 0;  // successful SampleOnce() calls
    int64_t dropped = 0;  // ticks missed because sampling overran
  };

  TimeSeriesRecorder(MetricsRegistry* registry, TimeSeriesOptions options);
  ~TimeSeriesRecorder();  // implies Stop()

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Spawns the sampler thread. Idempotent.
  void Start();

  /// Stops and joins the sampler thread. Idempotent.
  void Stop();

  /// Takes one sample now (the sampler thread calls this on its tick;
  /// tests and shutdown flushes call it directly — thread-safe).
  void SampleOnce();

  Stats GetStats() const;

  /// Number of points currently held for `metric` (0 if unknown).
  int64_t PointCount(const std::string& metric) const;

  /// {"interval_us":N,"samples":N,"dropped":N,
  ///  "series":{name:{"t_us":[...],"v":[...]}}} where t_us is
  /// microseconds since the recorder was constructed.
  std::string RenderJson() const;

 private:
  void Loop();
  void Append(const std::string& name, int64_t t_us, double value);

  struct Ring {
    std::deque<int64_t> t_us;
    std::deque<double> v;
  };

  MetricsRegistry* const registry_;
  const TimeSeriesOptions options_;
  const std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Ring> series_;
  int64_t samples_ = 0;
  int64_t dropped_ = 0;
  bool stop_ = false;
  bool running_ = false;
  std::thread sampler_;
};

}  // namespace obs
}  // namespace crossem

#endif  // CROSSEM_OBS_TIMESERIES_H_
