#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace crossem {
namespace obs {

std::string JsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonNumber(int64_t v) { return std::to_string(v); }

}  // namespace obs
}  // namespace crossem
