#include "obs/request_trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <utility>

namespace crossem {
namespace obs {
namespace {

// SplitMix64: well-mixed ids from a cheap atomic counter.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t NextSeq() {
  static std::atomic<uint64_t> seq{0};
  return seq.fetch_add(1, std::memory_order_relaxed);
}

// Process-wide id seed: mixes the first steady_clock read so two
// processes started at different times mint different id streams.
uint64_t IdSeed() {
  static const uint64_t seed = Mix64(static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  return seed;
}

char HexDigit(uint64_t nibble) {
  return static_cast<char>(nibble < 10 ? '0' + nibble : 'a' + (nibble - 10));
}

void AppendHex64(uint64_t v, std::string* out) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(HexDigit((v >> shift) & 0xf));
  }
}

bool ParseHex(const char* s, int digits, uint64_t* out) {
  uint64_t v = 0;
  for (int i = 0; i < digits; ++i) {
    char c = s[i];
    uint64_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      d = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

}  // namespace

std::string TraceIdHex(const TraceId& id) {
  std::string out;
  out.reserve(32);
  AppendHex64(id.hi, &out);
  AppendHex64(id.lo, &out);
  return out;
}

std::string SpanIdHex(uint64_t id) {
  std::string out;
  out.reserve(16);
  AppendHex64(id, &out);
  return out;
}

TraceId MintTraceId() {
  TraceId id;
  id.hi = Mix64(IdSeed() + NextSeq());
  id.lo = Mix64(IdSeed() + NextSeq());
  if (!id.valid()) id.lo = 1;  // all-zero is invalid per the W3C spec
  return id;
}

uint64_t MintSpanId() {
  uint64_t id = Mix64(IdSeed() ^ NextSeq());
  return id != 0 ? id : 1;
}

TraceId DeriveTraceId(const std::string& request_id) {
  // FNV-1a over the bytes, then two SplitMix64 finalizers for each half.
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : request_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  TraceId id;
  id.hi = Mix64(h);
  id.lo = Mix64(h ^ 0x6a09e667f3bcc909ull);
  if (!id.valid()) id.lo = 1;
  return id;
}

bool ParseTraceparent(const std::string& value, TraceId* trace_id,
                      uint64_t* parent_span_id) {
  // "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>" = 55 chars.
  if (value.size() < 55) return false;
  const char* s = value.c_str();
  if (s[2] != '-' || s[35] != '-' || s[52] != '-') return false;
  uint64_t version;
  if (!ParseHex(s, 2, &version) || version == 0xff) return false;
  TraceId tid;
  uint64_t span;
  if (!ParseHex(s + 3, 16, &tid.hi) || !ParseHex(s + 19, 16, &tid.lo) ||
      !ParseHex(s + 36, 16, &span)) {
    return false;
  }
  uint64_t flags;
  if (!ParseHex(s + 53, 2, &flags)) return false;
  if (!tid.valid() || span == 0) return false;
  *trace_id = tid;
  *parent_span_id = span;
  return true;
}

std::string FormatTraceparent(const TraceId& trace_id, uint64_t span_id) {
  std::string out = "00-";
  out.reserve(55);
  AppendHex64(trace_id.hi, &out);
  AppendHex64(trace_id.lo, &out);
  out.push_back('-');
  AppendHex64(span_id, &out);
  out += "-01";
  return out;
}

uint64_t RequestNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

RequestTrace::RequestTrace(TraceId trace_id, std::string request_id,
                           std::string tenant)
    : trace_id_(trace_id),
      request_id_(std::move(request_id)),
      tenant_(std::move(tenant)),
      root_span_id_(MintSpanId()),
      start_ns_(RequestNowNs()) {}

void RequestTrace::Record(const char* name, uint64_t span_id,
                          uint64_t parent_span_id, uint64_t start_ns,
                          uint64_t duration_ns, std::vector<SpanArg> args) {
  if (TraceEnabled()) {
    SpanRecord chrome;
    chrome.name = name;
    chrome.start_ns = start_ns;  // AppendSpanRecord rebases onto the epoch
    chrome.duration_ns = duration_ns;
    chrome.trace_hi = trace_id_.hi;
    chrome.trace_lo = trace_id_.lo;
    chrome.span_id = span_id;
    chrome.parent_span_id = parent_span_id;
    chrome.args = args;
    AppendSpanRecord(std::move(chrome));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int64_t>(spans_.size()) >= kMaxSpans) {
    ++dropped_spans_;
    return;
  }
  RequestSpanRecord record;
  record.name = name;
  record.span_id = span_id;
  record.parent_span_id = parent_span_id;
  record.start_ns = start_ns;
  record.duration_ns = duration_ns;
  record.args = std::move(args);
  spans_.push_back(std::move(record));
}

void RequestTrace::Complete(int http_status, int64_t duration_us,
                            bool degraded) {
  const uint64_t end_ns = RequestNowNs();
  Record("request", root_span_id_, 0, start_ns_,
         end_ns > start_ns_ ? end_ns - start_ns_ : 0, {});
  std::lock_guard<std::mutex> lock(mu_);
  completed_ = true;
  http_status_ = http_status;
  duration_us_ = duration_us;
  degraded_ = degraded;
}

bool RequestTrace::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

int RequestTrace::http_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return http_status_;
}

int64_t RequestTrace::duration_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duration_us_;
}

bool RequestTrace::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

int64_t RequestTrace::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_spans_;
}

std::vector<RequestSpanRecord> RequestTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

RequestSpan::RequestSpan(std::shared_ptr<RequestTrace> trace, const char* name,
                         uint64_t parent_span_id)
    : trace_(std::move(trace)), name_(name) {
  if (trace_ == nullptr) return;
  span_id_ = MintSpanId();
  parent_span_id_ = parent_span_id;
  start_ns_ = RequestNowNs();
}

RequestSpan& RequestSpan::Arg(const char* key, int64_t value) {
  if (trace_ != nullptr) {
    SpanArg arg;
    arg.key = key;
    arg.type = SpanArg::Type::kInt;
    arg.int_value = value;
    args_.push_back(std::move(arg));
  }
  return *this;
}

RequestSpan& RequestSpan::Arg(const char* key, double value) {
  if (trace_ != nullptr) {
    SpanArg arg;
    arg.key = key;
    arg.type = SpanArg::Type::kDouble;
    arg.double_value = value;
    args_.push_back(std::move(arg));
  }
  return *this;
}

RequestSpan& RequestSpan::Arg(const char* key, const std::string& value) {
  if (trace_ != nullptr) {
    SpanArg arg;
    arg.key = key;
    arg.type = SpanArg::Type::kString;
    arg.string_value = value;
    args_.push_back(std::move(arg));
  }
  return *this;
}

void RequestSpan::End() {
  if (trace_ == nullptr) return;
  const uint64_t end_ns = RequestNowNs();
  trace_->Record(name_, span_id_, parent_span_id_, start_ns_,
                 end_ns > start_ns_ ? end_ns - start_ns_ : 0,
                 std::move(args_));
  trace_.reset();
}

}  // namespace obs
}  // namespace crossem
