// Process-wide metrics: named Counter / Gauge / Histogram instruments
// behind a thread-safe MetricsRegistry, with Prometheus-text and JSON
// exporters.
//
// Design constraints (DESIGN.md §11):
//   * Hot-path updates are lock-free: counters and histogram records are
//     relaxed atomic adds; gauges are atomic stores. The registry mutex
//     is only taken to *resolve* an instrument by name — callers cache
//     the returned pointer (instruments are never deleted, so pointers
//     stay valid for the registry's lifetime).
//   * Snapshots read the atomics without stopping writers, so a snapshot
//     taken mid-update may be off by in-flight increments — fine for
//     monitoring, documented here so nobody builds an invariant on it.
//   * The log2 Histogram generalizes the one that used to live in
//     src/serve/stats.h: same 40-bucket layout, plus min tracking,
//     Merge(), and exact readouts at the distribution edges
//     (Percentile(0) = min, Percentile(1) = max, single-value
//     histograms always report that value).
//
// This header deliberately depends on nothing but the standard library:
// it sits below src/util in the link order so logging, parallel, and
// every other layer can publish metrics.
#ifndef CROSSEM_OBS_METRICS_H_
#define CROSSEM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace crossem {
namespace obs {

/// Monotonically increasing count (requests served, batches run, ...).
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (learning rate, queue depth, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log2-bucketed histogram: bucket i counts values in
/// [2^i, 2^{i+1}) (bucket 0 additionally takes values < 1). Percentile
/// readouts are bucket upper bounds clamped into [min, max], so a
/// reported p99 is an upper bound within 2x of the true value — plenty
/// for latency monitoring — and the distribution edges are exact.
/// All mutation is lock-free (relaxed atomics); see the header comment
/// for snapshot consistency semantics.
class Histogram {
 public:
  static constexpr int kBuckets = 40;  // covers > 10^11 units

  void Record(int64_t value);

  /// Folds another histogram's observations into this one (bucket-wise
  /// addition; min/max widen). The other histogram may be concurrently
  /// written; the merge then reflects some valid interleaving.
  void Merge(const Histogram& other);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Smallest recorded value; 0 when empty.
  int64_t min() const;
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding quantile q, clamped into
  /// [min, max]. q <= 0 returns the exact min, q >= 1 the exact max;
  /// an empty histogram returns 0 for any q.
  int64_t Percentile(double q) const;
  double Mean() const;

  /// Inclusive upper bound of bucket b (2^{b+1} - 1).
  static int64_t BucketUpperBound(int b) {
    return (int64_t{1} << (b + 1)) - 1;
  }

 private:
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
  std::atomic<int64_t> min_{std::numeric_limits<int64_t>::max()};
};

/// Point-in-time copy of every instrument in a registry, sorted by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
    int64_t p50 = 0;
    int64_t p99 = 0;
    double mean = 0.0;
    std::array<int64_t, Histogram::kBuckets> buckets{};
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// Thread-safe name -> instrument map. Get* registers on first use and
/// returns the same pointer for the same name ever after; instruments
/// live as long as the registry. Distinct instrument kinds share no
/// namespace checks — registering "x" as both a counter and a gauge is
/// caught and aborts (it would produce a nonsensical exposition).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem publishes into.
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  mutable std::mutex mu_;
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Maps an arbitrary string into the Prometheus metric-name alphabet
/// [a-zA-Z_:][a-zA-Z0-9_:]* (offending characters become '_'; an empty
/// input becomes "_"). The exporters apply it to every name; callers
/// that mint names from external input — e.g. per-tenant instruments
/// keyed by the x-tenant header — should apply it themselves so the
/// registry key and the exposition name agree.
std::string SanitizeMetricName(const std::string& name);

/// Prometheus text exposition (format version 0.0.4) of a snapshot:
/// counters as `# TYPE <name> counter`, gauges as gauge, histograms as
/// cumulative `<name>_bucket{le="..."}` series (log2 upper bounds, only
/// up to the highest non-empty bucket) plus `_sum` and `_count`. Names
/// are sanitized to [a-zA-Z0-9_:]. Deterministic: sorted by name.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

/// The same snapshot as one compact JSON object:
/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
/// max,mean,p50,p99}}}.
std::string ExportJson(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace crossem

#endif  // CROSSEM_OBS_METRICS_H_
