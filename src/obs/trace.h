// Scoped-span tracing with Chrome trace_event JSON export (loadable in
// Perfetto / chrome://tracing).
//
//   void Gemm(...) {
//     CROSSEM_TRACE_SPAN_V(span, "gemm");
//     span.Arg("m", m).Arg("n", n).Arg("k", k);
//     ...
//   }  // span records itself on scope exit
//
// Cost model:
//   * Disabled (the default): constructing a span is one relaxed atomic
//     load and two member stores — low single-digit nanoseconds, cheap
//     enough for per-GEMM-call instrumentation. Arg() is a branch.
//   * Enabled: each span takes two steady_clock reads plus an append to
//     a per-thread buffer (one uncontended mutex acquisition), roughly
//     ~100ns — tracing is a diagnosis mode, not an always-on path.
//
// Enabling: the CROSSEM_TRACE environment variable (0/1, read once at
// first query) seeds the flag; SetTraceEnabled() toggles it at runtime
// (e.g. tools enable it when --trace-out is given). Spans started while
// disabled record nothing even if tracing is enabled before they close.
//
// Buffering: every thread appends finished spans to its own buffer; the
// buffers are registered with the process-wide tracer and survive thread
// exit (ownership is shared), so spans recorded by short-lived pool
// workers are still present at export time. ExportChromeTrace() renders
// everything recorded so far; ClearTrace() drops it (tests).
#ifndef CROSSEM_OBS_TRACE_H_
#define CROSSEM_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace crossem {
namespace obs {

/// Global trace toggle (relaxed atomic; seeded from CROSSEM_TRACE).
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

/// One key/value annotation on a span. Keys must be string literals
/// (spans store the pointer, not a copy).
struct SpanArg {
  enum class Type { kInt, kDouble, kString };
  const char* key = "";
  Type type = Type::kInt;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
};

/// A finished span as stored in the trace buffers.
struct SpanRecord {
  const char* name = "";   // string literal
  uint64_t start_ns = 0;   // since process trace epoch
  uint64_t duration_ns = 0;
  uint64_t thread_id = 0;  // dense per-thread id (Chrome "tid")
  // Request-trace identity (all zero for process-scoped spans). When
  // set, the Chrome export carries the ids as hex args so Perfetto
  // shows one connected tree per request.
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::vector<SpanArg> args;
};

/// RAII span: measures from construction to destruction and appends the
/// record to the calling thread's buffer. `name` must be a string
/// literal (or otherwise outlive the tracer).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an annotation; no-ops (one branch) when the span is
  /// disabled. Keys must be string literals.
  TraceSpan& Arg(const char* key, int64_t value);
  TraceSpan& Arg(const char* key, double value);
  TraceSpan& Arg(const char* key, const std::string& value);

 private:
  bool enabled_;
  const char* name_;
  uint64_t start_ns_ = 0;
  std::vector<SpanArg> args_;
};

/// Appends an externally built span to the calling thread's buffer
/// (no-op when tracing is disabled). `record.start_ns` must be an
/// absolute steady-clock timestamp; it is rebased onto the process
/// trace epoch here. Used by the request tracer to mirror its spans
/// into the Chrome export.
void AppendSpanRecord(SpanRecord record);

/// Names the calling thread's lane in the Chrome export (emitted as a
/// "thread_name" metadata event). Safe to call any time, even with
/// tracing disabled; the last call wins.
void SetThreadName(const std::string& name);

/// Copies every span recorded so far (all threads).
std::vector<SpanRecord> CollectSpans();

/// Number of spans recorded so far (all threads).
int64_t SpanCount();

/// Drops all recorded spans.
void ClearTrace();

/// Chrome trace_event JSON ({"traceEvents":[...]}) of every recorded
/// span: complete ("ph":"X") events with microsecond timestamps, pid 1,
/// per-thread tids, and span args.
std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path`; returns false (and leaves any
/// partial file) on I/O failure.
bool WriteChromeTrace(const std::string& path);

// Span with a compiler-generated variable name (no args).
#define CROSSEM_TRACE_CONCAT_2(a, b) a##b
#define CROSSEM_TRACE_CONCAT_(a, b) CROSSEM_TRACE_CONCAT_2(a, b)
#define CROSSEM_TRACE_SPAN(name)                                   \
  ::crossem::obs::TraceSpan CROSSEM_TRACE_CONCAT_(crossem_span_,   \
                                                  __LINE__)(name)
// Named span variable, for attaching Arg()s.
#define CROSSEM_TRACE_SPAN_V(var, name) ::crossem::obs::TraceSpan var(name)

}  // namespace obs
}  // namespace crossem

#endif  // CROSSEM_OBS_TRACE_H_
