// Per-query diagnostic breakdown of a matching run: which entities were
// matched correctly, and which candidate class each failure confused
// them with. Used by examples and error analysis.
#ifndef CROSSEM_EVAL_PER_CLASS_H_
#define CROSSEM_EVAL_PER_CLASS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace crossem {
namespace eval {

/// One query's diagnostic row.
struct QueryDiagnostic {
  int64_t query_index = 0;
  int64_t query_class = 0;
  /// Rank of the first relevant candidate (1 = hit at top).
  int64_t rank = 0;
  /// Class of the top-ranked candidate (the confusion when rank > 1).
  int64_t top_candidate_class = 0;
  bool correct_at_1 = false;
};

/// Computes per-query diagnostics from a dense score matrix (same
/// conventions as ComputeRankingMetricsByClass; queries with no relevant
/// candidate are skipped).
std::vector<QueryDiagnostic> ComputeQueryDiagnostics(
    const Tensor& scores, const std::vector<int64_t>& query_class,
    const std::vector<int64_t>& candidate_class);

/// The most frequent confusion pairs (true class -> predicted class)
/// among rank-1 failures, most frequent first.
struct ConfusionPair {
  int64_t true_class;
  int64_t predicted_class;
  int64_t count;
};
std::vector<ConfusionPair> TopConfusions(
    const std::vector<QueryDiagnostic>& diagnostics, int64_t max_pairs = 10);

}  // namespace eval
}  // namespace crossem

#endif  // CROSSEM_EVAL_PER_CLASS_H_
