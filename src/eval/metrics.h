// Ranking metrics for the matching task: Hits@k and Mean Reciprocal Rank
// (paper Sec. V-A, "Datasets and Evaluation Metrics").
//
// For each query (a test vertex), candidates (images) are ranked by
// score; a candidate is relevant when it depicts the query's entity.
// Hits@k is the fraction of queries with a relevant candidate in the top
// k; MRR averages 1/rank of the first relevant candidate.
#ifndef CROSSEM_EVAL_METRICS_H_
#define CROSSEM_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace crossem {
namespace eval {

/// Accuracy numbers for one method/dataset pair.
struct RankingMetrics {
  double hits_at_1 = 0.0;  // percentages in [0, 100]
  double hits_at_3 = 0.0;
  double hits_at_5 = 0.0;
  double mrr = 0.0;        // in [0, 1]
};

/// Computes ranking metrics from a dense score matrix.
///
/// scores: [num_queries, num_candidates]; relevance[q][c] is true when
/// candidate c is a correct match for query q. Queries with no relevant
/// candidate are skipped.
RankingMetrics ComputeRankingMetrics(
    const Tensor& scores, const std::vector<std::vector<bool>>& relevance);

/// Convenience: relevance from class labels — query q (class
/// query_class[q]) matches candidate c iff candidate_class[c] equals it.
RankingMetrics ComputeRankingMetricsByClass(
    const Tensor& scores, const std::vector<int64_t>& query_class,
    const std::vector<int64_t>& candidate_class);

}  // namespace eval
}  // namespace crossem

#endif  // CROSSEM_EVAL_METRICS_H_
