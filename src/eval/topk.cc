#include "eval/topk.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel.h"

namespace crossem {
namespace eval {

namespace {

/// Heap comparator: the WORST candidate sits at the front so it can be
/// evicted when a better one arrives.
struct WorstFirst {
  bool operator()(const ScoredId& a, const ScoredId& b) const {
    return RanksBefore(a, b);
  }
};

}  // namespace

std::vector<ScoredId> TopK(const float* scores, int64_t n, int64_t k) {
  if (k <= 0 || n <= 0) return {};
  k = std::min(k, n);
  // Max-heap of the current k best with the worst on top. push_heap /
  // pop_heap with WorstFirst keep the eviction candidate at heap[0].
  std::vector<ScoredId> heap;
  heap.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < n; ++i) {
    const ScoredId cand{i, scores[i]};
    if (static_cast<int64_t>(heap.size()) < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), WorstFirst{});
    } else if (RanksBefore(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), WorstFirst{});
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), WorstFirst{});
    }
  }
  // With RanksBefore as the "less than", sort_heap yields ascending
  // order under it — best candidate first.
  std::sort_heap(heap.begin(), heap.end(), WorstFirst{});
  return heap;
}

std::vector<ScoredId> MergeTopK(
    const std::vector<std::vector<ScoredId>>& parts, int64_t k) {
  if (k <= 0) return {};
  std::vector<ScoredId> merged;
  for (const auto& part : parts) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const ScoredId& a, const ScoredId& b) {
              return RanksBefore(a, b);
            });
  if (static_cast<int64_t>(merged.size()) > k) {
    merged.resize(static_cast<size_t>(k));
  }
  return merged;
}

std::vector<std::vector<ScoredId>> TopKRows(const Tensor& scores, int64_t k) {
  CROSSEM_CHECK_EQ(scores.dim(), 2);
  const int64_t rows = scores.size(0);
  const int64_t cols = scores.size(1);
  const float* data = scores.data();
  std::vector<std::vector<ScoredId>> out(static_cast<size_t>(rows));
  ParallelFor(0, rows, /*grain=*/1, [&](int64_t b, int64_t e) {
    for (int64_t r = b; r < e; ++r) {
      out[static_cast<size_t>(r)] = TopK(data + r * cols, cols, k);
    }
  });
  return out;
}

}  // namespace eval
}  // namespace crossem
