#include "eval/per_class.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace crossem {
namespace eval {

std::vector<QueryDiagnostic> ComputeQueryDiagnostics(
    const Tensor& scores, const std::vector<int64_t>& query_class,
    const std::vector<int64_t>& candidate_class) {
  CROSSEM_CHECK_EQ(scores.dim(), 2);
  const int64_t nq = scores.size(0);
  const int64_t nc = scores.size(1);
  CROSSEM_CHECK_EQ(static_cast<int64_t>(query_class.size()), nq);
  CROSSEM_CHECK_EQ(static_cast<int64_t>(candidate_class.size()), nc);

  std::vector<QueryDiagnostic> out;
  const float* s = scores.data();
  for (int64_t q = 0; q < nq; ++q) {
    bool has_relevant = false;
    float best_rel = -1e30f;
    int64_t top = 0;
    for (int64_t c = 0; c < nc; ++c) {
      if (candidate_class[static_cast<size_t>(c)] ==
          query_class[static_cast<size_t>(q)]) {
        has_relevant = true;
        best_rel = std::max(best_rel, s[q * nc + c]);
      }
      if (s[q * nc + c] > s[q * nc + top]) top = c;
    }
    if (!has_relevant) continue;
    int64_t rank = 1;
    for (int64_t c = 0; c < nc; ++c) {
      if (s[q * nc + c] > best_rel) ++rank;
    }
    QueryDiagnostic d;
    d.query_index = q;
    d.query_class = query_class[static_cast<size_t>(q)];
    d.rank = rank;
    d.top_candidate_class = candidate_class[static_cast<size_t>(top)];
    d.correct_at_1 = (rank == 1);
    out.push_back(d);
  }
  return out;
}

std::vector<ConfusionPair> TopConfusions(
    const std::vector<QueryDiagnostic>& diagnostics, int64_t max_pairs) {
  std::map<std::pair<int64_t, int64_t>, int64_t> counts;
  for (const QueryDiagnostic& d : diagnostics) {
    if (!d.correct_at_1) {
      ++counts[{d.query_class, d.top_candidate_class}];
    }
  }
  std::vector<ConfusionPair> out;
  for (const auto& [key, count] : counts) {
    out.push_back(ConfusionPair{key.first, key.second, count});
  }
  std::sort(out.begin(), out.end(),
            [](const ConfusionPair& a, const ConfusionPair& b) {
              return a.count > b.count;
            });
  if (static_cast<int64_t>(out.size()) > max_pairs) {
    out.resize(static_cast<size_t>(max_pairs));
  }
  return out;
}

}  // namespace eval
}  // namespace crossem
