// Deterministic top-k selection over score rows.
//
// This is the single ranking kernel shared by the matching entry points
// (core::CrossEm::FindMatches / FindMutualMatches take the k = 1 case)
// and the serving layer's exact flat index (arbitrary k). Ordering is
// total and thread-count independent: candidates sort by score
// descending, ties broken toward the lower index — exactly the order a
// left-to-right strictly-greater argmax scan produces, so replacing such
// a scan with TopK(..., 1) is bitwise identical.
#ifndef CROSSEM_EVAL_TOPK_H_
#define CROSSEM_EVAL_TOPK_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace crossem {
namespace eval {

/// One ranked candidate: its index in the scanned range and its score.
struct ScoredId {
  int64_t id = 0;
  float score = 0.0f;
};

/// True when a ranks strictly ahead of b (higher score, lower id on ties).
inline bool RanksBefore(const ScoredId& a, const ScoredId& b) {
  return a.score > b.score || (a.score == b.score && a.id < b.id);
}

/// The k best of scores[0..n), best first. k >= n returns all n sorted;
/// k <= 0 returns empty. Single pass, O(n log k).
std::vector<ScoredId> TopK(const float* scores, int64_t n, int64_t k);

/// Merges pre-ranked candidate lists (each ordered by RanksBefore) into
/// the overall top k. Deterministic regardless of list count or sizes —
/// the combine step of a chunked parallel scan.
std::vector<ScoredId> MergeTopK(
    const std::vector<std::vector<ScoredId>>& parts, int64_t k);

/// Row-wise top-k over a [rows, cols] score matrix, parallel across rows
/// (each row's result is independent, so the output is deterministic at
/// any thread count).
std::vector<std::vector<ScoredId>> TopKRows(const Tensor& scores, int64_t k);

}  // namespace eval
}  // namespace crossem

#endif  // CROSSEM_EVAL_TOPK_H_
