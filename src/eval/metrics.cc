#include "eval/metrics.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace crossem {
namespace eval {

RankingMetrics ComputeRankingMetrics(
    const Tensor& scores, const std::vector<std::vector<bool>>& relevance) {
  CROSSEM_CHECK_EQ(scores.dim(), 2);
  const int64_t nq = scores.size(0);
  const int64_t nc = scores.size(1);
  CROSSEM_CHECK_EQ(static_cast<int64_t>(relevance.size()), nq);

  RankingMetrics m;
  int64_t counted = 0;
  const float* s = scores.data();
  for (int64_t q = 0; q < nq; ++q) {
    const auto& rel = relevance[static_cast<size_t>(q)];
    CROSSEM_CHECK_EQ(static_cast<int64_t>(rel.size()), nc);
    if (std::none_of(rel.begin(), rel.end(), [](bool b) { return b; })) {
      continue;  // no relevant candidate: query undefined, skip
    }
    ++counted;
    // Rank of the first relevant candidate = 1 + number of candidates
    // with strictly higher score than the best-scoring relevant one.
    // (Stable treatment of ties: ties do not push the relevant item down.)
    float best_rel = -1e30f;
    for (int64_t c = 0; c < nc; ++c) {
      if (rel[static_cast<size_t>(c)]) {
        best_rel = std::max(best_rel, s[q * nc + c]);
      }
    }
    int64_t rank = 1;
    for (int64_t c = 0; c < nc; ++c) {
      if (s[q * nc + c] > best_rel) ++rank;
    }
    if (rank <= 1) m.hits_at_1 += 1.0;
    if (rank <= 3) m.hits_at_3 += 1.0;
    if (rank <= 5) m.hits_at_5 += 1.0;
    m.mrr += 1.0 / static_cast<double>(rank);
  }
  if (counted > 0) {
    const double n = static_cast<double>(counted);
    m.hits_at_1 *= 100.0 / n;
    m.hits_at_3 *= 100.0 / n;
    m.hits_at_5 *= 100.0 / n;
    m.mrr /= n;
  }
  return m;
}

RankingMetrics ComputeRankingMetricsByClass(
    const Tensor& scores, const std::vector<int64_t>& query_class,
    const std::vector<int64_t>& candidate_class) {
  CROSSEM_CHECK_EQ(scores.size(0),
                   static_cast<int64_t>(query_class.size()));
  CROSSEM_CHECK_EQ(scores.size(1),
                   static_cast<int64_t>(candidate_class.size()));
  std::vector<std::vector<bool>> relevance(query_class.size());
  for (size_t q = 0; q < query_class.size(); ++q) {
    relevance[q].resize(candidate_class.size());
    for (size_t c = 0; c < candidate_class.size(); ++c) {
      relevance[q][c] = (candidate_class[c] == query_class[q]);
    }
  }
  return ComputeRankingMetrics(scores, relevance);
}

}  // namespace eval
}  // namespace crossem
