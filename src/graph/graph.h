// Directed labeled graph G = (V, E, L) — Definition in paper Sec. II-A.
//
// This is the unified representation of structured and semi-structured
// data-lake sources: relational tables and JSON documents are mapped into
// it by data_mapping.h, and CrossEM matches its vertices against images.
#ifndef CROSSEM_GRAPH_GRAPH_H_
#define CROSSEM_GRAPH_GRAPH_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace crossem {
namespace graph {

using VertexId = int64_t;
using EdgeId = int64_t;

/// A directed labeled edge.
struct Edge {
  VertexId src;
  VertexId dst;
  std::string label;
};

/// The d-hop neighborhood subgraph of a vertex (paper Sec. III-A):
/// vertices within d hops (undirected reachability) plus all edges whose
/// endpoints both lie in that vertex set.
struct Subgraph {
  VertexId center;
  std::vector<VertexId> vertices;  // includes the center; BFS order
  std::vector<EdgeId> edges;
};

/// Directed graph with string labels on vertices and edges.
///
/// Vertices are dense ids assigned by AddVertex. The structure is
/// append-only, which keeps ids stable across the matching pipeline.
class Graph {
 public:
  Graph() = default;

  /// Adds a vertex and returns its id.
  VertexId AddVertex(std::string label);

  /// Adds a directed edge; endpoints must exist.
  Status AddEdge(VertexId src, VertexId dst, std::string label);

  int64_t NumVertices() const { return static_cast<int64_t>(labels_.size()); }
  int64_t NumEdges() const { return static_cast<int64_t>(edges_.size()); }

  const std::string& VertexLabel(VertexId v) const;
  const Edge& GetEdge(EdgeId e) const;

  /// Outgoing edge ids of v.
  const std::vector<EdgeId>& OutEdges(VertexId v) const;
  /// Incoming edge ids of v.
  const std::vector<EdgeId>& InEdges(VertexId v) const;

  /// Distinct neighbor vertices of v in either direction (excludes v
  /// itself unless there is a self loop on v).
  std::vector<VertexId> Neighbors(VertexId v) const;

  /// BFS over undirected adjacency up to `hops` hops from `center`.
  Subgraph DHopSubgraph(VertexId center, int64_t hops) const;

  /// The label word set L: every unique whitespace-separated word in
  /// vertex and edge labels.
  std::set<std::string> UniqueWords() const;

  /// Finds the first vertex with the given label, or -1.
  VertexId FindVertex(const std::string& label) const;

 private:
  void CheckVertex(VertexId v) const;

  std::vector<std::string> labels_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
};

}  // namespace graph
}  // namespace crossem

#endif  // CROSSEM_GRAPH_GRAPH_H_
