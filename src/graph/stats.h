// Graph profiling: summary statistics of a mapped data-lake graph
// (degree distribution, connectivity, label vocabulary), used by the CLI
// and by dataset sanity checks.
#ifndef CROSSEM_GRAPH_STATS_H_
#define CROSSEM_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace crossem {
namespace graph {

struct GraphStats {
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  int64_t num_isolated_vertices = 0;
  int64_t max_out_degree = 0;
  int64_t max_in_degree = 0;
  double avg_degree = 0.0;  // undirected: 2|E| / |V|
  int64_t num_connected_components = 0;  // undirected
  int64_t largest_component_size = 0;
  int64_t num_unique_words = 0;
  int64_t num_unique_edge_labels = 0;

  /// Human-readable one-paragraph summary.
  std::string ToString() const;
};

/// Profiles `g` in O(|V| + |E|).
GraphStats ComputeGraphStats(const Graph& g);

}  // namespace graph
}  // namespace crossem

#endif  // CROSSEM_GRAPH_STATS_H_
