#include "graph/stats.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

namespace crossem {
namespace graph {

GraphStats ComputeGraphStats(const Graph& g) {
  GraphStats stats;
  stats.num_vertices = g.NumVertices();
  stats.num_edges = g.NumEdges();
  if (g.NumVertices() == 0) return stats;

  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const int64_t out = static_cast<int64_t>(g.OutEdges(v).size());
    const int64_t in = static_cast<int64_t>(g.InEdges(v).size());
    stats.max_out_degree = std::max(stats.max_out_degree, out);
    stats.max_in_degree = std::max(stats.max_in_degree, in);
    if (out + in == 0) ++stats.num_isolated_vertices;
  }
  stats.avg_degree = 2.0 * static_cast<double>(g.NumEdges()) /
                     static_cast<double>(g.NumVertices());

  // Undirected connected components via iterative DFS.
  std::vector<bool> visited(static_cast<size_t>(g.NumVertices()), false);
  for (VertexId start = 0; start < g.NumVertices(); ++start) {
    if (visited[static_cast<size_t>(start)]) continue;
    ++stats.num_connected_components;
    int64_t size = 0;
    std::vector<VertexId> stack = {start};
    visited[static_cast<size_t>(start)] = true;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      ++size;
      for (VertexId u : g.Neighbors(v)) {
        if (!visited[static_cast<size_t>(u)]) {
          visited[static_cast<size_t>(u)] = true;
          stack.push_back(u);
        }
      }
    }
    stats.largest_component_size =
        std::max(stats.largest_component_size, size);
  }

  stats.num_unique_words = static_cast<int64_t>(g.UniqueWords().size());
  std::set<std::string> edge_labels;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    edge_labels.insert(g.GetEdge(e).label);
  }
  stats.num_unique_edge_labels = static_cast<int64_t>(edge_labels.size());
  return stats;
}

std::string GraphStats::ToString() const {
  std::ostringstream out;
  out << num_vertices << " vertices, " << num_edges << " edges ("
      << num_unique_edge_labels << " edge labels, " << num_unique_words
      << " label words); avg degree " << avg_degree << ", max out/in "
      << max_out_degree << "/" << max_in_degree << "; "
      << num_connected_components << " components (largest "
      << largest_component_size << "), " << num_isolated_vertices
      << " isolated";
  return out.str();
}

}  // namespace graph
}  // namespace crossem
