// Data mapping: encoding data-lake sources into the unified graph
// (paper Sec. II-A). Tuples of relational tables and keys of JSON objects
// become entity vertices; attribute values become value vertices attached
// via labeled edges; foreign keys / references become entity-entity edges.
#ifndef CROSSEM_GRAPH_DATA_MAPPING_H_
#define CROSSEM_GRAPH_DATA_MAPPING_H_

#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/json.h"
#include "util/status.h"

namespace crossem {
namespace graph {

/// A relational table: named columns, string cells, one key column, and
/// optional foreign keys mapping a column to another table's key.
struct RelationalTable {
  std::string name;
  std::vector<std::string> columns;
  int64_t key_column = 0;
  std::vector<std::vector<std::string>> rows;
  /// column index -> referenced table name (the referenced cell value must
  /// equal a key value in that table).
  std::map<int64_t, std::string> foreign_keys;
};

/// Parses simple CSV text (no quoting) into a table with the first row as
/// the header. The first column is taken as the key.
Result<RelationalTable> ParseCsv(const std::string& name,
                                 const std::string& text);

/// Incrementally maps heterogeneous sources into one unified graph.
///
/// Entity vertices are deduplicated across sources by their label, so a
/// tuple "laysan albatross" and a JSON object named "laysan albatross"
/// land on the same vertex — this is what lets one graph represent a
/// whole data lake.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Maps each row to an entity vertex labeled by the key cell; each
  /// non-key attribute cell becomes a value vertex linked by an edge
  /// labeled "has <column>"; foreign-key cells become edges labeled
  /// "ref <column>" to the referenced entity.
  Status AddTable(const RelationalTable& table);

  /// Maps a JSON document. Each object with a "name" (or "id") member
  /// becomes an entity vertex; scalar members become value vertices via
  /// edges labeled by the member key; nested objects and arrays recurse;
  /// string members named "$ref" become entity-entity reference edges.
  Status AddJson(const JsonValue& doc);

  /// Adds a plain entity vertex (native graph data).
  VertexId AddEntity(const std::string& label);

  /// Adds a labeled relationship between two existing entities by label.
  Status AddRelationship(const std::string& src_label,
                         const std::string& edge_label,
                         const std::string& dst_label);

  const Graph& graph() const { return graph_; }
  Graph& mutable_graph() { return graph_; }

  /// Entity vertices created so far (excludes attribute-value vertices).
  const std::vector<VertexId>& entity_vertices() const { return entities_; }

 private:
  /// Returns the entity vertex for `label`, creating it on first use.
  VertexId InternEntity(const std::string& label);
  /// Returns the value vertex for `label`, creating it on first use.
  VertexId InternValue(const std::string& label);

  Status AddJsonObject(const JsonValue& obj, VertexId vertex);

  Graph graph_;
  std::vector<VertexId> entities_;
  std::map<std::string, VertexId> entity_index_;
  std::map<std::string, VertexId> value_index_;
};

}  // namespace graph
}  // namespace crossem

#endif  // CROSSEM_GRAPH_DATA_MAPPING_H_
