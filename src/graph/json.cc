#include "graph/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace crossem {
namespace graph {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

bool JsonValue::bool_value() const {
  CROSSEM_CHECK(is_bool());
  return bool_;
}

double JsonValue::number_value() const {
  CROSSEM_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::string_value() const {
  CROSSEM_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::array_items() const {
  CROSSEM_CHECK(is_array());
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::object_members() const {
  CROSSEM_CHECK(is_object());
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

void DumpString(const std::string& s, std::ostringstream& out) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

void DumpValue(const JsonValue& v, std::ostringstream& out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out << "null";
      break;
    case JsonValue::Type::kBool:
      out << (v.bool_value() ? "true" : "false");
      break;
    case JsonValue::Type::kNumber: {
      double d = v.number_value();
      if (d == std::floor(d) && std::fabs(d) < 1e15) {
        out << static_cast<long long>(d);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", d);
        out << buf;
      }
      break;
    }
    case JsonValue::Type::kString:
      DumpString(v.string_value(), out);
      break;
    case JsonValue::Type::kArray: {
      out << '[';
      bool first = true;
      for (const auto& item : v.array_items()) {
        if (!first) out << ',';
        first = false;
        DumpValue(item, out);
      }
      out << ']';
      break;
    }
    case JsonValue::Type::kObject: {
      out << '{';
      bool first = true;
      for (const auto& [k, val] : v.object_members()) {
        if (!first) out << ',';
        first = false;
        DumpString(k, out);
        out << ':';
        DumpValue(val, out);
      }
      out << '}';
      break;
    }
  }
}

/// Recursive-descent parser over the input text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status st = ParseValue(&v);
    if (!st.ok()) return st;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') return ParseString(out);
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber(out);
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Status ParseObject(JsonValue* out) {
    CROSSEM_CHECK(Consume('{'));
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::Object(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      JsonValue key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key");
      }
      CROSSEM_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      CROSSEM_RETURN_NOT_OK(ParseValue(&value));
      members.emplace(key.string_value(), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}'");
    }
    *out = JsonValue::Object(std::move(members));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out) {
    CROSSEM_CHECK(Consume('['));
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::Array(std::move(items));
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      CROSSEM_RETURN_NOT_OK(ParseValue(&value));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']'");
    }
    *out = JsonValue::Array(std::move(items));
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    CROSSEM_CHECK(Consume('"'));
    std::string s;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            s += '"';
            break;
          case '\\':
            s += '\\';
            break;
          case '/':
            s += '/';
            break;
          case 'n':
            s += '\n';
            break;
          case 't':
            s += '\t';
            break;
          case 'r':
            s += '\r';
            break;
          case 'b':
            s += '\b';
            break;
          case 'f':
            s += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += h - '0';
              } else if (h >= 'a' && h <= 'f') {
                code += h - 'a' + 10;
              } else if (h >= 'A' && h <= 'F') {
                code += h - 'A' + 10;
              } else {
                return Error("bad hex digit in \\u escape");
              }
            }
            // Encode the code point as UTF-8 (BMP only; surrogate pairs
            // are passed through as separate units).
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape character");
        }
      } else {
        s += c;
      }
    }
    return Error("unterminated string");
  }

  Status ParseBool(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = JsonValue::Bool(true);
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = JsonValue::Bool(false);
      return Status::OK();
    }
    return Error("invalid literal");
  }

  Status ParseNull(JsonValue* out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = JsonValue::Null();
      return Status::OK();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    try {
      size_t used = 0;
      double d = std::stod(token, &used);
      if (used != token.size()) return Error("invalid number");
      *out = JsonValue::Number(d);
      return Status::OK();
    } catch (...) {
      return Error("invalid number");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Dump() const {
  std::ostringstream out;
  DumpValue(*this, out);
  return out.str();
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace graph
}  // namespace crossem
