#include "graph/data_mapping.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace crossem {
namespace graph {

namespace {
/// Renders a scalar JSON value as a label string.
std::string ScalarToLabel(const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::kString:
      return v.string_value();
    case JsonValue::Type::kNumber: {
      double d = v.number_value();
      if (d == std::floor(d) && std::fabs(d) < 1e15) {
        return std::to_string(static_cast<long long>(d));
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
    case JsonValue::Type::kBool:
      return v.bool_value() ? "true" : "false";
    case JsonValue::Type::kNull:
      return "null";
    default:
      return v.Dump();
  }
}
}  // namespace

Result<RelationalTable> ParseCsv(const std::string& name,
                                 const std::string& text) {
  RelationalTable table;
  table.name = name;
  std::istringstream in(text);
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    if (line.back() == ',') cells.emplace_back();
    if (header) {
      table.columns = std::move(cells);
      if (table.columns.empty()) {
        return Status::ParseError("CSV header row is empty");
      }
      header = false;
    } else {
      if (cells.size() != table.columns.size()) {
        return Status::ParseError("CSV row width mismatch: expected " +
                                  std::to_string(table.columns.size()) +
                                  ", got " + std::to_string(cells.size()));
      }
      table.rows.push_back(std::move(cells));
    }
  }
  if (header) return Status::ParseError("CSV input has no header row");
  return table;
}

VertexId GraphBuilder::InternEntity(const std::string& label) {
  auto it = entity_index_.find(label);
  if (it != entity_index_.end()) return it->second;
  VertexId v = graph_.AddVertex(label);
  entity_index_.emplace(label, v);
  entities_.push_back(v);
  return v;
}

VertexId GraphBuilder::InternValue(const std::string& label) {
  auto it = value_index_.find(label);
  if (it != value_index_.end()) return it->second;
  VertexId v = graph_.AddVertex(label);
  value_index_.emplace(label, v);
  return v;
}

VertexId GraphBuilder::AddEntity(const std::string& label) {
  return InternEntity(label);
}

Status GraphBuilder::AddRelationship(const std::string& src_label,
                                     const std::string& edge_label,
                                     const std::string& dst_label) {
  VertexId src = graph_.FindVertex(src_label);
  if (src < 0) return Status::NotFound("no vertex labeled '" + src_label + "'");
  VertexId dst = graph_.FindVertex(dst_label);
  if (dst < 0) return Status::NotFound("no vertex labeled '" + dst_label + "'");
  return graph_.AddEdge(src, dst, edge_label);
}

Status GraphBuilder::AddTable(const RelationalTable& table) {
  if (table.columns.empty()) {
    return Status::InvalidArgument("table '" + table.name + "' has no columns");
  }
  if (table.key_column < 0 ||
      table.key_column >= static_cast<int64_t>(table.columns.size())) {
    return Status::InvalidArgument("key column out of range");
  }
  for (const auto& [col, ref_table] : table.foreign_keys) {
    if (col < 0 || col >= static_cast<int64_t>(table.columns.size())) {
      return Status::InvalidArgument("foreign key column out of range");
    }
  }
  for (const auto& row : table.rows) {
    if (row.size() != table.columns.size()) {
      return Status::InvalidArgument("row width mismatch in table '" +
                                     table.name + "'");
    }
    VertexId entity = InternEntity(row[static_cast<size_t>(table.key_column)]);
    for (size_t c = 0; c < row.size(); ++c) {
      if (static_cast<int64_t>(c) == table.key_column) continue;
      if (row[c].empty()) continue;
      const bool is_fk =
          table.foreign_keys.count(static_cast<int64_t>(c)) > 0;
      if (is_fk) {
        // Foreign key: link entity-to-entity (interned so order of table
        // ingestion does not matter).
        VertexId ref = InternEntity(row[c]);
        CROSSEM_RETURN_NOT_OK(
            graph_.AddEdge(entity, ref, "ref " + table.columns[c]));
      } else {
        VertexId value = InternValue(row[c]);
        CROSSEM_RETURN_NOT_OK(
            graph_.AddEdge(entity, value, "has " + table.columns[c]));
      }
    }
  }
  return Status::OK();
}

Status GraphBuilder::AddJsonObject(const JsonValue& obj, VertexId vertex) {
  for (const auto& [key, value] : obj.object_members()) {
    if (key == "name" || key == "id") continue;  // identity, already used
    switch (value.type()) {
      case JsonValue::Type::kString:
        if (key == "$ref") {
          VertexId ref = InternEntity(value.string_value());
          CROSSEM_RETURN_NOT_OK(graph_.AddEdge(vertex, ref, "ref"));
        } else {
          VertexId v = InternValue(value.string_value());
          CROSSEM_RETURN_NOT_OK(graph_.AddEdge(vertex, v, key));
        }
        break;
      case JsonValue::Type::kNumber:
      case JsonValue::Type::kBool: {
        VertexId v = InternValue(ScalarToLabel(value));
        CROSSEM_RETURN_NOT_OK(graph_.AddEdge(vertex, v, key));
        break;
      }
      case JsonValue::Type::kNull:
        break;  // absent attribute
      case JsonValue::Type::kArray:
        for (const auto& item : value.array_items()) {
          if (item.is_object()) {
            const JsonValue* name = item.Find("name");
            if (name == nullptr) name = item.Find("id");
            if (name == nullptr || !name->is_string()) {
              return Status::InvalidArgument(
                  "nested object in array lacks a string name/id");
            }
            VertexId child = InternEntity(name->string_value());
            CROSSEM_RETURN_NOT_OK(graph_.AddEdge(vertex, child, key));
            CROSSEM_RETURN_NOT_OK(AddJsonObject(item, child));
          } else {
            VertexId v = InternValue(ScalarToLabel(item));
            CROSSEM_RETURN_NOT_OK(graph_.AddEdge(vertex, v, key));
          }
        }
        break;
      case JsonValue::Type::kObject: {
        const JsonValue* name = value.Find("name");
        if (name == nullptr) name = value.Find("id");
        if (name == nullptr || !name->is_string()) {
          return Status::InvalidArgument("nested object lacks a string name/id");
        }
        VertexId child = InternEntity(name->string_value());
        CROSSEM_RETURN_NOT_OK(graph_.AddEdge(vertex, child, key));
        CROSSEM_RETURN_NOT_OK(AddJsonObject(value, child));
        break;
      }
    }
  }
  return Status::OK();
}

Status GraphBuilder::AddJson(const JsonValue& doc) {
  // Accept a single object or an array of objects.
  std::vector<const JsonValue*> objects;
  if (doc.is_object()) {
    objects.push_back(&doc);
  } else if (doc.is_array()) {
    for (const auto& item : doc.array_items()) {
      if (!item.is_object()) {
        return Status::InvalidArgument("top-level array must contain objects");
      }
      objects.push_back(&item);
    }
  } else {
    return Status::InvalidArgument("JSON document must be object or array");
  }
  for (const JsonValue* obj : objects) {
    const JsonValue* name = obj->Find("name");
    if (name == nullptr) name = obj->Find("id");
    if (name == nullptr || !name->is_string()) {
      return Status::InvalidArgument("top-level object lacks a string name/id");
    }
    VertexId vertex = InternEntity(name->string_value());
    CROSSEM_RETURN_NOT_OK(AddJsonObject(*obj, vertex));
  }
  return Status::OK();
}

}  // namespace graph
}  // namespace crossem
