// Minimal JSON document model and recursive-descent parser.
//
// Supports the full JSON grammar (objects, arrays, strings with escapes,
// numbers, booleans, null). Used by the data-mapping step that encodes
// semi-structured data-lake sources into the unified graph.
#ifndef CROSSEM_GRAPH_JSON_H_
#define CROSSEM_GRAPH_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace crossem {
namespace graph {

/// A parsed JSON value (tree-owning).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& array_items() const;
  const std::map<std::string, JsonValue>& object_members() const;

  /// Member lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Serializes back to compact JSON text.
  std::string Dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace graph
}  // namespace crossem

#endif  // CROSSEM_GRAPH_JSON_H_
