#include "graph/graph.h"

#include <deque>
#include <sstream>
#include <unordered_set>

#include "util/logging.h"

namespace crossem {
namespace graph {

VertexId Graph::AddVertex(std::string label) {
  labels_.push_back(std::move(label));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return static_cast<VertexId>(labels_.size()) - 1;
}

Status Graph::AddEdge(VertexId src, VertexId dst, std::string label) {
  if (src < 0 || src >= NumVertices()) {
    return Status::OutOfRange("edge source vertex does not exist");
  }
  if (dst < 0 || dst >= NumVertices()) {
    return Status::OutOfRange("edge destination vertex does not exist");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst, std::move(label)});
  out_edges_[static_cast<size_t>(src)].push_back(id);
  in_edges_[static_cast<size_t>(dst)].push_back(id);
  return Status::OK();
}

void Graph::CheckVertex(VertexId v) const {
  CROSSEM_CHECK_GE(v, 0);
  CROSSEM_CHECK_LT(v, NumVertices());
}

const std::string& Graph::VertexLabel(VertexId v) const {
  CheckVertex(v);
  return labels_[static_cast<size_t>(v)];
}

const Edge& Graph::GetEdge(EdgeId e) const {
  CROSSEM_CHECK_GE(e, 0);
  CROSSEM_CHECK_LT(e, NumEdges());
  return edges_[static_cast<size_t>(e)];
}

const std::vector<EdgeId>& Graph::OutEdges(VertexId v) const {
  CheckVertex(v);
  return out_edges_[static_cast<size_t>(v)];
}

const std::vector<EdgeId>& Graph::InEdges(VertexId v) const {
  CheckVertex(v);
  return in_edges_[static_cast<size_t>(v)];
}

std::vector<VertexId> Graph::Neighbors(VertexId v) const {
  CheckVertex(v);
  std::vector<VertexId> result;
  std::unordered_set<VertexId> seen;
  for (EdgeId e : out_edges_[static_cast<size_t>(v)]) {
    VertexId u = edges_[static_cast<size_t>(e)].dst;
    if (seen.insert(u).second) result.push_back(u);
  }
  for (EdgeId e : in_edges_[static_cast<size_t>(v)]) {
    VertexId u = edges_[static_cast<size_t>(e)].src;
    if (seen.insert(u).second) result.push_back(u);
  }
  return result;
}

Subgraph Graph::DHopSubgraph(VertexId center, int64_t hops) const {
  CheckVertex(center);
  CROSSEM_CHECK_GE(hops, 0);
  Subgraph sub;
  sub.center = center;

  std::unordered_set<VertexId> in_sub;
  std::deque<std::pair<VertexId, int64_t>> frontier;  // (vertex, depth)
  frontier.emplace_back(center, 0);
  in_sub.insert(center);
  while (!frontier.empty()) {
    auto [v, depth] = frontier.front();
    frontier.pop_front();
    sub.vertices.push_back(v);
    if (depth == hops) continue;
    for (VertexId u : Neighbors(v)) {
      if (in_sub.insert(u).second) frontier.emplace_back(u, depth + 1);
    }
  }

  // Induced edges: both endpoints inside the vertex set.
  for (EdgeId e = 0; e < NumEdges(); ++e) {
    const Edge& edge = edges_[static_cast<size_t>(e)];
    if (in_sub.count(edge.src) && in_sub.count(edge.dst)) {
      sub.edges.push_back(e);
    }
  }
  return sub;
}

std::set<std::string> Graph::UniqueWords() const {
  std::set<std::string> words;
  auto add_words = [&words](const std::string& label) {
    std::istringstream in(label);
    std::string w;
    while (in >> w) words.insert(w);
  };
  for (const std::string& label : labels_) add_words(label);
  for (const Edge& e : edges_) add_words(e.label);
  return words;
}

VertexId Graph::FindVertex(const std::string& label) const {
  for (VertexId v = 0; v < NumVertices(); ++v) {
    if (labels_[static_cast<size_t>(v)] == label) return v;
  }
  return -1;
}

}  // namespace graph
}  // namespace crossem
