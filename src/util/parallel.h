// Shared parallel execution runtime: a lazily-initialized persistent
// thread pool behind chunked ParallelFor / ParallelReduce helpers.
//
// Determinism contract: work is split into fixed-size chunks of `grain`
// iterations. The chunk decomposition depends ONLY on (begin, end, grain)
// — never on the thread count — and ParallelReduce combines per-chunk
// partials sequentially in ascending chunk order. Therefore any
// computation whose per-chunk result is a pure function of its range
// (disjoint writes for ParallelFor, pure map for ParallelReduce) produces
// bitwise-identical results whether it runs on 1 thread or 64.
//
// Thread count resolution, in priority order:
//   1. SetNumThreads(n) (programmatic),
//   2. the CROSSEM_NUM_THREADS environment variable (read once),
//   3. std::thread::hardware_concurrency().
// A count of 1 bypasses the pool entirely and executes inline on the
// calling thread. Nested parallel regions (a ParallelFor issued from
// inside a worker chunk) also execute inline, so kernels can call other
// parallel kernels without deadlock or oversubscription.
//
// Dispatch is additionally capped at hardware_concurrency: requesting more
// threads than the machine has cores cannot go faster, only pay context-
// switch overhead, so the surplus request is honored in GetNumThreads()
// (callers can size data structures off it) but ignored when deciding how
// many workers to wake. Set CROSSEM_OVERSUBSCRIBE=1 to lift the cap —
// the sanitizer test suites do this so race detection still sees more
// concurrent workers than cores.
//
// Exceptions thrown by chunk bodies are captured (first one wins) and
// rethrown on the calling thread after all chunks have completed.
#ifndef CROSSEM_UTIL_PARALLEL_H_
#define CROSSEM_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace crossem {

/// Number of threads parallel regions may use (>= 1). Resolves the env /
/// hardware default on first call.
int GetNumThreads();

/// Overrides the thread count for subsequent parallel regions; n <= 0
/// restores the CROSSEM_NUM_THREADS / hardware default. The persistent
/// pool grows on demand and is never shrunk — a smaller count simply
/// leaves workers idle.
void SetNumThreads(int n);

/// True when called from inside a parallel chunk body (such regions run
/// their own parallel calls inline).
bool InParallelRegion();

/// Number of chunks ParallelForChunks will produce for a range and grain.
int64_t NumChunks(int64_t begin, int64_t end, int64_t grain);

/// Minimum total work (in ~per-float-op units) below which dispatching to
/// the pool costs more than it buys; callers fold it in via GrainWithCutoff.
/// 2^18 units is roughly 100µs of scalar arithmetic — several times the
/// measured cost of waking and draining a pool region.
constexpr int64_t kMinParallelWork = int64_t{1} << 18;

/// Per-op grain-size floor: returns `grain` unchanged when the range
/// carries enough total work (`n * work_per_iter >= kMinParallelWork`) to
/// amortize a pool dispatch, and otherwise the whole range, which makes
/// ParallelForChunks take its single-chunk inline path. Because the result
/// depends only on the problem size — never the thread count — the
/// determinism contract above is preserved.
inline int64_t GrainWithCutoff(int64_t grain, int64_t n,
                               int64_t work_per_iter) {
  if (n <= 0) return std::max<int64_t>(grain, 1);
  return (n * work_per_iter >= kMinParallelWork) ? grain
                                                 : std::max<int64_t>(n, 1);
}

namespace internal {

/// Marks the calling thread as inside a parallel region; returns the
/// previous flag for RestoreInlineRegion.
bool EnterInlineRegion();
void RestoreInlineRegion(bool prev);

/// Most threads a region will actually dispatch, resolved once:
/// hardware_concurrency (>= 1), or INT_MAX when CROSSEM_OVERSUBSCRIBE is
/// set. Deliberately NOT folded into GetNumThreads(): the requested count
/// must round-trip through Set/GetNumThreads unchanged, and only the
/// dispatch decision below treats cores as the useful ceiling.
int DispatchThreadCap();

/// Scoped EnterInlineRegion/RestoreInlineRegion (exception-safe).
struct InlineRegionGuard {
  bool prev = EnterInlineRegion();
  InlineRegionGuard() = default;
  InlineRegionGuard(const InlineRegionGuard&) = delete;
  InlineRegionGuard& operator=(const InlineRegionGuard&) = delete;
  ~InlineRegionGuard() { RestoreInlineRegion(prev); }
};

/// Type-erased pool dispatch for the multi-chunk case; blocks until every
/// chunk has run and rethrows the first chunk exception.
void ParallelForChunksImpl(
    int64_t begin, int64_t end, int64_t grain, int64_t chunks, int threads,
    const std::function<void(int64_t, int64_t, int64_t)>& fn);

}  // namespace internal

/// Runs fn(chunk_index, chunk_begin, chunk_end) over [begin, end) split
/// into chunks of at most `grain` iterations. Requires grain > 0 so the
/// decomposition is caller-controlled (and thread-count independent).
/// Chunks execute concurrently and writes must be disjoint across chunks.
/// Blocks until every chunk has finished.
///
/// The serial path (single chunk, one thread, or a nested call) invokes
/// the callable directly — no std::function is materialized — so the
/// helper is cheap enough for per-op hot paths; only work that actually
/// reaches the pool pays for type erasure.
template <typename Fn>
void ParallelForChunks(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  const int64_t chunks = NumChunks(begin, end, grain);
  if (chunks == 0) return;
  const int threads = std::min(GetNumThreads(), internal::DispatchThreadCap());
  if (chunks == 1 || threads <= 1 || InParallelRegion()) {
    internal::InlineRegionGuard guard;
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t b = begin + c * grain;
      fn(c, b, std::min<int64_t>(end, b + grain));
    }
    return;
  }
  internal::ParallelForChunksImpl(begin, end, grain, chunks, threads, fn);
}

/// Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks of
/// at most `grain` iterations (grain <= 0 picks a heuristic based on the
/// range and thread count). Same execution contract as ParallelForChunks.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  if (end <= begin) return;
  if (grain <= 0) {
    // Heuristic: ~4 chunks per thread bounds scheduling overhead while
    // keeping the pool busy. Only used where determinism does not depend
    // on the decomposition (disjoint writes).
    const int64_t n = end - begin;
    grain = std::max<int64_t>(1, n / (4 * GetNumThreads()));
  }
  ParallelForChunks(begin, end, grain,
                    [&fn](int64_t, int64_t b, int64_t e) { fn(b, e); });
}

/// Deterministic parallel reduction: `map(chunk_begin, chunk_end)` computes
/// a per-chunk partial, and `combine(acc, partial)` folds the partials in
/// ascending chunk order on the calling thread. `grain` must be positive;
/// the result is independent of the thread count by construction.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T init,
                 MapFn map, CombineFn combine) {
  const int64_t chunks = NumChunks(begin, end, grain);
  if (chunks <= 0) return init;
  // One cache line per partial: adjacent bare-T slots would share a line
  // across writer threads and the resulting false sharing costs more than
  // the reduction itself for cheap maps (measured on sum_reduce).
  struct alignas(64) PaddedPartial {
    T value{};
  };
  std::vector<PaddedPartial> partials(static_cast<size_t>(chunks));
  ParallelForChunks(begin, end, grain,
                    [&](int64_t c, int64_t b, int64_t e) {
                      partials[static_cast<size_t>(c)].value = map(b, e);
                    });
  T acc = init;
  for (const PaddedPartial& p : partials) acc = combine(acc, p.value);
  return acc;
}

}  // namespace crossem

#endif  // CROSSEM_UTIL_PARALLEL_H_
