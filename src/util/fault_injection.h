// Deterministic I/O fault injection for robustness testing.
//
// Library file I/O (checkpoint serialization, dataset CSV I/O) goes
// through the thin stdio wrappers in crossem::io below. Each wrapper
// consults a process-wide fault plan before delegating to the real call:
// when the plan says the Nth invocation of an operation fails, the
// wrapper returns the same failure shape the real call would (nullptr
// from Fopen, a short count from Fwrite, -1 from Rename, ...) with
// errno set to EIO — so callers exercise their genuine error paths.
//
// Arming a fault, two ways:
//   - programmatic (tests): fault::FailOn(fault::FileOp::kWrite, 3);
//     fails the 3rd Fwrite call observed after arming.
//   - environment: CROSSEM_FAULT_SPEC="write:3,open:1+" — a
//     comma-separated list of `op:n` (fail the nth call once) or `op:n+`
//     (fail the nth and every later call). Parsed once, on the first
//     wrapped call. Ops: open, read, write, flush, rename, remove.
//
// Serve-side faults (sharded scatter-gather chaos drills) live in the
// same plan under the `serve_shard` pseudo-op. Each shard worker calls
// fault::OnShardCall(shard) per search task and applies the returned
// action: added latency, dropped reply, corrupted scores, or a stuck
// (never-replying) worker. Spec grammar, colon-separated:
//
//   serve_shard:MODE[:MODIFIER]...
//     MODE      = delay_ms=N | drop | corrupt | stuck
//     MODIFIER  = shard=S    (only shard S; default every shard)
//               | every=K    (every Kth call of an applicable shard)
//               | nth=K[+]   (the Kth call, '+' = and every later one)
//               | p=F        (deterministic pseudo-random fraction F)
//
// e.g. "serve_shard:delay_ms=50:every=3,serve_shard:stuck:shard=2".
// Occurrence modifiers count per shard, so schedules are deterministic
// for a fixed per-shard call sequence; the p= form hashes (shard, call
// index) — also reproducible, no RNG stream involved. Programmatic
// arming goes through fault::ArmShardFault.
//
// The plan is disarmed by default; production binaries pay one relaxed
// atomic load per wrapped call. This is a test hook, not a chaos-monkey:
// counters are process-wide, so tests that arm faults should run the
// faulty operation in isolation and call fault::Clear() when done.
#ifndef CROSSEM_UTIL_FAULT_INJECTION_H_
#define CROSSEM_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/status.h"

namespace crossem {
namespace fault {

/// File operations that can be made to fail.
enum class FileOp : int {
  kOpen = 0,
  kRead,
  kWrite,
  kFlush,   // covers both fflush and fsync
  kRename,
  kRemove,
};
inline constexpr int kNumFileOps = 6;

/// "open", "read", ... (for specs and messages).
const char* FileOpName(FileOp op);

/// Arms `op` to fail on its `nth` (1-based) call counted from now.
/// `sticky` extends the failure to every call after the nth too.
/// Resets the op's call counter.
void FailOn(FileOp op, int64_t nth, bool sticky = false);

/// Disarms every fault and zeroes all counters (including the
/// environment-derived plan; the env is not re-read).
void Clear();

/// Calls of `op` observed since the last FailOn/Clear for that op.
int64_t CallCount(FileOp op);

/// Failures injected into `op` since the last FailOn/Clear for that op.
int64_t InjectedCount(FileOp op);

/// Parses a CROSSEM_FAULT_SPEC string and arms the described faults.
/// Returns InvalidArgument on malformed specs (nothing is armed).
Status ArmFromSpec(const std::string& spec);

/// Counts a call of `op` against the plan; true when this call must fail.
/// Used by the io wrappers; tests normally don't call it directly.
bool ShouldFail(FileOp op);

// -- Serve-side shard faults -------------------------------------------------

/// What a shard worker does to an afflicted search task.
enum class ShardFaultMode : int {
  kNone = 0,
  kDelay,    // add delay_ms of latency before answering
  kDrop,     // discard the task without replying (caller times out)
  kCorrupt,  // answer with garbage scores (caller-side validation food)
  kStuck,    // never reply; hold the worker until the call is abandoned
};

/// "delay", "drop", "corrupt", "stuck" (for specs and messages).
const char* ShardFaultModeName(ShardFaultMode mode);

/// One armed serve-shard fault. Default-constructed modifiers mean
/// "every call of every shard"; at most one of every/nth/probability
/// may be set.
struct ShardFaultSpec {
  ShardFaultMode mode = ShardFaultMode::kNone;
  int64_t delay_ms = 0;       // kDelay only
  int64_t shard = -1;         // restrict to one shard; -1 = all shards
  int64_t every = 0;          // fire on every Kth applicable call (per shard)
  int64_t nth = 0;            // fire on the Kth applicable call...
  bool sticky = false;        // ...and every later one when sticky
  double probability = -1.0;  // fire on a deterministic hash fraction
};

/// Appends `spec` to the serve-fault plan (specs are consulted in arm
/// order; the first match decides the action). Resets no counters.
void ArmShardFault(const ShardFaultSpec& spec);

/// Counts a search call on `shard` against the plan and returns the
/// action to apply (mode kNone when healthy). Thread-safe.
struct ShardFaultAction {
  ShardFaultMode mode = ShardFaultMode::kNone;
  int64_t delay_ms = 0;
};
ShardFaultAction OnShardCall(int64_t shard);

/// Calls observed on `shard` since the last Clear().
int64_t ShardCallCount(int64_t shard);

/// Serve faults injected (all shards, all modes) since the last Clear().
int64_t ShardFaultInjectedCount();

}  // namespace fault

namespace io {

// stdio pass-throughs with fault injection. Same contracts as the libc
// calls; injected failures set errno to EIO.

std::FILE* Fopen(const std::string& path, const char* mode);
size_t Fread(void* ptr, size_t size, size_t n, std::FILE* f);
size_t Fwrite(const void* ptr, size_t size, size_t n, std::FILE* f);
int Fflush(std::FILE* f);
/// fsync(2) of the descriptor behind `f` (counted as a kFlush op).
int Fsync(std::FILE* f);
int Rename(const std::string& from, const std::string& to);
int Remove(const std::string& path);

/// True when `path` exists (stat probe; deliberately NOT fault-injected —
/// resume logic uses it to distinguish "no checkpoint yet" from a real
/// I/O failure).
bool FileExists(const std::string& path);

}  // namespace io
}  // namespace crossem

#endif  // CROSSEM_UTIL_FAULT_INJECTION_H_
