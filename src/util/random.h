// Seeded pseudo-random generator used throughout the library.
//
// All stochastic components (data synthesis, initialization, sampling,
// shuffling) take an Rng so experiments are reproducible bit-for-bit.
#ifndef CROSSEM_UTIL_RANDOM_H_
#define CROSSEM_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace crossem {

/// Deterministic RNG wrapper (Mersenne twister) with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    CROSSEM_CHECK_LE(lo, hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Normal sample with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement (k <= n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Draws an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; requires a positive total.
  int64_t Categorical(const std::vector<double>& weights);

  /// Serializes the full engine state (the standard textual mt19937_64
  /// stream format). A generator restored via LoadState produces the
  /// exact same draw sequence — the basis of bit-for-bit training resume.
  std::string SaveState() const;

  /// Restores a state captured by SaveState; InvalidArgument on garbage.
  Status LoadState(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace crossem

#endif  // CROSSEM_UTIL_RANDOM_H_
