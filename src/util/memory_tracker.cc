#include "util/memory_tracker.h"

namespace crossem {

MemoryTracker& MemoryTracker::Instance() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::OnAlloc(int64_t bytes) {
  int64_t now = current_.fetch_add(bytes) + bytes;
  int64_t prev = peak_.load();
  while (now > prev && !peak_.compare_exchange_weak(prev, now)) {
  }
}

void MemoryTracker::OnFree(int64_t bytes) { current_.fetch_sub(bytes); }

void MemoryTracker::ResetPeak() { peak_.store(current_.load()); }

PeakMemoryScope::PeakMemoryScope() {
  MemoryTracker::Instance().ResetPeak();
  entry_peak_ = MemoryTracker::Instance().peak_bytes();
}

int64_t PeakMemoryScope::PeakBytes() const {
  return MemoryTracker::Instance().peak_bytes();
}

}  // namespace crossem
