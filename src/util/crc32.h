// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the checkpoint format v2 to detect bit rot and torn writes:
// every record payload carries its own CRC, and the file trailer chains
// the record CRCs into a whole-file checksum. Incremental use:
//
//   uint32_t crc = Crc32Update(0, a, na);
//   crc = Crc32Update(crc, b, nb);   // == Crc32(concat(a, b))
#ifndef CROSSEM_UTIL_CRC32_H_
#define CROSSEM_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace crossem {

/// CRC-32 of a buffer (equivalent to Crc32Update(0, data, n)).
uint32_t Crc32(const void* data, size_t n);

/// Extends a running CRC with more bytes. `crc` is the value returned by
/// a previous call (0 to start).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t n);

}  // namespace crossem

#endif  // CROSSEM_UTIL_CRC32_H_
