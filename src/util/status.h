// Status / Result<T> error-handling primitives in the Arrow/RocksDB idiom.
//
// Library code never throws across public API boundaries: fallible
// operations return a Status (or a Result<T> when they produce a value).
// Internal invariant violations use the CHECK macros in logging.h instead.
#ifndef CROSSEM_UTIL_STATUS_H_
#define CROSSEM_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace crossem {

/// Machine-readable category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kParseError = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kUnavailable = 9,       // transient overload; the caller may retry later
  kDeadlineExceeded = 10,
};

/// Returns a short human-readable name for `code` ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
///
/// Mirrors arrow::Result. Accessing the value of an errored Result aborts,
/// so callers must check ok() (or use ValueOr) first.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors arrow::Result,
  // allowing `return value;` and `return Status::...;` from the same function.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& MoveValue() {
    AbortIfError();
    return std::move(*value_);
  }
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void AbortWithStatus(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::AbortWithStatus(status_);
}

/// Propagates a non-OK Status out of the enclosing function.
#define CROSSEM_RETURN_NOT_OK(expr)               \
  do {                                            \
    ::crossem::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a Result<T> expression; on success assigns the value to
/// `lhs` (a declaration or an existing lvalue), on failure propagates the
/// status out of the enclosing function:
///
///   CROSSEM_ASSIGN_OR_RETURN(auto batches, generator.Generate(...));
#define CROSSEM_ASSIGN_OR_RETURN(lhs, expr) \
  CROSSEM_ASSIGN_OR_RETURN_IMPL_(           \
      CROSSEM_STATUS_CONCAT_(_crossem_result_, __LINE__), lhs, expr)

#define CROSSEM_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                   \
  if (!result.ok()) return result.status();               \
  lhs = result.MoveValue()

#define CROSSEM_STATUS_CONCAT_(a, b) CROSSEM_STATUS_CONCAT_IMPL_(a, b)
#define CROSSEM_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace crossem

#endif  // CROSSEM_UTIL_STATUS_H_
