#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "util/logging.h"

namespace crossem {
namespace {

/// Set while a thread is executing chunk bodies; nested regions run inline.
thread_local bool t_in_parallel = false;

/// One parallel region: a range chunked by `grain`, claimed chunk-by-chunk
/// via an atomic cursor by every participating thread.
struct Region {
  int64_t begin = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  std::function<void(int64_t, int64_t, int64_t)> fn;
  int64_t end = 0;

  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;

  /// Claims and runs chunks until none remain. Safe to call from any
  /// number of threads concurrently.
  void RunChunks() {
    for (;;) {
      const int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const int64_t b = begin + c * grain;
      const int64_t e = std::min(end, b + grain);
      try {
        fn(c, b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }

  void WaitAll() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] {
      return done.load(std::memory_order_acquire) == num_chunks;
    });
  }
};

/// Persistent worker pool. Workers sleep on a condition variable and wake
/// to help drain a posted Region; the caller always participates too, so a
/// region completes even if every worker is busy elsewhere.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool pool;  // joined in the destructor at process exit
    return pool;
  }

  /// Ensures at least `n` workers exist (callers keep one thread for
  /// themselves, so `n` is num_threads - 1).
  void EnsureWorkers(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < n) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Offers `helpers` work tickets for `region` to idle workers.
  void Post(const std::shared_ptr<Region>& region, int helpers) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int i = 0; i < helpers; ++i) jobs_.push_back(region);
    }
    if (helpers == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

 private:
  ThreadPool() = default;

  void WorkerLoop() {
    t_in_parallel = true;  // nested parallel calls from workers run inline
    for (;;) {
      std::shared_ptr<Region> region;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
        if (stop_) return;
        region = std::move(jobs_.front());
        jobs_.pop_front();
      }
      region->RunChunks();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Region>> jobs_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

int DefaultNumThreads() {
  if (const char* env = std::getenv("CROSSEM_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ResolveDispatchThreadCap() {
  if (const char* env = std::getenv("CROSSEM_OVERSUBSCRIBE")) {
    const std::string v = env;
    if (v != "0" && v != "false" && v != "off") {
      return std::numeric_limits<int>::max();
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// 0 = unset (fall back to env/hardware default).
std::atomic<int> g_num_threads{0};

}  // namespace

int GetNumThreads() {
  const int n = g_num_threads.load(std::memory_order_relaxed);
  if (n > 0) return n;
  // Resolved once: getenv + hardware_concurrency are far too slow for a
  // function on the per-op dispatch path.
  static const int kDefault = DefaultNumThreads();
  return kDefault;
}

void SetNumThreads(int n) {
  g_num_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

bool InParallelRegion() { return t_in_parallel; }

int64_t NumChunks(int64_t begin, int64_t end, int64_t grain) {
  CROSSEM_CHECK_GT(grain, 0);
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}

namespace internal {

int DispatchThreadCap() {
  static const int kCap = ResolveDispatchThreadCap();
  return kCap;
}

bool EnterInlineRegion() {
  const bool prev = t_in_parallel;
  t_in_parallel = true;
  return prev;
}

void RestoreInlineRegion(bool prev) { t_in_parallel = prev; }

void ParallelForChunksImpl(
    int64_t begin, int64_t end, int64_t grain, int64_t chunks, int threads,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  // Only multi-chunk pool dispatches get a span: the serial/inline path
  // is on per-op hot loops where even an enabled span would distort the
  // measurement (and a disabled one still costs a branch per call).
  CROSSEM_TRACE_SPAN_V(span, "parallel_region");
  span.Arg("chunks", chunks).Arg("threads", static_cast<int64_t>(threads));

  auto region = std::make_shared<Region>();
  region->begin = begin;
  region->end = end;
  region->grain = grain;
  region->num_chunks = chunks;
  region->fn = fn;

  const int helpers = static_cast<int>(
      std::min<int64_t>(threads - 1, chunks - 1));
  ThreadPool::Instance().EnsureWorkers(helpers);
  ThreadPool::Instance().Post(region, helpers);

  t_in_parallel = true;
  region->RunChunks();
  t_in_parallel = false;
  region->WaitAll();
  if (region->error) std::rethrow_exception(region->error);
}

}  // namespace internal

}  // namespace crossem
