// Fixed-width ASCII table writer used by the benchmark harnesses to print
// paper-style result tables (Table II-V) to stdout.
#ifndef CROSSEM_UTIL_TABLE_PRINTER_H_
#define CROSSEM_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace crossem {

/// Accumulates rows of string cells and renders them column-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are right-padded
  /// with empty cells; longer rows are an error.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string Fmt(double v, int precision = 2);

  /// Renders the full table (header, separator, rows) to a string.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crossem

#endif  // CROSSEM_UTIL_TABLE_PRINTER_H_
