#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace crossem {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

namespace internal {
void AbortWithStatus(const Status& status) {
  std::fprintf(stderr, "Fatal: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace crossem
