// Wall-clock stopwatch for the efficiency experiments (Table III, Fig. 8).
#ifndef CROSSEM_UTIL_TIMER_H_
#define CROSSEM_UTIL_TIMER_H_

#include <chrono>

namespace crossem {

/// Monotonic stopwatch; starts running on construction.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crossem

#endif  // CROSSEM_UTIL_TIMER_H_
