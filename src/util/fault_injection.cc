#include "util/fault_injection.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/logging.h"

namespace crossem {
namespace fault {

namespace {

struct OpPlan {
  int64_t fail_at = 0;   // 1-based call index; 0 = disarmed
  bool sticky = false;
  int64_t calls = 0;
  int64_t injected = 0;
};

struct FaultState {
  std::mutex mu;
  OpPlan plans[kNumFileOps];
  // Any op armed? Checked lock-free on the hot path.
  std::atomic<bool> armed{false};

  void RecomputeArmed() {
    bool any = false;
    for (const OpPlan& p : plans) any = any || p.fail_at > 0;
    armed.store(any, std::memory_order_relaxed);
  }
};

FaultState& State() {
  static FaultState* state = new FaultState();
  return *state;
}

/// Parses the CROSSEM_FAULT_SPEC environment variable exactly once, before
/// the first wrapped call consults the plan.
void EnsureEnvLoaded() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("CROSSEM_FAULT_SPEC");
    if (spec == nullptr || spec[0] == '\0') return;
    Status st = ArmFromSpec(spec);
    if (!st.ok()) {
      CROSSEM_LOG(Error) << "ignoring invalid CROSSEM_FAULT_SPEC: "
                         << st.ToString();
    } else {
      CROSSEM_LOG(Warning) << "I/O fault injection armed from "
                           << "CROSSEM_FAULT_SPEC='" << spec << "'";
    }
  });
}

Result<FileOp> ParseOpName(const std::string& name) {
  for (int i = 0; i < kNumFileOps; ++i) {
    if (name == FileOpName(static_cast<FileOp>(i))) {
      return static_cast<FileOp>(i);
    }
  }
  return Status::InvalidArgument("unknown file op '" + name + "'");
}

}  // namespace

const char* FileOpName(FileOp op) {
  switch (op) {
    case FileOp::kOpen: return "open";
    case FileOp::kRead: return "read";
    case FileOp::kWrite: return "write";
    case FileOp::kFlush: return "flush";
    case FileOp::kRename: return "rename";
    case FileOp::kRemove: return "remove";
  }
  return "?";
}

void FailOn(FileOp op, int64_t nth, bool sticky) {
  CROSSEM_CHECK_GT(nth, 0);
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  OpPlan& p = s.plans[static_cast<int>(op)];
  p = OpPlan{};
  p.fail_at = nth;
  p.sticky = sticky;
  s.RecomputeArmed();
}

void Clear() {
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  for (OpPlan& p : s.plans) p = OpPlan{};
  s.RecomputeArmed();
}

int64_t CallCount(FileOp op) {
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.plans[static_cast<int>(op)].calls;
}

int64_t InjectedCount(FileOp op) {
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.plans[static_cast<int>(op)].injected;
}

Status ArmFromSpec(const std::string& spec) {
  // Validate the whole spec before arming anything.
  struct Parsed {
    FileOp op;
    int64_t nth;
    bool sticky;
  };
  std::vector<Parsed> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' lacks ':'");
    }
    auto op = ParseOpName(entry.substr(0, colon));
    if (!op.ok()) return op.status();
    std::string count = entry.substr(colon + 1);
    bool sticky = false;
    if (!count.empty() && count.back() == '+') {
      sticky = true;
      count.pop_back();
    }
    if (count.empty() ||
        count.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' has a bad call index");
    }
    const int64_t nth = std::atoll(count.c_str());
    if (nth <= 0) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' must use a positive call index");
    }
    parsed.push_back(Parsed{op.value(), nth, sticky});
  }
  for (const Parsed& p : parsed) FailOn(p.op, p.nth, p.sticky);
  return Status::OK();
}

bool ShouldFail(FileOp op) {
  EnsureEnvLoaded();
  FaultState& s = State();
  if (!s.armed.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(s.mu);
  OpPlan& p = s.plans[static_cast<int>(op)];
  ++p.calls;
  if (p.fail_at <= 0) return false;
  const bool fail =
      p.sticky ? p.calls >= p.fail_at : p.calls == p.fail_at;
  if (fail) ++p.injected;
  return fail;
}

}  // namespace fault

namespace io {

namespace {
bool Inject(fault::FileOp op) {
  if (!fault::ShouldFail(op)) return false;
  errno = EIO;
  return true;
}
}  // namespace

std::FILE* Fopen(const std::string& path, const char* mode) {
  if (Inject(fault::FileOp::kOpen)) return nullptr;
  return std::fopen(path.c_str(), mode);
}

size_t Fread(void* ptr, size_t size, size_t n, std::FILE* f) {
  if (Inject(fault::FileOp::kRead)) return 0;
  return std::fread(ptr, size, n, f);
}

size_t Fwrite(const void* ptr, size_t size, size_t n, std::FILE* f) {
  if (Inject(fault::FileOp::kWrite)) return 0;
  return std::fwrite(ptr, size, n, f);
}

int Fflush(std::FILE* f) {
  if (Inject(fault::FileOp::kFlush)) return EOF;
  return std::fflush(f);
}

int Fsync(std::FILE* f) {
  if (Inject(fault::FileOp::kFlush)) return -1;
  return ::fsync(::fileno(f));
}

int Rename(const std::string& from, const std::string& to) {
  if (Inject(fault::FileOp::kRename)) return -1;
  return std::rename(from.c_str(), to.c_str());
}

int Remove(const std::string& path) {
  if (Inject(fault::FileOp::kRemove)) return -1;
  return std::remove(path.c_str());
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace io
}  // namespace crossem
