#include "util/fault_injection.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/logging.h"

namespace crossem {
namespace fault {

namespace {

struct OpPlan {
  int64_t fail_at = 0;   // 1-based call index; 0 = disarmed
  bool sticky = false;
  int64_t calls = 0;
  int64_t injected = 0;
};

struct FaultState {
  std::mutex mu;
  OpPlan plans[kNumFileOps];
  // Any op armed? Checked lock-free on the hot path.
  std::atomic<bool> armed{false};

  // Serve-shard plan: armed specs in arm order, per-shard call counters
  // (grown on demand), total injected count. serve_armed is the
  // lock-free hot-path gate mirroring `armed`.
  std::vector<ShardFaultSpec> shard_specs;
  std::vector<int64_t> shard_calls;
  int64_t shard_injected = 0;
  std::atomic<bool> serve_armed{false};

  void RecomputeArmed() {
    bool any = false;
    for (const OpPlan& p : plans) any = any || p.fail_at > 0;
    armed.store(any, std::memory_order_relaxed);
    serve_armed.store(!shard_specs.empty(), std::memory_order_relaxed);
  }
};

FaultState& State() {
  static FaultState* state = new FaultState();
  return *state;
}

/// Parses the CROSSEM_FAULT_SPEC environment variable exactly once, before
/// the first wrapped call consults the plan.
void EnsureEnvLoaded() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("CROSSEM_FAULT_SPEC");
    if (spec == nullptr || spec[0] == '\0') return;
    Status st = ArmFromSpec(spec);
    if (!st.ok()) {
      CROSSEM_LOG(Error) << "ignoring invalid CROSSEM_FAULT_SPEC: "
                         << st.ToString();
    } else {
      CROSSEM_LOG(Warning) << "I/O fault injection armed from "
                           << "CROSSEM_FAULT_SPEC='" << spec << "'";
    }
  });
}

Result<FileOp> ParseOpName(const std::string& name) {
  for (int i = 0; i < kNumFileOps; ++i) {
    if (name == FileOpName(static_cast<FileOp>(i))) {
      return static_cast<FileOp>(i);
    }
  }
  return Status::InvalidArgument("unknown file op '" + name + "'");
}

// SplitMix64 finalizer; drives the deterministic p= form so the same
// (shard, call index) pair always resolves the same way.
uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Result<int64_t> ParseIntAtLeast(const std::string& text, int64_t floor,
                                const std::string& entry) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("fault spec entry '" + entry +
                                   "' has a bad number '" + text + "'");
  }
  const int64_t value = std::atoll(text.c_str());
  if (value < floor) {
    return Status::InvalidArgument("fault spec entry '" + entry +
                                   "' needs a number >= " +
                                   std::to_string(floor) + ", got '" + text +
                                   "'");
  }
  return value;
}

// Parses "serve_shard:MODE[:MODIFIER]..." (the op name is already
// stripped by the caller; `body` starts at MODE).
Result<ShardFaultSpec> ParseShardEntry(const std::string& body,
                                       const std::string& entry) {
  ShardFaultSpec spec;
  int occurrence_modifiers = 0;
  size_t pos = 0;
  bool first = true;
  while (pos <= body.size()) {
    size_t colon = body.find(':', pos);
    if (colon == std::string::npos) colon = body.size();
    const std::string seg = body.substr(pos, colon - pos);
    pos = colon + 1;
    if (seg.empty()) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' has an empty segment");
    }
    const size_t eq = seg.find('=');
    const std::string key = seg.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? std::string() : seg.substr(eq + 1);
    if (first) {
      first = false;
      if (key == "delay_ms") {
        spec.mode = ShardFaultMode::kDelay;
        CROSSEM_ASSIGN_OR_RETURN(spec.delay_ms,
                                 ParseIntAtLeast(val, 1, entry));
      } else if (seg == "drop") {
        spec.mode = ShardFaultMode::kDrop;
      } else if (seg == "corrupt") {
        spec.mode = ShardFaultMode::kCorrupt;
      } else if (seg == "stuck") {
        spec.mode = ShardFaultMode::kStuck;
      } else {
        return Status::InvalidArgument("fault spec entry '" + entry +
                                       "' has unknown mode '" + seg + "'");
      }
    } else if (key == "shard") {
      CROSSEM_ASSIGN_OR_RETURN(spec.shard, ParseIntAtLeast(val, 0, entry));
    } else if (key == "every") {
      ++occurrence_modifiers;
      CROSSEM_ASSIGN_OR_RETURN(spec.every, ParseIntAtLeast(val, 1, entry));
    } else if (key == "nth") {
      ++occurrence_modifiers;
      std::string count = val;
      if (!count.empty() && count.back() == '+') {
        spec.sticky = true;
        count.pop_back();
      }
      CROSSEM_ASSIGN_OR_RETURN(spec.nth, ParseIntAtLeast(count, 1, entry));
    } else if (key == "p") {
      ++occurrence_modifiers;
      char* end = nullptr;
      spec.probability = std::strtod(val.c_str(), &end);
      if (val.empty() || end == nullptr || *end != '\0' ||
          spec.probability < 0.0 || spec.probability > 1.0) {
        return Status::InvalidArgument("fault spec entry '" + entry +
                                       "' needs p in [0,1], got '" + val +
                                       "'");
      }
    } else {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' has unknown modifier '" + seg + "'");
    }
    if (pos > body.size()) break;
  }
  if (occurrence_modifiers > 1) {
    return Status::InvalidArgument("fault spec entry '" + entry +
                                   "' sets more than one of every/nth/p");
  }
  return spec;
}

}  // namespace

const char* FileOpName(FileOp op) {
  switch (op) {
    case FileOp::kOpen: return "open";
    case FileOp::kRead: return "read";
    case FileOp::kWrite: return "write";
    case FileOp::kFlush: return "flush";
    case FileOp::kRename: return "rename";
    case FileOp::kRemove: return "remove";
  }
  return "?";
}

void FailOn(FileOp op, int64_t nth, bool sticky) {
  CROSSEM_CHECK_GT(nth, 0);
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  OpPlan& p = s.plans[static_cast<int>(op)];
  p = OpPlan{};
  p.fail_at = nth;
  p.sticky = sticky;
  s.RecomputeArmed();
}

void Clear() {
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  for (OpPlan& p : s.plans) p = OpPlan{};
  s.shard_specs.clear();
  s.shard_calls.clear();
  s.shard_injected = 0;
  s.RecomputeArmed();
}

int64_t CallCount(FileOp op) {
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.plans[static_cast<int>(op)].calls;
}

int64_t InjectedCount(FileOp op) {
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.plans[static_cast<int>(op)].injected;
}

Status ArmFromSpec(const std::string& spec) {
  // Validate the whole spec before arming anything.
  struct Parsed {
    FileOp op;
    int64_t nth;
    bool sticky;
  };
  std::vector<Parsed> parsed;
  std::vector<ShardFaultSpec> shard_parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' lacks ':'");
    }
    if (entry.compare(0, colon, "serve_shard") == 0) {
      auto shard_spec = ParseShardEntry(entry.substr(colon + 1), entry);
      if (!shard_spec.ok()) return shard_spec.status();
      shard_parsed.push_back(shard_spec.value());
      continue;
    }
    auto op = ParseOpName(entry.substr(0, colon));
    if (!op.ok()) return op.status();
    std::string count = entry.substr(colon + 1);
    bool sticky = false;
    if (!count.empty() && count.back() == '+') {
      sticky = true;
      count.pop_back();
    }
    if (count.empty() ||
        count.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' has a bad call index");
    }
    const int64_t nth = std::atoll(count.c_str());
    if (nth <= 0) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' must use a positive call index");
    }
    parsed.push_back(Parsed{op.value(), nth, sticky});
  }
  for (const Parsed& p : parsed) FailOn(p.op, p.nth, p.sticky);
  for (const ShardFaultSpec& s : shard_parsed) ArmShardFault(s);
  return Status::OK();
}

bool ShouldFail(FileOp op) {
  EnsureEnvLoaded();
  FaultState& s = State();
  if (!s.armed.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(s.mu);
  OpPlan& p = s.plans[static_cast<int>(op)];
  ++p.calls;
  if (p.fail_at <= 0) return false;
  const bool fail =
      p.sticky ? p.calls >= p.fail_at : p.calls == p.fail_at;
  if (fail) ++p.injected;
  return fail;
}

const char* ShardFaultModeName(ShardFaultMode mode) {
  switch (mode) {
    case ShardFaultMode::kNone: return "none";
    case ShardFaultMode::kDelay: return "delay";
    case ShardFaultMode::kDrop: return "drop";
    case ShardFaultMode::kCorrupt: return "corrupt";
    case ShardFaultMode::kStuck: return "stuck";
  }
  return "?";
}

void ArmShardFault(const ShardFaultSpec& spec) {
  CROSSEM_CHECK(spec.mode != ShardFaultMode::kNone);
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.shard_specs.push_back(spec);
  s.RecomputeArmed();
}

ShardFaultAction OnShardCall(int64_t shard) {
  EnsureEnvLoaded();
  CROSSEM_CHECK_GE(shard, 0);
  FaultState& s = State();
  if (!s.serve_armed.load(std::memory_order_relaxed)) return {};
  std::lock_guard<std::mutex> lock(s.mu);
  if (static_cast<size_t>(shard) >= s.shard_calls.size()) {
    s.shard_calls.resize(static_cast<size_t>(shard) + 1, 0);
  }
  const int64_t call = ++s.shard_calls[static_cast<size_t>(shard)];
  for (const ShardFaultSpec& spec : s.shard_specs) {
    if (spec.shard >= 0 && spec.shard != shard) continue;
    bool fire = true;
    if (spec.every > 0) {
      fire = call % spec.every == 0;
    } else if (spec.nth > 0) {
      fire = spec.sticky ? call >= spec.nth : call == spec.nth;
    } else if (spec.probability >= 0.0) {
      const uint64_t h =
          MixBits((static_cast<uint64_t>(shard) << 32) ^
                  static_cast<uint64_t>(call));
      // Top 53 bits -> uniform double in [0, 1).
      fire = static_cast<double>(h >> 11) * 0x1.0p-53 < spec.probability;
    }
    if (!fire) continue;
    ++s.shard_injected;
    return ShardFaultAction{spec.mode, spec.delay_ms};
  }
  return {};
}

int64_t ShardCallCount(int64_t shard) {
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (shard < 0 || static_cast<size_t>(shard) >= s.shard_calls.size()) {
    return 0;
  }
  return s.shard_calls[static_cast<size_t>(shard)];
}

int64_t ShardFaultInjectedCount() {
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.shard_injected;
}

}  // namespace fault

namespace io {

namespace {
bool Inject(fault::FileOp op) {
  if (!fault::ShouldFail(op)) return false;
  errno = EIO;
  return true;
}
}  // namespace

std::FILE* Fopen(const std::string& path, const char* mode) {
  if (Inject(fault::FileOp::kOpen)) return nullptr;
  return std::fopen(path.c_str(), mode);
}

size_t Fread(void* ptr, size_t size, size_t n, std::FILE* f) {
  if (Inject(fault::FileOp::kRead)) return 0;
  return std::fread(ptr, size, n, f);
}

size_t Fwrite(const void* ptr, size_t size, size_t n, std::FILE* f) {
  if (Inject(fault::FileOp::kWrite)) return 0;
  return std::fwrite(ptr, size, n, f);
}

int Fflush(std::FILE* f) {
  if (Inject(fault::FileOp::kFlush)) return EOF;
  return std::fflush(f);
}

int Fsync(std::FILE* f) {
  if (Inject(fault::FileOp::kFlush)) return -1;
  return ::fsync(::fileno(f));
}

int Rename(const std::string& from, const std::string& to) {
  if (Inject(fault::FileOp::kRename)) return -1;
  return std::rename(from.c_str(), to.c_str());
}

int Remove(const std::string& path) {
  if (Inject(fault::FileOp::kRemove)) return -1;
  return std::remove(path.c_str());
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace io
}  // namespace crossem
