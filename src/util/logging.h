// Minimal logging and internal-invariant CHECK macros.
//
// CHECK* is for programmer errors (invariant violations) and aborts the
// process; recoverable errors use Status from status.h.
#ifndef CROSSEM_UTIL_LOGGING_H_
#define CROSSEM_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace crossem {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level below which log lines are dropped. The
/// default is kInfo, overridable at startup with the CROSSEM_LOG_LEVEL
/// environment variable ("debug"/"info"/"warning"/"error", or 0-3; read
/// once at first use). The level is an atomic: Set/Get are safe to call
/// concurrently with logging from any thread, and emitted lines are
/// serialized so concurrent log statements never interleave mid-line.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace crossem

#define CROSSEM_LOG(level)                                              \
  ::crossem::internal::LogMessage(::crossem::LogLevel::k##level,        \
                                  __FILE__, __LINE__)

#define CROSSEM_CHECK(expr)                                             \
  if (expr) {                                                           \
  } else                                                                \
    ::crossem::internal::FatalMessage(__FILE__, __LINE__, #expr)

#define CROSSEM_CHECK_EQ(a, b) CROSSEM_CHECK((a) == (b))
#define CROSSEM_CHECK_NE(a, b) CROSSEM_CHECK((a) != (b))
#define CROSSEM_CHECK_LT(a, b) CROSSEM_CHECK((a) < (b))
#define CROSSEM_CHECK_LE(a, b) CROSSEM_CHECK((a) <= (b))
#define CROSSEM_CHECK_GT(a, b) CROSSEM_CHECK((a) > (b))
#define CROSSEM_CHECK_GE(a, b) CROSSEM_CHECK((a) >= (b))

#endif  // CROSSEM_UTIL_LOGGING_H_
