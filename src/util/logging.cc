#include "util/logging.h"

namespace crossem {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace crossem
