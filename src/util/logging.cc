#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>

namespace crossem {

namespace {

/// CROSSEM_LOG_LEVEL: symbolic name (any case) or numeric 0-3.
LogLevel LevelFromEnv() {
  const char* env = std::getenv("CROSSEM_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return LogLevel::kInfo;
  std::string v;
  for (const char* p = env; *p; ++p) {
    v.push_back(static_cast<char>(std::tolower(*p)));
  }
  if (v == "debug" || v == "0") return LogLevel::kDebug;
  if (v == "info" || v == "1") return LogLevel::kInfo;
  if (v == "warning" || v == "warn" || v == "2") return LogLevel::kWarning;
  if (v == "error" || v == "3") return LogLevel::kError;
  return LogLevel::kInfo;
}

/// Function-local static so the env read happens exactly once, on first
/// use, regardless of static-initialization order.
std::atomic<LogLevel>& LevelFlag() {
  static std::atomic<LogLevel> level{LevelFromEnv()};
  return level;
}

/// Serializes emitted lines: without this, two threads' operator<< calls
/// on stderr can interleave mid-line.
std::mutex& OutputMutex() {
  static std::mutex mu;
  return mu;
}

/// Writes one complete line to stderr under the output lock.
void EmitLine(const std::string& message) {
  std::lock_guard<std::mutex> lock(OutputMutex());
  std::fwrite(message.data(), 1, message.size(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  return LevelFlag().load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  LevelFlag().store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) EmitLine(stream_.str());
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalMessage::~FatalMessage() {
  EmitLine(stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace crossem
