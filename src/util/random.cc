#include "util/random.h"

#include <numeric>
#include <sstream>

namespace crossem {

std::string Rng::SaveState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

Status Rng::LoadState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) {
    return Status::InvalidArgument("malformed RNG state string");
  }
  engine_ = restored;
  return Status::OK();
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  CROSSEM_CHECK_GE(n, k);
  CROSSEM_CHECK_GE(k, 0);
  std::vector<int64_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  // Partial Fisher-Yates: after i swaps, pool[0..i) is a uniform sample.
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = UniformInt(i, n - 1);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  CROSSEM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  CROSSEM_CHECK_GT(total, 0.0);
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (r < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

}  // namespace crossem
