#include "util/table_printer.h"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/logging.h"

namespace crossem {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CROSSEM_CHECK_LE(row.size(), header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& out) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c];
      for (size_t p = row[c].size(); p < widths[c]; ++p) out << ' ';
      out << " |";
    }
    out << "\n";
  };
  std::ostringstream out;
  render_row(header_, out);
  out << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) render_row(row, out);
  return out.str();
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace crossem
