// Accounting of live tensor bytes, standing in for device-memory telemetry.
//
// The paper reports peak GPU memory per training epoch (measured with
// NVIDIA Nsight). Our engine is CPU-resident, so we track the same
// quantity for it: bytes of tensor storage currently allocated, and the
// high-water mark since the last ResetPeak(). The tensor library calls
// OnAlloc/OnFree from its storage constructor/destructor.
#ifndef CROSSEM_UTIL_MEMORY_TRACKER_H_
#define CROSSEM_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>

namespace crossem {

/// Process-wide tensor-byte accountant. All methods are thread-safe.
class MemoryTracker {
 public:
  static MemoryTracker& Instance();

  void OnAlloc(int64_t bytes);
  void OnFree(int64_t bytes);

  int64_t current_bytes() const { return current_.load(); }
  int64_t peak_bytes() const { return peak_.load(); }

  /// Resets the high-water mark to the current usage.
  void ResetPeak();

 private:
  MemoryTracker() = default;

  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// RAII scope that reports the peak tensor bytes reached inside it.
class PeakMemoryScope {
 public:
  PeakMemoryScope();

  /// Peak bytes observed since construction.
  int64_t PeakBytes() const;

 private:
  int64_t entry_peak_;
};

}  // namespace crossem

#endif  // CROSSEM_UTIL_MEMORY_TRACKER_H_
