// IEEE 754 binary16 ("half") conversion helpers for the quantized
// serving path (serve/quant.h stores f16 embedding rows; nothing in the
// training stack computes in half precision).
//
// Pure bit manipulation — no compiler half-float extension, so the code
// builds identically on every toolchain and the conversions are exactly
// reproducible:
//   - F32ToF16 rounds to nearest, ties to even (the IEEE default),
//     handles subnormals, and saturates overflow to +-inf;
//   - F16ToF32 is exact (every half value is representable in float).
// Round-tripping any finite half through F16ToF32 -> F32ToF16 is
// bit-identical (tests/serve/quant_kernels_test.cc sweeps all 2^16
// patterns).
#ifndef CROSSEM_TENSOR_F16_H_
#define CROSSEM_TENSOR_F16_H_

#include <cstdint>
#include <cstring>

namespace crossem {

inline float F16ToF32(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  const uint32_t mant = h & 0x3ffu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // +-0
    } else {
      // Subnormal half: normalize the mantissa into a float exponent.
      uint32_t e = 127 - 15 + 1;
      uint32_t m = mant;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        --e;
      }
      bits = sign | (e << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (mant << 13);  // inf / nan
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

inline uint16_t F32ToF16(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  const uint16_t sign = static_cast<uint16_t>((bits >> 16) & 0x8000u);
  const uint32_t exp32 = (bits >> 23) & 0xffu;
  uint32_t mant = bits & 0x7fffffu;
  if (exp32 == 0xffu) {  // inf / nan (nan keeps a payload bit set)
    return static_cast<uint16_t>(sign | 0x7c00u | (mant != 0 ? 0x200u : 0u));
  }
  const int32_t exp = static_cast<int32_t>(exp32) - 127 + 15;
  if (exp >= 0x1f) return static_cast<uint16_t>(sign | 0x7c00u);  // overflow
  if (exp <= 0) {
    // Subnormal half (or underflow to zero): shift the full 24-bit
    // significand into place with round-to-nearest-even.
    if (exp < -10) return sign;  // < half the smallest subnormal
    mant |= 0x800000u;           // implicit leading bit
    const uint32_t shift = static_cast<uint32_t>(14 - exp);  // 14..24
    uint16_t half = static_cast<uint16_t>(mant >> shift);
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t midpoint = 1u << (shift - 1);
    if (rem > midpoint || (rem == midpoint && (half & 1u))) ++half;
    return static_cast<uint16_t>(sign | half);
  }
  // Normal: drop 13 mantissa bits with round-to-nearest-even. A mantissa
  // carry-out bumps the exponent arithmetically (all-ones rounds up to
  // the next power of two; 65520..65504+16 saturates to inf via 0x7c00).
  uint16_t half =
      static_cast<uint16_t>((static_cast<uint32_t>(exp) << 10) | (mant >> 13));
  const uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<uint16_t>(sign | half);
}

}  // namespace crossem

#endif  // CROSSEM_TENSOR_F16_H_
