#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "tensor/plan.h"
#include "tensor/pool.h"
#include "util/logging.h"
#include "util/memory_tracker.h"

namespace crossem {

int64_t ShapeNumel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    CROSSEM_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

namespace internal {

Storage::Storage(int64_t numel)
    : data_(TensorPool::Instance().Acquire(numel)),
      tracked_bytes_(numel * static_cast<int64_t>(sizeof(float))) {
  MemoryTracker::Instance().OnAlloc(tracked_bytes_);
}

Storage::~Storage() {
  // tracked_bytes_ (not data_.size()) keeps OnAlloc/OnFree symmetric even
  // after TakeData() emptied the buffer.
  MemoryTracker::Instance().OnFree(tracked_bytes_);
  TensorPool::Instance().Release(std::move(data_));
}

std::vector<float> Storage::TakeData() { return std::move(data_); }

Storage& TensorImpl::MutableGrad() {
  if (!grad) grad = std::make_shared<Storage>(numel());
  return *grad;
}

}  // namespace internal

namespace {
// Thread-local so worker threads in parallel regions manage their own
// no-grad scopes (see util/parallel.h); workers default to grad-on and
// must open a NoGradGuard themselves when running inference chunks.
thread_local bool t_grad_mode = true;
}  // namespace

bool GradModeEnabled() { return t_grad_mode; }

NoGradGuard::NoGradGuard() : prev_(t_grad_mode) { t_grad_mode = false; }
NoGradGuard::~NoGradGuard() { t_grad_mode = prev_; }

// -- Factories ----------------------------------------------------------------

namespace {
Tensor MakeTensor(Shape shape, bool requires_grad) {
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->storage = std::make_shared<internal::Storage>(impl->numel());
  impl->requires_grad = requires_grad;
  return Tensor::FromImpl(std::move(impl));
}
}  // namespace

Tensor Tensor::Zeros(Shape shape, bool requires_grad) {
  return MakeTensor(std::move(shape), requires_grad);
}

Tensor Tensor::Full(Shape shape, float value, bool requires_grad) {
  Tensor t = MakeTensor(std::move(shape), requires_grad);
  std::fill_n(t.data(), t.numel(), value);
  return t;
}

Tensor Tensor::Ones(Shape shape, bool requires_grad) {
  return Full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::Randn(Shape shape, Rng* rng, float stddev, bool requires_grad) {
  CROSSEM_CHECK(rng != nullptr);
  Tensor t = MakeTensor(std::move(shape), requires_grad);
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Rand(Shape shape, Rng* rng, float lo, float hi,
                    bool requires_grad) {
  CROSSEM_CHECK(rng != nullptr);
  Tensor t = MakeTensor(std::move(shape), requires_grad);
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::FromVector(Shape shape, const std::vector<float>& values,
                          bool requires_grad) {
  CROSSEM_CHECK_EQ(ShapeNumel(shape), static_cast<int64_t>(values.size()));
  Tensor t = MakeTensor(std::move(shape), requires_grad);
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector({}, {value}, requires_grad);
}

// -- Introspection --------------------------------------------------------------

const Shape& Tensor::shape() const {
  CROSSEM_CHECK(defined());
  return impl_->shape;
}

int64_t Tensor::dim() const { return static_cast<int64_t>(shape().size()); }

int64_t Tensor::size(int64_t d) const {
  CROSSEM_CHECK(defined());
  if (d < 0) d += dim();
  CROSSEM_CHECK_GE(d, 0);
  CROSSEM_CHECK_LT(d, dim());
  return impl_->shape[static_cast<size_t>(d)];
}

int64_t Tensor::numel() const {
  CROSSEM_CHECK(defined());
  return impl_->numel();
}

float* Tensor::data() {
  CROSSEM_CHECK(defined());
  return impl_->storage->data();
}

const float* Tensor::data() const {
  CROSSEM_CHECK(defined());
  return impl_->storage->data();
}

std::vector<float> Tensor::ToVector() const& {
  const float* p = data();
  return std::vector<float>(p, p + numel());
}

std::vector<float> Tensor::ToVector() && {
  CROSSEM_CHECK(defined());
  if (impl_.use_count() == 1 && impl_->storage &&
      impl_->storage.use_count() == 1) {
    // Sole owner of both handle and buffer: steal instead of copying. The
    // tensor is left undefined so any later use CHECK-fails loudly.
    std::vector<float> out = impl_->storage->TakeData();
    impl_.reset();
    return out;
  }
  return ToVector();  // aliased storage: lvalue overload copies
}

float Tensor::item() const {
  CROSSEM_CHECK_EQ(numel(), 1);
  return data()[0];
}

float Tensor::at(int64_t flat_index) const {
  CROSSEM_CHECK_GE(flat_index, 0);
  CROSSEM_CHECK_LT(flat_index, numel());
  return data()[flat_index];
}

// -- Autograd -------------------------------------------------------------------

bool Tensor::requires_grad() const {
  return defined() && impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool value) {
  CROSSEM_CHECK(defined());
  CROSSEM_CHECK(impl_->grad_fn == nullptr)
      << "set_requires_grad is only valid on leaf tensors";
  impl_->requires_grad = value;
  return *this;
}

Tensor Tensor::grad() const {
  CROSSEM_CHECK(defined());
  if (!impl_->grad) return Tensor();
  auto g = std::make_shared<internal::TensorImpl>();
  g->shape = impl_->shape;
  g->storage = impl_->grad;
  return FromImpl(std::move(g));
}

void Tensor::ZeroGrad() {
  CROSSEM_CHECK(defined());
  if (impl_->grad) {
    std::fill_n(impl_->grad->data(), impl_->grad->numel(), 0.0f);
  }
}

void Tensor::Backward() {
  CROSSEM_CHECK(defined());
  CROSSEM_CHECK_EQ(numel(), 1) << "Backward() requires a scalar output";

  // Topological order over AutogradNodes reachable from this output.
  std::vector<internal::TensorImpl*> order;
  std::unordered_set<internal::TensorImpl*> visited;
  // Iterative DFS to avoid stack overflow on deep graphs.
  struct Frame {
    internal::TensorImpl* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  if (impl_->grad_fn) {
    stack.push_back({impl_.get(), 0});
    visited.insert(impl_.get());
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    auto& fn = f.node->grad_fn;
    if (!fn || f.next_child >= fn->inputs.size()) {
      order.push_back(f.node);
      stack.pop_back();
      continue;
    }
    internal::TensorImpl* child = fn->inputs[f.next_child++].get();
    if (child->grad_fn && !visited.count(child)) {
      visited.insert(child);
      stack.push_back({child, 0});
    }
  }

  // Seed d(out)/d(out) = 1.
  impl_->MutableGrad().data()[0] += 1.0f;

  // `order` is post-order (children before parents), so iterate reversed.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->grad_fn && node->grad_fn->backward) {
      node->grad_fn->backward(*node);
    }
  }

  // Hand the schedule to an active execution plan (tensor/plan.h): replay
  // re-zeroes the touched grads, re-seeds, and runs these same closures in
  // this same order — bitwise-identical to the pass that just ran.
  plan::detail::RecordBackward(impl_, order);
}

Tensor Tensor::Detach() const {
  CROSSEM_CHECK(defined());
  auto d = std::make_shared<internal::TensorImpl>();
  d->shape = impl_->shape;
  d->storage = impl_->storage;
  d->requires_grad = false;
  return FromImpl(std::move(d));
}

Tensor Tensor::Clone() const {
  CROSSEM_CHECK(defined());
  Tensor out = MakeTensor(impl_->shape, false);
  std::copy_n(data(), numel(), out.data());
  return out;
}

Tensor Tensor::FromImpl(std::shared_ptr<internal::TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

}  // namespace crossem
