#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <utility>

#include "obs/trace.h"
#include "tensor/plan.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace crossem {
namespace ops {

namespace {

/// Elements per chunk for parallel elementwise loops. Fixed (independent of
/// the thread count) so chunked decompositions are bitwise-deterministic.
constexpr int64_t kElemGrain = 1 << 16;

/// Elements per chunk for the scalar Sum reduction. A reduction chunk is a
/// single streaming add per element, so the grain must stay well above the
/// dispatch break-even — but the old 2^18 floor carved the 2M-element
/// bench reduction into just 8 chunks, which a work-stealing pool cannot
/// balance across 8 threads (one straggler chunk serializes the tail: the
/// flat sum_reduce scaling in the parallel report). 2^16 elements is still
/// ~50µs of work per chunk, two orders above dispatch cost, and yields 32
/// chunks at bench size.
constexpr int64_t kReduceGrain = 1 << 16;

/// Grain for elementwise loops, degenerating to one (inline) chunk when the
/// tensor is too small to amortize a pool dispatch (GrainWithCutoff).
int64_t ElemGrain(int64_t n) { return GrainWithCutoff(kElemGrain, n, 1); }

/// Grain for strided copies (transpose). A strided gather costs several
/// times a sequential float op (the read stream has no spatial locality),
/// so each element is credited ~4 work units: the 64K-element transposes
/// of 256x256 similarity/attention blocks now cross the dispatch cutoff
/// and parallelize instead of serializing an otherwise-parallel GEMM
/// pipeline behind them (the flat gemm_trans_b scaling in the parallel
/// report). Chunk decomposition still depends only on the problem size.
int64_t TransposeGrain(int64_t n) {
  return GrainWithCutoff(kElemGrain / 4, n, 4);
}

/// Rows per chunk for row-wise kernels (softmax, normalize, reductions):
/// about 2^15 elements per chunk, serial below the dispatch break-even.
int64_t RowGrain(int64_t rows, int64_t cols) {
  const int64_t c = std::max<int64_t>(cols, 1);
  return GrainWithCutoff(std::max<int64_t>(1, (int64_t{1} << 15) / c), rows,
                         c);
}

/// Rows per chunk for transcendental-heavy row kernels (softmax's exp
/// pass). Each element costs several float ops' worth of work, so chunks
/// amortize dispatch at ~2^12 elements instead of 2^15 — the coarse
/// RowGrain left the 4096x256 bench softmax with too few chunks per
/// thread to balance (the flat softmax_fwd scaling in the parallel
/// report). Work per row is credited 8x for the cutoff.
int64_t ExpRowGrain(int64_t rows, int64_t cols) {
  const int64_t c = std::max<int64_t>(cols, 1);
  return GrainWithCutoff(std::max<int64_t>(1, (int64_t{1} << 12) / c), rows,
                         8 * c);
}

using internal::AutogradNode;
using internal::Storage;
using internal::TensorImpl;

bool NeedsGrad(const std::shared_ptr<TensorImpl>& impl) {
  return impl->requires_grad || impl->grad_fn != nullptr;
}

/// Creates the output tensor for an op and records the autograd node when
/// tracing is active. `backward` may be empty for non-differentiable ops.
Tensor MakeResult(Shape shape, std::vector<Tensor> inputs, const char* name,
                  std::function<void(const TensorImpl&)> backward) {
  // Completeness accounting: lets an open CaptureScope detect ops that
  // never recorded a forward closure (tensor/plan.h).
  plan::detail::NoteTensorOp();
  auto out = std::make_shared<TensorImpl>();
  out->shape = std::move(shape);
  out->storage = std::make_shared<Storage>(out->numel());
  bool any_grad = false;
  for (const Tensor& t : inputs) {
    if (NeedsGrad(t.impl())) any_grad = true;
  }
  if (any_grad && GradModeEnabled() && backward) {
    out->requires_grad = true;
    auto node = std::make_shared<AutogradNode>();
    node->op_name = name;
    for (const Tensor& t : inputs) node->inputs.push_back(t.impl());
    node->backward = std::move(backward);
    out->grad_fn = std::move(node);
  }
  return Tensor::FromImpl(std::move(out));
}

/// Row-major strides (in elements) for a shape.
std::vector<int64_t> ComputeStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t acc = 1;
  for (size_t i = shape.size(); i-- > 0;) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

/// Strides for reading `in_shape` as if broadcast to `out_shape`
/// (right-aligned; broadcast dims get stride 0).
std::vector<int64_t> BroadcastStrides(const Shape& in_shape,
                                      const Shape& out_shape) {
  std::vector<int64_t> in_strides = ComputeStrides(in_shape);
  std::vector<int64_t> strides(out_shape.size(), 0);
  size_t offset = out_shape.size() - in_shape.size();
  for (size_t i = 0; i < in_shape.size(); ++i) {
    if (in_shape[i] == out_shape[offset + i]) {
      strides[offset + i] = in_strides[i];
    } else {
      CROSSEM_CHECK_EQ(in_shape[i], 1)
          << "broadcast mismatch: " << ShapeToString(in_shape) << " vs "
          << ShapeToString(out_shape);
      strides[offset + i] = 0;
    }
  }
  return strides;
}

/// Maps a flat output index to an element offset of a broadcast input.
int64_t BroadcastOffset(int64_t flat, const std::vector<int64_t>& out_strides,
                        const std::vector<int64_t>& in_strides) {
  int64_t off = 0;
  for (size_t d = 0; d < out_strides.size(); ++d) {
    int64_t coord = flat / out_strides[d];
    flat -= coord * out_strides[d];
    off += coord * in_strides[d];
  }
  return off;
}

/// Shared implementation for broadcasting elementwise binary ops.
///
/// `fwd(av, bv)` computes the output element; `bwd(g, av, bv, &ga, &gb)`
/// adds the per-element gradient contributions (ga/gb may be ignored when
/// the corresponding input does not require gradients).
/// Visits output indices [lo, hi) in linear order, handing the body the
/// matching input offset under `read_strides`. The multi-index advances
/// odometer-style, so after the one-time seed at `lo` no per-element
/// div/mod is needed (BroadcastOffset does rank divisions per element).
template <typename Body>
void StridedVisit(int64_t lo, int64_t hi, const Shape& shape,
                  const std::vector<int64_t>& out_strides,
                  const std::vector<int64_t>& read_strides, Body body) {
  const size_t rank = shape.size();
  std::vector<int64_t> idx(rank, 0);
  int64_t rem = lo;
  int64_t off = 0;
  for (size_t d = 0; d < rank; ++d) {
    idx[d] = rem / out_strides[d];
    rem %= out_strides[d];
    off += idx[d] * read_strides[d];
  }
  for (int64_t i = lo; i < hi; ++i) {
    body(i, off);
    for (int64_t d = static_cast<int64_t>(rank) - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      ++idx[du];
      off += read_strides[du];
      if (idx[du] < shape[du]) break;
      off -= shape[du] * read_strides[du];
      idx[du] = 0;
    }
  }
}

/// How a broadcast operand's input offset follows the linear output index.
/// The two periodic kinds cover the ubiquitous cases — a trailing-dims
/// operand (bias [D] under [.., D]) maps by modulo, and a trailing-ones
/// operand (keepdim mean [.., 1] under [.., D]) maps by division — letting
/// those ops stream without the per-element div/mod walk of the general
/// stride path.
struct BcastPlan {
  enum Kind { kIdentity, kModulo, kDivide, kGeneral };
  Kind kind = kGeneral;
  int64_t period = 1;
};

BcastPlan PlanBroadcast(const Shape& x, const Shape& out, bool contig) {
  if (contig) return {BcastPlan::kIdentity, 1};
  // Trailing suffix: x (leading 1s stripped) equals the trailing out dims.
  size_t lead = 0;
  while (lead < x.size() && x[lead] == 1) ++lead;
  const size_t rx = x.size() - lead;
  if (rx <= out.size()) {
    bool suffix = true;
    int64_t period = 1;
    for (size_t d = 0; d < rx && suffix; ++d) {
      suffix = (x[lead + d] == out[out.size() - rx + d]);
      period *= x[lead + d];
    }
    if (suffix) return {BcastPlan::kModulo, period};
  }
  // Trailing run of 1s with equal leading dims: offset = i / run-extent.
  if (x.size() == out.size()) {
    size_t t = x.size();
    while (t > 0 && x[t - 1] == 1) --t;
    bool ok = t < x.size();
    int64_t div = 1;
    for (size_t d = t; d < x.size(); ++d) div *= out[d];
    for (size_t d = 0; d < t && ok; ++d) ok = (x[d] == out[d]);
    if (ok) return {BcastPlan::kDivide, div};
  }
  return {BcastPlan::kGeneral, 1};
}

/// Streams a broadcast operand's input offsets for consecutive output
/// indices, division-free after construction.
class BcastCursor {
 public:
  BcastCursor(const BcastPlan& plan, int64_t start)
      : kind_(plan.kind), period_(plan.period) {
    switch (kind_) {
      case BcastPlan::kIdentity:
        idx_ = start;
        break;
      case BcastPlan::kModulo:
        idx_ = start % period_;
        break;
      case BcastPlan::kDivide:
        idx_ = start / period_;
        rem_ = start - idx_ * period_;
        break;
      case BcastPlan::kGeneral:
        break;
    }
  }

  int64_t index() const { return idx_; }

  void Advance() {
    switch (kind_) {
      case BcastPlan::kIdentity:
        ++idx_;
        break;
      case BcastPlan::kModulo:
        if (++idx_ == period_) idx_ = 0;
        break;
      case BcastPlan::kDivide:
        if (++rem_ == period_) {
          rem_ = 0;
          ++idx_;
        }
        break;
      case BcastPlan::kGeneral:
        break;
    }
  }

 private:
  BcastPlan::Kind kind_;
  int64_t period_;
  int64_t idx_ = 0;
  int64_t rem_ = 0;
};

template <typename FwdFn, typename BwdFn>
Tensor BroadcastBinaryOp(const Tensor& a, const Tensor& b, const char* name,
                         FwdFn fwd, BwdFn bwd) {
  Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  std::vector<int64_t> out_strides = ComputeStrides(out_shape);
  std::vector<int64_t> a_strides = BroadcastStrides(a.shape(), out_shape);
  std::vector<int64_t> b_strides = BroadcastStrides(b.shape(), out_shape);
  const bool a_contig = (a.shape() == out_shape);
  const bool b_contig = (b.shape() == out_shape);
  const BcastPlan a_plan = PlanBroadcast(a.shape(), out_shape, a_contig);
  const BcastPlan b_plan = PlanBroadcast(b.shape(), out_shape, b_contig);
  const bool periodic = a_plan.kind != BcastPlan::kGeneral &&
                        b_plan.kind != BcastPlan::kGeneral;

  auto a_impl = a.impl();
  auto b_impl = b.impl();

  auto backward = [a_impl, b_impl, out_strides, a_strides, b_strides, a_contig,
                   b_contig, a_plan, b_plan, periodic,
                   bwd](const TensorImpl& out) {
    const float* g = out.grad->data();
    const float* av = a_impl->storage->data();
    const float* bv = b_impl->storage->data();
    float* ga = NeedsGrad(a_impl) ? a_impl->MutableGrad().data() : nullptr;
    float* gb = NeedsGrad(b_impl) ? b_impl->MutableGrad().data() : nullptr;
    const int64_t n = out.numel();
    if (a_contig && b_contig) {
      ParallelFor(0, n, ElemGrain(n), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          float da = 0.0f, db = 0.0f;
          bwd(g[i], av[i], bv[i], &da, &db);
          if (ga) ga[i] += da;
          if (gb) gb[i] += db;
        }
      });
    } else if (periodic) {
      // Broadcast dims scatter-add into shared grad slots; keep serial
      // (ascending i) but stream offsets division-free.
      BcastCursor ac(a_plan, 0), bc(b_plan, 0);
      for (int64_t i = 0; i < n; ++i) {
        float da = 0.0f, db = 0.0f;
        bwd(g[i], av[ac.index()], bv[bc.index()], &da, &db);
        if (ga) ga[ac.index()] += da;
        if (gb) gb[bc.index()] += db;
        ac.Advance();
        bc.Advance();
      }
    } else {
      // Broadcast dims scatter-add into shared grad slots; keep serial.
      for (int64_t i = 0; i < n; ++i) {
        int64_t ai = a_contig ? i : BroadcastOffset(i, out_strides, a_strides);
        int64_t bi = b_contig ? i : BroadcastOffset(i, out_strides, b_strides);
        float da = 0.0f, db = 0.0f;
        bwd(g[i], av[ai], bv[bi], &da, &db);
        if (ga) ga[ai] += da;
        if (gb) gb[bi] += db;
      }
    }
  };

  Tensor out = MakeResult(out_shape, {a, b}, name, backward);
  const int64_t n = out.numel();
  // Value-capturing forward: runs once eagerly; under plan capture the
  // same closure (over the same resolved buffers) is recorded for replay.
  auto compute = [a_plan, b_plan, periodic, a_contig, b_contig, fwd, n](
                     const float* av, const float* bv, float* ov,
                     const std::vector<int64_t>& ostr,
                     const std::vector<int64_t>& astr,
                     const std::vector<int64_t>& bstr) {
    if (a_contig && b_contig) {
      ParallelFor(0, n, ElemGrain(n), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) ov[i] = fwd(av[i], bv[i]);
      });
    } else if (periodic) {
      ParallelFor(0, n, ElemGrain(n), [&](int64_t lo, int64_t hi) {
        BcastCursor ac(a_plan, lo), bc(b_plan, lo);
        for (int64_t i = lo; i < hi; ++i) {
          ov[i] = fwd(av[ac.index()], bv[bc.index()]);
          ac.Advance();
          bc.Advance();
        }
      });
    } else {
      ParallelFor(0, n, ElemGrain(n), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          int64_t ai = a_contig ? i : BroadcastOffset(i, ostr, astr);
          int64_t bi = b_contig ? i : BroadcastOffset(i, ostr, bstr);
          ov[i] = fwd(av[ai], bv[bi]);
        }
      });
    }
  };
  compute(a.data(), b.data(), out.data(), out_strides, a_strides, b_strides);
  if (plan::CaptureActive()) {
    plan::detail::RecordOp(
        [compute, av = static_cast<const float*>(a.data()),
         bv = static_cast<const float*>(b.data()), ov = out.data(),
         out_strides, a_strides, b_strides]() {
          compute(av, bv, ov, out_strides, a_strides, b_strides);
        },
        {a, b, out});
  }
  return out;
}

/// Shared implementation for elementwise unary ops.
/// `dydx(x, y)` returns the local derivative given input and output values.
template <typename FwdFn, typename DyDxFn>
Tensor UnaryOp(const Tensor& a, const char* name, FwdFn fwd, DyDxFn dydx) {
  auto a_impl = a.impl();
  // Keep a copy of outputs for derivative formulas expressed in terms of y.
  auto backward = [a_impl, dydx](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    const float* x = a_impl->storage->data();
    const float* y = out.storage->data();
    float* ga = a_impl->MutableGrad().data();
    const int64_t n = out.numel();
    ParallelFor(0, n, ElemGrain(n), [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) ga[i] += g[i] * dydx(x[i], y[i]);
    });
  };
  Tensor out = MakeResult(a.shape(), {a}, name, backward);
  auto compute = [x = static_cast<const float*>(a.data()), y = out.data(),
                  n = a.numel(), fwd]() {
    ParallelFor(0, n, ElemGrain(n), [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) y[i] = fwd(x[i]);
    });
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, out);
  return out;
}

/// Rows of C per parallel chunk; also the unit the row micro-kernel tiles.
constexpr int64_t kGemmRowChunk = 32;
/// Depth of the K panel kept hot in cache between passes over C rows.
constexpr int64_t kGemmKBlock = 256;
/// Multiply-adds below which a GEMM runs serially on the calling thread:
/// ~2M flops is around a millisecond of scalar work, several times the
/// cost of waking the pool. The small per-layer GEMMs of the training
/// towers stay inline; the 256^3-and-up matrices still fan out.
constexpr int64_t kGemmMinParallelOps = int64_t{1} << 21;

// Function multi-versioning for the GEMM inner kernel: the binary stays
// baseline x86-64 (no -march flags leak into the portable build), but the
// dynamic loader's ifunc resolver picks an AVX2+FMA clone on CPUs that
// have it. Every clone accumulates each C row in ascending-p order, so
// results on a given machine are identical regardless of which clone runs
// — the thread-count determinism contract is unaffected.
// Sanitizer builds drop the clones: TSan/ASan runtimes intercept ifunc
// resolution and crash on multi-versioned symbols.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define CROSSEM_GEMM_CLONES \
  __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define CROSSEM_GEMM_CLONES
#endif

/// Columns of C held in registers across a K-panel (4 rows x 16 cols of
/// float accumulators fits the 16 YMM registers of the AVX2 clone).
constexpr int64_t kGemmNTile = 16;

/// C rows [r0, r1) += A rows [r0, r1) times the K-panel b[p0:p1, :].
///
/// Register-tiled micro-kernel: a 4 x kGemmNTile accumulator block is
/// loaded from C once, updated in registers across the whole K panel, and
/// stored back once — C traffic is O(m*n) per panel instead of O(m*n*k).
/// Each C element still accumulates its products in ascending-p order in
/// every tile/remainder path, so results are independent of tiling edges
/// and thread count.
CROSSEM_GEMM_CLONES
void GemmRowBlock(const float* a, const float* b, float* c, int64_t k,
                  int64_t n, int64_t p0, int64_t p1, int64_t r0, int64_t r1) {
  int64_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    int64_t j0 = 0;
    for (; j0 + kGemmNTile <= n; j0 += kGemmNTile) {
      float t0[kGemmNTile], t1[kGemmNTile], t2[kGemmNTile], t3[kGemmNTile];
      for (int64_t j = 0; j < kGemmNTile; ++j) {
        t0[j] = c0[j0 + j];
        t1[j] = c1[j0 + j];
        t2[j] = c2[j0 + j];
        t3[j] = c3[j0 + j];
      }
      for (int64_t p = p0; p < p1; ++p) {
        const float av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
        const float* bp = b + p * n + j0;
        for (int64_t j = 0; j < kGemmNTile; ++j) {
          const float bv = bp[j];
          t0[j] += av0 * bv;
          t1[j] += av1 * bv;
          t2[j] += av2 * bv;
          t3[j] += av3 * bv;
        }
      }
      for (int64_t j = 0; j < kGemmNTile; ++j) {
        c0[j0 + j] = t0[j];
        c1[j0 + j] = t1[j];
        c2[j0 + j] = t2[j];
        c3[j0 + j] = t3[j];
      }
    }
    for (; j0 < n; ++j0) {
      float s0 = c0[j0], s1 = c1[j0], s2 = c2[j0], s3 = c3[j0];
      for (int64_t p = p0; p < p1; ++p) {
        const float bv = b[p * n + j0];
        s0 += a0[p] * bv;
        s1 += a1[p] * bv;
        s2 += a2[p] * bv;
        s3 += a3[p] * bv;
      }
      c0[j0] = s0;
      c1[j0] = s1;
      c2[j0] = s2;
      c3[j0] = s3;
    }
  }
  for (; i < r1; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    int64_t j0 = 0;
    for (; j0 + kGemmNTile <= n; j0 += kGemmNTile) {
      float t[kGemmNTile];
      for (int64_t j = 0; j < kGemmNTile; ++j) t[j] = ci[j0 + j];
      for (int64_t p = p0; p < p1; ++p) {
        const float av = ai[p];
        const float* bp = b + p * n + j0;
        for (int64_t j = 0; j < kGemmNTile; ++j) t[j] += av * bp[j];
      }
      for (int64_t j = 0; j < kGemmNTile; ++j) ci[j0 + j] = t[j];
    }
    for (; j0 < n; ++j0) {
      float s = ci[j0];
      for (int64_t p = p0; p < p1; ++p) s += ai[p] * b[p * n + j0];
      ci[j0] = s;
    }
  }
}

/// C (m x n) = or += A (m x k) * B (k x n), with optional transposes
/// interpreting A as (k x m) / B as (n x k) physical layouts.
///
/// Transposed operands are packed once into contiguous row-major panels so
/// both layouts stream sequentially, the K dimension is blocked so the B
/// panel stays cache-resident, and C rows are processed four at a time to
/// reuse each B row across four accumulators. Row blocks run in parallel;
/// per-row accumulation order is fixed (ascending p), so results do not
/// depend on the thread count.
GemmKernel g_gemm_kernel = GemmKernel::kBlocked;

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate) {
  // Disabled-tracing cost is one relaxed load + branch — measured
  // against the 256^3 GEMM bench this is noise (DESIGN.md §11 budget).
  CROSSEM_TRACE_SPAN_V(span, "gemm");
  span.Arg("m", m).Arg("k", k).Arg("n", n);
  if (!accumulate) std::fill_n(c, m * n, 0.0f);
  if (m == 0 || n == 0 || k == 0) return;

  static thread_local std::vector<float> a_pack;
  static thread_local std::vector<float> b_pack;
  if (trans_a) {
    // a is physically (k x m); pack to row-major (m x k). Chunks write
    // disjoint pack columns, so the copy parallelizes for large panels
    // (and GrainWithCutoff keeps small ones on the calling thread).
    a_pack.resize(static_cast<size_t>(m * k));
    float* ap = a_pack.data();
    const float* asrc = a;
    ParallelFor(0, k,
                GrainWithCutoff(
                    std::max<int64_t>(1, (int64_t{1} << 15) /
                                            std::max<int64_t>(m, 1)),
                    k, m),
                [ap, asrc, m, k](int64_t p0, int64_t p1) {
                  for (int64_t p = p0; p < p1; ++p) {
                    const float* src = asrc + p * m;
                    for (int64_t i = 0; i < m; ++i) ap[i * k + p] = src[i];
                  }
                });
    a = a_pack.data();
  }
  if (trans_b) {
    // b is physically (n x k); pack to row-major (k x n). Same disjoint
    // column-chunk parallelization as the A pack.
    b_pack.resize(static_cast<size_t>(k * n));
    float* bp = b_pack.data();
    const float* bsrc = b;
    ParallelFor(0, n,
                GrainWithCutoff(
                    std::max<int64_t>(1, (int64_t{1} << 15) /
                                            std::max<int64_t>(k, 1)),
                    n, k),
                [bp, bsrc, k, n](int64_t j0, int64_t j1) {
                  for (int64_t j = j0; j < j1; ++j) {
                    const float* src = bsrc + j * k;
                    for (int64_t p = 0; p < k; ++p) bp[p * n + j] = src[p];
                  }
                });
    b = b_pack.data();
  }

  if (g_gemm_kernel == GemmKernel::kReference) {
    // The seed repository's serial scalar loop (including its zero-skip
    // branch), preserved as the benchmark baseline.
    for (int64_t i = 0; i < m; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = ai[p];
        if (av == 0.0f) continue;
        const float* bp = b + p * n;
        for (int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      }
    }
    return;
  }

  // Serial below the flop cutoff: the chunk decomposition still depends
  // only on the problem size, so determinism is unaffected.
  const int64_t row_grain = (m * n * k < kGemmMinParallelOps) ? m
                                                              : kGemmRowChunk;
  ParallelFor(0, m, row_grain, [a, b, c, k, n](int64_t r0, int64_t r1) {
    for (int64_t p0 = 0; p0 < k; p0 += kGemmKBlock) {
      const int64_t p1 = std::min(k, p0 + kGemmKBlock);
      GemmRowBlock(a, b, c, k, n, p0, p1, r0, r1);
    }
  });
}

// GELU tanh approximation, shared between ops::Gelu and the fused
// bias+activation kernel so both paths round identically per element.
constexpr float kGeluC = 0.7978845608f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

inline float GeluFwd(float x) {
  float inner = kGeluC * (x + kGeluA * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float GeluBwd(float x) {
  float x3 = x * x * x;
  float inner = kGeluC * (x + kGeluA * x3);
  float t = std::tanh(inner);
  float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * kGeluA * x * x);
}

FusedKernels ResolveFusedKernelsDefault() {
  const char* env = std::getenv("CROSSEM_FUSED_KERNELS");
  if (env != nullptr &&
      (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
       std::strcmp(env, "reference") == 0)) {
    return FusedKernels::kReference;
  }
  return FusedKernels::kFused;
}

FusedKernels g_fused_kernels = ResolveFusedKernelsDefault();

}  // namespace

void SetGemmKernel(GemmKernel kernel) { g_gemm_kernel = kernel; }

GemmKernel GetGemmKernel() { return g_gemm_kernel; }

void SetFusedKernels(FusedKernels mode) { g_fused_kernels = mode; }

FusedKernels GetFusedKernels() { return g_fused_kernels; }

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    if (da == db) {
      out[i] = da;
    } else if (da == 1) {
      out[i] = db;
    } else if (db == 1) {
      out[i] = da;
    } else {
      CROSSEM_CHECK(false) << "cannot broadcast " << ShapeToString(a) << " and "
                           << ShapeToString(b);
    }
  }
  return out;
}

Tensor Eye(int64_t n) {
  Tensor t = Tensor::Zeros({n, n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i * n + i] = 1.0f;
  return t;
}

// -- Elementwise binary -----------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinaryOp(
      a, b, "add", [](float x, float y) { return x + y; },
      [](float g, float, float, float* ga, float* gb) {
        *ga = g;
        *gb = g;
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinaryOp(
      a, b, "sub", [](float x, float y) { return x - y; },
      [](float g, float, float, float* ga, float* gb) {
        *ga = g;
        *gb = -g;
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinaryOp(
      a, b, "mul", [](float x, float y) { return x * y; },
      [](float g, float x, float y, float* ga, float* gb) {
        *ga = g * y;
        *gb = g * x;
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinaryOp(
      a, b, "div", [](float x, float y) { return x / y; },
      [](float g, float x, float y, float* ga, float* gb) {
        *ga = g / y;
        *gb = -g * x / (y * y);
      });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, "add_scalar", [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, "mul_scalar", [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

// -- Elementwise unary -------------------------------------------------------------

Tensor Neg(const Tensor& a) {
  return UnaryOp(
      a, "neg", [](float x) { return -x; }, [](float, float) { return -1.0f; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, "exp", [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, "log", [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, "sqrt", [](float x) { return std::sqrt(x); },
      [](float, float y) { return y > 0.0f ? 0.5f / y : 0.0f; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      a, "abs", [](float x) { return std::fabs(x); },
      [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; });
}

Tensor Sin(const Tensor& a) {
  return UnaryOp(
      a, "sin", [](float x) { return std::sin(x); },
      [](float x, float) { return std::cos(x); });
}

Tensor Cos(const Tensor& a) {
  return UnaryOp(
      a, "cos", [](float x) { return std::cos(x); },
      [](float x, float) { return -std::sin(x); });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, "relu", [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation: 0.5x(1 + tanh(sqrt(2/pi)(x + 0.044715 x^3))).
  return UnaryOp(
      a, "gelu", [](float x) { return GeluFwd(x); },
      [](float x, float) { return GeluBwd(x); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, "tanh", [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, "sigmoid", [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Pow(const Tensor& a, float p) {
  return UnaryOp(
      a, "pow", [p](float x) { return std::pow(x, p); },
      [p](float x, float) { return p * std::pow(x, p - 1.0f); });
}

// -- Matrix multiply ------------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CROSSEM_CHECK_GE(a.dim(), 2);
  CROSSEM_CHECK_GE(b.dim(), 2);
  const int64_t m = a.size(-2);
  const int64_t k = a.size(-1);
  const int64_t k2 = b.size(-2);
  const int64_t n = b.size(-1);
  CROSSEM_CHECK_EQ(k, k2) << "matmul inner dims: " << ShapeToString(a.shape())
                          << " x " << ShapeToString(b.shape());

  // Batch layout: leading dims of `a` define the batch; `b` either matches
  // exactly or is a shared 2D matrix.
  Shape lead(a.shape().begin(), a.shape().end() - 2);
  int64_t batch = 1;
  for (int64_t d : lead) batch *= d;
  const bool b_shared = (b.dim() == 2);
  if (!b_shared) {
    CROSSEM_CHECK(Shape(b.shape().begin(), b.shape().end() - 2) == lead)
        << "matmul batch dims must match: " << ShapeToString(a.shape())
        << " x " << ShapeToString(b.shape());
  }

  Shape out_shape = lead;
  out_shape.push_back(m);
  out_shape.push_back(n);

  // A shared 2D rhs makes the whole batch one GEMM: `a` is contiguous, so
  // [batch, m, k] x [k, n] is exactly [batch*m, k] x [k, n]. Collapsing
  // avoids per-slice dispatch (the dominant cost for seq-1 towers) and
  // turns the shared-dB reduction into a single fixed-order trans_a GEMM.
  const int64_t rows = b_shared ? batch * m : m;
  const int64_t slices = b_shared ? 1 : batch;

  auto a_impl = a.impl();
  auto b_impl = b.impl();
  auto backward = [a_impl, b_impl, rows, k, n, slices](const TensorImpl& out) {
    const float* g = out.grad->data();
    const float* av = a_impl->storage->data();
    const float* bv = b_impl->storage->data();
    float* ga = NeedsGrad(a_impl) ? a_impl->MutableGrad().data() : nullptr;
    float* gb = NeedsGrad(b_impl) ? b_impl->MutableGrad().data() : nullptr;
    // dA and dB slices are disjoint per batch entry (the shared-B case is
    // a single slice covering the whole batch), so the slice dimension
    // parallelizes directly.
    ParallelFor(0, slices, 1, [&](int64_t s0, int64_t s1) {
      for (int64_t s = s0; s < s1; ++s) {
        const float* gs = g + s * rows * n;
        const float* as = av + s * rows * k;
        const float* bs = bv + s * k * n;
        if (ga) {
          // dA = dC * B^T   (rows x n)(n x k)
          Gemm(gs, bs, ga + s * rows * k, rows, n, k, false, true, true);
        }
        if (gb) {
          // dB = A^T * dC   (k x rows)(rows x n)
          Gemm(as, gs, gb + s * k * n, k, rows, n, true, false, true);
        }
      }
    });
  };

  Tensor out = MakeResult(out_shape, {a, b}, "matmul", backward);
  auto compute = [av = static_cast<const float*>(a.data()),
                  bv = static_cast<const float*>(b.data()), ov = out.data(),
                  rows, k, n, slices]() {
    ParallelFor(0, slices, 1, [&](int64_t s0, int64_t s1) {
      for (int64_t s = s0; s < s1; ++s) {
        Gemm(av + s * rows * k, bv + s * k * n, ov + s * rows * n, rows, k, n,
             false, false, false);
      }
    });
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, b, out);
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  CROSSEM_CHECK_GE(a.dim(), 2);
  CROSSEM_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(-2);
  const int64_t k = a.size(-1);
  const int64_t n = b.size(0);
  CROSSEM_CHECK_EQ(k, b.size(1))
      << "matmul_trans_b inner dims: " << ShapeToString(a.shape()) << " x "
      << ShapeToString(b.shape()) << "^T";

  // b is shared across a's batch dims, so (as in MatMul's shared-2D case)
  // the whole batch collapses into one [batch*m, k] x [k, n] GEMM.
  Shape lead(a.shape().begin(), a.shape().end() - 2);
  int64_t batch = 1;
  for (int64_t d : lead) batch *= d;
  Shape out_shape = lead;
  out_shape.push_back(m);
  out_shape.push_back(n);
  const int64_t rows = batch * m;

  auto a_impl = a.impl();
  auto b_impl = b.impl();
  auto backward = [a_impl, b_impl, rows, k, n](const TensorImpl& out) {
    const float* g = out.grad->data();
    const float* av = a_impl->storage->data();
    const float* bv = b_impl->storage->data();
    if (float* ga = NeedsGrad(a_impl) ? a_impl->MutableGrad().data()
                                      : nullptr) {
      // dA = dC * B: b is already the (n x k) row-major operand this GEMM
      // wants, so unlike the Transpose-composed path no packing happens.
      Gemm(g, bv, ga, rows, n, k, false, false, true);
    }
    if (float* gb = NeedsGrad(b_impl) ? b_impl->MutableGrad().data()
                                      : nullptr) {
      // dB = dC^T * A   (n x rows)(rows x k)
      Gemm(g, av, gb, n, rows, k, true, false, true);
    }
  };

  Tensor out = MakeResult(std::move(out_shape), {a, b}, "matmul_trans_b",
                          backward);
  auto compute = [av = static_cast<const float*>(a.data()),
                  bv = static_cast<const float*>(b.data()), ov = out.data(),
                  rows, k, n]() {
    Gemm(av, bv, ov, rows, k, n, false, true, false);
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, b, out);
  return out;
}

Tensor Transpose(const Tensor& a, int64_t d0, int64_t d1) {
  const int64_t rank = a.dim();
  if (d0 < 0) d0 += rank;
  if (d1 < 0) d1 += rank;
  CROSSEM_CHECK_GE(d0, 0);
  CROSSEM_CHECK_LT(d0, rank);
  CROSSEM_CHECK_GE(d1, 0);
  CROSSEM_CHECK_LT(d1, rank);

  Shape out_shape = a.shape();
  std::swap(out_shape[static_cast<size_t>(d0)],
            out_shape[static_cast<size_t>(d1)]);

  std::vector<int64_t> in_strides = ComputeStrides(a.shape());
  std::vector<int64_t> out_strides = ComputeStrides(out_shape);
  // Strides for reading the input in output order.
  std::vector<int64_t> read_strides = in_strides;
  std::swap(read_strides[static_cast<size_t>(d0)],
            read_strides[static_cast<size_t>(d1)]);

  auto a_impl = a.impl();
  auto backward = [a_impl, out_shape, out_strides,
                   read_strides](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    // The output->input index map is a bijection, so the scatter-adds are
    // disjoint and parallelize safely.
    ParallelFor(0, out.numel(), ElemGrain(out.numel()),
                [&](int64_t lo, int64_t hi) {
      StridedVisit(lo, hi, out_shape, out_strides, read_strides,
                   [&](int64_t i, int64_t off) { ga[off] += g[i]; });
    });
  };

  Tensor out = MakeResult(out_shape, {a}, "transpose", backward);
  auto compute = [src = static_cast<const float*>(a.data()), dst = out.data(),
                  n = a.numel(), out_shape, out_strides, read_strides]() {
    ParallelFor(0, n, TransposeGrain(n), [&](int64_t lo, int64_t hi) {
      StridedVisit(lo, hi, out_shape, out_strides, read_strides,
                   [&](int64_t i, int64_t off) { dst[i] = src[off]; });
    });
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, out);
  return out;
}

Tensor Reshape(const Tensor& a, Shape shape) {
  // Resolve a single -1 dimension.
  int64_t known = 1;
  int64_t infer = -1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      CROSSEM_CHECK_EQ(infer, -1) << "at most one -1 dim in reshape";
      infer = static_cast<int64_t>(i);
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    CROSSEM_CHECK_GT(known, 0);
    CROSSEM_CHECK_EQ(a.numel() % known, 0);
    shape[static_cast<size_t>(infer)] = a.numel() / known;
  }
  CROSSEM_CHECK_EQ(ShapeNumel(shape), a.numel())
      << "reshape " << ShapeToString(a.shape()) << " -> "
      << ShapeToString(shape);

  auto a_impl = a.impl();
  auto backward = [a_impl](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    for (int64_t i = 0; i < out.numel(); ++i) ga[i] += g[i];
  };
  Tensor out = MakeResult(std::move(shape), {a}, "reshape", backward);
  auto compute = [src = static_cast<const float*>(a.data()), dst = out.data(),
                  n = a.numel()]() { std::copy_n(src, n, dst); };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, out);
  return out;
}

// -- Reductions ---------------------------------------------------------------------

Tensor Sum(const Tensor& a) {
  auto a_impl = a.impl();
  auto backward = [a_impl](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float g = out.grad->data()[0];
    float* ga = a_impl->MutableGrad().data();
    ParallelFor(0, a_impl->numel(), ElemGrain(a_impl->numel()),
                [&](int64_t lo, int64_t hi) {
                  for (int64_t i = lo; i < hi; ++i) ga[i] += g;
                });
  };
  Tensor out = MakeResult({}, {a}, "sum", backward);
  auto compute = [p = static_cast<const float*>(a.data()), q = out.data(),
                  n = a.numel()]() {
    // Fixed-grain chunked reduction: partials are combined in chunk order,
    // so the result is identical at any thread count (see util/parallel.h).
    const double acc = ParallelReduce<double>(
        0, n, GrainWithCutoff(kReduceGrain, n, 1), 0.0,
        [p](int64_t lo, int64_t hi) {
          double part = 0.0;
          for (int64_t i = lo; i < hi; ++i) part += p[i];
          return part;
        },
        [](double x, double y) { return x + y; });
    q[0] = static_cast<float>(acc);
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, out);
  return out;
}

namespace {
/// Decomposes a shape around `dim` into (outer, reduce, inner) extents.
void SplitAroundDim(const Shape& shape, int64_t dim, int64_t* outer,
                    int64_t* reduce, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < dim; ++i) *outer *= shape[static_cast<size_t>(i)];
  *reduce = shape[static_cast<size_t>(dim)];
  for (size_t i = static_cast<size_t>(dim) + 1; i < shape.size(); ++i) {
    *inner *= shape[i];
  }
}
}  // namespace

Tensor Sum(const Tensor& a, int64_t dim, bool keepdim) {
  const int64_t rank = a.dim();
  if (dim < 0) dim += rank;
  CROSSEM_CHECK_GE(dim, 0);
  CROSSEM_CHECK_LT(dim, rank);
  int64_t outer, reduce, inner;
  SplitAroundDim(a.shape(), dim, &outer, &reduce, &inner);

  Shape out_shape = a.shape();
  if (keepdim) {
    out_shape[static_cast<size_t>(dim)] = 1;
  } else {
    out_shape.erase(out_shape.begin() + dim);
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, outer, reduce, inner](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    ParallelFor(0, outer, RowGrain(outer, reduce * inner),
                [&](int64_t o0, int64_t o1) {
                  for (int64_t o = o0; o < o1; ++o) {
                    for (int64_t r = 0; r < reduce; ++r) {
                      for (int64_t i = 0; i < inner; ++i) {
                        ga[(o * reduce + r) * inner + i] += g[o * inner + i];
                      }
                    }
                  }
                });
  };
  Tensor out = MakeResult(std::move(out_shape), {a}, "sum_dim", backward);
  auto compute = [p = static_cast<const float*>(a.data()), q = out.data(),
                  n = out.numel(), outer, reduce, inner]() {
    std::fill_n(q, n, 0.0f);
    ParallelFor(0, outer, RowGrain(outer, reduce * inner),
                [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        for (int64_t r = 0; r < reduce; ++r) {
          for (int64_t i = 0; i < inner; ++i) {
            q[o * inner + i] += p[(o * reduce + r) * inner + i];
          }
        }
      }
    });
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, out);
  return out;
}

Tensor Mean(const Tensor& a) {
  CROSSEM_CHECK_GT(a.numel(), 0);
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor Mean(const Tensor& a, int64_t dim, bool keepdim) {
  int64_t d = dim < 0 ? dim + a.dim() : dim;
  const float scale = 1.0f / static_cast<float>(a.size(d));
  return MulScalar(Sum(a, dim, keepdim), scale);
}

std::vector<int64_t> ArgMax(const Tensor& a, int64_t dim) {
  const int64_t rank = a.dim();
  if (dim < 0) dim += rank;
  int64_t outer, reduce, inner;
  SplitAroundDim(a.shape(), dim, &outer, &reduce, &inner);
  std::vector<int64_t> result(static_cast<size_t>(outer * inner));
  const float* p = a.data();
  ParallelFor(0, outer, RowGrain(outer, reduce * inner), [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        int64_t best = 0;
        float best_v = p[o * reduce * inner + i];
        for (int64_t r = 1; r < reduce; ++r) {
          float v = p[(o * reduce + r) * inner + i];
          if (v > best_v) {
            best_v = v;
            best = r;
          }
        }
        result[static_cast<size_t>(o * inner + i)] = best;
      }
    }
  });
  return result;
}

// -- Softmax family ----------------------------------------------------------------

Tensor Softmax(const Tensor& a) {
  CROSSEM_CHECK_GE(a.dim(), 1);
  const int64_t cols = a.size(-1);
  const int64_t rows = a.numel() / cols;

  auto a_impl = a.impl();
  auto backward = [a_impl, rows, cols](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    const float* y = out.storage->data();
    float* ga = a_impl->MutableGrad().data();
    ParallelFor(0, rows, RowGrain(rows, cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* gr = g + r * cols;
        const float* yr = y + r * cols;
        float dot = 0.0f;
        for (int64_t c = 0; c < cols; ++c) dot += gr[c] * yr[c];
        float* gar = ga + r * cols;
        for (int64_t c = 0; c < cols; ++c) gar[c] += yr[c] * (gr[c] - dot);
      }
    });
  };
  Tensor out = MakeResult(a.shape(), {a}, "softmax", backward);
  auto compute = [x = static_cast<const float*>(a.data()), y = out.data(),
                  rows, cols]() {
    ParallelFor(0, rows, ExpRowGrain(rows, cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xr = x + r * cols;
        float* yr = y + r * cols;
        float mx = xr[0];
        for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, xr[c]);
        float denom = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
          yr[c] = std::exp(xr[c] - mx);
          denom += yr[c];
        }
        const float inv = 1.0f / denom;
        for (int64_t c = 0; c < cols; ++c) yr[c] *= inv;
      }
    });
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, out);
  return out;
}

Tensor LogSoftmax(const Tensor& a) {
  CROSSEM_CHECK_GE(a.dim(), 1);
  const int64_t cols = a.size(-1);
  const int64_t rows = a.numel() / cols;

  auto a_impl = a.impl();
  auto backward = [a_impl, rows, cols](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    const float* y = out.storage->data();  // log-probabilities
    float* ga = a_impl->MutableGrad().data();
    ParallelFor(0, rows, RowGrain(rows, cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* gr = g + r * cols;
        const float* yr = y + r * cols;
        float gsum = 0.0f;
        for (int64_t c = 0; c < cols; ++c) gsum += gr[c];
        float* gar = ga + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
          gar[c] += gr[c] - std::exp(yr[c]) * gsum;
        }
      }
    });
  };
  Tensor out = MakeResult(a.shape(), {a}, "log_softmax", backward);
  auto compute = [x = static_cast<const float*>(a.data()), y = out.data(),
                  rows, cols]() {
    ParallelFor(0, rows, ExpRowGrain(rows, cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xr = x + r * cols;
        float* yr = y + r * cols;
        float mx = xr[0];
        for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, xr[c]);
        float denom = 0.0f;
        for (int64_t c = 0; c < cols; ++c) denom += std::exp(xr[c] - mx);
        const float log_denom = std::log(denom) + mx;
        for (int64_t c = 0; c < cols; ++c) yr[c] = xr[c] - log_denom;
      }
    });
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, out);
  return out;
}

Tensor L2Normalize(const Tensor& a, float eps) {
  CROSSEM_CHECK_GE(a.dim(), 1);
  const int64_t cols = a.size(-1);
  const int64_t rows = a.numel() / cols;

  auto a_impl = a.impl();
  auto backward = [a_impl, rows, cols, eps](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    const float* x = a_impl->storage->data();
    const float* y = out.storage->data();
    float* ga = a_impl->MutableGrad().data();
    ParallelFor(0, rows, RowGrain(rows, cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xr = x + r * cols;
        const float* yr = y + r * cols;
        const float* gr = g + r * cols;
        float norm2 = 0.0f;
        for (int64_t c = 0; c < cols; ++c) norm2 += xr[c] * xr[c];
        float norm = std::max(std::sqrt(norm2), eps);
        float dot = 0.0f;
        for (int64_t c = 0; c < cols; ++c) dot += gr[c] * yr[c];
        float* gar = ga + r * cols;
        const float inv = 1.0f / norm;
        for (int64_t c = 0; c < cols; ++c) {
          gar[c] += (gr[c] - yr[c] * dot) * inv;
        }
      }
    });
  };
  Tensor out = MakeResult(a.shape(), {a}, "l2_normalize", backward);
  auto compute = [x = static_cast<const float*>(a.data()), y = out.data(),
                  rows, cols, eps]() {
    ParallelFor(0, rows, RowGrain(rows, cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xr = x + r * cols;
        float* yr = y + r * cols;
        float norm2 = 0.0f;
        for (int64_t c = 0; c < cols; ++c) norm2 += xr[c] * xr[c];
        const float inv = 1.0f / std::max(std::sqrt(norm2), eps);
        for (int64_t c = 0; c < cols; ++c) yr[c] = xr[c] * inv;
      }
    });
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, out);
  return out;
}

// -- Fused kernels ------------------------------------------------------------------
//
// Each kernel below replays the arithmetic of the composed-op graph it
// replaces, per element and in the same accumulation order, so fused and
// reference paths produce bitwise-identical values and gradients (the
// build compiles this file without FMA contraction, so every float op
// rounds individually and the sequences really are reproducible). The
// fusion rules are documented in DESIGN.md §12.

Tensor LayerNormFused(const Tensor& x, const Tensor& gamma,
                      const Tensor& beta, float eps) {
  CROSSEM_CHECK_GE(x.dim(), 1);
  const int64_t cols = x.size(-1);
  const int64_t rows = x.numel() / cols;
  CROSSEM_CHECK_EQ(gamma.numel(), cols);
  CROSSEM_CHECK_EQ(beta.numel(), cols);
  const float inv_d = 1.0f / static_cast<float>(cols);

  // Row statistics saved for backward: mean and var+eps (2 floats per row,
  // pool-backed, instead of the seven intermediate tensors the composed
  // graph keeps alive on the tape).
  Tensor stats = Tensor::Zeros({2, std::max<int64_t>(rows, 1)});

  auto x_impl = x.impl();
  auto g_impl = gamma.impl();
  auto b_impl = beta.impl();
  auto backward = [x_impl, g_impl, b_impl, stats, rows, cols,
                   inv_d](const TensorImpl& out) {
    const float* g = out.grad->data();
    const float* xv = x_impl->storage->data();
    const float* gam = g_impl->storage->data();
    const float* mp = stats.data();
    const float* vp = mp + rows;
    // Scatter-adds into gamma/beta run serially in ascending element order,
    // exactly as the composed graph's periodic broadcast backwards do.
    if (NeedsGrad(b_impl)) {
      float* gbet = b_impl->MutableGrad().data();
      for (int64_t r = 0; r < rows; ++r) {
        const float* gr = g + r * cols;
        for (int64_t c = 0; c < cols; ++c) gbet[c] += gr[c];
      }
    }
    if (NeedsGrad(g_impl)) {
      float* ggam = g_impl->MutableGrad().data();
      for (int64_t r = 0; r < rows; ++r) {
        const float m = mp[r];
        const float is = std::pow(vp[r], -0.5f);
        const float* gr = g + r * cols;
        const float* xr = xv + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
          const float norm = (xr[c] - m) * is;
          ggam[c] += gr[c] * norm;
        }
      }
    }
    if (NeedsGrad(x_impl)) {
      float* gx = x_impl->MutableGrad().data();
      // Rows write disjoint gx slices and all cross-element accumulators
      // (ginv, gmean) are per-row, so row parallelism keeps the composed
      // graph's per-element add sequences intact.
      ParallelFor(0, rows, RowGrain(rows, cols), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float m = mp[r];
          const float vpe = vp[r];
          const float is = std::pow(vpe, -0.5f);
          const float* xr = xv + r * cols;
          const float* gr = g + r * cols;
          float* gxr = gx + r * cols;
          // d(inv_std): ascending-c accumulation, as the composed
          // Mul(centered, inv_std) backward streams it.
          float ginv = 0.0f;
          for (int64_t c = 0; c < cols; ++c) {
            const float cv = xr[c] - m;
            const float gnorm = gr[c] * gam[c];
            ginv += gnorm * cv;
          }
          // Pow(-0.5) -> AddScalar(eps) -> MulScalar(1/D) chain.
          const float dydx = -0.5f * std::pow(vpe, -1.5f);
          const float gvpe = ginv * dydx;
          const float gsumsq = gvpe * inv_d;
          float gmean = 0.0f;
          for (int64_t c = 0; c < cols; ++c) {
            const float cv = xr[c] - m;
            const float gnorm = gr[c] * gam[c];
            // Mul(centered, centered) contributes the same product twice,
            // as two separate adds (da then db in the composed backward).
            const float t = gsumsq * cv;
            float gc = gnorm * is;
            gc += t;
            gc += t;
            gxr[c] += gc;        // Sub backward: d(x)
            gmean += -gc;        // Sub backward: d(mean), ascending c
          }
          const float gsum = gmean * inv_d;  // Mean's MulScalar backward
          for (int64_t c = 0; c < cols; ++c) gxr[c] += gsum;
        }
      });
    }
  };

  Tensor out = MakeResult(x.shape(), {x, gamma, beta}, "layer_norm_fused",
                          backward);
  auto compute = [xv = static_cast<const float*>(x.data()),
                  gam = static_cast<const float*>(gamma.data()),
                  bet = static_cast<const float*>(beta.data()), y = out.data(),
                  mp = stats.data(), rows, cols, eps, inv_d]() {
    float* vp = mp + rows;
    ParallelFor(0, rows, RowGrain(rows, cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xr = xv + r * cols;
        float* yr = y + r * cols;
        // Float accumulators in ascending order, matching Sum(dim).
        float s = 0.0f;
        for (int64_t c = 0; c < cols; ++c) s += xr[c];
        const float m = s * inv_d;
        float s2 = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
          const float cv = xr[c] - m;
          const float sq = cv * cv;
          s2 += sq;
        }
        const float var = s2 * inv_d;
        const float vpe = var + eps;
        const float is = std::pow(vpe, -0.5f);
        mp[r] = m;
        vp[r] = vpe;
        for (int64_t c = 0; c < cols; ++c) {
          const float norm = (xr[c] - m) * is;
          yr[c] = (norm * gam[c]) + bet[c];
        }
      }
    });
  };
  compute();
  // `stats` is retained too: the closure (and a traced backward) writes
  // into its buffer, which must stay resolved for the plan's lifetime.
  CROSSEM_PLAN_CAPTURE(compute, x, gamma, beta, out, stats);
  return out;
}

Tensor ScaledMaskedSoftmax(const Tensor& x, float scale,
                           const Tensor& key_padding_mask) {
  CROSSEM_CHECK_GE(x.dim(), 1);
  const int64_t cols = x.size(-1);
  const int64_t rows = x.numel() / cols;
  int64_t rows_per_batch = rows;
  if (key_padding_mask.defined()) {
    CROSSEM_CHECK_EQ(x.dim(), 4) << "masked scores must be [B, H, Tq, Tk]";
    CROSSEM_CHECK_EQ(key_padding_mask.dim(), 2);
    CROSSEM_CHECK_EQ(key_padding_mask.size(0), x.size(0));
    CROSSEM_CHECK_EQ(key_padding_mask.size(1), cols);
    rows_per_batch = rows / x.size(0);
  }

  auto x_impl = x.impl();
  auto backward = [x_impl, rows, cols, scale](const TensorImpl& out) {
    if (!NeedsGrad(x_impl)) return;
    const float* g = out.grad->data();
    const float* y = out.storage->data();
    float* gx = x_impl->MutableGrad().data();
    ParallelFor(0, rows, RowGrain(rows, cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* gr = g + r * cols;
        const float* yr = y + r * cols;
        float dot = 0.0f;
        for (int64_t c = 0; c < cols; ++c) dot += gr[c] * yr[c];
        float* gxr = gx + r * cols;
        // Softmax backward, then the MulScalar(scale) backward, per
        // element — the additive mask bias has derivative zero.
        for (int64_t c = 0; c < cols; ++c) {
          gxr[c] += (yr[c] * (gr[c] - dot)) * scale;
        }
      }
    });
  };

  // The (detached) mask rides along as an input only to keep its storage
  // alive; it is a constant and receives no gradient.
  std::vector<Tensor> inputs = {x};
  if (key_padding_mask.defined()) inputs.push_back(key_padding_mask.Detach());
  Tensor out = MakeResult(x.shape(), std::move(inputs),
                          "scaled_masked_softmax", backward);
  auto compute = [xv = static_cast<const float*>(x.data()),
                  mv = key_padding_mask.defined()
                           ? static_cast<const float*>(key_padding_mask.data())
                           : nullptr,
                  y = out.data(), rows, cols, rows_per_batch, scale]() {
    ParallelFor(0, rows, ExpRowGrain(rows, cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xr = xv + r * cols;
        const float* mr = mv ? mv + (r / rows_per_batch) * cols : nullptr;
        float* yr = y + r * cols;
        // z = x*scale (+ (mask-1)*1e9), rounded per op exactly as the
        // composed MulScalar / AddScalar / MulScalar / Add chain stores it.
        for (int64_t c = 0; c < cols; ++c) {
          float z = xr[c] * scale;
          if (mr != nullptr) z = z + ((mr[c] + (-1.0f)) * 1e9f);
          yr[c] = z;
        }
        float mx = yr[0];
        for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, yr[c]);
        float denom = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
          yr[c] = std::exp(yr[c] - mx);
          denom += yr[c];
        }
        const float inv = 1.0f / denom;
        for (int64_t c = 0; c < cols; ++c) yr[c] *= inv;
      }
    });
  };
  compute();
  if (key_padding_mask.defined()) {
    CROSSEM_PLAN_CAPTURE(compute, x, key_padding_mask, out);
  } else {
    CROSSEM_PLAN_CAPTURE(compute, x, out);
  }
  return out;
}

namespace {

inline float BiasActFwd(BiasAct act, float z) {
  switch (act) {
    case BiasAct::kNone:
      return z;
    case BiasAct::kRelu:
      return z > 0.0f ? z : 0.0f;
    case BiasAct::kGelu:
      return GeluFwd(z);
  }
  return z;
}

/// d(act)/dz; kNone uses the composed Add backward's implicit factor 1.
inline float BiasActBwd(BiasAct act, float z) {
  switch (act) {
    case BiasAct::kNone:
      return 1.0f;
    case BiasAct::kRelu:
      return z > 0.0f ? 1.0f : 0.0f;
    case BiasAct::kGelu:
      return GeluBwd(z);
  }
  return 1.0f;
}

}  // namespace

Tensor BiasActivation(const Tensor& x, const Tensor& bias, BiasAct act) {
  CROSSEM_CHECK_GE(x.dim(), 1);
  const int64_t cols = x.size(-1);
  CROSSEM_CHECK_EQ(bias.numel(), cols);
  const int64_t n = x.numel();

  auto x_impl = x.impl();
  auto b_impl = bias.impl();
  auto backward = [x_impl, b_impl, n, cols, act](const TensorImpl& out) {
    const float* g = out.grad->data();
    const float* xv = x_impl->storage->data();
    const float* bv = b_impl->storage->data();
    if (NeedsGrad(x_impl)) {
      float* gx = x_impl->MutableGrad().data();
      ParallelFor(0, n, ElemGrain(n), [&](int64_t lo, int64_t hi) {
        int64_t c = lo % cols;
        for (int64_t i = lo; i < hi; ++i) {
          const float z = xv[i] + bv[c];  // recomputed pre-activation
          gx[i] += g[i] * BiasActBwd(act, z);
          if (++c == cols) c = 0;
        }
      });
    }
    if (NeedsGrad(b_impl)) {
      // Serial ascending-i scatter, as the composed Add's modulo-broadcast
      // backward streams into the shared bias slots.
      float* gb = b_impl->MutableGrad().data();
      int64_t c = 0;
      for (int64_t i = 0; i < n; ++i) {
        const float z = xv[i] + bv[c];
        gb[c] += g[i] * BiasActBwd(act, z);
        if (++c == cols) c = 0;
      }
    }
  };

  Tensor out = MakeResult(x.shape(), {x, bias}, "bias_act", backward);
  auto compute = [xv = static_cast<const float*>(x.data()),
                  bv = static_cast<const float*>(bias.data()), y = out.data(),
                  n, cols, act]() {
    ParallelFor(0, n, ElemGrain(n), [&](int64_t lo, int64_t hi) {
      int64_t c = lo % cols;
      for (int64_t i = lo; i < hi; ++i) {
        const float z = xv[i] + bv[c];
        y[i] = BiasActFwd(act, z);
        if (++c == cols) c = 0;
      }
    });
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, x, bias, out);
  return out;
}

// -- Structural ---------------------------------------------------------------------

Tensor Concat(const std::vector<Tensor>& tensors, int64_t dim) {
  CROSSEM_CHECK(!tensors.empty());
  const int64_t rank = tensors[0].dim();
  if (dim < 0) dim += rank;
  CROSSEM_CHECK_GE(dim, 0);
  CROSSEM_CHECK_LT(dim, rank);

  Shape out_shape = tensors[0].shape();
  int64_t cat_extent = 0;
  for (const Tensor& t : tensors) {
    CROSSEM_CHECK_EQ(t.dim(), rank);
    for (int64_t d = 0; d < rank; ++d) {
      if (d != dim) {
        CROSSEM_CHECK_EQ(t.size(d), tensors[0].size(d));
      }
    }
    cat_extent += t.size(dim);
  }
  out_shape[static_cast<size_t>(dim)] = cat_extent;

  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= out_shape[static_cast<size_t>(d)];
  for (int64_t d = dim + 1; d < rank; ++d) {
    inner *= out_shape[static_cast<size_t>(d)];
  }

  std::vector<std::shared_ptr<TensorImpl>> impls;
  std::vector<int64_t> extents;
  for (const Tensor& t : tensors) {
    impls.push_back(t.impl());
    extents.push_back(t.size(dim));
  }

  auto backward = [impls, extents, outer, inner,
                   cat_extent](const TensorImpl& out) {
    const float* g = out.grad->data();
    int64_t col_offset = 0;
    for (size_t t = 0; t < impls.size(); ++t) {
      const int64_t ext = extents[t];
      if (NeedsGrad(impls[t])) {
        float* ga = impls[t]->MutableGrad().data();
        for (int64_t o = 0; o < outer; ++o) {
          const float* src = g + (o * cat_extent + col_offset) * inner;
          float* dst = ga + o * ext * inner;
          for (int64_t i = 0; i < ext * inner; ++i) dst[i] += src[i];
        }
      }
      col_offset += ext;
    }
  };

  Tensor out = MakeResult(out_shape, tensors, "concat", backward);
  std::vector<const float*> srcs;
  srcs.reserve(tensors.size());
  for (const Tensor& t : tensors) srcs.push_back(t.data());
  auto compute = [srcs = std::move(srcs), extents, q = out.data(), outer,
                  inner, cat_extent]() {
    int64_t col_offset = 0;
    for (size_t t = 0; t < srcs.size(); ++t) {
      const int64_t ext = extents[t];
      for (int64_t o = 0; o < outer; ++o) {
        std::copy_n(srcs[t] + o * ext * inner, ext * inner,
                    q + (o * cat_extent + col_offset) * inner);
      }
      col_offset += ext;
    }
  };
  compute();
  if (plan::CaptureActive()) {
    std::vector<Tensor> keep = tensors;
    keep.push_back(out);
    plan::detail::RecordOp(compute, keep);
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& tensors) {
  CROSSEM_CHECK(!tensors.empty());
  std::vector<Tensor> reshaped;
  reshaped.reserve(tensors.size());
  for (const Tensor& t : tensors) {
    Shape s = t.shape();
    s.insert(s.begin(), 1);
    reshaped.push_back(Reshape(t, s));
  }
  return Concat(reshaped, 0);
}

Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end) {
  const int64_t rank = a.dim();
  if (dim < 0) dim += rank;
  CROSSEM_CHECK_GE(dim, 0);
  CROSSEM_CHECK_LT(dim, rank);
  const int64_t extent = a.size(dim);
  CROSSEM_CHECK_GE(start, 0);
  CROSSEM_CHECK_LE(end, extent);
  CROSSEM_CHECK_LE(start, end);

  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(dim)] = end - start;

  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= a.size(d);
  for (int64_t d = dim + 1; d < rank; ++d) inner *= a.size(d);
  const int64_t width = end - start;

  auto a_impl = a.impl();
  auto backward = [a_impl, outer, inner, extent, start,
                   width](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = g + o * width * inner;
      float* dst = ga + (o * extent + start) * inner;
      for (int64_t i = 0; i < width * inner; ++i) dst[i] += src[i];
    }
  };
  Tensor out = MakeResult(std::move(out_shape), {a}, "slice", backward);
  auto compute = [p = static_cast<const float*>(a.data()), q = out.data(),
                  outer, extent, start, inner, width]() {
    for (int64_t o = 0; o < outer; ++o) {
      std::copy_n(p + (o * extent + start) * inner, width * inner,
                  q + o * width * inner);
    }
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, out);
  return out;
}

Tensor IndexSelect(const Tensor& a, const std::vector<int64_t>& indices) {
  if (plan::CaptureActive()) {
    // Fixed indices under capture: freeze them in a private slot so the
    // recorded closures have stable storage to re-read.
    return IndexSelectSlot(a, plan::MakeIndexSlot(indices));
  }
  CROSSEM_CHECK_GE(a.dim(), 1);
  const int64_t rows = a.size(0);
  const int64_t row_width = a.numel() / std::max<int64_t>(rows, 1);
  for (int64_t idx : indices) {
    CROSSEM_CHECK_GE(idx, 0);
    CROSSEM_CHECK_LT(idx, rows);
  }
  Shape out_shape = a.shape();
  out_shape[0] = static_cast<int64_t>(indices.size());

  auto a_impl = a.impl();
  auto backward = [a_impl, indices, row_width](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    for (size_t i = 0; i < indices.size(); ++i) {
      const float* src = g + static_cast<int64_t>(i) * row_width;
      float* dst = ga + indices[i] * row_width;
      for (int64_t c = 0; c < row_width; ++c) dst[c] += src[c];
    }
  };
  Tensor out = MakeResult(std::move(out_shape), {a}, "index_select", backward);
  const float* p = a.data();
  float* q = out.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    std::copy_n(p + indices[i] * row_width, row_width,
                q + static_cast<int64_t>(i) * row_width);
  }
  return out;
}

Tensor IndexSelectSlot(const Tensor& a, const plan::IndexSlot& indices) {
  CROSSEM_CHECK(indices != nullptr);
  CROSSEM_CHECK_GE(a.dim(), 1);
  const int64_t rows = a.size(0);
  const int64_t row_width = a.numel() / std::max<int64_t>(rows, 1);
  const int64_t count = static_cast<int64_t>(indices->size());
  Shape out_shape = a.shape();
  out_shape[0] = count;

  // Forward and backward both dereference the slot at execution time, so
  // a replayed plan gathers/scatters whatever the host wrote for this
  // step. The slot size is part of the traced shape (CHECKed below).
  auto a_impl = a.impl();
  auto backward = [a_impl, indices, row_width](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const std::vector<int64_t>& idx = *indices;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    for (size_t i = 0; i < idx.size(); ++i) {
      const float* src = g + static_cast<int64_t>(i) * row_width;
      float* dst = ga + idx[i] * row_width;
      for (int64_t c = 0; c < row_width; ++c) dst[c] += src[c];
    }
  };
  Tensor out = MakeResult(std::move(out_shape), {a}, "index_select", backward);
  auto compute = [p = static_cast<const float*>(a.data()), q = out.data(),
                  indices, rows, row_width, count]() {
    const std::vector<int64_t>& idx = *indices;
    CROSSEM_CHECK_EQ(static_cast<int64_t>(idx.size()), count)
        << "index slot resized after trace";
    for (int64_t i = 0; i < count; ++i) {
      const int64_t r = idx[static_cast<size_t>(i)];
      CROSSEM_CHECK_GE(r, 0);
      CROSSEM_CHECK_LT(r, rows);
      std::copy_n(p + r * row_width, row_width, q + i * row_width);
    }
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, a, out);
  return out;
}

// -- Losses --------------------------------------------------------------------------

Tensor NllLoss(const Tensor& log_probs, const std::vector<int64_t>& targets) {
  if (plan::CaptureActive()) {
    return NllLossSlot(log_probs, plan::MakeIndexSlot(targets));
  }
  CROSSEM_CHECK_EQ(log_probs.dim(), 2);
  const int64_t n = log_probs.size(0);
  const int64_t c = log_probs.size(1);
  CROSSEM_CHECK_EQ(n, static_cast<int64_t>(targets.size()));
  for (int64_t t : targets) {
    CROSSEM_CHECK_GE(t, 0);
    CROSSEM_CHECK_LT(t, c);
  }

  auto lp_impl = log_probs.impl();
  auto backward = [lp_impl, targets, n, c](const TensorImpl& out) {
    if (!NeedsGrad(lp_impl)) return;
    const float g = out.grad->data()[0];
    float* ga = lp_impl->MutableGrad().data();
    const float scale = g / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) {
      ga[i * c + targets[static_cast<size_t>(i)]] -= scale;
    }
  };
  Tensor out = MakeResult({}, {log_probs}, "nll_loss", backward);
  const float* p = log_probs.data();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc -= p[i * c + targets[static_cast<size_t>(i)]];
  }
  out.data()[0] = static_cast<float>(acc / static_cast<double>(n));
  return out;
}

Tensor NllLossSlot(const Tensor& log_probs, const plan::IndexSlot& targets) {
  CROSSEM_CHECK(targets != nullptr);
  CROSSEM_CHECK_EQ(log_probs.dim(), 2);
  const int64_t n = log_probs.size(0);
  const int64_t c = log_probs.size(1);
  CROSSEM_CHECK_EQ(n, static_cast<int64_t>(targets->size()));

  auto lp_impl = log_probs.impl();
  auto backward = [lp_impl, targets, n, c](const TensorImpl& out) {
    if (!NeedsGrad(lp_impl)) return;
    const std::vector<int64_t>& tgt = *targets;
    const float g = out.grad->data()[0];
    float* ga = lp_impl->MutableGrad().data();
    const float scale = g / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) {
      ga[i * c + tgt[static_cast<size_t>(i)]] -= scale;
    }
  };
  Tensor out = MakeResult({}, {log_probs}, "nll_loss", backward);
  auto compute = [p = static_cast<const float*>(log_probs.data()),
                  q = out.data(), targets, n, c]() {
    const std::vector<int64_t>& tgt = *targets;
    CROSSEM_CHECK_EQ(static_cast<int64_t>(tgt.size()), n)
        << "target slot resized after trace";
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t t = tgt[static_cast<size_t>(i)];
      CROSSEM_CHECK_GE(t, 0);
      CROSSEM_CHECK_LT(t, c);
      acc -= p[i * c + t];
    }
    q[0] = static_cast<float>(acc / static_cast<double>(n));
  };
  compute();
  CROSSEM_PLAN_CAPTURE(compute, log_probs, out);
  return out;
}

// Deliberately NOT plan-captured: the mask is redrawn from the Rng every
// call, so a recorded closure would freeze one draw and silently replay
// it forever. The identity path returns the input with no MakeResult, so
// inert dropout (the Fit configuration) is invisible to capture; an
// active-dropout trace leaves ops_seen > ops_recorded, marking the plan
// incomplete and forcing the caller back to eager.
Tensor Dropout(const Tensor& a, float p, bool training, Rng* rng) {
  if (!training || p <= 0.0f) return a;
  CROSSEM_CHECK(rng != nullptr);
  CROSSEM_CHECK_LT(p, 1.0f);
  const float keep = 1.0f - p;
  auto mask = std::make_shared<std::vector<float>>(
      static_cast<size_t>(a.numel()));
  for (auto& m : *mask) {
    m = rng->Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, mask](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    for (int64_t i = 0; i < out.numel(); ++i) ga[i] += g[i] * (*mask)[i];
  };
  Tensor out = MakeResult(a.shape(), {a}, "dropout", backward);
  const float* x = a.data();
  float* y = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) y[i] = x[i] * (*mask)[i];
  return out;
}

}  // namespace ops
}  // namespace crossem
