#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <utility>

#include "util/logging.h"

namespace crossem {
namespace ops {

namespace {

using internal::AutogradNode;
using internal::Storage;
using internal::TensorImpl;

bool NeedsGrad(const std::shared_ptr<TensorImpl>& impl) {
  return impl->requires_grad || impl->grad_fn != nullptr;
}

/// Creates the output tensor for an op and records the autograd node when
/// tracing is active. `backward` may be empty for non-differentiable ops.
Tensor MakeResult(Shape shape, std::vector<Tensor> inputs, const char* name,
                  std::function<void(const TensorImpl&)> backward) {
  auto out = std::make_shared<TensorImpl>();
  out->shape = std::move(shape);
  out->storage = std::make_shared<Storage>(out->numel());
  bool any_grad = false;
  for (const Tensor& t : inputs) {
    if (NeedsGrad(t.impl())) any_grad = true;
  }
  if (any_grad && GradModeEnabled() && backward) {
    out->requires_grad = true;
    auto node = std::make_shared<AutogradNode>();
    node->op_name = name;
    for (const Tensor& t : inputs) node->inputs.push_back(t.impl());
    node->backward = std::move(backward);
    out->grad_fn = std::move(node);
  }
  return Tensor::FromImpl(std::move(out));
}

/// Row-major strides (in elements) for a shape.
std::vector<int64_t> ComputeStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t acc = 1;
  for (size_t i = shape.size(); i-- > 0;) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

/// Strides for reading `in_shape` as if broadcast to `out_shape`
/// (right-aligned; broadcast dims get stride 0).
std::vector<int64_t> BroadcastStrides(const Shape& in_shape,
                                      const Shape& out_shape) {
  std::vector<int64_t> in_strides = ComputeStrides(in_shape);
  std::vector<int64_t> strides(out_shape.size(), 0);
  size_t offset = out_shape.size() - in_shape.size();
  for (size_t i = 0; i < in_shape.size(); ++i) {
    if (in_shape[i] == out_shape[offset + i]) {
      strides[offset + i] = in_strides[i];
    } else {
      CROSSEM_CHECK_EQ(in_shape[i], 1)
          << "broadcast mismatch: " << ShapeToString(in_shape) << " vs "
          << ShapeToString(out_shape);
      strides[offset + i] = 0;
    }
  }
  return strides;
}

/// Maps a flat output index to an element offset of a broadcast input.
int64_t BroadcastOffset(int64_t flat, const std::vector<int64_t>& out_strides,
                        const std::vector<int64_t>& in_strides) {
  int64_t off = 0;
  for (size_t d = 0; d < out_strides.size(); ++d) {
    int64_t coord = flat / out_strides[d];
    flat -= coord * out_strides[d];
    off += coord * in_strides[d];
  }
  return off;
}

/// Shared implementation for broadcasting elementwise binary ops.
///
/// `fwd(av, bv)` computes the output element; `bwd(g, av, bv, &ga, &gb)`
/// adds the per-element gradient contributions (ga/gb may be ignored when
/// the corresponding input does not require gradients).
template <typename FwdFn, typename BwdFn>
Tensor BroadcastBinaryOp(const Tensor& a, const Tensor& b, const char* name,
                         FwdFn fwd, BwdFn bwd) {
  Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  std::vector<int64_t> out_strides = ComputeStrides(out_shape);
  std::vector<int64_t> a_strides = BroadcastStrides(a.shape(), out_shape);
  std::vector<int64_t> b_strides = BroadcastStrides(b.shape(), out_shape);
  const bool a_contig = (a.shape() == out_shape);
  const bool b_contig = (b.shape() == out_shape);

  auto a_impl = a.impl();
  auto b_impl = b.impl();

  auto backward = [a_impl, b_impl, out_strides, a_strides, b_strides, a_contig,
                   b_contig, bwd](const TensorImpl& out) {
    const float* g = out.grad->data();
    const float* av = a_impl->storage->data();
    const float* bv = b_impl->storage->data();
    float* ga = NeedsGrad(a_impl) ? a_impl->MutableGrad().data() : nullptr;
    float* gb = NeedsGrad(b_impl) ? b_impl->MutableGrad().data() : nullptr;
    const int64_t n = out.numel();
    if (a_contig && b_contig) {
      for (int64_t i = 0; i < n; ++i) {
        float da = 0.0f, db = 0.0f;
        bwd(g[i], av[i], bv[i], &da, &db);
        if (ga) ga[i] += da;
        if (gb) gb[i] += db;
      }
    } else {
      for (int64_t i = 0; i < n; ++i) {
        int64_t ai = a_contig ? i : BroadcastOffset(i, out_strides, a_strides);
        int64_t bi = b_contig ? i : BroadcastOffset(i, out_strides, b_strides);
        float da = 0.0f, db = 0.0f;
        bwd(g[i], av[ai], bv[bi], &da, &db);
        if (ga) ga[ai] += da;
        if (gb) gb[bi] += db;
      }
    }
  };

  Tensor out = MakeResult(out_shape, {a, b}, name, backward);
  const float* av = a.data();
  const float* bv = b.data();
  float* ov = out.data();
  const int64_t n = out.numel();
  if (a_contig && b_contig) {
    for (int64_t i = 0; i < n; ++i) ov[i] = fwd(av[i], bv[i]);
  } else {
    for (int64_t i = 0; i < n; ++i) {
      int64_t ai = a_contig ? i : BroadcastOffset(i, out_strides, a_strides);
      int64_t bi = b_contig ? i : BroadcastOffset(i, out_strides, b_strides);
      ov[i] = fwd(av[ai], bv[bi]);
    }
  }
  return out;
}

/// Shared implementation for elementwise unary ops.
/// `dydx(x, y)` returns the local derivative given input and output values.
template <typename FwdFn, typename DyDxFn>
Tensor UnaryOp(const Tensor& a, const char* name, FwdFn fwd, DyDxFn dydx) {
  auto a_impl = a.impl();
  // Keep a copy of outputs for derivative formulas expressed in terms of y.
  auto backward = [a_impl, dydx](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    const float* x = a_impl->storage->data();
    const float* y = out.storage->data();
    float* ga = a_impl->MutableGrad().data();
    const int64_t n = out.numel();
    for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * dydx(x[i], y[i]);
  };
  Tensor out = MakeResult(a.shape(), {a}, name, backward);
  const float* x = a.data();
  float* y = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) y[i] = fwd(x[i]);
  return out;
}

/// C (m x n) = or += A (m x k) * B (k x n), with optional transposes
/// interpreting A as (k x m) / B as (n x k) physical layouts.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate) {
  if (!accumulate) std::fill_n(c, m * n, 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = trans_a ? a[p * m + i] : a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = trans_b ? nullptr : &b[p * n];
      float* crow = &c[i * n];
      if (trans_b) {
        for (int64_t j = 0; j < n; ++j) crow[j] += av * b[j * k + p];
      } else {
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    if (da == db) {
      out[i] = da;
    } else if (da == 1) {
      out[i] = db;
    } else if (db == 1) {
      out[i] = da;
    } else {
      CROSSEM_CHECK(false) << "cannot broadcast " << ShapeToString(a) << " and "
                           << ShapeToString(b);
    }
  }
  return out;
}

Tensor Eye(int64_t n) {
  Tensor t = Tensor::Zeros({n, n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i * n + i] = 1.0f;
  return t;
}

// -- Elementwise binary -----------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinaryOp(
      a, b, "add", [](float x, float y) { return x + y; },
      [](float g, float, float, float* ga, float* gb) {
        *ga = g;
        *gb = g;
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinaryOp(
      a, b, "sub", [](float x, float y) { return x - y; },
      [](float g, float, float, float* ga, float* gb) {
        *ga = g;
        *gb = -g;
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinaryOp(
      a, b, "mul", [](float x, float y) { return x * y; },
      [](float g, float x, float y, float* ga, float* gb) {
        *ga = g * y;
        *gb = g * x;
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinaryOp(
      a, b, "div", [](float x, float y) { return x / y; },
      [](float g, float x, float y, float* ga, float* gb) {
        *ga = g / y;
        *gb = -g * x / (y * y);
      });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, "add_scalar", [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, "mul_scalar", [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

// -- Elementwise unary -------------------------------------------------------------

Tensor Neg(const Tensor& a) {
  return UnaryOp(
      a, "neg", [](float x) { return -x; }, [](float, float) { return -1.0f; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, "exp", [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, "log", [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, "sqrt", [](float x) { return std::sqrt(x); },
      [](float, float y) { return y > 0.0f ? 0.5f / y : 0.0f; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      a, "abs", [](float x) { return std::fabs(x); },
      [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; });
}

Tensor Sin(const Tensor& a) {
  return UnaryOp(
      a, "sin", [](float x) { return std::sin(x); },
      [](float x, float) { return std::cos(x); });
}

Tensor Cos(const Tensor& a) {
  return UnaryOp(
      a, "cos", [](float x) { return std::cos(x); },
      [](float x, float) { return -std::sin(x); });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, "relu", [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation: 0.5x(1 + tanh(sqrt(2/pi)(x + 0.044715 x^3))).
  constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
  constexpr float kA = 0.044715f;
  return UnaryOp(
      a, "gelu",
      [](float x) {
        float inner = kC * (x + kA * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        float x3 = x * x * x;
        float inner = kC * (x + kA * x3);
        float t = std::tanh(inner);
        float sech2 = 1.0f - t * t;
        return 0.5f * (1.0f + t) + 0.5f * x * sech2 * kC * (1.0f + 3.0f * kA * x * x);
      });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, "tanh", [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, "sigmoid", [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Pow(const Tensor& a, float p) {
  return UnaryOp(
      a, "pow", [p](float x) { return std::pow(x, p); },
      [p](float x, float) { return p * std::pow(x, p - 1.0f); });
}

// -- Matrix multiply ------------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CROSSEM_CHECK_GE(a.dim(), 2);
  CROSSEM_CHECK_GE(b.dim(), 2);
  const int64_t m = a.size(-2);
  const int64_t k = a.size(-1);
  const int64_t k2 = b.size(-2);
  const int64_t n = b.size(-1);
  CROSSEM_CHECK_EQ(k, k2) << "matmul inner dims: " << ShapeToString(a.shape())
                          << " x " << ShapeToString(b.shape());

  // Batch layout: leading dims of `a` define the batch; `b` either matches
  // exactly or is a shared 2D matrix.
  Shape lead(a.shape().begin(), a.shape().end() - 2);
  int64_t batch = 1;
  for (int64_t d : lead) batch *= d;
  const bool b_shared = (b.dim() == 2);
  if (!b_shared) {
    CROSSEM_CHECK(Shape(b.shape().begin(), b.shape().end() - 2) == lead)
        << "matmul batch dims must match: " << ShapeToString(a.shape())
        << " x " << ShapeToString(b.shape());
  }

  Shape out_shape = lead;
  out_shape.push_back(m);
  out_shape.push_back(n);

  auto a_impl = a.impl();
  auto b_impl = b.impl();
  auto backward = [a_impl, b_impl, m, k, n, batch,
                   b_shared](const TensorImpl& out) {
    const float* g = out.grad->data();
    const float* av = a_impl->storage->data();
    const float* bv = b_impl->storage->data();
    float* ga = NeedsGrad(a_impl) ? a_impl->MutableGrad().data() : nullptr;
    float* gb = NeedsGrad(b_impl) ? b_impl->MutableGrad().data() : nullptr;
    for (int64_t s = 0; s < batch; ++s) {
      const float* gs = g + s * m * n;
      const float* as = av + s * m * k;
      const float* bs = b_shared ? bv : bv + s * k * n;
      if (ga) {
        // dA = dC * B^T   (m x n)(n x k)
        Gemm(gs, bs, ga + s * m * k, m, n, k, false, true, true);
      }
      if (gb) {
        // dB = A^T * dC   (k x m)(m x n)
        float* gbs = b_shared ? gb : gb + s * k * n;
        Gemm(as, gs, gbs, k, m, n, true, false, true);
      }
    }
  };

  Tensor out = MakeResult(out_shape, {a, b}, "matmul", backward);
  const float* av = a.data();
  const float* bv = b.data();
  float* ov = out.data();
  for (int64_t s = 0; s < batch; ++s) {
    Gemm(av + s * m * k, b_shared ? bv : bv + s * k * n, ov + s * m * n, m, k,
         n, false, false, false);
  }
  return out;
}

Tensor Transpose(const Tensor& a, int64_t d0, int64_t d1) {
  const int64_t rank = a.dim();
  if (d0 < 0) d0 += rank;
  if (d1 < 0) d1 += rank;
  CROSSEM_CHECK_GE(d0, 0);
  CROSSEM_CHECK_LT(d0, rank);
  CROSSEM_CHECK_GE(d1, 0);
  CROSSEM_CHECK_LT(d1, rank);

  Shape out_shape = a.shape();
  std::swap(out_shape[static_cast<size_t>(d0)],
            out_shape[static_cast<size_t>(d1)]);

  std::vector<int64_t> in_strides = ComputeStrides(a.shape());
  std::vector<int64_t> out_strides = ComputeStrides(out_shape);
  // Strides for reading the input in output order.
  std::vector<int64_t> read_strides = in_strides;
  std::swap(read_strides[static_cast<size_t>(d0)],
            read_strides[static_cast<size_t>(d1)]);

  auto a_impl = a.impl();
  auto backward = [a_impl, out_strides, read_strides](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    const int64_t numel = out.numel();
    for (int64_t i = 0; i < numel; ++i) {
      ga[BroadcastOffset(i, out_strides, read_strides)] += g[i];
    }
  };

  Tensor out = MakeResult(out_shape, {a}, "transpose", backward);
  const float* src = a.data();
  float* dst = out.data();
  const int64_t numel = a.numel();
  for (int64_t i = 0; i < numel; ++i) {
    dst[i] = src[BroadcastOffset(i, out_strides, read_strides)];
  }
  return out;
}

Tensor Reshape(const Tensor& a, Shape shape) {
  // Resolve a single -1 dimension.
  int64_t known = 1;
  int64_t infer = -1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      CROSSEM_CHECK_EQ(infer, -1) << "at most one -1 dim in reshape";
      infer = static_cast<int64_t>(i);
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    CROSSEM_CHECK_GT(known, 0);
    CROSSEM_CHECK_EQ(a.numel() % known, 0);
    shape[static_cast<size_t>(infer)] = a.numel() / known;
  }
  CROSSEM_CHECK_EQ(ShapeNumel(shape), a.numel())
      << "reshape " << ShapeToString(a.shape()) << " -> "
      << ShapeToString(shape);

  auto a_impl = a.impl();
  auto backward = [a_impl](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    for (int64_t i = 0; i < out.numel(); ++i) ga[i] += g[i];
  };
  Tensor out = MakeResult(std::move(shape), {a}, "reshape", backward);
  std::copy_n(a.data(), a.numel(), out.data());
  return out;
}

// -- Reductions ---------------------------------------------------------------------

Tensor Sum(const Tensor& a) {
  auto a_impl = a.impl();
  auto backward = [a_impl](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float g = out.grad->data()[0];
    float* ga = a_impl->MutableGrad().data();
    for (int64_t i = 0; i < a_impl->numel(); ++i) ga[i] += g;
  };
  Tensor out = MakeResult({}, {a}, "sum", backward);
  double acc = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += p[i];
  out.data()[0] = static_cast<float>(acc);
  return out;
}

namespace {
/// Decomposes a shape around `dim` into (outer, reduce, inner) extents.
void SplitAroundDim(const Shape& shape, int64_t dim, int64_t* outer,
                    int64_t* reduce, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < dim; ++i) *outer *= shape[static_cast<size_t>(i)];
  *reduce = shape[static_cast<size_t>(dim)];
  for (size_t i = static_cast<size_t>(dim) + 1; i < shape.size(); ++i) {
    *inner *= shape[i];
  }
}
}  // namespace

Tensor Sum(const Tensor& a, int64_t dim, bool keepdim) {
  const int64_t rank = a.dim();
  if (dim < 0) dim += rank;
  CROSSEM_CHECK_GE(dim, 0);
  CROSSEM_CHECK_LT(dim, rank);
  int64_t outer, reduce, inner;
  SplitAroundDim(a.shape(), dim, &outer, &reduce, &inner);

  Shape out_shape = a.shape();
  if (keepdim) {
    out_shape[static_cast<size_t>(dim)] = 1;
  } else {
    out_shape.erase(out_shape.begin() + dim);
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, outer, reduce, inner](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t r = 0; r < reduce; ++r) {
        for (int64_t i = 0; i < inner; ++i) {
          ga[(o * reduce + r) * inner + i] += g[o * inner + i];
        }
      }
    }
  };
  Tensor out = MakeResult(std::move(out_shape), {a}, "sum_dim", backward);
  const float* p = a.data();
  float* q = out.data();
  std::fill_n(q, out.numel(), 0.0f);
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t r = 0; r < reduce; ++r) {
      for (int64_t i = 0; i < inner; ++i) {
        q[o * inner + i] += p[(o * reduce + r) * inner + i];
      }
    }
  }
  return out;
}

Tensor Mean(const Tensor& a) {
  CROSSEM_CHECK_GT(a.numel(), 0);
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor Mean(const Tensor& a, int64_t dim, bool keepdim) {
  int64_t d = dim < 0 ? dim + a.dim() : dim;
  const float scale = 1.0f / static_cast<float>(a.size(d));
  return MulScalar(Sum(a, dim, keepdim), scale);
}

std::vector<int64_t> ArgMax(const Tensor& a, int64_t dim) {
  const int64_t rank = a.dim();
  if (dim < 0) dim += rank;
  int64_t outer, reduce, inner;
  SplitAroundDim(a.shape(), dim, &outer, &reduce, &inner);
  std::vector<int64_t> result(static_cast<size_t>(outer * inner));
  const float* p = a.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      int64_t best = 0;
      float best_v = p[o * reduce * inner + i];
      for (int64_t r = 1; r < reduce; ++r) {
        float v = p[(o * reduce + r) * inner + i];
        if (v > best_v) {
          best_v = v;
          best = r;
        }
      }
      result[static_cast<size_t>(o * inner + i)] = best;
    }
  }
  return result;
}

// -- Softmax family ----------------------------------------------------------------

Tensor Softmax(const Tensor& a) {
  CROSSEM_CHECK_GE(a.dim(), 1);
  const int64_t cols = a.size(-1);
  const int64_t rows = a.numel() / cols;

  auto a_impl = a.impl();
  auto backward = [a_impl, rows, cols](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    const float* y = out.storage->data();
    float* ga = a_impl->MutableGrad().data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* gr = g + r * cols;
      const float* yr = y + r * cols;
      float dot = 0.0f;
      for (int64_t c = 0; c < cols; ++c) dot += gr[c] * yr[c];
      float* gar = ga + r * cols;
      for (int64_t c = 0; c < cols; ++c) gar[c] += yr[c] * (gr[c] - dot);
    }
  };
  Tensor out = MakeResult(a.shape(), {a}, "softmax", backward);
  const float* x = a.data();
  float* y = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* yr = y + r * cols;
    float mx = xr[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, xr[c]);
    float denom = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      yr[c] = std::exp(xr[c] - mx);
      denom += yr[c];
    }
    const float inv = 1.0f / denom;
    for (int64_t c = 0; c < cols; ++c) yr[c] *= inv;
  }
  return out;
}

Tensor LogSoftmax(const Tensor& a) {
  CROSSEM_CHECK_GE(a.dim(), 1);
  const int64_t cols = a.size(-1);
  const int64_t rows = a.numel() / cols;

  auto a_impl = a.impl();
  auto backward = [a_impl, rows, cols](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    const float* y = out.storage->data();  // log-probabilities
    float* ga = a_impl->MutableGrad().data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* gr = g + r * cols;
      const float* yr = y + r * cols;
      float gsum = 0.0f;
      for (int64_t c = 0; c < cols; ++c) gsum += gr[c];
      float* gar = ga + r * cols;
      for (int64_t c = 0; c < cols; ++c) {
        gar[c] += gr[c] - std::exp(yr[c]) * gsum;
      }
    }
  };
  Tensor out = MakeResult(a.shape(), {a}, "log_softmax", backward);
  const float* x = a.data();
  float* y = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* yr = y + r * cols;
    float mx = xr[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, xr[c]);
    float denom = 0.0f;
    for (int64_t c = 0; c < cols; ++c) denom += std::exp(xr[c] - mx);
    const float log_denom = std::log(denom) + mx;
    for (int64_t c = 0; c < cols; ++c) yr[c] = xr[c] - log_denom;
  }
  return out;
}

Tensor L2Normalize(const Tensor& a, float eps) {
  CROSSEM_CHECK_GE(a.dim(), 1);
  const int64_t cols = a.size(-1);
  const int64_t rows = a.numel() / cols;

  auto a_impl = a.impl();
  auto backward = [a_impl, rows, cols, eps](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    const float* x = a_impl->storage->data();
    const float* y = out.storage->data();
    float* ga = a_impl->MutableGrad().data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* xr = x + r * cols;
      const float* yr = y + r * cols;
      const float* gr = g + r * cols;
      float norm2 = 0.0f;
      for (int64_t c = 0; c < cols; ++c) norm2 += xr[c] * xr[c];
      float norm = std::max(std::sqrt(norm2), eps);
      float dot = 0.0f;
      for (int64_t c = 0; c < cols; ++c) dot += gr[c] * yr[c];
      float* gar = ga + r * cols;
      const float inv = 1.0f / norm;
      for (int64_t c = 0; c < cols; ++c) {
        gar[c] += (gr[c] - yr[c] * dot) * inv;
      }
    }
  };
  Tensor out = MakeResult(a.shape(), {a}, "l2_normalize", backward);
  const float* x = a.data();
  float* y = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* yr = y + r * cols;
    float norm2 = 0.0f;
    for (int64_t c = 0; c < cols; ++c) norm2 += xr[c] * xr[c];
    const float inv = 1.0f / std::max(std::sqrt(norm2), eps);
    for (int64_t c = 0; c < cols; ++c) yr[c] = xr[c] * inv;
  }
  return out;
}

// -- Structural ---------------------------------------------------------------------

Tensor Concat(const std::vector<Tensor>& tensors, int64_t dim) {
  CROSSEM_CHECK(!tensors.empty());
  const int64_t rank = tensors[0].dim();
  if (dim < 0) dim += rank;
  CROSSEM_CHECK_GE(dim, 0);
  CROSSEM_CHECK_LT(dim, rank);

  Shape out_shape = tensors[0].shape();
  int64_t cat_extent = 0;
  for (const Tensor& t : tensors) {
    CROSSEM_CHECK_EQ(t.dim(), rank);
    for (int64_t d = 0; d < rank; ++d) {
      if (d != dim) {
        CROSSEM_CHECK_EQ(t.size(d), tensors[0].size(d));
      }
    }
    cat_extent += t.size(dim);
  }
  out_shape[static_cast<size_t>(dim)] = cat_extent;

  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= out_shape[static_cast<size_t>(d)];
  for (int64_t d = dim + 1; d < rank; ++d) {
    inner *= out_shape[static_cast<size_t>(d)];
  }

  std::vector<std::shared_ptr<TensorImpl>> impls;
  std::vector<int64_t> extents;
  for (const Tensor& t : tensors) {
    impls.push_back(t.impl());
    extents.push_back(t.size(dim));
  }

  auto backward = [impls, extents, outer, inner,
                   cat_extent](const TensorImpl& out) {
    const float* g = out.grad->data();
    int64_t col_offset = 0;
    for (size_t t = 0; t < impls.size(); ++t) {
      const int64_t ext = extents[t];
      if (NeedsGrad(impls[t])) {
        float* ga = impls[t]->MutableGrad().data();
        for (int64_t o = 0; o < outer; ++o) {
          const float* src = g + (o * cat_extent + col_offset) * inner;
          float* dst = ga + o * ext * inner;
          for (int64_t i = 0; i < ext * inner; ++i) dst[i] += src[i];
        }
      }
      col_offset += ext;
    }
  };

  Tensor out = MakeResult(out_shape, tensors, "concat", backward);
  float* q = out.data();
  int64_t col_offset = 0;
  for (size_t t = 0; t < tensors.size(); ++t) {
    const int64_t ext = extents[t];
    const float* src = tensors[t].data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy_n(src + o * ext * inner, ext * inner,
                  q + (o * cat_extent + col_offset) * inner);
    }
    col_offset += ext;
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& tensors) {
  CROSSEM_CHECK(!tensors.empty());
  std::vector<Tensor> reshaped;
  reshaped.reserve(tensors.size());
  for (const Tensor& t : tensors) {
    Shape s = t.shape();
    s.insert(s.begin(), 1);
    reshaped.push_back(Reshape(t, s));
  }
  return Concat(reshaped, 0);
}

Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end) {
  const int64_t rank = a.dim();
  if (dim < 0) dim += rank;
  CROSSEM_CHECK_GE(dim, 0);
  CROSSEM_CHECK_LT(dim, rank);
  const int64_t extent = a.size(dim);
  CROSSEM_CHECK_GE(start, 0);
  CROSSEM_CHECK_LE(end, extent);
  CROSSEM_CHECK_LE(start, end);

  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(dim)] = end - start;

  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= a.size(d);
  for (int64_t d = dim + 1; d < rank; ++d) inner *= a.size(d);
  const int64_t width = end - start;

  auto a_impl = a.impl();
  auto backward = [a_impl, outer, inner, extent, start,
                   width](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = g + o * width * inner;
      float* dst = ga + (o * extent + start) * inner;
      for (int64_t i = 0; i < width * inner; ++i) dst[i] += src[i];
    }
  };
  Tensor out = MakeResult(std::move(out_shape), {a}, "slice", backward);
  const float* p = a.data();
  float* q = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::copy_n(p + (o * extent + start) * inner, width * inner,
                q + o * width * inner);
  }
  return out;
}

Tensor IndexSelect(const Tensor& a, const std::vector<int64_t>& indices) {
  CROSSEM_CHECK_GE(a.dim(), 1);
  const int64_t rows = a.size(0);
  const int64_t row_width = a.numel() / std::max<int64_t>(rows, 1);
  for (int64_t idx : indices) {
    CROSSEM_CHECK_GE(idx, 0);
    CROSSEM_CHECK_LT(idx, rows);
  }
  Shape out_shape = a.shape();
  out_shape[0] = static_cast<int64_t>(indices.size());

  auto a_impl = a.impl();
  auto backward = [a_impl, indices, row_width](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    for (size_t i = 0; i < indices.size(); ++i) {
      const float* src = g + static_cast<int64_t>(i) * row_width;
      float* dst = ga + indices[i] * row_width;
      for (int64_t c = 0; c < row_width; ++c) dst[c] += src[c];
    }
  };
  Tensor out = MakeResult(std::move(out_shape), {a}, "index_select", backward);
  const float* p = a.data();
  float* q = out.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    std::copy_n(p + indices[i] * row_width, row_width,
                q + static_cast<int64_t>(i) * row_width);
  }
  return out;
}

// -- Losses --------------------------------------------------------------------------

Tensor NllLoss(const Tensor& log_probs, const std::vector<int64_t>& targets) {
  CROSSEM_CHECK_EQ(log_probs.dim(), 2);
  const int64_t n = log_probs.size(0);
  const int64_t c = log_probs.size(1);
  CROSSEM_CHECK_EQ(n, static_cast<int64_t>(targets.size()));
  for (int64_t t : targets) {
    CROSSEM_CHECK_GE(t, 0);
    CROSSEM_CHECK_LT(t, c);
  }

  auto lp_impl = log_probs.impl();
  auto backward = [lp_impl, targets, n, c](const TensorImpl& out) {
    if (!NeedsGrad(lp_impl)) return;
    const float g = out.grad->data()[0];
    float* ga = lp_impl->MutableGrad().data();
    const float scale = g / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) {
      ga[i * c + targets[static_cast<size_t>(i)]] -= scale;
    }
  };
  Tensor out = MakeResult({}, {log_probs}, "nll_loss", backward);
  const float* p = log_probs.data();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc -= p[i * c + targets[static_cast<size_t>(i)]];
  }
  out.data()[0] = static_cast<float>(acc / static_cast<double>(n));
  return out;
}

Tensor Dropout(const Tensor& a, float p, bool training, Rng* rng) {
  if (!training || p <= 0.0f) return a;
  CROSSEM_CHECK(rng != nullptr);
  CROSSEM_CHECK_LT(p, 1.0f);
  const float keep = 1.0f - p;
  auto mask = std::make_shared<std::vector<float>>(
      static_cast<size_t>(a.numel()));
  for (auto& m : *mask) {
    m = rng->Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, mask](const TensorImpl& out) {
    if (!NeedsGrad(a_impl)) return;
    const float* g = out.grad->data();
    float* ga = a_impl->MutableGrad().data();
    for (int64_t i = 0; i < out.numel(); ++i) ga[i] += g[i] * (*mask)[i];
  };
  Tensor out = MakeResult(a.shape(), {a}, "dropout", backward);
  const float* x = a.data();
  float* y = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) y[i] = x[i] * (*mask)[i];
  return out;
}

}  // namespace ops
}  // namespace crossem
