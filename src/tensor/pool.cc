#include "tensor/pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace crossem {
namespace internal {
namespace {

// Zero-initialized before any dynamic initialization runs, so Storage
// allocations made during static init of other translation units see the
// pool as disabled (plain vectors) until the env var is consulted.
std::atomic<int> g_pool_enabled{-1};  // -1 = not yet resolved from env

bool ResolveEnabledFromEnv() {
  const char* env = std::getenv("CROSSEM_TENSOR_POOL");
  if (env == nullptr) return true;
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
      std::strcmp(env, "off") == 0) {
    return false;
  }
  return true;
}

// Smallest b with 2^b >= n (n >= 1).
int CeilLog2(int64_t n) {
  int b = 0;
  while ((int64_t{1} << b) < n) ++b;
  return b;
}

// Largest b with 2^b <= n (n >= 1).
int FloorLog2(int64_t n) {
  int b = 0;
  while ((int64_t{1} << (b + 1)) <= n) ++b;
  return b;
}

}  // namespace

TensorPool& TensorPool::Instance() {
  static TensorPool* pool = new TensorPool();  // leaked; see header
  return *pool;
}

TensorPool::TensorPool() {
  auto& registry = obs::MetricsRegistry::Default();
  hit_counter_ = registry.GetCounter("tensor_pool_hits_total");
  miss_counter_ = registry.GetCounter("tensor_pool_misses_total");
}

bool TensorPool::Enabled() {
  int state = g_pool_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = ResolveEnabledFromEnv() ? 1 : 0;
    g_pool_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void TensorPool::SetEnabled(bool enabled) {
  g_pool_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::vector<float> TensorPool::Acquire(int64_t numel) {
  if (numel <= 0) return {};
  if (!Enabled()) return std::vector<float>(static_cast<size_t>(numel), 0.0f);
  const int bucket = CeilLog2(numel);
  if (bucket >= kNumBuckets) {
    return std::vector<float>(static_cast<size_t>(numel), 0.0f);
  }
  std::vector<float> buf;
  bool pooled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& list = buckets_[bucket];
    if (!list.empty()) {
      buf = std::move(list.back());
      list.pop_back();
      pooled = true;
    }
  }
  if (pooled) {
    // Hit: capacity >= 2^bucket >= numel, so this resize never reallocates.
    buf.resize(static_cast<size_t>(numel));
    std::fill(buf.begin(), buf.end(), 0.0f);
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_counter_->Increment();
    return buf;
  }
  // Miss: allocate the full bucket capacity up front so the buffer can serve
  // any future request in this bucket.
  buf.reserve(static_cast<size_t>(int64_t{1} << bucket));
  buf.resize(static_cast<size_t>(numel), 0.0f);
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter_->Increment();
  return buf;
}

void TensorPool::Release(std::vector<float>&& buffer) {
  if (buffer.capacity() == 0) return;  // moved-out or empty: nothing to keep
  if (!Enabled()) return;              // destructor frees it
  const int bucket = FloorLog2(static_cast<int64_t>(buffer.capacity()));
  if (bucket >= kNumBuckets) return;
  std::vector<float> local = std::move(buffer);
  std::lock_guard<std::mutex> lock(mu_);
  auto& list = buckets_[bucket];
  if (static_cast<int>(list.size()) < kMaxPerBucket) {
    list.push_back(std::move(local));
  }
  // else: `local` frees on scope exit (after the lock guard unwinds, which
  // is fine — freeing outside the critical path matters less than capping).
}

int64_t TensorPool::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

int64_t TensorPool::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

void TensorPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& list : buckets_) list.clear();
}

}  // namespace internal
}  // namespace crossem
