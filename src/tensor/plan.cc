#include "tensor/plan.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace plan {

namespace {

using internal::Storage;
using internal::TensorImpl;

thread_local ExecutionPlan* t_capture = nullptr;

bool EnvEnabled() {
  const char* v = std::getenv("CROSSEM_EXEC_PLAN");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "off") == 0);
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnvEnabled()};
  return flag;
}

struct PlanMetrics {
  obs::Counter* traces;
  obs::Counter* replays;
  obs::Counter* backward_replays;
  obs::Counter* invalid_kernel;
  obs::Counter* invalid_stale;
  obs::Counter* invalid_incomplete;
};

PlanMetrics& Metrics() {
  static PlanMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Default();
    PlanMetrics pm;
    pm.traces = reg.GetCounter("plan_traces_total");
    pm.replays = reg.GetCounter("plan_replays_total");
    pm.backward_replays = reg.GetCounter("plan_backward_replays_total");
    pm.invalid_kernel = reg.GetCounter("plan_invalidations_kernel_table_total");
    pm.invalid_stale = reg.GetCounter("plan_invalidations_stale_params_total");
    pm.invalid_incomplete =
        reg.GetCounter("plan_invalidations_incomplete_capture_total");
    return pm;
  }();
  return m;
}

/// The process-wide kernel-table signature a plan is traced against.
uint32_t KernelSignature() {
  return (static_cast<uint32_t>(ops::GetGemmKernel()) << 1) |
         static_cast<uint32_t>(ops::GetFusedKernels());
}

}  // namespace

IndexSlot MakeIndexSlot(std::vector<int64_t> indices) {
  return std::make_shared<std::vector<int64_t>>(std::move(indices));
}

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

bool CaptureActive() { return t_capture != nullptr; }

// -- ExecutionPlan -----------------------------------------------------------

void ExecutionPlan::Retain(const std::shared_ptr<TensorImpl>& impl) {
  if (!impl) return;
  if (retained_set_.insert(impl.get()).second) retained_.push_back(impl);
}

void ExecutionPlan::RecordOpInternal(std::function<void()> fn,
                                     const std::vector<Tensor>& keep) {
  ops_.push_back(std::move(fn));
  ++ops_recorded_;
  for (const Tensor& t : keep) Retain(t.impl());
}

void ExecutionPlan::RecordBackwardInternal(
    const std::shared_ptr<TensorImpl>& root,
    const std::vector<TensorImpl*>& order) {
  CROSSEM_CHECK(root_ == nullptr)
      << "a plan can trace at most one backward pass";
  root_ = root;
  backward_order_ = order;
  // Every gradient buffer the eager backward touched: the graph nodes
  // themselves plus each node's inputs (leaves included). Eager hands the
  // closures freshly zeroed lazily-created buffers; replay re-zeroes these
  // same buffers so the accumulation starts from the identical state.
  std::unordered_set<TensorImpl*> seen;
  auto note = [&](TensorImpl* n) {
    if (n != nullptr && seen.insert(n).second) grad_nodes_.push_back(n);
  };
  note(root.get());
  for (TensorImpl* n : order) {
    note(n);
    if (n->grad_fn) {
      for (const auto& in : n->grad_fn->inputs) note(in.get());
    }
  }
}

void ExecutionPlan::BeginCapture() { kernel_sig_ = KernelSignature(); }

void ExecutionPlan::EndCapture() {
  complete_ = (ops_seen_ == ops_recorded_);
  // A plan may be captured into more than once (the fit-step planner
  // re-opens a scope on the same plan to record the backward tape); that
  // is still ONE trace of one plan.
  if (!trace_counted_) {
    trace_counted_ = true;
    Metrics().traces->Increment();
  }
  if (!complete_) {
    CROSSEM_LOG(Warning) << "plan capture incomplete: saw " << ops_seen_
                         << " tensor ops but recorded " << ops_recorded_
                         << "; falling back to eager execution";
  }
}

void ExecutionPlan::ZeroRetainedGrads() {
  for (const auto& impl : retained_) {
    if (impl->grad) std::fill_n(impl->grad->data(), impl->grad->numel(), 0.0f);
  }
}

void ExecutionPlan::Replay() {
  CROSSEM_TRACE_SPAN("plan_replay");
  Metrics().replays->Increment();
  for (const auto& fn : ops_) fn();
}

void ExecutionPlan::ReplayBackward() {
  CROSSEM_TRACE_SPAN("plan_replay_backward");
  CROSSEM_CHECK(root_ != nullptr) << "plan has no traced backward";
  Metrics().backward_replays->Increment();
  for (TensorImpl* n : grad_nodes_) {
    if (n->grad) std::fill_n(n->grad->data(), n->grad->numel(), 0.0f);
  }
  root_->MutableGrad().data()[0] += 1.0f;
  for (auto it = backward_order_.rbegin(); it != backward_order_.rend();
       ++it) {
    TensorImpl* node = *it;
    if (node->grad_fn && node->grad_fn->backward) {
      node->grad_fn->backward(*node);
    }
  }
}

void ExecutionPlan::BindParams(const std::vector<Tensor>& params) {
  param_bindings_.clear();
  param_bindings_.reserve(params.size());
  for (const Tensor& p : params) {
    CROSSEM_CHECK(p.defined());
    param_bindings_.emplace_back(p.impl(), p.impl()->storage.get());
  }
}

bool ExecutionPlan::Validate(std::string* reason) const {
  if (!complete_) {
    Metrics().invalid_incomplete->Increment();
    if (reason) *reason = "incomplete capture (uninstrumented op)";
    return false;
  }
  if (kernel_sig_ != KernelSignature()) {
    Metrics().invalid_kernel->Increment();
    if (reason) *reason = "kernel table changed since trace";
    return false;
  }
  for (const auto& [impl, storage] : param_bindings_) {
    if (impl->storage.get() != storage) {
      Metrics().invalid_stale->Increment();
      if (reason) *reason = "stale plan: parameter storage reallocated";
      return false;
    }
  }
  return true;
}

// -- CaptureScope ------------------------------------------------------------

CaptureScope::CaptureScope(ExecutionPlan* plan) {
  CROSSEM_CHECK(plan != nullptr);
  CROSSEM_CHECK(t_capture == nullptr)
      << "plan capture scopes do not nest";
  plan->BeginCapture();
  t_capture = plan;
}

CaptureScope::~CaptureScope() {
  ExecutionPlan* p = t_capture;
  t_capture = nullptr;
  p->EndCapture();
}

namespace detail {

void RecordOp(std::function<void()> fn, const std::vector<Tensor>& keep) {
  CROSSEM_CHECK(t_capture != nullptr);
  t_capture->RecordOpInternal(std::move(fn), keep);
}

void RecordBackward(const std::shared_ptr<TensorImpl>& root,
                    const std::vector<TensorImpl*>& order) {
  if (t_capture != nullptr) t_capture->RecordBackwardInternal(root, order);
}

void NoteTensorOp() {
  if (t_capture != nullptr) t_capture->NoteTensorOpInternal();
}

}  // namespace detail

}  // namespace plan
}  // namespace crossem
