// Differentiable tensor operations.
//
// Every function here builds the forward result and, when gradients are
// enabled and any input requires them, records an autograd node whose
// backward closure accumulates into the inputs' grad buffers.
//
// Broadcasting follows NumPy right-aligned semantics: trailing dimensions
// must match or be 1 (rank-0 scalars broadcast to anything). Backward
// sum-reduces gradients over broadcast dimensions.
#ifndef CROSSEM_TENSOR_OPS_H_
#define CROSSEM_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/plan.h"
#include "tensor/tensor.h"

namespace crossem {
namespace ops {

// -- Shape utilities ----------------------------------------------------------

/// NumPy-style broadcast of two shapes; CHECK-fails if incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

/// Identity matrix of size [n, n].
Tensor Eye(int64_t n);

// -- Elementwise binary (broadcasting) -----------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

/// Convenience scalar forms (the scalar is a constant, not differentiated).
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// -- Elementwise unary ----------------------------------------------------------

Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);   // natural log; input must be positive
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Sin(const Tensor& a);
Tensor Cos(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Gelu(const Tensor& a);  // tanh approximation
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
/// Elementwise a^p for constant p (a must be positive unless p is integral).
Tensor Pow(const Tensor& a, float p);

// -- Matrix multiply --------------------------------------------------------------

/// Which inner GEMM kernel MatMul uses. kBlocked is the production
/// cache-blocked/register-tiled kernel; kReference is the original scalar
/// triple loop, kept selectable so benchmarks can measure composite ops
/// (e.g. PCP proximity) against the pre-optimization baseline and tests
/// can cross-check numerics.
enum class GemmKernel { kBlocked, kReference };

/// Selects the GEMM kernel process-wide (not thread-safe; call only from
/// single-threaded setup code in benchmarks/tests).
void SetGemmKernel(GemmKernel kernel);
GemmKernel GetGemmKernel();

/// 2D x 2D, batched ND x ND with identical leading dims, or ND x 2D
/// (the 2D right-hand side is shared across the batch).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// A @ B^T with b given in its natural [n, k] layout (2D, shared across
/// a's batch dims). Equivalent to MatMul(a, Transpose(b, 0, 1)) — bitwise,
/// since the GEMM pack produces exactly the materialized transpose — but
/// skips the transpose tensor entirely and the backward dA GEMM reads b
/// directly with no packing. This is the similarity-matrix layout
/// (text [V, E] x image [I, E]^T).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// Swaps dimensions d0 and d1 (copying; result is contiguous).
Tensor Transpose(const Tensor& a, int64_t d0, int64_t d1);

/// Reshapes to `shape`; one dimension may be -1 (inferred).
Tensor Reshape(const Tensor& a, Shape shape);

// -- Reductions --------------------------------------------------------------------

Tensor Sum(const Tensor& a);                              // -> scalar
Tensor Sum(const Tensor& a, int64_t dim, bool keepdim);   // reduce one dim
Tensor Mean(const Tensor& a);                             // -> scalar
Tensor Mean(const Tensor& a, int64_t dim, bool keepdim);  // reduce one dim

/// Index of the max element along `dim` (not differentiable).
std::vector<int64_t> ArgMax(const Tensor& a, int64_t dim);

// -- Normalization / activations over the last dimension -----------------------------

Tensor Softmax(const Tensor& a);      // over last dim, numerically stable
Tensor LogSoftmax(const Tensor& a);   // over last dim, numerically stable
/// x / max(||x||_2, eps) row-wise over the last dimension.
Tensor L2Normalize(const Tensor& a, float eps = 1e-8f);

// -- Fused kernels ------------------------------------------------------------------
//
// Single-node replacements for the hot composed-op subgraphs in src/nn.
// Each kernel replicates the composed graph's per-element arithmetic and
// accumulation order exactly, so switching between fused and reference
// paths is bitwise-invisible (the determinism tests enforce this); the win
// is graph overhead — one tape node and zero intermediate tensors instead
// of ~10 nodes and ~8 temporaries per call.

/// Whether the nn layers route through the fused kernels (kFused, default)
/// or the original composed-op graphs (kReference). Mirrors SetGemmKernel:
/// process-wide, set only from single-threaded setup code. The initial
/// value honors CROSSEM_FUSED_KERNELS ("0"/"off"/"reference" disables).
enum class FusedKernels { kFused, kReference };
void SetFusedKernels(FusedKernels mode);
FusedKernels GetFusedKernels();

/// Activation fused into BiasActivation after the bias add.
enum class BiasAct { kNone, kRelu, kGelu };

/// Fused LayerNorm over the last dimension:
/// gamma * (x - mean) / sqrt(var + eps) + beta, with single-pass row
/// statistics (two saved floats per row instead of seven intermediate
/// tensors on the tape).
Tensor LayerNormFused(const Tensor& x, const Tensor& gamma,
                      const Tensor& beta, float eps);

/// Fused softmax(x * scale [+ mask_bias]) over the last dimension. When
/// `key_padding_mask` ([B, Tk], 1 = valid key) is defined, x must be
/// [B, H, Tq, Tk] and masked keys receive the same -1e9 additive bias the
/// composed attention path builds. The mask is treated as a constant.
Tensor ScaledMaskedSoftmax(const Tensor& x, float scale,
                           const Tensor& key_padding_mask = Tensor());

/// Fused act(x + bias) with bias ([D]) broadcast over the trailing
/// dimension of x ([..., D]).
Tensor BiasActivation(const Tensor& x, const Tensor& bias, BiasAct act);

// -- Structural -------------------------------------------------------------------

/// Concatenates along `dim`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& tensors, int64_t dim);

/// Stacks equal-shaped tensors along a new leading dimension.
Tensor Stack(const std::vector<Tensor>& tensors);

/// Contiguous sub-range [start, end) along `dim`.
Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end);

/// Gathers rows along dimension 0: out[i] = a[indices[i]].
/// Backward scatter-adds (this is the embedding-lookup primitive).
Tensor IndexSelect(const Tensor& a, const std::vector<int64_t>& indices);

/// Slot form for execution plans (tensor/plan.h): the index vector is
/// re-read at every execution, so a replayed plan gathers whatever the
/// host wrote into the slot for this step. The slot's SIZE is fixed at
/// trace time (it determines the output shape). Named distinctly from the
/// vector form so brace-initialized index lists stay unambiguous.
Tensor IndexSelectSlot(const Tensor& a, const plan::IndexSlot& indices);

// -- Losses ------------------------------------------------------------------------

/// Mean negative log-likelihood: -mean_i log_probs[i, targets[i]].
/// `log_probs` is [N, C] (typically from LogSoftmax).
Tensor NllLoss(const Tensor& log_probs, const std::vector<int64_t>& targets);

/// Slot form for execution plans (see IndexSelectSlot).
Tensor NllLossSlot(const Tensor& log_probs, const plan::IndexSlot& targets);

/// Dropout with keep-prob (1-p); identity when !training or p == 0.
Tensor Dropout(const Tensor& a, float p, bool training, Rng* rng);

}  // namespace ops
}  // namespace crossem

#endif  // CROSSEM_TENSOR_OPS_H_
