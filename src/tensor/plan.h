// Ahead-of-time execution plans: trace one training/inference step into a
// flat op schedule, then replay it with zero graph walking and zero per-op
// dispatch.
//
// How a plan is built. Every op in tensor/ops.cc computes its forward pass
// through a value-capturing closure over raw buffer pointers and
// pre-resolved shapes/strides/grains. Eagerly the closure runs once and is
// thrown away; while a CaptureScope is open on the calling thread the op
// additionally hands the closure to the active plan, which appends it to
// the schedule and retains the op's tensors (so the pool-backed buffers
// the closure points into stay resolved for the plan's lifetime — the
// "buffer slot" of the schedule). Tracing therefore IS an instrumented
// eager step: it costs one eager step plus the recording, and every later
// step with the same shapes replays the recorded closures back to back.
//
// Backward. Tensor::Backward() reports its reverse-topological node order
// to the active plan. ReplayBackward() zero-fills every gradient buffer
// the traced backward touched (eager allocates them freshly zeroed, so
// this is arithmetically identical), seeds d(root)/d(root) = 1 and runs
// the SAME tape closures in the SAME order — replay is bitwise-identical
// to eager by construction, on any thread count (see util/parallel.h's
// determinism contract).
//
// Inputs that change between steps flow through slots: an IndexSlot is a
// shared vector of indices that slot-taking ops (IndexSelect, NllLoss,
// Embedding::Forward, ClipModel::ContrastiveLoss) re-read on every
// execution, and write-in tensors (e.g. attention masks) are retained
// buffers whose contents the host refreshes before each replay.
//
// Invalidation. A plan records the process-wide kernel table (GEMM kernel
// + fused-kernel mode) at trace time and refuses to replay under a
// different table; BindParams() pins the parameter storages the closures
// point into so a plan built against reallocated parameters is rejected
// as stale. Shape/batch-size changes are handled by the caller keying its
// plan cache on them. A capture that saw an op it could not record (an
// uninstrumented code path) marks the plan incomplete, which callers must
// treat as "fall back to eager". CROSSEM_EXEC_PLAN=0 (or "false"/"off")
// is the global kill switch, mirroring CROSSEM_TENSOR_POOL and
// CROSSEM_FUSED_KERNELS.
//
// Threading. Capture state is thread-local: concurrent threads may trace
// and replay their own plans (the serving layer's per-worker image-encode
// plans do exactly this), but a single ExecutionPlan instance must not be
// replayed from two threads at once — its buffers are the shared state.
#ifndef CROSSEM_TENSOR_PLAN_H_
#define CROSSEM_TENSOR_PLAN_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace crossem {
namespace plan {

/// Per-step varying index input, re-read by slot-taking ops at execution
/// time. The host rewrites the vector's contents between replays; its SIZE
/// is part of the traced shape and must not change.
using IndexSlot = std::shared_ptr<std::vector<int64_t>>;

/// Makes a slot (optionally seeded with initial indices).
IndexSlot MakeIndexSlot(std::vector<int64_t> indices = {});

/// Whether plan capture/replay is globally enabled. Initial value honors
/// CROSSEM_EXEC_PLAN ("0"/"false"/"off" disables); SetEnabled() is the
/// programmatic override for tests and A/B benchmarks.
bool Enabled();
void SetEnabled(bool enabled);

/// A recorded flat op schedule plus the retained buffers it executes over.
class ExecutionPlan {
 public:
  ExecutionPlan() = default;
  ExecutionPlan(const ExecutionPlan&) = delete;
  ExecutionPlan& operator=(const ExecutionPlan&) = delete;

  /// Runs the recorded forward closures in trace order.
  void Replay();

  /// Zero-fills the traced gradient buffers, seeds the root gradient and
  /// runs the recorded tape closures in reverse topological order.
  /// Requires a traced backward (has_backward()).
  void ReplayBackward();

  /// Zero-fills the gradient buffer of every tensor the plan retains (the
  /// ones that have a gradient at all). An EAGER Backward() over a retained
  /// tape accumulates into whatever those buffers already hold — a fresh
  /// eager graph gets freshly-zeroed buffers — so callers must zero the
  /// tape before running an eager backward through retained tensors (e.g.
  /// when recording a backward schedule against an already-traced forward).
  void ZeroRetainedGrads();

  bool has_backward() const { return root_ != nullptr; }
  int64_t num_ops() const { return static_cast<int64_t>(ops_.size()); }

  /// True when capture recorded every tensor op it saw. An incomplete
  /// plan means an uninstrumented op ran during the trace; replaying it
  /// would silently skip work, so callers must fall back to eager.
  bool complete() const { return complete_; }

  /// Pins the storages of `params` so Validate() can detect a stale plan
  /// (parameters reallocated out from under the traced closures).
  void BindParams(const std::vector<Tensor>& params);

  /// Checks the plan against the current process state: kernel table
  /// unchanged since trace, bound parameter storages still live in the
  /// same buffers, and the capture was complete. On failure returns false,
  /// stores a short reason, and bumps the matching invalidation counter.
  bool Validate(std::string* reason) const;

  // -- Internal (capture hooks; not part of the public surface) ------------

  void RecordOpInternal(std::function<void()> fn,
                        const std::vector<Tensor>& keep);
  void RecordBackwardInternal(
      const std::shared_ptr<internal::TensorImpl>& root,
      const std::vector<internal::TensorImpl*>& order);
  void NoteTensorOpInternal() { ++ops_seen_; }
  void BeginCapture();  // snapshots the kernel table
  void EndCapture();    // finalizes completeness

 private:
  void Retain(const std::shared_ptr<internal::TensorImpl>& impl);

  std::vector<std::function<void()>> ops_;
  std::vector<std::shared_ptr<internal::TensorImpl>> retained_;
  std::unordered_set<const internal::TensorImpl*> retained_set_;

  // Backward schedule: post-order nodes (children first; replay iterates
  // reversed) + every gradient buffer the traced backward created.
  std::shared_ptr<internal::TensorImpl> root_;
  std::vector<internal::TensorImpl*> backward_order_;
  std::vector<internal::TensorImpl*> grad_nodes_;

  // Validation state. Bindings retain the parameter impls (so Validate()
  // never dereferences a freed impl) but compare the *storage* pointer,
  // which is what the traced closures actually point into.
  uint32_t kernel_sig_ = 0;
  std::vector<std::pair<std::shared_ptr<internal::TensorImpl>,
                        const internal::Storage*>>
      param_bindings_;
  int64_t ops_seen_ = 0;      // MakeResult calls during capture
  int64_t ops_recorded_ = 0;  // closures actually recorded
  bool complete_ = true;
  bool trace_counted_ = false;  // plan_traces_total bumped once per plan
};

/// RAII capture: while alive, tensor ops on THIS thread record into
/// `plan`. Non-reentrant per thread (CHECK-fails on nesting).
class CaptureScope {
 public:
  explicit CaptureScope(ExecutionPlan* plan);
  ~CaptureScope();
  CaptureScope(const CaptureScope&) = delete;
  CaptureScope& operator=(const CaptureScope&) = delete;
};

/// True while a CaptureScope is open on the calling thread.
bool CaptureActive();

namespace detail {

/// Appends `fn` to the active plan's schedule and retains `keep`'s impls.
/// Only call when CaptureActive().
void RecordOp(std::function<void()> fn, const std::vector<Tensor>& keep);

/// Reports a reverse-mode schedule to the active plan (called by
/// Tensor::Backward()). No-op when capture is inactive.
void RecordBackward(const std::shared_ptr<internal::TensorImpl>& root,
                    const std::vector<internal::TensorImpl*>& order);

/// Completeness accounting: MakeResult calls this for every tensor op so
/// a capture can detect ops that never recorded a closure.
void NoteTensorOp();

}  // namespace detail

}  // namespace plan
}  // namespace crossem

/// Records the op's forward closure into the active plan (no-op, one
/// thread-local load, when no capture is open). `...` lists the Tensors
/// whose buffers the closure points into.
#define CROSSEM_PLAN_CAPTURE(fn, ...)                                \
  do {                                                               \
    if (::crossem::plan::CaptureActive()) {                          \
      ::crossem::plan::detail::RecordOp((fn), {__VA_ARGS__});        \
    }                                                                \
  } while (0)

#endif  // CROSSEM_TENSOR_PLAN_H_
