// Dense float32 tensor with reverse-mode automatic differentiation.
//
// This is the compute substrate the whole repository trains on. It mirrors
// the subset of PyTorch semantics that prompt tuning needs:
//   - contiguous row-major tensors of float,
//   - a dynamic tape: every differentiable op records a node holding its
//     inputs and a backward closure,
//   - Tensor::Backward() runs the tape in reverse topological order,
//   - parameter freezing via set_requires_grad(false) (used to freeze the
//     CLIP image encoder during prompt tuning, per the paper Sec. II-C),
//   - a NoGradGuard scope for inference.
//
// Tensors are cheap shared handles: copying a Tensor aliases storage.
// All op entry points live in ops.h.
#ifndef CROSSEM_TENSOR_TENSOR_H_
#define CROSSEM_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/random.h"

namespace crossem {

/// Row-major dimension sizes, outermost first.
using Shape = std::vector<int64_t>;

/// Number of elements a shape addresses (product of dims; 1 for rank 0).
int64_t ShapeNumel(const Shape& shape);

/// "[2, 3, 4]" style rendering for error messages.
std::string ShapeToString(const Shape& shape);

namespace internal {

/// Reference-counted float buffer; reports its size to MemoryTracker so the
/// efficiency experiments can account "device" memory. The underlying
/// vector is drawn from (and returned to) TensorPool, so steady-state
/// training reuses buffers instead of hitting malloc per op.
class Storage {
 public:
  explicit Storage(int64_t numel);
  ~Storage();

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  /// Moves the buffer out (Tensor::ToVector() && path). The storage is left
  /// empty; its destructor then has nothing to return to the pool, and the
  /// MemoryTracker accounting stays symmetric via tracked_bytes_.
  std::vector<float> TakeData();

 private:
  std::vector<float> data_;
  int64_t tracked_bytes_ = 0;
};

struct TensorImpl;

/// A recorded autograd operation: the inputs it differentiates into and a
/// closure that, given the output node, accumulates input gradients.
struct AutogradNode {
  std::string op_name;
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  // Reads `out->grad` and accumulates into each input's grad buffer.
  std::function<void(const TensorImpl& out)> backward;
};

struct TensorImpl {
  Shape shape;
  std::shared_ptr<Storage> storage;
  // Lazily allocated; same numel as storage when present.
  std::shared_ptr<Storage> grad;
  bool requires_grad = false;
  std::shared_ptr<AutogradNode> grad_fn;

  int64_t numel() const { return ShapeNumel(shape); }
  /// Ensures the grad buffer exists (zero-filled on creation).
  Storage& MutableGrad();
};

}  // namespace internal

/// True while gradients are being recorded (default). Ops skip building the
/// tape when false.
bool GradModeEnabled();

/// RAII scope that disables tape recording (inference / metric computation).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Shared handle to a dense float tensor. See file comment for semantics.
class Tensor {
 public:
  /// An empty (null) tensor; defined() is false.
  Tensor() = default;

  // -- Factories ------------------------------------------------------------

  static Tensor Zeros(Shape shape, bool requires_grad = false);
  static Tensor Full(Shape shape, float value, bool requires_grad = false);
  static Tensor Ones(Shape shape, bool requires_grad = false);
  /// Gaussian init with the given stddev (mean 0).
  static Tensor Randn(Shape shape, Rng* rng, float stddev = 1.0f,
                      bool requires_grad = false);
  /// Uniform init in [lo, hi).
  static Tensor Rand(Shape shape, Rng* rng, float lo = 0.0f, float hi = 1.0f,
                     bool requires_grad = false);
  /// Copies `values` (size must equal ShapeNumel(shape)).
  static Tensor FromVector(Shape shape, const std::vector<float>& values,
                           bool requires_grad = false);
  /// Rank-0 scalar.
  static Tensor Scalar(float value, bool requires_grad = false);

  // -- Introspection ---------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t dim() const;
  int64_t size(int64_t d) const;
  int64_t numel() const;

  float* data();
  const float* data() const;
  /// Copies the buffer out (handy in tests).
  std::vector<float> ToVector() const&;
  /// Move-out overload for `std::move(t).ToVector()`: steals the buffer
  /// without a copy when this handle uniquely owns the storage (the tensor
  /// becomes undefined), and falls back to a copy when storage is aliased.
  std::vector<float> ToVector() &&;
  /// Value of a rank-0/1-element tensor.
  float item() const;
  /// Element at flat (row-major) index.
  float at(int64_t flat_index) const;

  // -- Autograd ---------------------------------------------------------------

  bool requires_grad() const;
  /// Marks this tensor as a leaf that accumulates gradients. Only valid on
  /// leaves (tensors without grad_fn).
  Tensor& set_requires_grad(bool value);

  /// Gradient accumulated by Backward(); undefined Tensor if none yet.
  Tensor grad() const;
  /// Zero-fills (or drops) the accumulated gradient.
  void ZeroGrad();

  /// Runs reverse-mode AD from this scalar tensor (numel() must be 1).
  void Backward();

  /// Returns a view sharing storage but detached from the tape.
  Tensor Detach() const;

  /// Deep copy of the buffer (detached).
  Tensor Clone() const;

  // -- Internal ---------------------------------------------------------------

  std::shared_ptr<internal::TensorImpl> impl() const { return impl_; }
  static Tensor FromImpl(std::shared_ptr<internal::TensorImpl> impl);

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

}  // namespace crossem

#endif  // CROSSEM_TENSOR_TENSOR_H_
