// Size-bucketed buffer pool for tensor storage. Every op output and every
// autograd gradient buffer is a freshly zeroed std::vector<float>; in the
// Fit inner loop the same few dozen sizes recur every step, so after a short
// warmup the pool serves every allocation from a freelist and the hot path
// stops touching malloc entirely.
//
// Design:
//  - Buffers live in power-of-two capacity buckets. Acquire(numel) takes a
//    buffer from bucket ceil(log2(numel)) — any buffer there has capacity
//    >= numel, so the resize back to numel never reallocates — and returns
//    it zero-filled (Storage's constructor contract).
//  - Release() files a buffer under floor(log2(capacity)), so a reused
//    buffer keeps satisfying the bucket invariant above.
//  - A single mutex guards the freelists. The critical section is a
//    pointer-swap push/pop; the zero-fill happens outside the lock on the
//    calling thread. Fit steps running on concurrent threads (serving +
//    training) share one pool safely.
//  - CROSSEM_TENSOR_POOL=0 disables pooling entirely (allocations fall back
//    to plain vectors); SetEnabled() is the programmatic equivalent for
//    tests and A/B benchmarks.
//  - Hit/miss counters are mirrored into the obs metrics registry
//    ("tensor_pool_hits_total" / "tensor_pool_misses_total").
//
// The singleton is intentionally leaked: Storage destructors run during
// static teardown (e.g. thread_local tensors) and must always find a live
// pool to hand their buffers back to.
#ifndef CROSSEM_TENSOR_POOL_H_
#define CROSSEM_TENSOR_POOL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace crossem {
namespace obs {
class Counter;
}  // namespace obs

namespace internal {

class TensorPool {
 public:
  /// Leaked singleton (never destroyed; see file comment).
  static TensorPool& Instance();

  /// Returns a zero-filled buffer of exactly `numel` floats, reusing a
  /// pooled buffer when one of sufficient capacity is available.
  std::vector<float> Acquire(int64_t numel);

  /// Returns a buffer to its capacity bucket (or frees it if the bucket is
  /// full, the pool is disabled, or the buffer was moved out of).
  void Release(std::vector<float>&& buffer);

  /// Pooling on/off. The initial value comes from CROSSEM_TENSOR_POOL
  /// (anything other than "0"/"false"/"off" enables). Thread-safe.
  static bool Enabled();
  static void SetEnabled(bool enabled);

  /// Lifetime hit/miss counts (also exported to the obs registry).
  int64_t hits() const;
  int64_t misses() const;

  /// Drops every cached buffer. Test hook; never needed in production.
  void Clear();

 private:
  TensorPool();
  TensorPool(const TensorPool&) = delete;
  TensorPool& operator=(const TensorPool&) = delete;

  // Buckets cover capacities up to 2^47 floats; larger requests bypass the
  // pool (they would never recur enough to be worth caching anyway).
  static constexpr int kNumBuckets = 48;
  // Per-bucket cap: bounds worst-case retained memory at roughly
  // kMaxPerBucket * 2 * largest-live-tensor-size floats.
  static constexpr int kMaxPerBucket = 128;

  std::mutex mu_;
  std::vector<std::vector<float>> buckets_[kNumBuckets];
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
};

}  // namespace internal
}  // namespace crossem

#endif  // CROSSEM_TENSOR_POOL_H_
