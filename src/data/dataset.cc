#include "data/dataset.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>

#include "tensor/ops.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace crossem {
namespace data {

std::vector<int64_t> CrossModalDataset::TestImageIndices() const {
  std::vector<bool> is_test(entities.size(), false);
  for (int64_t c : test_classes) is_test[static_cast<size_t>(c)] = true;
  std::vector<int64_t> out;
  for (size_t i = 0; i < images.size(); ++i) {
    if (is_test[static_cast<size_t>(images[i].true_class)]) {
      out.push_back(static_cast<int64_t>(i));
    }
  }
  return out;
}

Tensor CrossModalDataset::StackImages(
    const std::vector<int64_t>& image_indices) const {
  CROSSEM_CHECK(!image_indices.empty());
  std::vector<Tensor> patch_tensors;
  patch_tensors.reserve(image_indices.size());
  for (int64_t idx : image_indices) {
    CROSSEM_CHECK_GE(idx, 0);
    CROSSEM_CHECK_LT(idx, static_cast<int64_t>(images.size()));
    patch_tensors.push_back(images[static_cast<size_t>(idx)].patches);
  }
  return ops::Stack(patch_tensors);
}

CrossModalDataset BuildDataset(const DatasetConfig& config) {
  CrossModalDataset ds;
  ds.name = config.name;
  WorldConfig wc = config.world;
  wc.seed = config.seed;
  ds.world = std::make_shared<World>(wc);
  Rng rng(config.seed + 1);

  const World& world = *ds.world;
  const int64_t num_classes = world.num_classes();

  // -- Graph side -------------------------------------------------------------
  // One entity vertex per class; attribute-value vertices interned so that
  // classes sharing an attribute share the vertex (as in Figure 1(b)).
  std::map<int64_t, graph::VertexId> attr_vertex;
  for (int64_t c = 0; c < num_classes; ++c) {
    ds.entities.push_back(ds.graph.AddVertex(world.ClassName(c)));
  }
  auto intern_attr = [&](int64_t attr) {
    auto it = attr_vertex.find(attr);
    if (it != attr_vertex.end()) return it->second;
    graph::VertexId v = ds.graph.AddVertex(world.AttributeName(attr));
    attr_vertex.emplace(attr, v);
    return v;
  };

  for (int64_t c = 0; c < num_classes; ++c) {
    const auto& attrs = world.ClassAttributes(c);
    int64_t keep = static_cast<int64_t>(attrs.size());
    if (config.style == GraphStyle::kRelational) {
      keep = std::min<int64_t>(keep, config.attribute_edges_per_entity);
    }
    for (int64_t k = 0; k < keep; ++k) {
      const int64_t attr = attrs[static_cast<size_t>(k)];
      graph::VertexId av = intern_attr(attr);
      CROSSEM_CHECK(ds.graph
                        .AddEdge(ds.entities[static_cast<size_t>(c)], av,
                                 "has " + world.AttributeKind(attr))
                        .ok());
    }
  }

  if (config.style == GraphStyle::kRelational) {
    // Random entity-entity relations, biased toward attribute overlap so
    // that graph neighborhoods carry signal (as Freebase neighborhoods do).
    for (int64_t e = 0; e < config.extra_relation_edges; ++e) {
      int64_t a = rng.UniformInt(0, num_classes - 1);
      int64_t b = rng.UniformInt(0, num_classes - 1);
      if (a == b) continue;
      const int64_t rel = rng.UniformInt(0, config.num_relation_types - 1);
      CROSSEM_CHECK(ds.graph
                        .AddEdge(ds.entities[static_cast<size_t>(a)],
                                 ds.entities[static_cast<size_t>(b)],
                                 "rel " + std::to_string(rel))
                        .ok());
    }
  }

  // -- Image side -------------------------------------------------------------
  for (int64_t c = 0; c < num_classes; ++c) {
    for (int64_t i = 0; i < config.images_per_class; ++i) {
      SyntheticImage img = world.SampleImage(
          c, config.patches_per_image, config.attrs_shown_per_image, &rng);
      img.id = static_cast<int64_t>(ds.images.size());
      ds.images.push_back(std::move(img));
    }
  }

  // -- Vocabulary --------------------------------------------------------------
  for (const std::string& w : world.VocabularyWords()) ds.vocab.AddWord(w);
  for (const std::string& w : ds.graph.UniqueWords()) ds.vocab.AddWord(w);

  // -- Zero-shot class split ([42]) ---------------------------------------------
  std::vector<int64_t> order(static_cast<size_t>(num_classes));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  const int64_t num_test = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<float>(num_classes) *
                              config.test_fraction));
  for (int64_t i = 0; i < num_classes; ++i) {
    if (i < num_test) {
      ds.test_classes.push_back(order[static_cast<size_t>(i)]);
    } else {
      ds.train_classes.push_back(order[static_cast<size_t>(i)]);
    }
  }
  std::sort(ds.test_classes.begin(), ds.test_classes.end());
  std::sort(ds.train_classes.begin(), ds.train_classes.end());
  return ds;
}

namespace {
int64_t Scaled(double scale, int64_t base, int64_t minimum) {
  return std::max<int64_t>(minimum,
                           static_cast<int64_t>(scale * static_cast<double>(base)));
}
}  // namespace

DatasetConfig CubLikeConfig(double scale) {
  // CUB: 200 bird classes, 312 attributes, 11,788 images, dense
  // attribute graph (Table I: 512 vertices, 3,245 edges).
  DatasetConfig c;
  c.name = "CUB-like";
  c.style = GraphStyle::kAttribute;
  c.world.num_classes = Scaled(scale, 24, 6);
  c.world.num_attributes = Scaled(scale, 40, 10);
  c.world.attrs_per_class = 6;
  c.world.patch_dim = 16;
  c.world.patch_noise = 0.30f;
  c.images_per_class = Scaled(scale, 12, 4);
  c.patches_per_image = 8;
  c.attrs_shown_per_image = 4;
  c.seed = 1001;
  return c;
}

DatasetConfig SunLikeConfig(double scale) {
  // SUN: 717 scene classes but only 102 attributes and a sparser graph
  // (Table I: 819 vertices, 2,130 edges) -> more classes, fewer attrs
  // per class, noisier images. The hardest of the three (paper Table II).
  DatasetConfig c;
  c.name = "SUN-like";
  c.style = GraphStyle::kAttribute;
  c.world.num_classes = Scaled(scale, 36, 8);
  c.world.num_attributes = Scaled(scale, 26, 8);
  c.world.attrs_per_class = 3;
  c.world.patch_dim = 16;
  c.world.patch_noise = 0.45f;
  c.images_per_class = Scaled(scale, 10, 4);
  c.patches_per_image = 8;
  c.attrs_shown_per_image = 2;
  c.seed = 2002;
  return c;
}

namespace {
DatasetConfig FbLikeConfig(const std::string& name, double scale,
                           int64_t classes, int64_t rel_edges,
                           uint64_t seed) {
  // FB15K-237-IMG subsets: relation-heavy graphs, ~10 images per entity.
  DatasetConfig c;
  c.name = name;
  c.style = GraphStyle::kRelational;
  c.world.num_classes = Scaled(scale, classes, 10);
  c.world.num_attributes = Scaled(scale, 48, 12);
  c.world.attrs_per_class = 5;
  c.world.patch_dim = 16;
  c.world.patch_noise = 0.40f;
  c.images_per_class = Scaled(scale, 8, 3);
  c.patches_per_image = 8;
  c.attrs_shown_per_image = 3;
  c.attribute_edges_per_entity = 2;
  c.extra_relation_edges = Scaled(scale, rel_edges, 20);
  c.seed = seed;
  return c;
}
}  // namespace

DatasetConfig Fb2kLikeConfig(double scale) {
  return FbLikeConfig("FB2K-IMG-like", scale, 40, 120, 3003);
}

DatasetConfig Fb6kLikeConfig(double scale) {
  return FbLikeConfig("FB6K-IMG-like", scale, 80, 480, 3004);
}

DatasetConfig Fb10kLikeConfig(double scale) {
  return FbLikeConfig("FB10K-IMG-like", scale, 136, 1180, 3005);
}

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Result<std::string> ReadWholeFile(const std::string& path) {
  FilePtr f(io::Fopen(path, "rb"));
  if (!f) return Status::IOError("cannot open '" + path + "' for reading");
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const size_t n = io::Fread(buf, 1, sizeof(buf), f.get());
    data.append(buf, n);
    if (n < sizeof(buf)) {
      // Real freads end short only at EOF or on a stream error; an
      // injected fault sets neither flag — treat both non-EOF cases as
      // I/O failures.
      if (!std::feof(f.get())) {
        return Status::IOError("read failed: '" + path + "'");
      }
      break;
    }
  }
  return data;
}

}  // namespace

Result<ImageRepository> LoadImageRepositoryCsv(const std::string& path) {
  std::string text;
  CROSSEM_ASSIGN_OR_RETURN(text, ReadWholeFile(path));
  std::map<std::string, std::vector<std::vector<float>>> by_image;
  std::vector<std::string> order;
  std::istringstream in(text);
  std::string line;
  int64_t dim = -1;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    if (!std::getline(ls, cell, ',')) continue;
    std::string id = cell;
    std::vector<float> feats;
    while (std::getline(ls, cell, ',')) {
      feats.push_back(std::strtof(cell.c_str(), nullptr));
    }
    if (feats.empty()) {
      return Status::ParseError("'" + path +
                                "': image row without features: " + line);
    }
    if (dim < 0) dim = static_cast<int64_t>(feats.size());
    if (static_cast<int64_t>(feats.size()) != dim) {
      return Status::ParseError("inconsistent feature width in '" + path +
                                "'");
    }
    if (by_image.emplace(id, std::vector<std::vector<float>>{}).second) {
      order.push_back(id);
    }
    by_image[id].push_back(std::move(feats));
  }
  if (order.empty()) return Status::ParseError("no images in '" + path + "'");

  size_t max_patches = 0;
  for (const auto& [id, rows] : by_image) {
    max_patches = std::max(max_patches, rows.size());
  }
  ImageRepository repo;
  repo.ids = order;
  repo.patches = Tensor::Zeros({static_cast<int64_t>(order.size()),
                                static_cast<int64_t>(max_patches), dim});
  float* p = repo.patches.data();
  for (size_t img = 0; img < order.size(); ++img) {
    const auto& rows = by_image[order[img]];
    for (size_t r = 0; r < rows.size(); ++r) {
      std::copy(rows[r].begin(), rows[r].end(),
                p + (img * max_patches + r) * static_cast<size_t>(dim));
    }
  }
  return repo;
}

Status SaveImageRepositoryCsv(const ImageRepository& repo,
                              const std::string& path) {
  if (!repo.patches.defined() || repo.patches.dim() != 3 ||
      repo.patches.size(0) != static_cast<int64_t>(repo.ids.size())) {
    return Status::InvalidArgument(
        "repository patches must be [N, P, D] with one id per image");
  }
  const int64_t num_patches = repo.patches.size(1);
  const int64_t dim = repo.patches.size(2);
  const float* p = repo.patches.data();

  // Serialize fully before touching the filesystem.
  std::ostringstream out;
  for (size_t img = 0; img < repo.ids.size(); ++img) {
    for (int64_t r = 0; r < num_patches; ++r) {
      const float* row =
          p + (static_cast<int64_t>(img) * num_patches + r) * dim;
      // Trailing all-zero rows are the load-time padding; skip them (but
      // always keep the first patch so every image appears).
      if (r > 0 && std::all_of(row, row + dim,
                               [](float v) { return v == 0.0f; })) {
        continue;
      }
      out << repo.ids[img];
      for (int64_t d = 0; d < dim; ++d) out << ',' << row[d];
      out << '\n';
    }
  }
  const std::string text = out.str();

  const std::string tmp = path + ".tmp";
  {
    FilePtr f(io::Fopen(tmp, "wb"));
    if (!f) return Status::IOError("cannot open '" + tmp + "' for writing");
    Status st = Status::OK();
    if (io::Fwrite(text.data(), 1, text.size(), f.get()) != text.size()) {
      st = Status::IOError("write failed: '" + tmp + "'");
    } else if (io::Fflush(f.get()) != 0) {
      st = Status::IOError("flush failed: '" + tmp + "'");
    } else if (io::Fsync(f.get()) != 0) {
      st = Status::IOError("fsync failed: '" + tmp + "'");
    }
    if (!st.ok()) {
      f.reset();
      io::Remove(tmp);
      return st;
    }
  }
  if (io::Rename(tmp, path) != 0) {
    io::Remove(tmp);
    return Status::IOError("rename failed: '" + tmp + "' -> '" + path + "'");
  }
  return Status::OK();
}

}  // namespace data
}  // namespace crossem
