// Synthetic cross-modal EM datasets mirroring the paper's Table I corpora.
//
// Each dataset couples a heterogeneous graph (vertices = entity classes
// plus attribute-value vertices, or relation-heavy FB-style graphs) with
// an image repository sampled from the same World, plus a vocabulary and
// the zero-shot train/test class split of [42] (train classes pre-train
// the CLIP; test classes form the unsupervised matching task).
#ifndef CROSSEM_DATA_DATASET_H_
#define CROSSEM_DATA_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "data/world.h"
#include "graph/graph.h"
#include "text/tokenizer.h"

namespace crossem {
namespace data {

/// How the graph side of a dataset is shaped.
enum class GraphStyle {
  /// Attribute-equipped graphs (CUB/SUN): entity vertices link to shared
  /// attribute-value vertices via "has <kind>" edges.
  kAttribute,
  /// Knowledge-graph style (FB15K-237-IMG): sparser attribute edges plus
  /// many entity-entity relation edges.
  kRelational,
};

/// Generation parameters for one dataset.
struct DatasetConfig {
  std::string name = "dataset";
  WorldConfig world;
  GraphStyle style = GraphStyle::kAttribute;
  int64_t images_per_class = 10;
  int64_t patches_per_image = 8;
  int64_t attrs_shown_per_image = 4;
  /// kRelational only: attribute edges kept per entity (rest dropped).
  int64_t attribute_edges_per_entity = 2;
  /// kRelational only: random entity-entity edges added.
  int64_t extra_relation_edges = 0;
  int64_t num_relation_types = 12;
  /// Fraction of classes held out as the (unsupervised) matching task.
  float test_fraction = 0.5f;
  uint64_t seed = 7;
};

/// A fully materialized dataset.
struct CrossModalDataset {
  std::string name;
  std::shared_ptr<World> world;
  graph::Graph graph;
  /// Entity vertex of each class: entities[c] is the vertex for class c.
  std::vector<graph::VertexId> entities;
  /// All images; img.true_class indexes `entities`.
  std::vector<SyntheticImage> images;
  text::Vocabulary vocab;
  std::vector<int64_t> train_classes;
  std::vector<int64_t> test_classes;

  /// Indices into `images` whose class is a test class.
  std::vector<int64_t> TestImageIndices() const;
  /// Stacked patch tensor [N, P, patch_dim] for the given image indices.
  Tensor StackImages(const std::vector<int64_t>& image_indices) const;
};

/// Builds a dataset from its config (deterministic given config.seed).
CrossModalDataset BuildDataset(const DatasetConfig& config);

/// Presets reproducing the relative statistics of the paper's Table I at
/// CPU scale. `scale` multiplies class/image counts (1.0 = defaults).
DatasetConfig CubLikeConfig(double scale = 1.0);
DatasetConfig SunLikeConfig(double scale = 1.0);
DatasetConfig Fb2kLikeConfig(double scale = 1.0);
DatasetConfig Fb6kLikeConfig(double scale = 1.0);
DatasetConfig Fb10kLikeConfig(double scale = 1.0);

}  // namespace data
}  // namespace crossem

#endif  // CROSSEM_DATA_DATASET_H_
