// Synthetic cross-modal EM datasets mirroring the paper's Table I corpora.
//
// Each dataset couples a heterogeneous graph (vertices = entity classes
// plus attribute-value vertices, or relation-heavy FB-style graphs) with
// an image repository sampled from the same World, plus a vocabulary and
// the zero-shot train/test class split of [42] (train classes pre-train
// the CLIP; test classes form the unsupervised matching task).
#ifndef CROSSEM_DATA_DATASET_H_
#define CROSSEM_DATA_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "data/world.h"
#include "graph/graph.h"
#include "text/tokenizer.h"
#include "util/status.h"

namespace crossem {
namespace data {

/// How the graph side of a dataset is shaped.
enum class GraphStyle {
  /// Attribute-equipped graphs (CUB/SUN): entity vertices link to shared
  /// attribute-value vertices via "has <kind>" edges.
  kAttribute,
  /// Knowledge-graph style (FB15K-237-IMG): sparser attribute edges plus
  /// many entity-entity relation edges.
  kRelational,
};

/// Generation parameters for one dataset.
struct DatasetConfig {
  std::string name = "dataset";
  WorldConfig world;
  GraphStyle style = GraphStyle::kAttribute;
  int64_t images_per_class = 10;
  int64_t patches_per_image = 8;
  int64_t attrs_shown_per_image = 4;
  /// kRelational only: attribute edges kept per entity (rest dropped).
  int64_t attribute_edges_per_entity = 2;
  /// kRelational only: random entity-entity edges added.
  int64_t extra_relation_edges = 0;
  int64_t num_relation_types = 12;
  /// Fraction of classes held out as the (unsupervised) matching task.
  float test_fraction = 0.5f;
  uint64_t seed = 7;
};

/// A fully materialized dataset.
struct CrossModalDataset {
  std::string name;
  std::shared_ptr<World> world;
  graph::Graph graph;
  /// Entity vertex of each class: entities[c] is the vertex for class c.
  std::vector<graph::VertexId> entities;
  /// All images; img.true_class indexes `entities`.
  std::vector<SyntheticImage> images;
  text::Vocabulary vocab;
  std::vector<int64_t> train_classes;
  std::vector<int64_t> test_classes;

  /// Indices into `images` whose class is a test class.
  std::vector<int64_t> TestImageIndices() const;
  /// Stacked patch tensor [N, P, patch_dim] for the given image indices.
  Tensor StackImages(const std::vector<int64_t>& image_indices) const;
};

/// Builds a dataset from its config (deterministic given config.seed).
CrossModalDataset BuildDataset(const DatasetConfig& config);

/// An on-disk image repository: patch-feature rows grouped by image id.
///
/// CSV format (crossem_match --images): one patch per row,
///   image_id,f0,f1,...,f{D-1}
/// rows sharing image_id form one image; patch counts are padded to the
/// repository maximum with zero patches.
struct ImageRepository {
  std::vector<std::string> ids;  // one per image, input order
  Tensor patches;                // [N, Pmax, D]
};

/// Parses a patch-feature CSV into a repository. All file I/O goes
/// through the crossem::io wrappers (util/fault_injection.h), so read
/// failures surface as Status instead of silently truncated data.
Result<ImageRepository> LoadImageRepositoryCsv(const std::string& path);

/// Writes a repository back out as patch-feature CSV, atomically
/// ("<path>.tmp" + fsync + rename; failed saves leave no tmp file).
/// All-zero trailing patch rows (the padding LoadImageRepositoryCsv
/// adds) are not written back.
Status SaveImageRepositoryCsv(const ImageRepository& repo,
                              const std::string& path);

/// Presets reproducing the relative statistics of the paper's Table I at
/// CPU scale. `scale` multiplies class/image counts (1.0 = defaults).
DatasetConfig CubLikeConfig(double scale = 1.0);
DatasetConfig SunLikeConfig(double scale = 1.0);
DatasetConfig Fb2kLikeConfig(double scale = 1.0);
DatasetConfig Fb6kLikeConfig(double scale = 1.0);
DatasetConfig Fb10kLikeConfig(double scale = 1.0);

}  // namespace data
}  // namespace crossem

#endif  // CROSSEM_DATA_DATASET_H_
