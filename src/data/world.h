// The generative world behind every synthetic dataset.
//
// The paper's datasets pair *attribute-equipped entities* (bird species
// with "white crown", scene classes with "open area", Freebase entities)
// with *images of those entities*. We reproduce that structure directly:
//
//   - an attribute universe: each attribute has a two-word textual name
//     ("white crown") and a unit visual code vector (its appearance);
//   - entity classes: each class has a name and a ground-truth attribute
//     subset;
//   - images: bags of patch features — each sampled attribute of the class
//     emits its visual code plus Gaussian noise, and a fraction of
//     background-noise patches is mixed in.
//
// The same attribute vocabulary drives captions for CLIP pre-training, so
// a pre-trained mini-CLIP acquires transferable text<->vision alignment
// exactly the way the real CLIP does (substitution table in DESIGN.md).
#ifndef CROSSEM_DATA_WORLD_H_
#define CROSSEM_DATA_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/random.h"

namespace crossem {
namespace data {

/// World generation parameters.
struct WorldConfig {
  int64_t num_attributes = 48;   // attribute universe size
  int64_t num_classes = 32;      // entity classes
  int64_t attrs_per_class = 5;   // ground-truth attributes per class
  int64_t patch_dim = 16;        // visual patch feature dimension
  float patch_noise = 0.3f;      // stddev of per-patch Gaussian noise
  uint64_t seed = 42;
};

/// One synthetic image: a bag of patch features with ground truth.
struct SyntheticImage {
  int64_t id = -1;
  int64_t true_class = -1;       // evaluation ground truth
  Tensor patches;                // [num_patches, patch_dim]
};

/// The sampled world: attributes, classes and a visual codebook.
class World {
 public:
  explicit World(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }

  int64_t num_attributes() const { return config_.num_attributes; }
  int64_t num_classes() const { return config_.num_classes; }

  /// Two-word attribute name, e.g. "white crown".
  const std::string& AttributeName(int64_t attr) const;

  /// Relation kind of an attribute ("crown color", "wing shape", ...),
  /// used as the edge label in graphs ("has crown color").
  const std::string& AttributeKind(int64_t attr) const;

  /// Unique class name, e.g. "laysan kestrel 7".
  const std::string& ClassName(int64_t cls) const;

  /// Ground-truth attribute ids of a class.
  const std::vector<int64_t>& ClassAttributes(int64_t cls) const;

  /// Unit visual code vector of an attribute (length patch_dim).
  const std::vector<float>& AttributeVisual(int64_t attr) const;

  /// Samples an image of `cls`: one noisy patch per sampled attribute
  /// (attrs_shown of them) plus background patches up to `num_patches`.
  SyntheticImage SampleImage(int64_t cls, int64_t num_patches,
                             int64_t attrs_shown, Rng* rng) const;

  /// A natural-language-ish caption for a class: optionally its name,
  /// plus a random subset of its attribute names ("a photo of laysan
  /// kestrel 7 with white crown and long wings"). Used for CLIP
  /// pre-training; `include_name=false` yields the attribute-only
  /// captions that dominate web corpora ("a photo of an entity with
  /// white crown...").
  std::string SampleCaption(int64_t cls, int64_t attrs_mentioned, Rng* rng,
                            bool include_name = true) const;

  /// Every word that can appear in labels/captions of this world.
  std::vector<std::string> VocabularyWords() const;

 private:
  WorldConfig config_;
  std::vector<std::string> attribute_names_;
  std::vector<std::string> attribute_kinds_;
  std::vector<std::vector<float>> visual_codebook_;
  std::vector<std::string> class_names_;
  std::vector<std::vector<int64_t>> class_attributes_;
};

}  // namespace data
}  // namespace crossem

#endif  // CROSSEM_DATA_WORLD_H_
