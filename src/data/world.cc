#include "data/world.h"

#include <cmath>

#include "util/logging.h"

namespace crossem {
namespace data {

namespace {

// Word pools for attribute and class names. Attributes are formed as
// "<adjective> <part>"; the part also names the relation kind
// ("crown color" etc. is derived as "<part> trait").
const char* kAdjectives[] = {
    "white", "black",  "grey",   "brown", "red",    "yellow", "blue",
    "green", "spotted", "striped", "long",  "short",  "curved", "pointed",
    "broad", "narrow", "bright", "dark",  "pale",   "glossy"};
const char* kParts[] = {"crown", "wing",  "tail",  "beak", "belly", "breast",
                        "throat", "back",  "leg",   "eye",  "nape",  "cheek"};
const char* kClassFirst[] = {"laysan", "sooty",   "crested", "northern",
                             "rusty",  "pied",    "great",   "lesser",
                             "common", "eastern", "western", "arctic"};
const char* kClassSecond[] = {"albatross", "kestrel",  "warbler", "sparrow",
                              "woodpecker", "cormorant", "finch",  "heron",
                              "plover",    "swallow",  "tanager", "wren"};

constexpr int64_t kNumAdjectives =
    static_cast<int64_t>(sizeof(kAdjectives) / sizeof(kAdjectives[0]));
constexpr int64_t kNumParts =
    static_cast<int64_t>(sizeof(kParts) / sizeof(kParts[0]));
constexpr int64_t kNumClassFirst =
    static_cast<int64_t>(sizeof(kClassFirst) / sizeof(kClassFirst[0]));
constexpr int64_t kNumClassSecond =
    static_cast<int64_t>(sizeof(kClassSecond) / sizeof(kClassSecond[0]));

std::vector<float> RandomUnitVector(int64_t dim, Rng* rng) {
  std::vector<float> v(static_cast<size_t>(dim));
  double norm2 = 0.0;
  for (auto& x : v) {
    x = static_cast<float>(rng->Normal());
    norm2 += static_cast<double>(x) * x;
  }
  const float inv = 1.0f / static_cast<float>(std::sqrt(norm2) + 1e-12);
  for (auto& x : v) x *= inv;
  return v;
}

}  // namespace

World::World(const WorldConfig& config) : config_(config) {
  CROSSEM_CHECK_GT(config.num_attributes, 0);
  CROSSEM_CHECK_GT(config.num_classes, 0);
  CROSSEM_CHECK_GE(config.num_attributes, config.attrs_per_class);
  Rng rng(config.seed);

  // Attributes: distinct (adjective, part) pairs.
  attribute_names_.reserve(static_cast<size_t>(config.num_attributes));
  for (int64_t i = 0; i < config.num_attributes; ++i) {
    const int64_t part = i % kNumParts;
    const int64_t adj = (i / kNumParts + i) % kNumAdjectives;
    std::string name = std::string(kAdjectives[adj]) + " " + kParts[part];
    if (i >= kNumParts * kNumAdjectives) {
      name += " " + std::to_string(i);  // guarantee uniqueness at any size
    }
    attribute_names_.push_back(std::move(name));
    attribute_kinds_.push_back(std::string(kParts[part]) + " trait");
    visual_codebook_.push_back(RandomUnitVector(config.patch_dim, &rng));
  }

  // Classes: unique names and random attribute subsets.
  class_names_.reserve(static_cast<size_t>(config.num_classes));
  for (int64_t c = 0; c < config.num_classes; ++c) {
    std::string name = std::string(kClassFirst[c % kNumClassFirst]) + " " +
                       kClassSecond[(c / kNumClassFirst) % kNumClassSecond];
    name += " " + std::to_string(c);
    class_names_.push_back(std::move(name));
    class_attributes_.push_back(rng.SampleWithoutReplacement(
        config.num_attributes, config.attrs_per_class));
  }
}

const std::string& World::AttributeName(int64_t attr) const {
  CROSSEM_CHECK_GE(attr, 0);
  CROSSEM_CHECK_LT(attr, num_attributes());
  return attribute_names_[static_cast<size_t>(attr)];
}

const std::string& World::AttributeKind(int64_t attr) const {
  CROSSEM_CHECK_GE(attr, 0);
  CROSSEM_CHECK_LT(attr, num_attributes());
  return attribute_kinds_[static_cast<size_t>(attr)];
}

const std::string& World::ClassName(int64_t cls) const {
  CROSSEM_CHECK_GE(cls, 0);
  CROSSEM_CHECK_LT(cls, num_classes());
  return class_names_[static_cast<size_t>(cls)];
}

const std::vector<int64_t>& World::ClassAttributes(int64_t cls) const {
  CROSSEM_CHECK_GE(cls, 0);
  CROSSEM_CHECK_LT(cls, num_classes());
  return class_attributes_[static_cast<size_t>(cls)];
}

const std::vector<float>& World::AttributeVisual(int64_t attr) const {
  CROSSEM_CHECK_GE(attr, 0);
  CROSSEM_CHECK_LT(attr, num_attributes());
  return visual_codebook_[static_cast<size_t>(attr)];
}

SyntheticImage World::SampleImage(int64_t cls, int64_t num_patches,
                                  int64_t attrs_shown, Rng* rng) const {
  CROSSEM_CHECK_GT(num_patches, 0);
  const auto& attrs = ClassAttributes(cls);
  attrs_shown = std::min<int64_t>(attrs_shown,
                                  static_cast<int64_t>(attrs.size()));
  attrs_shown = std::min(attrs_shown, num_patches);

  SyntheticImage img;
  img.true_class = cls;
  img.patches = Tensor::Zeros({num_patches, config_.patch_dim});
  float* p = img.patches.data();

  // Attribute-bearing patches: sampled attributes of the class, noised.
  auto which = rng->SampleWithoutReplacement(
      static_cast<int64_t>(attrs.size()), attrs_shown);
  int64_t row = 0;
  for (int64_t k : which) {
    const auto& code = AttributeVisual(attrs[static_cast<size_t>(k)]);
    for (int64_t d = 0; d < config_.patch_dim; ++d) {
      p[row * config_.patch_dim + d] =
          code[static_cast<size_t>(d)] +
          static_cast<float>(rng->Normal(0.0, config_.patch_noise));
    }
    ++row;
  }
  // Background patches: pure noise at the same scale.
  for (; row < num_patches; ++row) {
    for (int64_t d = 0; d < config_.patch_dim; ++d) {
      p[row * config_.patch_dim + d] =
          static_cast<float>(rng->Normal(0.0, config_.patch_noise));
    }
  }
  return img;
}

std::string World::SampleCaption(int64_t cls, int64_t attrs_mentioned,
                                 Rng* rng, bool include_name) const {
  const auto& attrs = ClassAttributes(cls);
  attrs_mentioned = std::min<int64_t>(attrs_mentioned,
                                      static_cast<int64_t>(attrs.size()));
  std::string caption =
      include_name ? "a photo of " + ClassName(cls) : "a photo of an entity";
  auto which = rng->SampleWithoutReplacement(
      static_cast<int64_t>(attrs.size()), attrs_mentioned);
  bool first = true;
  for (int64_t k : which) {
    caption += first ? " with " : " and ";
    first = false;
    caption += AttributeName(attrs[static_cast<size_t>(k)]);
  }
  return caption;
}

std::vector<std::string> World::VocabularyWords() const {
  std::vector<std::string> words = {"a",  "photo", "of",  "with", "an",
                                    "and", "in",   "has", "ref",  "trait",
                                    "entity"};
  for (int64_t i = 0; i < kNumAdjectives; ++i) words.push_back(kAdjectives[i]);
  for (int64_t i = 0; i < kNumParts; ++i) words.push_back(kParts[i]);
  for (int64_t i = 0; i < kNumClassFirst; ++i) {
    words.push_back(kClassFirst[i]);
  }
  for (int64_t i = 0; i < kNumClassSecond; ++i) {
    words.push_back(kClassSecond[i]);
  }
  // Numeric suffixes used in class and attribute names.
  const int64_t max_suffix =
      std::max(config_.num_classes, config_.num_attributes);
  for (int64_t i = 0; i < max_suffix; ++i) {
    words.push_back(std::to_string(i));
  }
  return words;
}

}  // namespace data
}  // namespace crossem
