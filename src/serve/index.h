// Embedding indexes for online matching: top-k nearest neighbors over
// the frozen EncodeImages output under the cosine metric.
//
// Two interchangeable backends:
//   - FlatIndex: exact chunked scan (ParallelFor + the shared top-k
//     kernel). The recall baseline and the small-repository default.
//   - HnswIndex: a Hierarchical Navigable Small World graph. Insertion
//     order is fixed and batched: each batch first runs its neighbor
//     searches against the pre-batch graph in parallel, then links
//     sequentially in ascending id order — so the built graph is
//     bitwise-identical at any thread count (the PR-1 determinism
//     contract), at a small recall cost versus pure sequential
//     insertion.
//
// Vectors are L2-normalized on Add (cosine == dot). Both backends
// serialize through the CEMCKPT2 record layer (nn/serialize.h): CRC-32
// checked, atomically written, corrupt files rejected wholesale. Index
// files carry the fingerprint of the model that produced the embeddings
// so a retuned model cannot silently query a stale index.
#ifndef CROSSEM_SERVE_INDEX_H_
#define CROSSEM_SERVE_INDEX_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eval/topk.h"
#include "nn/serialize.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace crossem {
namespace serve {

/// Search deadline: queries early-exit (returning what they have found
/// so far) once this steady-clock instant passes. kNoSearchDeadline
/// disables the checks entirely — that path never reads the clock.
using SearchDeadline = std::chrono::steady_clock::time_point;
inline constexpr SearchDeadline kNoSearchDeadline = SearchDeadline::max();

/// Abstract top-k retrieval over a repository of embeddings.
class EmbeddingIndex {
 public:
  virtual ~EmbeddingIndex() = default;

  /// Appends `embeddings` ([n, dim], any L2 norm; normalized copies are
  /// stored) with their external string ids. The first Add fixes dim.
  Status Add(const Tensor& embeddings, const std::vector<std::string>& ids);

  /// Appends `n` rows of width `dim` that are ALREADY L2-normalized,
  /// copied verbatim. Sharding uses this to split a built index:
  /// re-normalizing an already-normalized row can perturb its low-order
  /// bits, which would break the sharded-vs-single bitwise-identity
  /// contract.
  Status AddPreNormalized(const float* rows, int64_t n, int64_t dim,
                          const std::vector<std::string>& ids);

  /// The k nearest stored vectors to `query` (length dim()) by cosine
  /// similarity, best first. Deterministic at any thread count for a
  /// non-expiring deadline; once `deadline` passes the scan stops early
  /// and returns the (possibly partial, possibly empty) best-so-far.
  virtual std::vector<eval::ScoredId> Search(const float* query, int64_t k,
                                             SearchDeadline deadline) const = 0;
  std::vector<eval::ScoredId> Search(const float* query, int64_t k) const {
    return Search(query, k, kNoSearchDeadline);
  }

  /// "flat" or "hnsw" (the token --backend accepts and files record).
  virtual std::string backend() const = 0;

  int64_t size() const { return static_cast<int64_t>(ids_.size()); }
  int64_t dim() const { return dim_; }
  const std::vector<std::string>& ids() const { return ids_; }

  /// Fingerprint of the model whose EncodeImages built this index
  /// (0 until set; persisted by Save, restored by Load).
  uint32_t model_fingerprint() const { return model_fingerprint_; }
  void set_model_fingerprint(uint32_t fp) { model_fingerprint_ = fp; }

  /// Row pointer into the normalized stored vectors.
  const float* vector(int64_t id) const { return data_.data() + id * dim_; }

  /// Writes the index as one atomic CEMCKPT2 file.
  Status Save(const std::string& path) const;

  /// Loads an index file written by Save, dispatching on the recorded
  /// backend. Corruption or a malformed record set fails without
  /// returning a partially-built index.
  static Result<std::unique_ptr<EmbeddingIndex>> Load(const std::string& path);

 protected:
  /// Validates `n` rows of width `dim` and appends them to data_/ids_,
  /// L2-normalizing unless `verbatim`; returns the id of the first
  /// appended row via `first`.
  Status AppendRows(const float* src, int64_t n, int64_t dim,
                    const std::vector<std::string>& ids, bool verbatim,
                    int64_t* first);

  /// Backend hook run after rows [first, size()) land in data_/ids_
  /// (e.g. HNSW graph construction). Called by Add/AddPreNormalized.
  virtual Status OnAppended(int64_t first) = 0;

  /// Cosine similarity (dot of normalized rows) of stored row `id` and
  /// an external query of length dim_.
  float Similarity(int64_t id, const float* query) const;

  /// Backend-specific records appended to Save's common set.
  virtual void AppendExtraRecords(
      std::vector<nn::CheckpointRecord>* out) const = 0;

  /// Restores backend state from a loaded file's records (by name).
  /// The base fields (vectors, ids, fingerprint) are already populated.
  virtual Status RestoreExtra(
      const std::map<std::string, const nn::CheckpointRecord*>& by_name,
      const std::string& path) = 0;

  int64_t dim_ = 0;
  std::vector<float> data_;          // [size, dim], L2-normalized rows
  std::vector<std::string> ids_;     // external image ids, row order
  uint32_t model_fingerprint_ = 0;
};

/// Exact brute-force backend.
class FlatIndex : public EmbeddingIndex {
 public:
  using EmbeddingIndex::Search;
  std::vector<eval::ScoredId> Search(const float* query, int64_t k,
                                     SearchDeadline deadline) const override;
  std::string backend() const override { return "flat"; }

 protected:
  Status OnAppended(int64_t first) override;
  void AppendExtraRecords(
      std::vector<nn::CheckpointRecord>* out) const override;
  Status RestoreExtra(
      const std::map<std::string, const nn::CheckpointRecord*>& by_name,
      const std::string& path) override;
};

/// HNSW construction/search parameters.
struct HnswOptions {
  /// Max neighbors per node per layer (level 0 keeps 2*M).
  int64_t M = 16;
  /// Beam width while inserting.
  int64_t ef_construction = 128;
  /// Beam width while searching (raised to k when smaller).
  int64_t ef_search = 64;
  /// Level-assignment hash seed: part of the index identity — two
  /// builds agree iff seed, options and insertion order agree.
  uint64_t seed = 0x5eed5eed;
  /// Elements per construction batch; batch boundaries are fixed by
  /// element count alone, so they never depend on the thread count.
  int64_t build_batch = 64;
};

/// Approximate backend: HNSW graph over the stored vectors.
class HnswIndex : public EmbeddingIndex {
 public:
  explicit HnswIndex(HnswOptions options = {});

  using EmbeddingIndex::Search;
  std::vector<eval::ScoredId> Search(const float* query, int64_t k,
                                     SearchDeadline deadline) const override;
  std::string backend() const override { return "hnsw"; }

  const HnswOptions& options() const { return options_; }
  /// Level-0 neighbor list of a node (determinism tests compare these).
  const std::vector<int32_t>& neighbors(int64_t id) const;
  int64_t max_level() const { return max_level_; }

 protected:
  Status OnAppended(int64_t first) override;
  void AppendExtraRecords(
      std::vector<nn::CheckpointRecord>* out) const override;
  Status RestoreExtra(
      const std::map<std::string, const nn::CheckpointRecord*>& by_name,
      const std::string& path) override;

 private:
  struct Node {
    int32_t level = 0;
    /// neighbors[l] for l in [0, level]; capped at 2*M on level 0 and M
    /// above.
    std::vector<std::vector<int32_t>> neighbors;
  };

  int64_t LevelFor(int64_t id) const;
  int64_t MaxNeighbors(int64_t level) const;

  /// Greedy single-best descent through [level_from, level_to).
  int64_t GreedyDescend(const float* query, int64_t entry, int64_t from,
                        int64_t to) const;

  /// Beam search at one level; returns up to `ef` candidates best first.
  /// Stops expanding (keeping results found so far) once `deadline`
  /// passes; construction-time callers leave it unset.
  std::vector<eval::ScoredId> SearchLayer(
      const float* query, int64_t entry, int64_t ef, int64_t level,
      SearchDeadline deadline = kNoSearchDeadline) const;

  /// Links `id` into the graph given its per-level candidate lists.
  void Link(int64_t id, const std::vector<std::vector<eval::ScoredId>>& cands);

  // HNSW Alg. 4 over a best-first-sorted candidate list: keep a candidate
  // only if it is closer to the base vector than to any already-kept
  // neighbor, then fill leftover slots with the closest rejected ones.
  std::vector<int32_t> SelectDiverse(const std::vector<eval::ScoredId>& sorted,
                                     int64_t max) const;

  HnswOptions options_;
  std::vector<Node> nodes_;
  int64_t entry_point_ = -1;
  int64_t max_level_ = -1;
};

}  // namespace serve
}  // namespace crossem

#endif  // CROSSEM_SERVE_INDEX_H_
