// Embedding indexes for online matching: top-k nearest neighbors over
// the frozen EncodeImages output under the cosine metric.
//
// Two interchangeable backends:
//   - FlatIndex: exact chunked scan (ParallelFor + the shared top-k
//     kernel). The recall baseline and the small-repository default.
//   - HnswIndex: a Hierarchical Navigable Small World graph. Insertion
//     order is fixed and batched: each batch first runs its neighbor
//     searches against the pre-batch graph in parallel, then links
//     sequentially in ascending id order — so the built graph is
//     bitwise-identical at any thread count (the PR-1 determinism
//     contract), at a small recall cost versus pure sequential
//     insertion.
//
// Vectors are L2-normalized on Add (cosine == dot). Both backends
// serialize through the CEMCKPT2 record layer (nn/serialize.h): CRC-32
// checked, atomically written, corrupt files rejected wholesale. Index
// files carry the fingerprint of the model that produced the embeddings
// so a retuned model cannot silently query a stale index.
//
// Either backend can store its rows block-quantized (serve/quant.h,
// DESIGN.md §17): construction with QuantFormat kF16/kInt8 keeps only
// compressed rows plus an exact-f32 side store, scans/graph walks score
// on the compressed rows via the quantized dot kernels, and Search
// re-scores the top rerank_k candidates from the side store so ranking
// quality survives quantization. Save writes the f32 rows to an
// "<index>.f32rank" side file; Load memory-maps it when present and
// degrades to quantized-only scores (clamped to [-1, 1]) when not.
#ifndef CROSSEM_SERVE_INDEX_H_
#define CROSSEM_SERVE_INDEX_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eval/topk.h"
#include "nn/serialize.h"
#include "serve/quant.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace crossem {
namespace serve {

/// Search deadline: queries early-exit (returning what they have found
/// so far) once this steady-clock instant passes. kNoSearchDeadline
/// disables the checks entirely — that path never reads the clock.
using SearchDeadline = std::chrono::steady_clock::time_point;
inline constexpr SearchDeadline kNoSearchDeadline = SearchDeadline::max();

/// Abstract top-k retrieval over a repository of embeddings.
class EmbeddingIndex {
 public:
  virtual ~EmbeddingIndex() = default;

  /// Appends `embeddings` ([n, dim], any L2 norm; normalized copies are
  /// stored) with their external string ids. The first Add fixes dim.
  Status Add(const Tensor& embeddings, const std::vector<std::string>& ids);

  /// Appends `n` rows of width `dim` that are ALREADY L2-normalized,
  /// copied verbatim. Sharding uses this to split a built index:
  /// re-normalizing an already-normalized row can perturb its low-order
  /// bits, which would break the sharded-vs-single bitwise-identity
  /// contract.
  Status AddPreNormalized(const float* rows, int64_t n, int64_t dim,
                          const std::vector<std::string>& ids);

  /// Quantized analogue of AddPreNormalized for sharding: gathers rows
  /// `rows[0..ids.size())` of `source` bit-identically (blocks + scales
  /// copied verbatim, never re-quantized) and shares `source`'s exact
  /// side store through a row mapping. This index must be freshly
  /// constructed, empty, and of `source`'s format.
  Status AddQuantizedFrom(const EmbeddingIndex& source,
                          const std::vector<int64_t>& rows,
                          const std::vector<std::string>& ids);

  /// The k nearest stored vectors to `query` (length dim()) by cosine
  /// similarity, best first. Deterministic at any thread count for a
  /// non-expiring deadline; once `deadline` passes the scan stops early
  /// and returns the (possibly partial, possibly empty) best-so-far.
  virtual std::vector<eval::ScoredId> Search(const float* query, int64_t k,
                                             SearchDeadline deadline) const = 0;
  std::vector<eval::ScoredId> Search(const float* query, int64_t k) const {
    return Search(query, k, kNoSearchDeadline);
  }

  /// "flat" or "hnsw" (the token --backend accepts and files record).
  virtual std::string backend() const = 0;

  int64_t size() const { return static_cast<int64_t>(ids_.size()); }
  int64_t dim() const { return dim_; }
  const std::vector<std::string>& ids() const { return ids_; }

  /// Fingerprint of the model whose EncodeImages built this index
  /// (0 until set; persisted by Save, restored by Load).
  uint32_t model_fingerprint() const { return model_fingerprint_; }
  void set_model_fingerprint(uint32_t fp) { model_fingerprint_ = fp; }

  /// Row pointer into the normalized stored vectors. Only valid for a
  /// kF32 index — quantized indexes do not keep f32 rows in RAM.
  const float* vector(int64_t id) const { return data_.data() + id * dim_; }

  /// Storage format of the rows (kF32 unless chosen at construction).
  quant::QuantFormat quant_format() const { return format_; }

  /// How many top candidates Search re-scores from the exact store
  /// before truncating to k (quantized indexes only; persisted).
  int64_t rerank_k() const { return rerank_k_; }
  void set_rerank_k(int64_t k) { rerank_k_ = k; }

  /// The compressed rows (valid iff quant_format() != kF32).
  const quant::QuantStore& quant_store() const { return qstore_; }

  /// Exact f32 rows backing re-rank; null when a quantized index was
  /// loaded without its side file (re-rank then degrades to clamped
  /// quantized scores).
  const std::shared_ptr<const quant::ExactStore>& exact_store() const {
    return exact_;
  }

  /// Bytes of stored row payload (f32 rows, or quantized blocks +
  /// scales) — the bytes/entity numerator reported by the bench.
  int64_t VectorBytes() const;

  /// Approximate resident bytes: row payload + ids + backend extras
  /// (e.g. the HNSW adjacency lists). Feeds the crossem_index_bytes
  /// gauge.
  virtual int64_t MemoryBytes() const;

  /// Writes the index as one atomic CEMCKPT2 file.
  Status Save(const std::string& path) const;

  /// Loads an index file written by Save, dispatching on the recorded
  /// backend. Corruption or a malformed record set fails without
  /// returning a partially-built index.
  static Result<std::unique_ptr<EmbeddingIndex>> Load(const std::string& path);

 protected:
  /// Validates `n` rows of width `dim` and appends them to the row
  /// store and ids_, L2-normalizing unless `verbatim` (a quantized
  /// index quantizes the normalized rows into qstore_ and mirrors them
  /// into the exact store); returns the id of the first appended row
  /// via `first`.
  Status AppendRows(const float* src, int64_t n, int64_t dim,
                    const std::vector<std::string>& ids, bool verbatim,
                    int64_t* first);

  /// Backend hook run after rows [first, size()) land in the row store
  /// and ids_ (e.g. HNSW graph construction).
  virtual Status OnAppended(int64_t first) = 0;

  /// Cosine similarity of stored row `id` and an external query of
  /// length dim_: the scalar ascending f32 dot for kF32 (bitwise-stable
  /// across PRs), the selected quantized kernel otherwise.
  float Similarity(int64_t id, const float* query) const;

  /// Stored row `id` as an f32 query vector: a direct data_ pointer for
  /// kF32, a dequantized copy in a thread-local scratch otherwise. The
  /// pointer is invalidated by the next RowForQuery call on the same
  /// thread — use it immediately, never across another RowForQuery.
  const float* RowForQuery(int64_t id) const;

  /// Re-scores the top candidates from the exact store (quantized
  /// indexes; no-op truncation for kF32), re-sorts, truncates to k.
  std::vector<eval::ScoredId> ReRank(const float* query,
                                     std::vector<eval::ScoredId> cands,
                                     int64_t k) const;

  /// How many candidates Search must gather pre-re-rank for a final
  /// top-k: max(k, rerank_k) when quantized re-rank applies, k plain.
  int64_t FetchK(int64_t k) const {
    return format_ == quant::QuantFormat::kF32 ? k
                                               : std::max(k, rerank_k_);
  }

  /// Backend-specific records appended to Save's common set.
  virtual void AppendExtraRecords(
      std::vector<nn::CheckpointRecord>* out) const = 0;

  /// Restores backend state from a loaded file's records (by name).
  /// The base fields (vectors, ids, fingerprint) are already populated.
  virtual Status RestoreExtra(
      const std::map<std::string, const nn::CheckpointRecord*>& by_name,
      const std::string& path) = 0;

  int64_t dim_ = 0;
  std::vector<float> data_;          // kF32: [size, dim] normalized rows
  std::vector<std::string> ids_;     // external image ids, row order
  uint32_t model_fingerprint_ = 0;

  quant::QuantFormat format_ = quant::QuantFormat::kF32;
  quant::QuantStore qstore_;         // compressed rows (non-kF32)
  int64_t rerank_k_ = 64;
  /// Exact f32 rows for re-rank: the in-RAM mirror while building, the
  /// mmap'd side file after a Load, a mapped view in a shard.
  std::shared_ptr<const quant::ExactStore> exact_;
  /// The mutable in-RAM mirror exact_ aliases during in-process builds.
  std::shared_ptr<quant::MemoryExactStore> mem_exact_;
};

/// Exact brute-force backend (exact over its stored format — a
/// quantized FlatIndex scans compressed rows, then re-ranks).
class FlatIndex : public EmbeddingIndex {
 public:
  explicit FlatIndex(quant::QuantFormat format = quant::QuantFormat::kF32) {
    format_ = format;
  }

  using EmbeddingIndex::Search;
  std::vector<eval::ScoredId> Search(const float* query, int64_t k,
                                     SearchDeadline deadline) const override;
  std::string backend() const override { return "flat"; }

 protected:
  Status OnAppended(int64_t first) override;
  void AppendExtraRecords(
      std::vector<nn::CheckpointRecord>* out) const override;
  Status RestoreExtra(
      const std::map<std::string, const nn::CheckpointRecord*>& by_name,
      const std::string& path) override;
};

/// HNSW construction/search parameters.
struct HnswOptions {
  /// Max neighbors per node per layer (level 0 keeps 2*M).
  int64_t M = 16;
  /// Beam width while inserting.
  int64_t ef_construction = 128;
  /// Beam width while searching (raised to k when smaller).
  int64_t ef_search = 64;
  /// Level-assignment hash seed: part of the index identity — two
  /// builds agree iff seed, options and insertion order agree.
  uint64_t seed = 0x5eed5eed;
  /// Elements per construction batch; batch boundaries are fixed by
  /// element count alone, so they never depend on the thread count.
  int64_t build_batch = 64;
};

/// Approximate backend: HNSW graph over the stored vectors.
class HnswIndex : public EmbeddingIndex {
 public:
  explicit HnswIndex(HnswOptions options = {},
                     quant::QuantFormat format = quant::QuantFormat::kF32);

  using EmbeddingIndex::Search;
  std::vector<eval::ScoredId> Search(const float* query, int64_t k,
                                     SearchDeadline deadline) const override;
  std::string backend() const override { return "hnsw"; }
  int64_t MemoryBytes() const override;

  const HnswOptions& options() const { return options_; }
  /// Level-0 neighbor list of a node (determinism tests compare these).
  const std::vector<int32_t>& neighbors(int64_t id) const;
  int64_t max_level() const { return max_level_; }

 protected:
  Status OnAppended(int64_t first) override;
  void AppendExtraRecords(
      std::vector<nn::CheckpointRecord>* out) const override;
  Status RestoreExtra(
      const std::map<std::string, const nn::CheckpointRecord*>& by_name,
      const std::string& path) override;

 private:
  struct Node {
    int32_t level = 0;
    /// neighbors[l] for l in [0, level]; capped at 2*M on level 0 and M
    /// above.
    std::vector<std::vector<int32_t>> neighbors;
  };

  int64_t LevelFor(int64_t id) const;
  int64_t MaxNeighbors(int64_t level) const;

  /// Greedy single-best descent through [level_from, level_to).
  int64_t GreedyDescend(const float* query, int64_t entry, int64_t from,
                        int64_t to) const;

  /// Beam search at one level; returns up to `ef` candidates best first.
  /// Stops expanding (keeping results found so far) once `deadline`
  /// passes; construction-time callers leave it unset.
  std::vector<eval::ScoredId> SearchLayer(
      const float* query, int64_t entry, int64_t ef, int64_t level,
      SearchDeadline deadline = kNoSearchDeadline) const;

  /// Links `id` into the graph given its per-level candidate lists.
  void Link(int64_t id, const std::vector<std::vector<eval::ScoredId>>& cands);

  // HNSW Alg. 4 over a best-first-sorted candidate list: keep a candidate
  // only if it is closer to the base vector than to any already-kept
  // neighbor, then fill leftover slots with the closest rejected ones.
  std::vector<int32_t> SelectDiverse(const std::vector<eval::ScoredId>& sorted,
                                     int64_t max) const;

  HnswOptions options_;
  std::vector<Node> nodes_;
  int64_t entry_point_ = -1;
  int64_t max_level_ = -1;
};

}  // namespace serve
}  // namespace crossem

#endif  // CROSSEM_SERVE_INDEX_H_
