// Resilient sharded serving: scatter-gather over hash-partitioned index
// shards with a per-shard resilience envelope.
//
// A ShardedIndex splits one embedding repository into N independent
// backends (FlatIndex or HnswIndex each): global row r lands on shard
// SplitMix64(hash_seed ^ r) % N, and every shard remembers its rows'
// global ids in ascending order. Because rows are copied verbatim
// (AddPreNormalized — no re-normalization) and per-shard results map
// back to ascending global ids, merging per-shard flat top-k lists with
// eval::MergeTopK reproduces the unsharded flat scan bit for bit: the
// tie order (score desc, id asc) is the global one.
//
// ShardedMatchService is the scatter-gather engine on top. Its front
// half is MatchService's: bounded queue, micro-batched encoding, the
// fingerprint-keyed embedding cache. The back half fans each query out
// to every shard worker and wraps each shard call in:
//
//   * deadline propagation — every attempt carries
//     min(now + attempt_timeout, request deadline); shard searches
//     early-exit once it passes and late results are never delivered;
//   * bounded retries — up to max_attempts per shard, exponential
//     backoff capped at backoff_max plus deterministic SplitMix64
//     jitter keyed (jitter_seed, query seq, shard, attempt);
//   * hedging — a duplicate request to the same shard once the primary
//     outlives the shard's observed p95 latency (a fixed delay until
//     hedge_min_samples observations exist); first response wins;
//   * a circuit breaker per shard — closed -> open after
//     breaker_failure_threshold consecutive failures, half-open after
//     breaker_cooldown with a single probe; open shards are skipped
//     without burning the request's time budget.
//
// Shard responses are validated before they count (scores finite,
// |score| bounded, order sorted, ids in range) so a corrupt-scores
// fault is a shard failure, not a wrong answer. Failed or skipped
// shards degrade the response instead of failing it: MatchResponse
// carries coverage (row-weighted fraction of the repository actually
// searched) and a degraded flag, and the query succeeds with whatever
// the healthy shards returned. Every retry / hedge / breaker /
// coverage event lands in obs::MetricsRegistry::Default() under
// crossem_shard_* / crossem_serve_coverage_percent.
#ifndef CROSSEM_SERVE_SHARDED_H_
#define CROSSEM_SERVE_SHARDED_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/crossem.h"
#include "obs/request_trace.h"
#include "serve/cache.h"
#include "serve/index.h"
#include "serve/service.h"
#include "serve/stats.h"
#include "util/status.h"

namespace crossem {
namespace serve {

// -- ShardedIndex ------------------------------------------------------------

struct ShardedIndexOptions {
  int64_t num_shards = 4;
  /// Backend of every shard: "flat" or "hnsw".
  std::string backend = "flat";
  /// Row -> shard hash seed (part of the sharding identity).
  uint64_t hash_seed = 0x5eed0;
  /// Per-shard construction parameters for the hnsw backend.
  HnswOptions hnsw;
};

/// One embedding repository hash-partitioned into independent shards.
class ShardedIndex {
 public:
  /// Splits `source` by row hash; rows are copied verbatim so shard
  /// vectors stay bitwise-identical to the source's.
  static Result<std::unique_ptr<ShardedIndex>> Partition(
      const EmbeddingIndex& source, const ShardedIndexOptions& options);

  int64_t num_shards() const {
    return static_cast<int64_t>(shards_.size());
  }
  int64_t size() const { return static_cast<int64_t>(ids_.size()); }
  int64_t dim() const { return dim_; }
  uint32_t model_fingerprint() const { return model_fingerprint_; }
  /// External image ids in GLOBAL row order (same as the source's).
  const std::vector<std::string>& ids() const { return ids_; }

  const EmbeddingIndex& shard(int64_t s) const { return *shards_[s]; }
  int64_t shard_size(int64_t s) const {
    return static_cast<int64_t>(global_rows_[s].size());
  }

  /// Sum of the shards' approximate resident bytes (crossem_index_bytes
  /// gauge input).
  int64_t MemoryBytes() const;

  /// Top-k of one shard with ids mapped to GLOBAL rows, best first.
  /// The mapping is ascending, so the list stays RanksBefore-sorted.
  std::vector<eval::ScoredId> SearchShard(int64_t s, const float* query,
                                          int64_t k,
                                          SearchDeadline deadline) const;

 private:
  ShardedIndex() = default;

  int64_t dim_ = 0;
  uint32_t model_fingerprint_ = 0;
  std::vector<std::string> ids_;  // global row order
  std::vector<std::unique_ptr<EmbeddingIndex>> shards_;
  std::vector<std::vector<int64_t>> global_rows_;  // per shard, ascending
};

/// True when a shard response is structurally sound: every score finite
/// with |score| <= 1.0001 (cosine of unit vectors), ids in
/// [0, num_rows), and the list RanksBefore-sorted. The scatter-gather
/// layer treats a failed validation as a shard failure.
bool ValidateShardResults(const std::vector<eval::ScoredId>& results,
                          int64_t num_rows);

// -- Circuit breaker ---------------------------------------------------------

/// Per-shard closed/open/half-open breaker. All mutation happens on the
/// coordinator thread; state() is an atomic snapshot for monitors.
class CircuitBreaker {
 public:
  enum class State : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  CircuitBreaker(int64_t failure_threshold, int64_t cooldown_micros)
      : failure_threshold_(failure_threshold),
        cooldown_(std::chrono::microseconds(cooldown_micros)) {}

  /// True when a request (or probe) may be sent now. An open breaker
  /// past its cooldown flips to half-open and admits exactly one probe;
  /// further calls are denied until that probe resolves.
  bool AllowRequest(std::chrono::steady_clock::time_point now);

  /// The admitted request succeeded: close (and reset the failure run).
  void RecordSuccess();

  /// The admitted request failed: extend the failure run; at the
  /// threshold (or on a failed half-open probe) the breaker opens.
  void RecordFailure(std::chrono::steady_clock::time_point now);

  State state() const {
    return static_cast<State>(state_.load(std::memory_order_relaxed));
  }
  int64_t opens() const { return opens_.load(std::memory_order_relaxed); }

 private:
  void SetState(State s) {
    state_.store(static_cast<int>(s), std::memory_order_relaxed);
  }

  const int64_t failure_threshold_;
  const std::chrono::microseconds cooldown_;
  std::atomic<int> state_{static_cast<int>(State::kClosed)};
  int64_t consecutive_failures_ = 0;
  std::atomic<int64_t> opens_{0};
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point opened_at_{};
};

// -- ShardedMatchService -----------------------------------------------------

struct ResilienceOptions {
  /// Bounded per-shard task queue; a full queue fails the attempt
  /// immediately (breaker food) instead of blocking the coordinator.
  int64_t shard_queue = 128;
  /// Search threads per shard. >= 2 lets a hedge overtake a slow or
  /// stuck primary on the same shard.
  int64_t workers_per_shard = 2;
  /// Per-attempt time budget; the effective attempt deadline is
  /// min(now + this, request deadline).
  int64_t attempt_timeout_micros = 50000;
  /// Attempts per shard per query (1 = no retries). Hedges don't count.
  int64_t max_attempts = 3;
  /// Exponential backoff between attempts: min(max, base << (n-1)) plus
  /// deterministic jitter in [0, base).
  int64_t backoff_base_micros = 2000;
  int64_t backoff_max_micros = 20000;
  /// Jitter hash seed (reproducible chaos drills).
  uint64_t jitter_seed = 0x7edbeef;
  /// Hedged second requests: enabled, the coordinator duplicates an
  /// attempt that outlives the shard's observed p95 latency. Until
  /// hedge_min_samples latencies are recorded the fixed
  /// hedge_delay_micros applies.
  bool hedging = true;
  int64_t hedge_delay_micros = 20000;
  int64_t hedge_min_samples = 32;
  /// Circuit breaker: consecutive failures to open, cooldown before the
  /// half-open probe.
  int64_t breaker_failure_threshold = 3;
  int64_t breaker_cooldown_micros = 250000;
};

struct ShardedServiceOptions {
  /// Front-end knobs (queue, batching, cache, probability candidates) —
  /// the same contract as MatchService.
  MatchServiceOptions base;
  ResilienceOptions resilience;
};

/// Counters of the resilience envelope since service start, plus the
/// instantaneous per-shard breaker states.
struct ResilienceStats {
  int64_t shard_calls = 0;     // attempts dispatched (incl. hedges)
  int64_t shard_failures = 0;  // failed / timed-out / invalid attempts
  int64_t retries = 0;
  int64_t hedges = 0;
  int64_t hedge_wins = 0;      // hedge resolved its shard first
  int64_t breaker_opens = 0;
  int64_t breaker_skips = 0;   // shard skipped while breaker open
  int64_t corrupt_rejected = 0;
  int64_t degraded_responses = 0;
  std::vector<CircuitBreaker::State> breaker_states;  // per shard

  std::string ToString() const;
};

/// Scatter-gather MatchService over a ShardedIndex. Same request and
/// admission contract as MatchService; responses additionally carry
/// coverage/degraded. Queries never fail because shards do.
class ShardedMatchService {
 public:
  /// `matcher` and `index` are borrowed and must outlive the service.
  ShardedMatchService(const core::CrossEm* matcher, const ShardedIndex* index,
                      ShardedServiceOptions options);
  ~ShardedMatchService();  // implies Shutdown()

  ShardedMatchService(const ShardedMatchService&) = delete;
  ShardedMatchService& operator=(const ShardedMatchService&) = delete;

  std::future<Result<MatchResponse>> Submit(const MatchRequest& request);
  Result<MatchResponse> Match(const MatchRequest& request);

  /// Stop admitting, drain queued requests, join coordinator and shard
  /// workers. Idempotent.
  void Shutdown();

  ServiceStats Snapshot() const { return stats_.Snapshot(); }
  ResilienceStats ResilienceSnapshot() const;
  const EmbeddingCache& cache() const { return cache_; }
  CircuitBreaker::State breaker_state(int64_t shard) const {
    return breakers_[shard]->state();
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    MatchRequest request;
    std::promise<Result<MatchResponse>> promise;
    Clock::time_point submitted;
    Clock::time_point deadline;  // time_point::max() when none
  };

  /// Per-request gather rendezvous, shared (via shared_ptr) with every
  /// attempt so an abandoned attempt outliving the request stays safe.
  struct GatherState {
    std::mutex mu;
    std::condition_variable cv;
  };

  /// One dispatched shard attempt. Outcome fields are guarded by
  /// gather->mu; the worker sets them exactly once.
  struct ShardCall {
    std::shared_ptr<GatherState> gather;
    std::shared_ptr<const std::vector<float>> query;
    int64_t shard = 0;
    int64_t k = 0;
    Clock::time_point deadline;  // per-attempt
    bool is_hedge = false;

    // Request-trace identity of this attempt (trace null = untraced).
    // The worker records its search span under span_id; the coordinator
    // records the attempt span itself when the outcome is known.
    std::shared_ptr<obs::RequestTrace> trace;
    uint64_t span_id = 0;
    uint64_t parent_span_id = 0;
    uint64_t launch_ns = 0;
    int64_t attempt_no = 0;

    bool done = false;
    bool ok = false;
    std::vector<eval::ScoredId> results;  // GLOBAL ids
    int64_t latency_us = 0;
    bool abandoned = false;  // coordinator stopped caring
  };

  struct ShardRuntime {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<ShardCall>> queue;
    std::vector<std::thread> workers;
    /// Observed attempt latencies; drives the adaptive hedge delay.
    obs::Histogram latency_us;
  };

  void CoordinatorLoop();
  void ProcessBatch(std::vector<Pending> batch);
  /// Scatter one query across the shards, gather with the resilience
  /// envelope, and fill matches/coverage/degraded of `response`.
  void Gather(const std::shared_ptr<const std::vector<float>>& query,
              int64_t candidates, int64_t query_seq,
              Clock::time_point request_deadline, int64_t k,
              float min_probability,
              const std::shared_ptr<obs::RequestTrace>& trace,
              uint64_t parent_span_id, MatchResponse* response);
  /// False when the shard queue is full (the attempt fails fast).
  bool Dispatch(const std::shared_ptr<ShardCall>& call);
  void ShardWorkerLoop(int64_t shard);
  int64_t HedgeDelayMicros(int64_t shard) const;
  int64_t BackoffMicros(int64_t query_seq, int64_t shard,
                        int64_t attempt) const;

  const core::CrossEm* matcher_;
  const ShardedIndex* index_;
  const ShardedServiceOptions options_;
  const uint32_t fingerprint_;
  const float temperature_;

  EmbeddingCache cache_;
  StatsCollector stats_;

  // Resilience accounting: per-service instruments backing the exact
  // ResilienceStats snapshot, double-written into the process-wide
  // registry (resolved once at construction).
  struct ResilienceInstruments;
  std::unique_ptr<ResilienceInstruments> res_;

  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::vector<std::unique_ptr<ShardRuntime>> shards_;
  std::atomic<bool> shard_shutdown_{false};
  std::atomic<int64_t> query_seq_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  bool joined_ = false;
  std::thread coordinator_;
};

}  // namespace serve
}  // namespace crossem

#endif  // CROSSEM_SERVE_SHARDED_H_
