#include "serve/index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>

#include "obs/trace.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace crossem {
namespace serve {

namespace {

// -- Record names of an index file -------------------------------------------

constexpr char kRecBackend[] = "index/backend";
constexpr char kRecDim[] = "index/dim";
constexpr char kRecFingerprint[] = "index/model_fingerprint";
constexpr char kRecIds[] = "index/ids";
constexpr char kRecVectors[] = "index/vectors";
constexpr char kRecQuantFormat[] = "index/quant_format";
constexpr char kRecQuantRerank[] = "quant/rerank_k";
constexpr char kRecQuantBlocks[] = "quant/blocks";
constexpr char kRecQuantScales[] = "quant/scales";
constexpr char kRecHnswParams[] = "hnsw/params";
constexpr char kRecHnswLevels[] = "hnsw/levels";
constexpr char kRecHnswCounts[] = "hnsw/neighbor_counts";
constexpr char kRecHnswNeighbors[] = "hnsw/neighbors";

// -- Little-endian POD packing into bytes records ----------------------------

template <typename T>
void PackPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool UnpackPod(const std::string& in, size_t* pos, T* v) {
  if (in.size() - *pos < sizeof(*v)) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

std::string PackI32Vec(const std::vector<int32_t>& v) {
  std::string out;
  out.reserve(v.size() * sizeof(int32_t));
  for (int32_t x : v) PackPod(&out, x);
  return out;
}

bool UnpackI32Vec(const std::string& in, std::vector<int32_t>* v) {
  if (in.size() % sizeof(int32_t) != 0) return false;
  v->resize(in.size() / sizeof(int32_t));
  std::memcpy(v->data(), in.data(), in.size());
  return true;
}

Status CorruptIndex(const std::string& path, const std::string& what) {
  return Status::ParseError("corrupt index '" + path + "': " + what);
}

Result<const nn::CheckpointRecord*> RequireRecord(
    const std::map<std::string, const nn::CheckpointRecord*>& by_name,
    const std::string& name, uint32_t kind, const std::string& path) {
  auto it = by_name.find(name);
  if (it == by_name.end() || it->second->kind != kind) {
    return CorruptIndex(path, "missing record '" + name + "'");
  }
  return it->second;
}

/// splitmix64 — the per-element hash behind deterministic HNSW level
/// assignment (no shared RNG stream, so levels are independent of both
/// thread count and Add-call batching).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Heap where the BEST candidate (highest similarity, lowest id on
/// ties) is on top — the expansion frontier.
struct BestOnTop {
  bool operator()(const eval::ScoredId& a, const eval::ScoredId& b) const {
    return !eval::RanksBefore(a, b);
  }
};

/// Heap where the WORST kept result is on top — the eviction candidate.
struct WorstOnTop {
  bool operator()(const eval::ScoredId& a, const eval::ScoredId& b) const {
    return eval::RanksBefore(a, b);
  }
};

/// Per-thread visited markers reused across searches: stamping instead
/// of clearing keeps a level-0 beam search allocation-free after warmup.
struct VisitedSet {
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;

  void Reset(size_t n) {
    if (stamp.size() < n) stamp.resize(n, 0);
    if (++epoch == 0) {  // stamp wraparound: clear once every 2^32 uses
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }
  bool Visit(int64_t id) {  // true the first time
    if (stamp[static_cast<size_t>(id)] == epoch) return false;
    stamp[static_cast<size_t>(id)] = epoch;
    return true;
  }
};

thread_local VisitedSet t_visited;

}  // namespace

// ---------------------------------------------------------------------------
// EmbeddingIndex (shared base)
// ---------------------------------------------------------------------------

float EmbeddingIndex::Similarity(int64_t id, const float* query) const {
  if (format_ != quant::QuantFormat::kF32) return qstore_.Dot(id, query);
  // kF32 stays the exact scalar ascending dot of earlier PRs: tests and
  // the sharded bitwise-identity contract pin these values.
  const float* row = data_.data() + id * dim_;
  float dot = 0.0f;
  for (int64_t d = 0; d < dim_; ++d) dot += row[d] * query[d];
  return dot;
}

const float* EmbeddingIndex::RowForQuery(int64_t id) const {
  if (format_ == quant::QuantFormat::kF32) {
    return data_.data() + id * dim_;
  }
  thread_local std::vector<float> scratch;
  scratch.resize(static_cast<size_t>(dim_));
  qstore_.DequantizeRow(id, scratch.data());
  return scratch.data();
}

std::vector<eval::ScoredId> EmbeddingIndex::ReRank(
    const float* query, std::vector<eval::ScoredId> cands, int64_t k) const {
  if (format_ != quant::QuantFormat::kF32) {
    if (exact_ != nullptr) {
      std::vector<float> row(static_cast<size_t>(dim_));
      for (eval::ScoredId& c : cands) {
        if (!exact_->Row(c.id, row.data())) continue;
        float dot = 0.0f;
        for (int64_t d = 0; d < dim_; ++d) dot += row[d] * query[d];
        c.score = dot;
      }
      std::sort(cands.begin(), cands.end(), eval::RanksBefore);
    } else {
      // No side store (loaded without the .f32rank file): keep the
      // quantized order, but clamp scores into the cosine range so
      // downstream validation (|score| <= 1 + eps) still holds.
      for (eval::ScoredId& c : cands) {
        c.score = std::min(1.0f, std::max(-1.0f, c.score));
      }
    }
  }
  if (static_cast<int64_t>(cands.size()) > k) {
    cands.resize(static_cast<size_t>(k));
  }
  return cands;
}

int64_t EmbeddingIndex::VectorBytes() const {
  return format_ == quant::QuantFormat::kF32
             ? static_cast<int64_t>(data_.size() * sizeof(float))
             : qstore_.PayloadBytes();
}

int64_t EmbeddingIndex::MemoryBytes() const {
  int64_t bytes = VectorBytes();
  for (const std::string& id : ids_) {
    bytes += static_cast<int64_t>(sizeof(std::string) + id.capacity());
  }
  return bytes;
}

Status EmbeddingIndex::AppendRows(const float* src, int64_t n, int64_t dim,
                                  const std::vector<std::string>& ids,
                                  bool verbatim, int64_t* first) {
  if (static_cast<int64_t>(ids.size()) != n) {
    return Status::InvalidArgument(
        "got " + std::to_string(ids.size()) + " ids for " + std::to_string(n) +
        " embeddings");
  }
  if (dim_ == 0) {
    if (dim <= 0) return Status::InvalidArgument("embedding dim must be > 0");
    dim_ = dim;
  } else if (dim != dim_) {
    return Status::InvalidArgument(
        "embedding dim " + std::to_string(dim) + " does not match index dim " +
        std::to_string(dim_));
  }
  for (const std::string& id : ids) {
    if (id.find('\n') != std::string::npos) {
      return Status::InvalidArgument("image id contains a newline: '" + id +
                                     "'");
    }
  }
  *first = size();
  const bool quantized = format_ != quant::QuantFormat::kF32;
  // A quantized index normalizes into a staging buffer, then quantizes
  // it into qstore_ and mirrors the f32 rows into the exact store.
  std::vector<float> staging;
  float* dst;
  if (quantized) {
    staging.resize(static_cast<size_t>(n * dim_));
    dst = staging.data();
  } else {
    data_.resize(data_.size() + static_cast<size_t>(n * dim_));
    dst = data_.data() + *first * dim_;
  }
  if (verbatim) {
    std::memcpy(dst, src, static_cast<size_t>(n * dim_) * sizeof(float));
  } else {
    ParallelFor(0, n, /*grain=*/256, [&](int64_t b, int64_t e) {
      for (int64_t r = b; r < e; ++r) {
        float norm = 0.0f;
        for (int64_t d = 0; d < dim_; ++d) {
          norm += src[r * dim_ + d] * src[r * dim_ + d];
        }
        const float inv = 1.0f / std::max(std::sqrt(norm), 1e-12f);
        for (int64_t d = 0; d < dim_; ++d) {
          dst[r * dim_ + d] = src[r * dim_ + d] * inv;
        }
      }
    });
  }
  if (quantized) {
    if (qstore_.dim() == 0) {
      qstore_.Init(format_, dim_);
      mem_exact_ = std::make_shared<quant::MemoryExactStore>(dim_);
      exact_ = mem_exact_;
    }
    qstore_.AppendRows(staging.data(), n);
    if (mem_exact_ != nullptr) mem_exact_->AppendRows(staging.data(), n);
  }
  ids_.insert(ids_.end(), ids.begin(), ids.end());
  return Status::OK();
}

Status EmbeddingIndex::AddQuantizedFrom(const EmbeddingIndex& source,
                                        const std::vector<int64_t>& rows,
                                        const std::vector<std::string>& ids) {
  if (source.format_ == quant::QuantFormat::kF32 ||
      source.format_ != format_) {
    return Status::InvalidArgument(
        "AddQuantizedFrom needs matching quantized formats");
  }
  if (size() != 0 || dim_ != 0) {
    return Status::InvalidArgument("AddQuantizedFrom target must be empty");
  }
  if (rows.size() != ids.size()) {
    return Status::InvalidArgument(
        "got " + std::to_string(ids.size()) + " ids for " +
        std::to_string(rows.size()) + " rows");
  }
  dim_ = source.dim_;
  rerank_k_ = source.rerank_k_;
  qstore_.Init(format_, dim_);
  qstore_.AppendFrom(source.qstore_, rows.data(),
                     static_cast<int64_t>(rows.size()));
  if (source.exact_ != nullptr) {
    exact_ = std::make_shared<quant::MappedExactStore>(source.exact_, rows);
  }
  ids_ = ids;
  return OnAppended(0);
}

Status EmbeddingIndex::Add(const Tensor& embeddings,
                           const std::vector<std::string>& ids) {
  if (!embeddings.defined() || embeddings.dim() != 2) {
    return Status::InvalidArgument("embeddings must be a [n, dim] tensor");
  }
  int64_t first = 0;
  CROSSEM_RETURN_NOT_OK(AppendRows(embeddings.data(), embeddings.size(0),
                                   embeddings.size(1), ids,
                                   /*verbatim=*/false, &first));
  return OnAppended(first);
}

Status EmbeddingIndex::AddPreNormalized(const float* rows, int64_t n,
                                        int64_t dim,
                                        const std::vector<std::string>& ids) {
  int64_t first = 0;
  CROSSEM_RETURN_NOT_OK(
      AppendRows(rows, n, dim, ids, /*verbatim=*/true, &first));
  return OnAppended(first);
}

Status EmbeddingIndex::Save(const std::string& path) const {
  // The exact-f32 side file goes first: if writing it fails, the main
  // index file is untouched, and a crash between the two leaves at
  // worst an orphaned side file next to the still-valid old index.
  if (format_ != quant::QuantFormat::kF32 && exact_ != nullptr) {
    CROSSEM_RETURN_NOT_OK(
        quant::WriteExactSideFile(*exact_, quant::ExactSidePath(path)));
  }
  std::vector<nn::CheckpointRecord> records;
  records.push_back(nn::CheckpointRecord::BytesRecord(kRecBackend, backend()));
  std::string dim_bytes;
  PackPod(&dim_bytes, dim_);
  records.push_back(
      nn::CheckpointRecord::BytesRecord(kRecDim, std::move(dim_bytes)));
  std::string fp_bytes;
  PackPod(&fp_bytes, model_fingerprint_);
  records.push_back(
      nn::CheckpointRecord::BytesRecord(kRecFingerprint, std::move(fp_bytes)));
  std::string joined;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) joined += '\n';
    joined += ids_[i];
  }
  records.push_back(
      nn::CheckpointRecord::BytesRecord(kRecIds, std::move(joined)));
  if (format_ == quant::QuantFormat::kF32) {
    // Unchanged legacy layout: an f32 index file is byte-identical to
    // the ones earlier PRs wrote.
    records.push_back(nn::CheckpointRecord::TensorRecord(
        kRecVectors, {size(), dim_}, data_));
  } else {
    std::string fmt_bytes;
    PackPod(&fmt_bytes, static_cast<uint32_t>(format_));
    records.push_back(nn::CheckpointRecord::BytesRecord(
        kRecQuantFormat, std::move(fmt_bytes)));
    std::string rr_bytes;
    PackPod(&rr_bytes, rerank_k_);
    records.push_back(nn::CheckpointRecord::BytesRecord(
        kRecQuantRerank, std::move(rr_bytes)));
    std::string blocks;
    int64_t elem_size;
    if (format_ == quant::QuantFormat::kF16) {
      elem_size = static_cast<int64_t>(sizeof(uint16_t));
      blocks.assign(
          reinterpret_cast<const char*>(qstore_.f16_rows().data()),
          qstore_.f16_rows().size() * sizeof(uint16_t));
    } else {
      elem_size = 1;
      blocks.assign(
          reinterpret_cast<const char*>(qstore_.int8_rows().data()),
          qstore_.int8_rows().size());
      records.push_back(nn::CheckpointRecord::TensorRecord(
          kRecQuantScales, {size(), qstore_.blocks_per_row()},
          qstore_.scales()));
    }
    records.push_back(nn::CheckpointRecord::PackedRecord(
        kRecQuantBlocks, {size(), dim_}, elem_size, std::move(blocks)));
  }
  AppendExtraRecords(&records);
  return nn::SaveRecordFile(records, path);
}

Result<std::unique_ptr<EmbeddingIndex>> EmbeddingIndex::Load(
    const std::string& path) {
  std::vector<nn::CheckpointRecord> records;
  CROSSEM_RETURN_NOT_OK(nn::LoadRecordFile(path, &records));
  std::map<std::string, const nn::CheckpointRecord*> by_name;
  for (const nn::CheckpointRecord& r : records) by_name.emplace(r.name, &r);

  const nn::CheckpointRecord* r;
  CROSSEM_ASSIGN_OR_RETURN(
      r, RequireRecord(by_name, kRecBackend, nn::kRecordBytes, path));
  const std::string backend = r->bytes;
  std::unique_ptr<EmbeddingIndex> index;
  if (backend == "flat") {
    index = std::make_unique<FlatIndex>();
  } else if (backend == "hnsw") {
    index = std::make_unique<HnswIndex>();
  } else {
    return CorruptIndex(path, "unknown backend '" + backend + "'");
  }

  CROSSEM_ASSIGN_OR_RETURN(
      r, RequireRecord(by_name, kRecDim, nn::kRecordBytes, path));
  size_t pos = 0;
  if (!UnpackPod(r->bytes, &pos, &index->dim_) || index->dim_ <= 0) {
    return CorruptIndex(path, "bad dim");
  }
  CROSSEM_ASSIGN_OR_RETURN(
      r, RequireRecord(by_name, kRecFingerprint, nn::kRecordBytes, path));
  pos = 0;
  if (!UnpackPod(r->bytes, &pos, &index->model_fingerprint_)) {
    return CorruptIndex(path, "bad fingerprint");
  }

  // Storage format: absent (every pre-quantization file) means kF32.
  if (auto it = by_name.find(kRecQuantFormat);
      it != by_name.end() && it->second->kind == nn::kRecordBytes) {
    uint32_t fmt = 0;
    pos = 0;
    if (!UnpackPod(it->second->bytes, &pos, &fmt) ||
        (fmt != static_cast<uint32_t>(quant::QuantFormat::kF16) &&
         fmt != static_cast<uint32_t>(quant::QuantFormat::kInt8))) {
      return CorruptIndex(path, "bad quant format");
    }
    index->format_ = static_cast<quant::QuantFormat>(fmt);
  }

  int64_t n = 0;
  if (index->format_ == quant::QuantFormat::kF32) {
    CROSSEM_ASSIGN_OR_RETURN(
        r, RequireRecord(by_name, kRecVectors, nn::kRecordTensor, path));
    if (r->shape.size() != 2 || r->shape[1] != index->dim_) {
      return CorruptIndex(path, "bad vector shape");
    }
    n = r->shape[0];
    index->data_ = r->f32;
  } else {
    CROSSEM_ASSIGN_OR_RETURN(
        r, RequireRecord(by_name, kRecQuantRerank, nn::kRecordBytes, path));
    pos = 0;
    if (!UnpackPod(r->bytes, &pos, &index->rerank_k_) ||
        index->rerank_k_ < 1) {
      return CorruptIndex(path, "bad rerank_k");
    }
    CROSSEM_ASSIGN_OR_RETURN(
        r, RequireRecord(by_name, kRecQuantBlocks, nn::kRecordPacked, path));
    const int64_t want_elem =
        index->format_ == quant::QuantFormat::kF16
            ? static_cast<int64_t>(sizeof(uint16_t))
            : 1;
    if (r->shape.size() != 2 || r->shape[1] != index->dim_ ||
        r->elem_size != want_elem) {
      return CorruptIndex(path, "bad quant block shape");
    }
    n = r->shape[0];
    std::vector<float> scales;
    if (index->format_ == quant::QuantFormat::kInt8) {
      const nn::CheckpointRecord* sr;
      CROSSEM_ASSIGN_OR_RETURN(
          sr, RequireRecord(by_name, kRecQuantScales, nn::kRecordTensor,
                            path));
      if (sr->shape.size() != 2 || sr->shape[0] != n ||
          sr->shape[1] != quant::BlocksPerRow(index->dim_)) {
        return CorruptIndex(path, "bad quant scale shape");
      }
      scales = sr->f32;
    }
    CROSSEM_RETURN_NOT_OK(index->qstore_.Restore(
        index->format_, index->dim_, n, r->bytes, std::move(scales)));
  }
  CROSSEM_ASSIGN_OR_RETURN(
      r, RequireRecord(by_name, kRecIds, nn::kRecordBytes, path));
  if (n > 0) {
    size_t start = 0;
    const std::string& joined = r->bytes;
    for (;;) {
      const size_t nl = joined.find('\n', start);
      index->ids_.push_back(joined.substr(
          start, nl == std::string::npos ? std::string::npos : nl - start));
      if (nl == std::string::npos) break;
      start = nl + 1;
    }
  } else if (!r->bytes.empty()) {
    return CorruptIndex(path, "ids for an empty index");
  }
  if (static_cast<int64_t>(index->ids_.size()) != n) {
    return CorruptIndex(
        path, "id count " + std::to_string(index->ids_.size()) +
                  " does not match vector count " + std::to_string(n));
  }
  CROSSEM_RETURN_NOT_OK(index->RestoreExtra(by_name, path));

  // Exact side file: optional (re-rank degrades without it), but if it
  // is present it must be intact and consistent with the index.
  if (index->format_ != quant::QuantFormat::kF32) {
    const std::string side = quant::ExactSidePath(path);
    if (io::FileExists(side)) {
      std::unique_ptr<quant::FileExactStore> store;
      CROSSEM_ASSIGN_OR_RETURN(store, quant::FileExactStore::Open(side));
      if (store->size() != n || store->dim() != index->dim_) {
        return CorruptIndex(path,
                            "exact side file does not match the index");
      }
      index->exact_ = std::move(store);
    }
  }
  return index;
}

// ---------------------------------------------------------------------------
// FlatIndex
// ---------------------------------------------------------------------------

Status FlatIndex::OnAppended(int64_t) { return Status::OK(); }

std::vector<eval::ScoredId> FlatIndex::Search(const float* query, int64_t k,
                                              SearchDeadline deadline) const {
  const int64_t n = size();
  if (n == 0 || k <= 0) return {};
  // Chunked scan over the stored rows (f32 or compressed): per-chunk
  // top-k via the shared kernel, merged in ascending chunk order —
  // deterministic at any thread count. An armed deadline is checked
  // once per chunk: chunks starting after expiry contribute nothing, so
  // a nearly-expired query returns the best of whatever prefix it could
  // afford instead of burning a full scan. A quantized index over-
  // fetches to rerank_k and re-scores those from the exact store.
  const int64_t fetch = FetchK(k);
  constexpr int64_t kGrain = 2048;
  const int64_t chunks = NumChunks(0, n, kGrain);
  std::vector<std::vector<eval::ScoredId>> parts(
      static_cast<size_t>(chunks));
  ParallelForChunks(0, n, kGrain, [&](int64_t c, int64_t b, int64_t e) {
    if (deadline != kNoSearchDeadline &&
        std::chrono::steady_clock::now() > deadline) {
      return;
    }
    std::vector<float> sims(static_cast<size_t>(e - b));
    for (int64_t i = b; i < e; ++i) {
      sims[static_cast<size_t>(i - b)] = Similarity(i, query);
    }
    std::vector<eval::ScoredId> top =
        eval::TopK(sims.data(), e - b, std::min(fetch, e - b));
    for (eval::ScoredId& s : top) s.id += b;
    parts[static_cast<size_t>(c)] = std::move(top);
  });
  return ReRank(query, eval::MergeTopK(parts, fetch), k);
}

void FlatIndex::AppendExtraRecords(std::vector<nn::CheckpointRecord>*) const {}

Status FlatIndex::RestoreExtra(
    const std::map<std::string, const nn::CheckpointRecord*>&,
    const std::string&) {
  return Status::OK();
}

// ---------------------------------------------------------------------------
// HnswIndex
// ---------------------------------------------------------------------------

HnswIndex::HnswIndex(HnswOptions options, quant::QuantFormat format)
    : options_(options) {
  format_ = format;
  CROSSEM_CHECK_GE(options_.M, 2);
  CROSSEM_CHECK_GE(options_.ef_construction, 1);
  CROSSEM_CHECK_GE(options_.ef_search, 1);
  CROSSEM_CHECK_GE(options_.build_batch, 1);
}

const std::vector<int32_t>& HnswIndex::neighbors(int64_t id) const {
  CROSSEM_CHECK_GE(id, 0);
  CROSSEM_CHECK_LT(id, static_cast<int64_t>(nodes_.size()));
  return nodes_[static_cast<size_t>(id)].neighbors[0];
}

int64_t HnswIndex::LevelFor(int64_t id) const {
  const uint64_t h =
      SplitMix64(options_.seed ^ (static_cast<uint64_t>(id) *
                                  0x9E3779B97F4A7C15ULL));
  // u in (0, 1]: never 0, so log(u) is finite.
  const double u =
      (static_cast<double>(h >> 11) + 1.0) / 9007199254740993.0;
  const double mult = 1.0 / std::log(static_cast<double>(options_.M));
  const int64_t level = static_cast<int64_t>(-std::log(u) * mult);
  return std::min<int64_t>(level, 30);
}

int64_t HnswIndex::MaxNeighbors(int64_t level) const {
  return level == 0 ? 2 * options_.M : options_.M;
}

int64_t HnswIndex::GreedyDescend(const float* query, int64_t entry,
                                 int64_t from, int64_t to) const {
  int64_t cur = entry;
  float cur_sim = Similarity(cur, query);
  for (int64_t level = from; level > to; --level) {
    for (bool improved = true; improved;) {
      improved = false;
      for (int32_t nb :
           nodes_[static_cast<size_t>(cur)].neighbors[static_cast<size_t>(
               level)]) {
        const float sim = Similarity(nb, query);
        // Strictly-greater moves only: ties keep the current node, so
        // the walk is deterministic.
        if (sim > cur_sim) {
          cur = nb;
          cur_sim = sim;
          improved = true;
        }
      }
    }
  }
  return cur;
}

std::vector<eval::ScoredId> HnswIndex::SearchLayer(
    const float* query, int64_t entry, int64_t ef, int64_t level,
    SearchDeadline deadline) const {
  VisitedSet& visited = t_visited;
  visited.Reset(nodes_.size());
  visited.Visit(entry);

  std::priority_queue<eval::ScoredId, std::vector<eval::ScoredId>, BestOnTop>
      frontier;
  std::priority_queue<eval::ScoredId, std::vector<eval::ScoredId>, WorstOnTop>
      results;
  const eval::ScoredId seed{entry, Similarity(entry, query)};
  frontier.push(seed);
  results.push(seed);

  // An armed deadline is polled every kDeadlineStride expansions — cheap
  // relative to the neighbor-similarity work an expansion does.
  constexpr int64_t kDeadlineStride = 64;
  int64_t expansions = 0;
  while (!frontier.empty()) {
    if (deadline != kNoSearchDeadline &&
        ++expansions % kDeadlineStride == 0 &&
        std::chrono::steady_clock::now() > deadline) {
      break;  // keep the results gathered so far
    }
    const eval::ScoredId cand = frontier.top();
    frontier.pop();
    if (static_cast<int64_t>(results.size()) >= ef &&
        eval::RanksBefore(results.top(), cand)) {
      break;  // every kept result beats the best unexpanded candidate
    }
    for (int32_t nb : nodes_[static_cast<size_t>(cand.id)]
                          .neighbors[static_cast<size_t>(level)]) {
      if (!visited.Visit(nb)) continue;
      const eval::ScoredId next{nb, Similarity(nb, query)};
      if (static_cast<int64_t>(results.size()) < ef ||
          eval::RanksBefore(next, results.top())) {
        frontier.push(next);
        results.push(next);
        if (static_cast<int64_t>(results.size()) > ef) results.pop();
      }
    }
  }
  std::vector<eval::ScoredId> out(results.size());
  for (size_t i = out.size(); i > 0; --i) {
    out[i - 1] = results.top();
    results.pop();
  }
  return out;
}

std::vector<int32_t> HnswIndex::SelectDiverse(
    const std::vector<eval::ScoredId>& sorted, int64_t max) const {
  // Walk candidates best first, keep one only if it is closer to the base
  // point than to any already-kept neighbor — spreads edges across
  // directions instead of clustering them around one hub. Rejected
  // candidates backfill leftover slots in closest-first order so nodes
  // never end up under-connected (keep-pruned-connections).
  std::vector<int32_t> chosen;
  std::vector<int32_t> rejected;
  for (const eval::ScoredId& cand : sorted) {
    if (static_cast<int64_t>(chosen.size()) >= max) break;
    bool diverse = true;
    for (int32_t kept : chosen) {
      if (Similarity(cand.id, RowForQuery(kept)) > cand.score) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      chosen.push_back(static_cast<int32_t>(cand.id));
    } else {
      rejected.push_back(static_cast<int32_t>(cand.id));
    }
  }
  for (size_t i = 0;
       i < rejected.size() && static_cast<int64_t>(chosen.size()) < max;
       ++i) {
    chosen.push_back(rejected[i]);
  }
  return chosen;
}

void HnswIndex::Link(int64_t id,
                     const std::vector<std::vector<eval::ScoredId>>& cands) {
  Node& node = nodes_[static_cast<size_t>(id)];
  for (int64_t level = 0; level <= node.level; ++level) {
    if (static_cast<size_t>(level) >= cands.size() ||
        cands[static_cast<size_t>(level)].empty()) {
      continue;  // above the old top level: no peers yet
    }
    std::vector<int32_t>& chosen =
        node.neighbors[static_cast<size_t>(level)];
    chosen = SelectDiverse(cands[static_cast<size_t>(level)], options_.M);
    // Bidirectional links; overflowing neighbor lists re-run the same
    // diversity heuristic over their candidates (ties toward lower id —
    // deterministic), mirroring the forward selection.
    for (int32_t nb : chosen) {
      Node& other = nodes_[static_cast<size_t>(nb)];
      std::vector<int32_t>& list =
          other.neighbors[static_cast<size_t>(level)];
      list.push_back(static_cast<int32_t>(id));
      const int64_t max = MaxNeighbors(level);
      if (static_cast<int64_t>(list.size()) > max) {
        // `base` may live in the RowForQuery scratch; its last use is
        // before SelectDiverse dequantizes anything else.
        const float* base = RowForQuery(nb);
        std::vector<eval::ScoredId> scored;
        scored.reserve(list.size());
        for (int32_t x : list) scored.push_back({x, Similarity(x, base)});
        std::sort(scored.begin(), scored.end(), eval::RanksBefore);
        list = SelectDiverse(scored, max);
      }
    }
  }
  if (node.level > max_level_) {
    max_level_ = node.level;
    entry_point_ = id;
  }
}

Status HnswIndex::OnAppended(int64_t first) {
  const int64_t total = size();
  CROSSEM_TRACE_SPAN_V(span, "hnsw_build");
  span.Arg("added", total - first).Arg("total", total);
  nodes_.resize(static_cast<size_t>(total));
  for (int64_t id = first; id < total; ++id) {
    Node& node = nodes_[static_cast<size_t>(id)];
    node.level = static_cast<int32_t>(LevelFor(id));
    node.neighbors.assign(static_cast<size_t>(node.level) + 1, {});
  }

  // Candidate lists for one element against the CURRENT graph (read-only).
  auto search_candidates =
      [&](int64_t id) -> std::vector<std::vector<eval::ScoredId>> {
    const float* q = RowForQuery(id);
    const int64_t node_level = nodes_[static_cast<size_t>(id)].level;
    std::vector<std::vector<eval::ScoredId>> cands(
        static_cast<size_t>(node_level) + 1);
    if (entry_point_ < 0) return cands;
    int64_t entry =
        GreedyDescend(q, entry_point_, max_level_, node_level);
    for (int64_t level = std::min(node_level, max_level_); level >= 0;
         --level) {
      cands[static_cast<size_t>(level)] =
          SearchLayer(q, entry, options_.ef_construction, level);
      entry = cands[static_cast<size_t>(level)].front().id;
    }
    return cands;
  };

  int64_t id = first;
  // Bootstrap the first elements of an empty graph sequentially so the
  // initial batch is mutually connected (a parallel first batch would
  // search an empty graph and link to nothing).
  if (entry_point_ < 0) {
    const int64_t boot = std::min(total, first + options_.build_batch);
    for (; id < boot; ++id) Link(id, search_candidates(id));
  }

  // Batched construction: each batch's searches run in parallel against
  // the pre-batch graph (frozen during the phase), then linking applies
  // sequentially in ascending id order. The batch decomposition depends
  // only on (first, total, build_batch), never the thread count, so the
  // built graph is bitwise-identical on 1 thread or 64.
  for (; id < total; id += options_.build_batch) {
    const int64_t batch_end = std::min(total, id + options_.build_batch);
    std::vector<std::vector<std::vector<eval::ScoredId>>> batch_cands(
        static_cast<size_t>(batch_end - id));
    ParallelFor(id, batch_end, /*grain=*/1, [&](int64_t b, int64_t e) {
      for (int64_t x = b; x < e; ++x) {
        batch_cands[static_cast<size_t>(x - id)] = search_candidates(x);
      }
    });
    for (int64_t x = id; x < batch_end; ++x) {
      // The frozen-graph searches above cannot see batch members, so
      // without augmentation no edge would ever form inside a batch and
      // recall would degrade as build_batch grows. Merge the already
      // linked earlier members of this batch (ids [id, x)) into the
      // candidate lists before linking — still sequential ascending id,
      // so the graph stays independent of the thread count.
      std::vector<std::vector<eval::ScoredId>>& cands =
          batch_cands[static_cast<size_t>(x - id)];
      const float* q = RowForQuery(x);
      const int64_t x_level = nodes_[static_cast<size_t>(x)].level;
      for (int64_t level = 0; level <= x_level; ++level) {
        std::vector<eval::ScoredId>& list =
            cands[static_cast<size_t>(level)];
        bool added = false;
        for (int64_t y = id; y < x; ++y) {
          if (nodes_[static_cast<size_t>(y)].level < level) continue;
          list.push_back({y, Similarity(y, q)});
          added = true;
        }
        if (added) {
          std::sort(list.begin(), list.end(), eval::RanksBefore);
          if (static_cast<int64_t>(list.size()) > options_.ef_construction) {
            list.resize(static_cast<size_t>(options_.ef_construction));
          }
        }
      }
      Link(x, cands);
    }
  }
  return Status::OK();
}

std::vector<eval::ScoredId> HnswIndex::Search(const float* query, int64_t k,
                                              SearchDeadline deadline) const {
  if (entry_point_ < 0 || k <= 0) return {};
  if (deadline != kNoSearchDeadline &&
      std::chrono::steady_clock::now() > deadline) {
    return {};  // expired before the descent even started
  }
  const int64_t fetch = FetchK(k);
  const int64_t entry = GreedyDescend(query, entry_point_, max_level_, 0);
  std::vector<eval::ScoredId> beam = SearchLayer(
      query, entry, std::max(options_.ef_search, fetch), 0, deadline);
  return ReRank(query, std::move(beam), k);
}

int64_t HnswIndex::MemoryBytes() const {
  int64_t bytes = EmbeddingIndex::MemoryBytes();
  for (const Node& node : nodes_) {
    bytes += static_cast<int64_t>(sizeof(Node));
    for (const std::vector<int32_t>& list : node.neighbors) {
      bytes += static_cast<int64_t>(list.capacity() * sizeof(int32_t));
    }
  }
  return bytes;
}

void HnswIndex::AppendExtraRecords(
    std::vector<nn::CheckpointRecord>* out) const {
  std::string params;
  PackPod(&params, options_.M);
  PackPod(&params, options_.ef_construction);
  PackPod(&params, options_.ef_search);
  PackPod(&params, options_.seed);
  PackPod(&params, options_.build_batch);
  PackPod(&params, entry_point_);
  PackPod(&params, max_level_);
  out->push_back(
      nn::CheckpointRecord::BytesRecord(kRecHnswParams, std::move(params)));

  std::vector<int32_t> levels, counts, flat;
  levels.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    levels.push_back(node.level);
    for (const std::vector<int32_t>& list : node.neighbors) {
      counts.push_back(static_cast<int32_t>(list.size()));
      flat.insert(flat.end(), list.begin(), list.end());
    }
  }
  out->push_back(
      nn::CheckpointRecord::BytesRecord(kRecHnswLevels, PackI32Vec(levels)));
  out->push_back(
      nn::CheckpointRecord::BytesRecord(kRecHnswCounts, PackI32Vec(counts)));
  out->push_back(
      nn::CheckpointRecord::BytesRecord(kRecHnswNeighbors, PackI32Vec(flat)));
}

Status HnswIndex::RestoreExtra(
    const std::map<std::string, const nn::CheckpointRecord*>& by_name,
    const std::string& path) {
  const nn::CheckpointRecord* r;
  CROSSEM_ASSIGN_OR_RETURN(
      r, RequireRecord(by_name, kRecHnswParams, nn::kRecordBytes, path));
  size_t pos = 0;
  if (!UnpackPod(r->bytes, &pos, &options_.M) ||
      !UnpackPod(r->bytes, &pos, &options_.ef_construction) ||
      !UnpackPod(r->bytes, &pos, &options_.ef_search) ||
      !UnpackPod(r->bytes, &pos, &options_.seed) ||
      !UnpackPod(r->bytes, &pos, &options_.build_batch) ||
      !UnpackPod(r->bytes, &pos, &entry_point_) ||
      !UnpackPod(r->bytes, &pos, &max_level_) || options_.M < 2 ||
      options_.ef_construction < 1 || options_.ef_search < 1 ||
      options_.build_batch < 1) {
    return CorruptIndex(path, "bad hnsw params");
  }
  const int64_t n = size();
  if (entry_point_ < -1 || entry_point_ >= n ||
      (n > 0) != (entry_point_ >= 0)) {
    return CorruptIndex(path, "bad hnsw entry point");
  }

  std::vector<int32_t> levels, counts, flat;
  CROSSEM_ASSIGN_OR_RETURN(
      r, RequireRecord(by_name, kRecHnswLevels, nn::kRecordBytes, path));
  if (!UnpackI32Vec(r->bytes, &levels) ||
      static_cast<int64_t>(levels.size()) != n) {
    return CorruptIndex(path, "bad hnsw levels");
  }
  CROSSEM_ASSIGN_OR_RETURN(
      r, RequireRecord(by_name, kRecHnswCounts, nn::kRecordBytes, path));
  if (!UnpackI32Vec(r->bytes, &counts)) {
    return CorruptIndex(path, "bad hnsw neighbor counts");
  }
  CROSSEM_ASSIGN_OR_RETURN(
      r, RequireRecord(by_name, kRecHnswNeighbors, nn::kRecordBytes, path));
  if (!UnpackI32Vec(r->bytes, &flat)) {
    return CorruptIndex(path, "bad hnsw neighbors");
  }

  nodes_.assign(static_cast<size_t>(n), {});
  size_t count_pos = 0;
  size_t flat_pos = 0;
  for (int64_t i = 0; i < n; ++i) {
    Node& node = nodes_[static_cast<size_t>(i)];
    node.level = levels[static_cast<size_t>(i)];
    if (node.level < 0 || node.level > max_level_) {
      return CorruptIndex(path, "bad hnsw node level");
    }
    node.neighbors.resize(static_cast<size_t>(node.level) + 1);
    for (std::vector<int32_t>& list : node.neighbors) {
      if (count_pos >= counts.size()) {
        return CorruptIndex(path, "truncated hnsw neighbor counts");
      }
      const int32_t cnt = counts[count_pos++];
      if (cnt < 0 || flat_pos + static_cast<size_t>(cnt) > flat.size()) {
        return CorruptIndex(path, "truncated hnsw neighbors");
      }
      list.assign(flat.begin() + static_cast<int64_t>(flat_pos),
                  flat.begin() + static_cast<int64_t>(flat_pos) + cnt);
      flat_pos += static_cast<size_t>(cnt);
      for (int32_t nb : list) {
        if (nb < 0 || nb >= n || nb == i) {
          return CorruptIndex(path, "hnsw neighbor id out of range");
        }
      }
    }
  }
  if (count_pos != counts.size() || flat_pos != flat.size()) {
    return CorruptIndex(path, "hnsw graph has trailing data");
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace crossem
