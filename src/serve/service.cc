#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "obs/trace.h"
#include "tensor/tensor.h"

namespace crossem {
namespace serve {

namespace {

/// Immediately-resolved future for admission-time rejections.
std::future<Result<MatchResponse>> RejectedFuture(Status status) {
  std::promise<Result<MatchResponse>> promise;
  std::future<Result<MatchResponse>> future = promise.get_future();
  promise.set_value(std::move(status));
  return future;
}

int64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

namespace internal {

void AppendRankedMatches(const std::vector<eval::ScoredId>& found,
                         const std::vector<std::string>& ids, int64_t k,
                         float min_probability, float temperature,
                         std::vector<RankedMatch>* out) {
  if (found.empty()) return;
  // Eq. 4 softmax at temperature tau over the retrieved candidate set
  // (max-subtracted for stability; found is score-descending, so the
  // max is the first element).
  const float inv_tau = 1.0f / temperature;
  const float top = found.front().score;
  double denom = 0.0;
  for (const eval::ScoredId& c : found) {
    denom += std::exp(static_cast<double>((c.score - top) * inv_tau));
  }
  const int64_t take = std::min<int64_t>(k, static_cast<int64_t>(found.size()));
  for (int64_t j = 0; j < take; ++j) {
    const float prob = static_cast<float>(
        std::exp(static_cast<double>((found[j].score - top) * inv_tau)) /
        denom);
    if (prob < min_probability) break;  // scores descend
    RankedMatch match;
    match.image = found[j].id;
    match.image_id = ids[found[j].id];
    match.similarity = found[j].score;
    match.probability = prob;
    out->push_back(std::move(match));
  }
}

}  // namespace internal

MatchService::MatchService(const core::CrossEm* matcher,
                           const EmbeddingIndex* index,
                           MatchServiceOptions options)
    : matcher_(matcher),
      index_(index),
      options_(std::move(options)),
      fingerprint_(matcher->EncoderFingerprint()),
      temperature_(matcher->Temperature()),
      cache_(CacheOptionsFor(options_)) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

MatchService::~MatchService() { Shutdown(); }

std::future<Result<MatchResponse>> MatchService::Submit(
    const MatchRequest& request) {
  if (request.k < 1) {
    return RejectedFuture(
        Status::InvalidArgument("MatchRequest.k must be >= 1"));
  }
  if (request.vertex < 0 ||
      request.vertex >= matcher_->graph().NumVertices()) {
    return RejectedFuture(Status::InvalidArgument(
        "MatchRequest.vertex " + std::to_string(request.vertex) +
        " out of range [0, " +
        std::to_string(matcher_->graph().NumVertices()) + ")"));
  }

  Pending pending;
  pending.request = request;
  pending.submitted = Clock::now();
  pending.deadline =
      request.deadline_micros > 0
          ? pending.submitted + std::chrono::microseconds(request.deadline_micros)
          : Clock::time_point::max();
  std::future<Result<MatchResponse>> future = pending.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      stats_.RecordRejectedShutdown();
      pending.promise.set_value(
          Status::Unavailable("MatchService is shut down"));
      return future;
    }
    if (static_cast<int64_t>(queue_.size()) >= options_.max_queue) {
      stats_.RecordRejectedQueueFull();
      // The rejection carries the observed depth and a drain-time hint
      // (p50 completion latency, floored at the batching wait) so
      // callers — including the sharded layer — can back off for a
      // meaningful interval instead of guessing. The hint never exceeds
      // the request's own deadline: advising a retry that would arrive
      // post-deadline is wasted work on both sides.
      int64_t retry_after_us = std::max<int64_t>(
          stats_.LatencyP50Us(), options_.max_wait_micros);
      if (request.deadline_micros > 0) {
        retry_after_us =
            std::min(retry_after_us, request.deadline_micros);
      }
      pending.promise.set_value(Status::Unavailable(
          "MatchService queue full (" + std::to_string(queue_.size()) +
          " of " + std::to_string(options_.max_queue) +
          " pending); retry after " + std::to_string(retry_after_us) +
          "us"));
      return future;
    }
    stats_.RecordReceived();
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

Result<MatchResponse> MatchService::Match(const MatchRequest& request) {
  return Submit(request).get();
}

void MatchService::Shutdown() {
  bool join_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    if (!joined_) {
      joined_ = true;
      join_here = true;
    }
  }
  cv_.notify_all();
  if (join_here) worker_.join();
}

void MatchService::WorkerLoop() {
  obs::SetThreadName("serve-worker");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;  // drained
      continue;
    }

    // Adaptive batch fill: hold the oldest request up to max_wait_micros
    // so peers can join the batch — but never past the earliest queued
    // per-request deadline, and not at all once shutdown starts.
    if (!shutdown_ &&
        static_cast<int64_t>(queue_.size()) < options_.max_batch &&
        options_.max_wait_micros > 0) {
      Clock::time_point fill_deadline =
          queue_.front().submitted +
          std::chrono::microseconds(options_.max_wait_micros);
      for (const Pending& p : queue_) {
        fill_deadline = std::min(fill_deadline, p.deadline);
      }
      cv_.wait_until(lock, fill_deadline, [&] {
        return shutdown_ ||
               static_cast<int64_t>(queue_.size()) >= options_.max_batch;
      });
    }

    std::vector<Pending> batch;
    const int64_t take = std::min<int64_t>(
        static_cast<int64_t>(queue_.size()), options_.max_batch);
    batch.reserve(take);
    for (int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }

    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

void MatchService::ProcessBatch(std::vector<Pending> batch) {
  CROSSEM_TRACE_SPAN_V(span, "serve_batch");
  span.Arg("requests", static_cast<int64_t>(batch.size()));
  const int64_t batch_size = static_cast<int64_t>(batch.size());
  // Per-request engine span: covers queue wait + batch processing, from
  // submit to resolution, so the request tree shows where time went.
  auto record_span = [batch_size](const Pending& p, const char* outcome,
                                  bool cache_hit) {
    if (p.request.trace == nullptr) return;
    const uint64_t start_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            p.submitted.time_since_epoch())
            .count());
    const uint64_t end_ns = obs::RequestNowNs();
    std::vector<obs::SpanArg> args(3);
    args[0].key = "outcome";
    args[0].type = obs::SpanArg::Type::kString;
    args[0].string_value = outcome;
    args[1].key = "batch";
    args[1].int_value = batch_size;
    args[2].key = "cache_hit";
    args[2].int_value = cache_hit ? 1 : 0;
    p.request.trace->Record("service", obs::MintSpanId(),
                            p.request.parent_span_id, start_ns,
                            end_ns > start_ns ? end_ns - start_ns : 0,
                            std::move(args));
  };
  // Expire requests that aged out while queued.
  const Clock::time_point dequeued = Clock::now();
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    if (p.deadline <= dequeued) {
      stats_.RecordExpired();
      record_span(p, "expired_in_queue", false);
      p.promise.set_value(
          Status::DeadlineExceeded("request expired after " +
                                   std::to_string(MicrosBetween(
                                       p.submitted, dequeued)) +
                                   "us in queue"));
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  // Resolve embeddings: cache first, then one EncodeVertices forward
  // over the distinct uncached vertices of the batch.
  std::vector<std::vector<float>> embeddings(live.size());
  std::vector<bool> cached(live.size(), false);
  std::vector<graph::VertexId> to_encode;
  std::unordered_map<graph::VertexId, int64_t> encode_row;
  int64_t hits = 0;
  int64_t misses = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    const graph::VertexId v = live[i].request.vertex;
    if (cache_.Lookup(v, fingerprint_, &embeddings[i])) {
      cached[i] = true;
      ++hits;
    } else {
      ++misses;
      if (encode_row.find(v) == encode_row.end()) {
        encode_row.emplace(v, static_cast<int64_t>(to_encode.size()));
        to_encode.push_back(v);
      }
    }
  }
  stats_.RecordBatch(static_cast<int64_t>(live.size()), hits, misses);

  if (!to_encode.empty()) {
    NoGradGuard guard;
    Tensor encoded = matcher_->EncodeVertices(to_encode);  // [n, dim]
    const int64_t dim = encoded.size(1);
    if (index_->size() > 0 && dim != index_->dim()) {
      Status mismatch = Status::Internal(
          "encoder dim " + std::to_string(dim) + " != index dim " +
          std::to_string(index_->dim()) +
          " (index built from a different model?)");
      for (Pending& p : live) {
        record_span(p, "dim_mismatch", false);
        p.promise.set_value(mismatch);
      }
      return;
    }
    const float* data = encoded.data();
    for (size_t i = 0; i < live.size(); ++i) {
      if (cached[i]) continue;
      const int64_t row = encode_row.at(live[i].request.vertex);
      embeddings[i].assign(data + row * dim, data + (row + 1) * dim);
      cache_.Insert(live[i].request.vertex, fingerprint_, embeddings[i]);
    }
  }

  // Search + probabilities + respond.
  for (size_t i = 0; i < live.size(); ++i) {
    Pending& p = live[i];
    const Clock::time_point now = Clock::now();
    if (p.deadline <= now) {
      stats_.RecordExpired();
      record_span(p, "expired_in_batch", cached[i]);
      p.promise.set_value(Status::DeadlineExceeded(
          "request expired during batch processing"));
      continue;
    }

    const int64_t candidates =
        std::max(p.request.k, options_.probability_candidates);
    // The remaining budget rides into the scan so a nearly-expired
    // query early-exits instead of burning the full repository.
    const SearchDeadline search_deadline =
        p.deadline == Clock::time_point::max() ? kNoSearchDeadline
                                               : p.deadline;
    std::vector<eval::ScoredId> found =
        index_->Search(embeddings[i].data(), candidates, search_deadline);

    MatchResponse response;
    response.cache_hit = cached[i];
    internal::AppendRankedMatches(found, index_->ids(), p.request.k,
                                  p.request.min_probability, temperature_,
                                  &response.matches);
    stats_.RecordCompleted(MicrosBetween(p.submitted, Clock::now()));
    record_span(p, "ok", cached[i]);
    p.promise.set_value(std::move(response));
  }
}

}  // namespace serve
}  // namespace crossem
