#include "serve/sharded.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "obs/trace.h"
#include "tensor/tensor.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace crossem {
namespace serve {

namespace {

/// Immediately-resolved future for admission-time rejections.
std::future<Result<MatchResponse>> RejectedFuture(Status status) {
  std::promise<Result<MatchResponse>> promise;
  std::future<Result<MatchResponse>> future = promise.get_future();
  promise.set_value(std::move(status));
  return future;
}

int64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

/// splitmix64 — row -> shard assignment and retry jitter share it, so a
/// sharding layout and a chaos drill's backoff schedule are both pure
/// functions of their seeds.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardedIndex
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::Partition(
    const EmbeddingIndex& source, const ShardedIndexOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(options.num_shards));
  }
  if (options.backend != "flat" && options.backend != "hnsw") {
    return Status::InvalidArgument("unknown shard backend '" +
                                   options.backend + "'");
  }
  std::unique_ptr<ShardedIndex> out(new ShardedIndex());
  out->dim_ = source.dim();
  out->model_fingerprint_ = source.model_fingerprint();
  out->ids_ = source.ids();
  const int64_t n_shards = options.num_shards;
  out->global_rows_.resize(static_cast<size_t>(n_shards));
  for (int64_t r = 0; r < source.size(); ++r) {
    const int64_t s = static_cast<int64_t>(
        SplitMix64(options.hash_seed ^ static_cast<uint64_t>(r)) %
        static_cast<uint64_t>(n_shards));
    out->global_rows_[static_cast<size_t>(s)].push_back(r);
  }
  const quant::QuantFormat format = source.quant_format();
  for (int64_t s = 0; s < n_shards; ++s) {
    std::unique_ptr<EmbeddingIndex> shard;
    if (options.backend == "flat") {
      shard = std::make_unique<FlatIndex>(format);
    } else {
      shard = std::make_unique<HnswIndex>(options.hnsw, format);
    }
    const std::vector<int64_t>& rows = out->global_rows_[s];
    if (!rows.empty()) {
      std::vector<std::string> shard_ids;
      shard_ids.reserve(rows.size());
      for (int64_t r : rows) {
        shard_ids.push_back(source.ids()[static_cast<size_t>(r)]);
      }
      if (format != quant::QuantFormat::kF32) {
        // Quantized rows are gathered bit-identically (blocks + scales,
        // never re-quantized) and the shard re-ranks through a mapped
        // view of the source's exact store — no per-shard f32 copies.
        CROSSEM_RETURN_NOT_OK(
            shard->AddQuantizedFrom(source, rows, shard_ids));
      } else {
        // Gather the shard's rows verbatim — already normalized by the
        // source index, and re-normalizing could flip low-order bits.
        std::vector<float> buf(rows.size() *
                               static_cast<size_t>(out->dim_));
        for (size_t i = 0; i < rows.size(); ++i) {
          std::memcpy(buf.data() + i * static_cast<size_t>(out->dim_),
                      source.vector(rows[i]),
                      static_cast<size_t>(out->dim_) * sizeof(float));
        }
        CROSSEM_RETURN_NOT_OK(shard->AddPreNormalized(
            buf.data(), static_cast<int64_t>(rows.size()), out->dim_,
            shard_ids));
      }
    }
    shard->set_model_fingerprint(source.model_fingerprint());
    out->shards_.push_back(std::move(shard));
  }
  return out;
}

int64_t ShardedIndex::MemoryBytes() const {
  int64_t bytes = 0;
  for (const std::unique_ptr<EmbeddingIndex>& s : shards_) {
    bytes += s->MemoryBytes();
  }
  return bytes;
}

std::vector<eval::ScoredId> ShardedIndex::SearchShard(
    int64_t s, const float* query, int64_t k, SearchDeadline deadline) const {
  std::vector<eval::ScoredId> local = shards_[s]->Search(query, k, deadline);
  // Local row -> global row. The mapping is ascending, so equal-score
  // runs keep the global id order RanksBefore expects and MergeTopK
  // over per-shard lists reproduces the unsharded ranking exactly.
  const std::vector<int64_t>& rows = global_rows_[s];
  for (eval::ScoredId& r : local) r.id = rows[static_cast<size_t>(r.id)];
  return local;
}

bool ValidateShardResults(const std::vector<eval::ScoredId>& results,
                          int64_t num_rows) {
  const eval::ScoredId* prev = nullptr;
  for (const eval::ScoredId& r : results) {
    if (!std::isfinite(r.score) || std::fabs(r.score) > 1.0001f) return false;
    if (r.id < 0 || r.id >= num_rows) return false;
    if (prev != nullptr && eval::RanksBefore(r, *prev)) return false;
    prev = &r;
  }
  return true;
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

bool CircuitBreaker::AllowRequest(std::chrono::steady_clock::time_point now) {
  switch (state()) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ >= cooldown_) {
        SetState(State::kHalfOpen);
        probe_in_flight_ = true;
        return true;  // the single half-open probe
      }
      return false;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      return false;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  probe_in_flight_ = false;
  consecutive_failures_ = 0;
  SetState(State::kClosed);
}

void CircuitBreaker::RecordFailure(std::chrono::steady_clock::time_point now) {
  probe_in_flight_ = false;
  if (state() == State::kHalfOpen) {
    // Failed probe: straight back to open for another cooldown.
    SetState(State::kOpen);
    opened_at_ = now;
    opens_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (state() != State::kClosed) return;  // already open
  if (++consecutive_failures_ >= failure_threshold_) {
    SetState(State::kOpen);
    opened_at_ = now;
    consecutive_failures_ = 0;
    opens_.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// ShardedMatchService
// ---------------------------------------------------------------------------

/// Per-service resilience instruments (exact snapshot semantics),
/// double-written into the process-wide `crossem_shard_*` /
/// `crossem_serve_*` registry aggregates.
struct ShardedMatchService::ResilienceInstruments {
  obs::Counter shard_calls;
  obs::Counter shard_failures;
  obs::Counter retries;
  obs::Counter hedges;
  obs::Counter hedge_wins;
  obs::Counter breaker_opens;
  obs::Counter breaker_skips;
  obs::Counter corrupt_rejected;
  obs::Counter degraded_responses;

  obs::Counter* g_shard_calls;
  obs::Counter* g_shard_failures;
  obs::Counter* g_retries;
  obs::Counter* g_hedges;
  obs::Counter* g_hedge_wins;
  obs::Counter* g_breaker_opens;
  obs::Counter* g_breaker_skips;
  obs::Counter* g_corrupt_rejected;
  obs::Counter* g_degraded;
  obs::Histogram* g_coverage_percent;
  obs::Histogram* g_shard_latency_us;

  ResilienceInstruments() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    g_shard_calls = reg.GetCounter("crossem_shard_calls_total");
    g_shard_failures = reg.GetCounter("crossem_shard_failures_total");
    g_retries = reg.GetCounter("crossem_shard_retries_total");
    g_hedges = reg.GetCounter("crossem_shard_hedges_total");
    g_hedge_wins = reg.GetCounter("crossem_shard_hedge_wins_total");
    g_breaker_opens = reg.GetCounter("crossem_shard_breaker_opens_total");
    g_breaker_skips = reg.GetCounter("crossem_shard_breaker_skips_total");
    g_corrupt_rejected =
        reg.GetCounter("crossem_shard_corrupt_rejected_total");
    g_degraded = reg.GetCounter("crossem_serve_degraded_total");
    g_coverage_percent = reg.GetHistogram("crossem_serve_coverage_percent");
    g_shard_latency_us = reg.GetHistogram("crossem_shard_latency_us");
  }
};

ShardedMatchService::ShardedMatchService(const core::CrossEm* matcher,
                                         const ShardedIndex* index,
                                         ShardedServiceOptions options)
    : matcher_(matcher),
      index_(index),
      options_(std::move(options)),
      fingerprint_(matcher->EncoderFingerprint()),
      temperature_(matcher->Temperature()),
      cache_(CacheOptionsFor(options_.base)),
      res_(std::make_unique<ResilienceInstruments>()) {
  CROSSEM_CHECK_GE(options_.resilience.max_attempts, 1);
  CROSSEM_CHECK_GE(options_.resilience.workers_per_shard, 1);
  const int64_t n = index_->num_shards();
  for (int64_t s = 0; s < n; ++s) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(
        options_.resilience.breaker_failure_threshold,
        options_.resilience.breaker_cooldown_micros));
    shards_.push_back(std::make_unique<ShardRuntime>());
  }
  for (int64_t s = 0; s < n; ++s) {
    for (int64_t w = 0; w < options_.resilience.workers_per_shard; ++w) {
      shards_[s]->workers.emplace_back([this, s] { ShardWorkerLoop(s); });
    }
  }
  coordinator_ = std::thread([this] { CoordinatorLoop(); });
}

ShardedMatchService::~ShardedMatchService() { Shutdown(); }

std::future<Result<MatchResponse>> ShardedMatchService::Submit(
    const MatchRequest& request) {
  if (request.k < 1) {
    return RejectedFuture(
        Status::InvalidArgument("MatchRequest.k must be >= 1"));
  }
  if (request.vertex < 0 ||
      request.vertex >= matcher_->graph().NumVertices()) {
    return RejectedFuture(Status::InvalidArgument(
        "MatchRequest.vertex " + std::to_string(request.vertex) +
        " out of range [0, " +
        std::to_string(matcher_->graph().NumVertices()) + ")"));
  }

  Pending pending;
  pending.request = request;
  pending.submitted = Clock::now();
  pending.deadline =
      request.deadline_micros > 0
          ? pending.submitted +
                std::chrono::microseconds(request.deadline_micros)
          : Clock::time_point::max();
  std::future<Result<MatchResponse>> future = pending.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      stats_.RecordRejectedShutdown();
      pending.promise.set_value(
          Status::Unavailable("ShardedMatchService is shut down"));
      return future;
    }
    if (static_cast<int64_t>(queue_.size()) >= options_.base.max_queue) {
      stats_.RecordRejectedQueueFull();
      // Same drain hint as MatchService, clamped to the request's own
      // deadline (a later retry could never be served in time).
      int64_t retry_after_us = std::max<int64_t>(
          stats_.LatencyP50Us(), options_.base.max_wait_micros);
      if (request.deadline_micros > 0) {
        retry_after_us =
            std::min(retry_after_us, request.deadline_micros);
      }
      pending.promise.set_value(Status::Unavailable(
          "ShardedMatchService queue full (" +
          std::to_string(queue_.size()) + " of " +
          std::to_string(options_.base.max_queue) +
          " pending); retry after " + std::to_string(retry_after_us) +
          "us"));
      return future;
    }
    stats_.RecordReceived();
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

Result<MatchResponse> ShardedMatchService::Match(const MatchRequest& request) {
  return Submit(request).get();
}

void ShardedMatchService::Shutdown() {
  bool join_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    if (!joined_) {
      joined_ = true;
      join_here = true;
    }
  }
  cv_.notify_all();
  if (!join_here) return;
  coordinator_.join();
  // With the coordinator gone every call still queued is abandoned;
  // workers drain and discard them, then exit.
  shard_shutdown_.store(true, std::memory_order_relaxed);
  for (std::unique_ptr<ShardRuntime>& rt : shards_) {
    {
      std::lock_guard<std::mutex> lock(rt->mu);
    }
    rt->cv.notify_all();
  }
  for (std::unique_ptr<ShardRuntime>& rt : shards_) {
    for (std::thread& w : rt->workers) w.join();
    rt->workers.clear();
  }
}

void ShardedMatchService::CoordinatorLoop() {
  obs::SetThreadName("serve-coordinator");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;  // drained
      continue;
    }

    // Adaptive batch fill, exactly MatchService's policy: hold the
    // oldest request up to max_wait_micros, never past the earliest
    // queued deadline, not at all once shutdown starts.
    if (!shutdown_ &&
        static_cast<int64_t>(queue_.size()) < options_.base.max_batch &&
        options_.base.max_wait_micros > 0) {
      Clock::time_point fill_deadline =
          queue_.front().submitted +
          std::chrono::microseconds(options_.base.max_wait_micros);
      for (const Pending& p : queue_) {
        fill_deadline = std::min(fill_deadline, p.deadline);
      }
      cv_.wait_until(lock, fill_deadline, [&] {
        return shutdown_ || static_cast<int64_t>(queue_.size()) >=
                                options_.base.max_batch;
      });
    }

    std::vector<Pending> batch;
    const int64_t take = std::min<int64_t>(
        static_cast<int64_t>(queue_.size()), options_.base.max_batch);
    batch.reserve(take);
    for (int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }

    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

void ShardedMatchService::ProcessBatch(std::vector<Pending> batch) {
  CROSSEM_TRACE_SPAN_V(span, "sharded_serve_batch");
  span.Arg("requests", static_cast<int64_t>(batch.size()));
  const int64_t batch_size = static_cast<int64_t>(batch.size());
  // Per-request engine span from submit to resolution; `span_id` lets
  // the caller pre-mint the id so gather/attempt children can parent
  // onto it before the span itself is recorded.
  auto record_span = [batch_size](const Pending& p, uint64_t span_id,
                                  const char* outcome, bool cache_hit) {
    if (p.request.trace == nullptr) return;
    const uint64_t start_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            p.submitted.time_since_epoch())
            .count());
    const uint64_t end_ns = obs::RequestNowNs();
    std::vector<obs::SpanArg> args(3);
    args[0].key = "outcome";
    args[0].type = obs::SpanArg::Type::kString;
    args[0].string_value = outcome;
    args[1].key = "batch";
    args[1].int_value = batch_size;
    args[2].key = "cache_hit";
    args[2].int_value = cache_hit ? 1 : 0;
    p.request.trace->Record("service", span_id, p.request.parent_span_id,
                            start_ns,
                            end_ns > start_ns ? end_ns - start_ns : 0,
                            std::move(args));
  };
  // Expire requests that aged out while queued.
  const Clock::time_point dequeued = Clock::now();
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    if (p.deadline <= dequeued) {
      stats_.RecordExpired();
      record_span(p, obs::MintSpanId(), "expired_in_queue", false);
      p.promise.set_value(Status::DeadlineExceeded(
          "request expired after " +
          std::to_string(MicrosBetween(p.submitted, dequeued)) +
          "us in queue"));
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  // Resolve embeddings: cache first, then one EncodeVertices forward
  // over the distinct uncached vertices of the batch.
  std::vector<std::vector<float>> embeddings(live.size());
  std::vector<bool> cached(live.size(), false);
  std::vector<graph::VertexId> to_encode;
  std::unordered_map<graph::VertexId, int64_t> encode_row;
  int64_t hits = 0;
  int64_t misses = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    const graph::VertexId v = live[i].request.vertex;
    if (cache_.Lookup(v, fingerprint_, &embeddings[i])) {
      cached[i] = true;
      ++hits;
    } else {
      ++misses;
      if (encode_row.find(v) == encode_row.end()) {
        encode_row.emplace(v, static_cast<int64_t>(to_encode.size()));
        to_encode.push_back(v);
      }
    }
  }
  stats_.RecordBatch(static_cast<int64_t>(live.size()), hits, misses);

  if (!to_encode.empty()) {
    NoGradGuard guard;
    Tensor encoded = matcher_->EncodeVertices(to_encode);  // [n, dim]
    const int64_t dim = encoded.size(1);
    if (index_->size() > 0 && dim != index_->dim()) {
      Status mismatch = Status::Internal(
          "encoder dim " + std::to_string(dim) + " != index dim " +
          std::to_string(index_->dim()) +
          " (index built from a different model?)");
      for (Pending& p : live) {
        record_span(p, obs::MintSpanId(), "dim_mismatch", false);
        p.promise.set_value(mismatch);
      }
      return;
    }
    const float* data = encoded.data();
    for (size_t i = 0; i < live.size(); ++i) {
      if (cached[i]) continue;
      const int64_t row = encode_row.at(live[i].request.vertex);
      embeddings[i].assign(data + row * dim, data + (row + 1) * dim);
      cache_.Insert(live[i].request.vertex, fingerprint_, embeddings[i]);
    }
  }

  // Scatter-gather each live request across the shards.
  for (size_t i = 0; i < live.size(); ++i) {
    Pending& p = live[i];
    if (p.deadline <= Clock::now()) {
      stats_.RecordExpired();
      record_span(p, obs::MintSpanId(), "expired_in_batch", cached[i]);
      p.promise.set_value(Status::DeadlineExceeded(
          "request expired during batch processing"));
      continue;
    }
    const int64_t candidates =
        std::max(p.request.k, options_.base.probability_candidates);
    auto query = std::make_shared<const std::vector<float>>(
        std::move(embeddings[i]));
    MatchResponse response;
    response.cache_hit = cached[i];
    const uint64_t service_span_id =
        p.request.trace != nullptr ? obs::MintSpanId() : 0;
    Gather(query, candidates,
           query_seq_.fetch_add(1, std::memory_order_relaxed), p.deadline,
           p.request.k, p.request.min_probability, p.request.trace,
           service_span_id, &response);
    stats_.RecordCompleted(MicrosBetween(p.submitted, Clock::now()));
    record_span(p, service_span_id, response.degraded ? "degraded" : "ok",
                cached[i]);
    p.promise.set_value(std::move(response));
  }
}

bool ShardedMatchService::Dispatch(const std::shared_ptr<ShardCall>& call) {
  ShardRuntime& rt = *shards_[call->shard];
  {
    std::lock_guard<std::mutex> lock(rt.mu);
    if (static_cast<int64_t>(rt.queue.size()) >=
        options_.resilience.shard_queue) {
      return false;  // full queue fails the attempt fast (breaker food)
    }
    rt.queue.push_back(call);
  }
  rt.cv.notify_one();
  return true;
}

int64_t ShardedMatchService::HedgeDelayMicros(int64_t shard) const {
  const obs::Histogram& h = shards_[shard]->latency_us;
  if (h.count() >= options_.resilience.hedge_min_samples) {
    return std::max<int64_t>(1, h.Percentile(0.95));
  }
  return options_.resilience.hedge_delay_micros;
}

int64_t ShardedMatchService::BackoffMicros(int64_t query_seq, int64_t shard,
                                           int64_t attempt) const {
  const ResilienceOptions& r = options_.resilience;
  const int64_t shift = std::min<int64_t>(attempt - 1, 20);
  const int64_t base =
      std::min(r.backoff_max_micros, r.backoff_base_micros << shift);
  const uint64_t h = SplitMix64(
      r.jitter_seed ^ (static_cast<uint64_t>(query_seq) << 20) ^
      (static_cast<uint64_t>(shard) << 8) ^ static_cast<uint64_t>(attempt));
  const int64_t jitter = static_cast<int64_t>(
      h % static_cast<uint64_t>(std::max<int64_t>(1, r.backoff_base_micros)));
  return base + jitter;
}

void ShardedMatchService::Gather(
    const std::shared_ptr<const std::vector<float>>& query,
    int64_t candidates, int64_t query_seq, Clock::time_point request_deadline,
    int64_t k, float min_probability,
    const std::shared_ptr<obs::RequestTrace>& trace, uint64_t parent_span_id,
    MatchResponse* response) {
  CROSSEM_TRACE_SPAN_V(span, "sharded_gather");
  const ResilienceOptions& res = options_.resilience;
  const int64_t n_shards = index_->num_shards();
  auto gather = std::make_shared<GatherState>();

  // The gather span parents every shard attempt of this query; the
  // attempt spans are recorded when their outcome is known (completion,
  // timeout, abandonment, queue-full, or breaker skip), each tagged
  // with shard id, attempt number, hedge flag, and outcome.
  obs::RequestSpan gather_span(trace, "gather", parent_span_id);
  auto record_attempt_ids = [&](int64_t shard, int64_t attempt_no,
                                bool is_hedge, uint64_t span_id,
                                uint64_t span_parent, uint64_t launch_ns,
                                const char* outcome) {
    if (trace == nullptr) return;
    const uint64_t end_ns = obs::RequestNowNs();
    std::vector<obs::SpanArg> args(4);
    args[0].key = "shard";
    args[0].int_value = shard;
    args[1].key = "attempt";
    args[1].int_value = attempt_no;
    args[2].key = "hedge";
    args[2].int_value = is_hedge ? 1 : 0;
    args[3].key = "outcome";
    args[3].type = obs::SpanArg::Type::kString;
    args[3].string_value = outcome;
    trace->Record("shard_attempt", span_id, span_parent, launch_ns,
                  end_ns > launch_ns ? end_ns - launch_ns : 0,
                  std::move(args));
  };
  auto record_attempt = [&](const ShardCall& c, const char* outcome) {
    if (c.trace == nullptr) return;
    record_attempt_ids(c.shard, c.attempt_no, c.is_hedge, c.span_id,
                       c.parent_span_id, c.launch_ns, outcome);
  };

  struct PerShard {
    std::vector<std::shared_ptr<ShardCall>> inflight;
    int64_t attempts = 0;
    bool hedged = false;
    Clock::time_point next_attempt_at = Clock::time_point::min();
    Clock::time_point hedge_at = Clock::time_point::max();
    bool resolved = false;
    bool success = false;
    std::vector<eval::ScoredId> results;
  };
  std::vector<PerShard> ps(static_cast<size_t>(n_shards));
  int64_t unresolved = n_shards;

  /// A shard is done (either way): abandon whatever is still in flight.
  auto resolve = [&](int64_t s, bool success,
                     std::vector<eval::ScoredId> results) {
    PerShard& st = ps[static_cast<size_t>(s)];
    if (st.resolved) return;
    st.resolved = true;
    st.success = success;
    st.results = std::move(results);
    --unresolved;
    if (!st.inflight.empty()) {
      {
        std::lock_guard<std::mutex> lock(gather->mu);
        for (const std::shared_ptr<ShardCall>& c : st.inflight) {
          c->abandoned = true;
        }
      }
      for (const std::shared_ptr<ShardCall>& c : st.inflight) {
        record_attempt(*c, "abandoned");
      }
    }
    st.inflight.clear();
  };

  auto record_failure = [&](int64_t s, Clock::time_point now, bool corrupt) {
    const CircuitBreaker::State before = breakers_[s]->state();
    breakers_[s]->RecordFailure(now);
    res_->shard_failures.Increment();
    res_->g_shard_failures->Increment();
    if (corrupt) {
      res_->corrupt_rejected.Increment();
      res_->g_corrupt_rejected->Increment();
    }
    if (before != CircuitBreaker::State::kOpen &&
        breakers_[s]->state() == CircuitBreaker::State::kOpen) {
      res_->breaker_opens.Increment();
      res_->g_breaker_opens->Increment();
    }
  };

  auto launch = [&](int64_t s, Clock::time_point now, bool is_hedge) {
    PerShard& st = ps[static_cast<size_t>(s)];
    auto call = std::make_shared<ShardCall>();
    call->gather = gather;
    call->query = query;
    call->shard = s;
    call->k = candidates;
    call->deadline = std::min(
        now + std::chrono::microseconds(res.attempt_timeout_micros),
        request_deadline);
    call->is_hedge = is_hedge;
    if (trace != nullptr) {
      call->trace = trace;
      call->span_id = obs::MintSpanId();
      call->parent_span_id = gather_span.span_id();
      call->launch_ns = obs::RequestNowNs();
      // Hedges carry the primary attempt number they shadow.
      call->attempt_no = is_hedge ? st.attempts : st.attempts + 1;
    }
    res_->shard_calls.Increment();
    res_->g_shard_calls->Increment();
    if (is_hedge) {
      res_->hedges.Increment();
      res_->g_hedges->Increment();
    } else {
      ++st.attempts;
      if (st.attempts > 1) {
        res_->retries.Increment();
        res_->g_retries->Increment();
      }
    }
    if (Dispatch(call)) {
      st.inflight.push_back(std::move(call));
      if (!is_hedge) {
        st.hedge_at =
            now + std::chrono::microseconds(HedgeDelayMicros(s));
      }
      return true;
    }
    record_attempt(*call, "queue_full");
    record_failure(s, now, /*corrupt=*/false);
    return false;
  };

  while (unresolved > 0) {
    const Clock::time_point now = Clock::now();

    // 1) Launch primaries, retries, and hedges that are due.
    for (int64_t s = 0; s < n_shards; ++s) {
      PerShard& st = ps[static_cast<size_t>(s)];
      if (st.resolved) continue;
      if (st.inflight.empty()) {
        if (st.attempts >= res.max_attempts || now >= request_deadline) {
          resolve(s, false, {});
          continue;
        }
        if (now < st.next_attempt_at) continue;
        if (!breakers_[s]->AllowRequest(now)) {
          res_->breaker_skips.Increment();
          res_->g_breaker_skips->Increment();
          if (trace != nullptr) {
            // Zero-length span so the breaker decision shows in the tree.
            ShardCall skipped;
            skipped.trace = trace;
            skipped.shard = s;
            skipped.span_id = obs::MintSpanId();
            skipped.parent_span_id = gather_span.span_id();
            skipped.launch_ns = obs::RequestNowNs();
            skipped.attempt_no = st.attempts + 1;
            record_attempt(skipped, "breaker_open");
          }
          resolve(s, false, {});
          continue;
        }
        if (!launch(s, now, /*is_hedge=*/false)) {
          // Full shard queue: back off and retry (attempts counted, so
          // this terminates).
          st.next_attempt_at =
              now + std::chrono::microseconds(
                        BackoffMicros(query_seq, s, st.attempts));
        }
      } else if (res.hedging && !st.hedged && st.inflight.size() == 1 &&
                 !st.inflight.front()->is_hedge && now >= st.hedge_at) {
        st.hedged = true;  // one hedge per shard per query, admitted or not
        if (breakers_[s]->AllowRequest(now)) {
          launch(s, now, /*is_hedge=*/true);
        }
      }
    }
    if (unresolved == 0) break;

    // 2) Next instant anything can change without a completion.
    Clock::time_point wake = request_deadline;
    for (int64_t s = 0; s < n_shards; ++s) {
      const PerShard& st = ps[static_cast<size_t>(s)];
      if (st.resolved) continue;
      if (st.inflight.empty()) {
        wake = std::min(wake, st.next_attempt_at);
      } else {
        for (const std::shared_ptr<ShardCall>& c : st.inflight) {
          wake = std::min(wake, c->deadline);
        }
        if (res.hedging && !st.hedged && st.inflight.size() == 1) {
          wake = std::min(wake, st.hedge_at);
        }
      }
    }
    // Clock granularity guard: never spin on an already-passed instant.
    wake = std::max(wake, now + std::chrono::microseconds(100));

    // 3) Wait for a completion (or the wake time), then collect
    //    completions and expire timed-out attempts under the gather
    //    lock.
    struct Outcome {
      int64_t shard;
      bool ok;
      bool is_hedge;
      bool timed_out;
      int64_t latency_us;
      std::vector<eval::ScoredId> results;
      // Attempt-span identity carried out of the ShardCall so the span
      // can be recorded outside the gather lock.
      uint64_t span_id = 0;
      uint64_t parent_span_id = 0;
      uint64_t launch_ns = 0;
      int64_t attempt_no = 0;
    };
    std::vector<Outcome> outcomes;
    {
      std::unique_lock<std::mutex> lock(gather->mu);
      gather->cv.wait_until(lock, wake, [&] {
        for (int64_t s = 0; s < n_shards; ++s) {
          for (const std::shared_ptr<ShardCall>& c :
               ps[static_cast<size_t>(s)].inflight) {
            if (c->done) return true;
          }
        }
        return false;
      });
      const Clock::time_point now2 = Clock::now();
      for (int64_t s = 0; s < n_shards; ++s) {
        std::vector<std::shared_ptr<ShardCall>>& fl =
            ps[static_cast<size_t>(s)].inflight;
        for (size_t i = 0; i < fl.size();) {
          ShardCall& c = *fl[i];
          if (c.done) {
            outcomes.push_back(Outcome{s, c.ok, c.is_hedge, false,
                                       c.latency_us, std::move(c.results),
                                       c.span_id, c.parent_span_id,
                                       c.launch_ns, c.attempt_no});
            fl.erase(fl.begin() + static_cast<int64_t>(i));
          } else if (c.deadline <= now2) {
            c.abandoned = true;  // a late worker reply is discarded
            outcomes.push_back(Outcome{s, false, c.is_hedge, true, 0, {},
                                       c.span_id, c.parent_span_id,
                                       c.launch_ns, c.attempt_no});
            fl.erase(fl.begin() + static_cast<int64_t>(i));
          } else {
            ++i;
          }
        }
      }
    }

    // 4) Apply the outcomes.
    for (Outcome& o : outcomes) {
      PerShard& st = ps[static_cast<size_t>(o.shard)];
      const bool valid =
          o.ok && ValidateShardResults(o.results, index_->size());
      record_attempt_ids(o.shard, o.attempt_no, o.is_hedge, o.span_id,
                         o.parent_span_id, o.launch_ns,
                         valid          ? "ok"
                         : o.timed_out  ? "timeout"
                         : o.ok         ? "invalid"
                                        : "failed");
      if (st.resolved) continue;  // late sibling of a resolved shard
      const Clock::time_point onow = Clock::now();
      if (valid) {
        breakers_[o.shard]->RecordSuccess();
        shards_[o.shard]->latency_us.Record(std::max<int64_t>(
            1, o.latency_us));
        res_->g_shard_latency_us->Record(std::max<int64_t>(1, o.latency_us));
        if (o.is_hedge) {
          res_->hedge_wins.Increment();
          res_->g_hedge_wins->Increment();
        }
        resolve(o.shard, true, std::move(o.results));
        continue;
      }
      record_failure(o.shard, onow, /*corrupt=*/o.ok && !o.timed_out);
      if (st.inflight.empty()) {
        if (st.attempts >= res.max_attempts || onow >= request_deadline) {
          resolve(o.shard, false, {});
        } else {
          st.next_attempt_at =
              onow + std::chrono::microseconds(
                         BackoffMicros(query_seq, o.shard, st.attempts));
        }
      }
      // A sibling still in flight keeps the shard's hopes alive.
    }
  }

  // Merge whatever the healthy shards produced. Parts arrive in shard
  // order; MergeTopK's (score desc, id asc) order makes the result
  // independent of that ordering anyway.
  std::vector<std::vector<eval::ScoredId>> parts;
  int64_t covered_rows = 0;
  for (int64_t s = 0; s < n_shards; ++s) {
    PerShard& st = ps[static_cast<size_t>(s)];
    if (!st.success) continue;
    covered_rows += index_->shard_size(s);
    parts.push_back(std::move(st.results));
  }
  const int64_t total_rows = index_->size();
  response->coverage =
      total_rows == 0
          ? 1.0
          : static_cast<double>(covered_rows) / static_cast<double>(total_rows);
  response->degraded = covered_rows < total_rows;
  if (response->degraded) {
    res_->degraded_responses.Increment();
    res_->g_degraded->Increment();
  }
  res_->g_coverage_percent->Record(
      static_cast<int64_t>(response->coverage * 100.0 + 0.5));
  span.Arg("coverage_pct",
           static_cast<int64_t>(response->coverage * 100.0 + 0.5));
  gather_span
      .Arg("coverage_pct",
           static_cast<int64_t>(response->coverage * 100.0 + 0.5))
      .Arg("degraded", int64_t{response->degraded ? 1 : 0});

  std::vector<eval::ScoredId> found = eval::MergeTopK(parts, candidates);
  internal::AppendRankedMatches(found, index_->ids(), k, min_probability,
                                temperature_, &response->matches);
}

void ShardedMatchService::ShardWorkerLoop(int64_t shard) {
  obs::SetThreadName("shard-worker-" + std::to_string(shard));
  ShardRuntime& rt = *shards_[shard];
  for (;;) {
    std::shared_ptr<ShardCall> call;
    {
      std::unique_lock<std::mutex> lock(rt.mu);
      rt.cv.wait(lock, [&] {
        return shard_shutdown_.load(std::memory_order_relaxed) ||
               !rt.queue.empty();
      });
      if (rt.queue.empty()) return;  // shutdown, drained
      call = std::move(rt.queue.front());
      rt.queue.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock(call->gather->mu);
      if (call->abandoned) continue;  // nobody is waiting anymore
    }

    const fault::ShardFaultAction action = fault::OnShardCall(shard);
    if (action.mode == fault::ShardFaultMode::kStuck) {
      // Hold this worker hostage until the caller gives up (or the
      // service shuts down) — the stuck-shard drill.
      for (;;) {
        if (shard_shutdown_.load(std::memory_order_relaxed)) break;
        {
          std::lock_guard<std::mutex> lock(call->gather->mu);
          if (call->abandoned) break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      continue;
    }
    if (action.mode == fault::ShardFaultMode::kDrop) {
      continue;  // discarded without a reply; the caller times out
    }
    if (action.mode == fault::ShardFaultMode::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
    }

    const Clock::time_point start = Clock::now();
    const uint64_t search_start_ns =
        call->trace != nullptr ? obs::RequestNowNs() : 0;
    std::vector<eval::ScoredId> results = index_->SearchShard(
        shard, call->query->data(), call->k, call->deadline);
    const Clock::time_point end = Clock::now();
    if (call->trace != nullptr) {
      // The worker-side view of the attempt: actual search time on this
      // shard, parented under the coordinator's attempt span.
      const uint64_t search_end_ns = obs::RequestNowNs();
      std::vector<obs::SpanArg> args(1);
      args[0].key = "shard";
      args[0].int_value = shard;
      call->trace->Record(
          "shard_search", obs::MintSpanId(), call->span_id, search_start_ns,
          search_end_ns > search_start_ns ? search_end_ns - search_start_ns
                                          : 0,
          std::move(args));
    }
    // A search that ran past its deadline may have early-exited with an
    // incomplete scan; delivering it as a success would silently shrink
    // coverage. Late == failed.
    bool ok = end <= call->deadline;
    if (action.mode == fault::ShardFaultMode::kCorrupt) {
      // Deterministic garbage: monotone map keeps the order plausible
      // while the magnitude breaks the |score| <= 1 invariant the
      // coordinator validates.
      for (eval::ScoredId& r : results) r.score = r.score * 3.0f + 4.0f;
      ok = true;
    }

    {
      std::lock_guard<std::mutex> lock(call->gather->mu);
      if (!call->abandoned) {
        call->done = true;
        call->ok = ok;
        call->results = std::move(results);
        call->latency_us = MicrosBetween(start, end);
      }
    }
    call->gather->cv.notify_all();
  }
}

ResilienceStats ShardedMatchService::ResilienceSnapshot() const {
  ResilienceStats s;
  s.shard_calls = res_->shard_calls.Value();
  s.shard_failures = res_->shard_failures.Value();
  s.retries = res_->retries.Value();
  s.hedges = res_->hedges.Value();
  s.hedge_wins = res_->hedge_wins.Value();
  s.breaker_opens = res_->breaker_opens.Value();
  s.breaker_skips = res_->breaker_skips.Value();
  s.corrupt_rejected = res_->corrupt_rejected.Value();
  s.degraded_responses = res_->degraded_responses.Value();
  s.breaker_states.reserve(breakers_.size());
  for (const std::unique_ptr<CircuitBreaker>& b : breakers_) {
    s.breaker_states.push_back(b->state());
  }
  return s;
}

std::string ResilienceStats::ToString() const {
  std::string states;
  for (CircuitBreaker::State st : breaker_states) {
    if (!states.empty()) states += ',';
    states += st == CircuitBreaker::State::kClosed     ? "closed"
              : st == CircuitBreaker::State::kOpen     ? "open"
                                                       : "half-open";
  }
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "shard_calls=%lld failures=%lld retries=%lld hedges=%lld "
      "hedge_wins=%lld breaker(opens=%lld, skips=%lld, states=[%s]) "
      "corrupt_rejected=%lld degraded=%lld",
      static_cast<long long>(shard_calls),
      static_cast<long long>(shard_failures),
      static_cast<long long>(retries), static_cast<long long>(hedges),
      static_cast<long long>(hedge_wins),
      static_cast<long long>(breaker_opens),
      static_cast<long long>(breaker_skips), states.c_str(),
      static_cast<long long>(corrupt_rejected),
      static_cast<long long>(degraded_responses));
  return buf;
}

}  // namespace serve
}  // namespace crossem
