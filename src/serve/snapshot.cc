#include "serve/snapshot.h"

#include <utility>

#include "obs/metrics.h"

namespace crossem {
namespace serve {

namespace {

/// Rollout observability: swap/failure counts and the live version,
/// published process-wide (resolved once; instruments are immortal).
struct SnapshotInstruments {
  obs::Counter* swaps;
  obs::Counter* load_failures;
  obs::Gauge* version;
  obs::Gauge* rows;
  obs::Gauge* index_bytes;
  obs::Gauge* index_entities;

  static const SnapshotInstruments& Get() {
    static const SnapshotInstruments* instruments = [] {
      auto& registry = obs::MetricsRegistry::Default();
      auto* i = new SnapshotInstruments();
      i->swaps = registry.GetCounter("crossem_snapshot_swaps_total");
      i->load_failures =
          registry.GetCounter("crossem_snapshot_load_failures_total");
      i->version = registry.GetGauge("crossem_snapshot_version");
      i->rows = registry.GetGauge("crossem_snapshot_rows");
      i->index_bytes = registry.GetGauge("crossem_index_bytes");
      i->index_entities = registry.GetGauge("crossem_index_entities");
      return i;
    }();
    return *instruments;
  }
};

}  // namespace

// -- ServingSnapshot ---------------------------------------------------------

Result<std::unique_ptr<ServingSnapshot>> ServingSnapshot::Create(
    const core::CrossEm* matcher, std::unique_ptr<EmbeddingIndex> index,
    const EngineOptions& options, int64_t version, std::string source) {
  if (index == nullptr) {
    return Status::InvalidArgument("ServingSnapshot: null index");
  }
  std::unique_ptr<ServingSnapshot> snap(new ServingSnapshot());
  snap->version_ = version;
  snap->source_ = std::move(source);
  snap->index_ = std::move(index);
  if (options.shards > 1) {
    ShardedIndexOptions io;
    io.num_shards = options.shards;
    io.backend = snap->index_->backend();
    auto parts = ShardedIndex::Partition(*snap->index_, io);
    if (!parts.ok()) return parts.status();
    snap->sharded_index_ = parts.MoveValue();
    ShardedServiceOptions sso;
    sso.base = options.base;
    sso.resilience = options.resilience;
    snap->sharded_service_ = std::make_unique<ShardedMatchService>(
        matcher, snap->sharded_index_.get(), sso);
  } else {
    snap->single_service_ = std::make_unique<MatchService>(
        matcher, snap->index_.get(), options.base);
  }
  return snap;
}

ServingSnapshot::~ServingSnapshot() { Shutdown(); }

Result<MatchResponse> ServingSnapshot::Match(const MatchRequest& request) {
  return sharded_service_ != nullptr ? sharded_service_->Match(request)
                                     : single_service_->Match(request);
}

ServiceStats ServingSnapshot::Stats() const {
  return sharded_service_ != nullptr ? sharded_service_->Snapshot()
                                     : single_service_->Snapshot();
}

int64_t ServingSnapshot::LatencyP50Us() const { return Stats().latency_p50_us; }

ResilienceStats ServingSnapshot::Resilience() const {
  return sharded_service_ != nullptr ? sharded_service_->ResilienceSnapshot()
                                     : ResilienceStats{};
}

void ServingSnapshot::Shutdown() {
  if (sharded_service_ != nullptr) {
    sharded_service_->Shutdown();
  } else if (single_service_ != nullptr) {
    single_service_->Shutdown();
  }
}

void ServingSnapshot::EndLease() {
  if (leases_.fetch_sub(1, std::memory_order_release) == 1) {
    // Last lease out: wake a draining retirer (if any).
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void ServingSnapshot::WaitLeasesDrained() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] {
    return leases_.load(std::memory_order_acquire) == 0;
  });
}

// -- SnapshotManager ---------------------------------------------------------

SnapshotManager::SnapshotManager(const core::CrossEm* matcher,
                                 EngineOptions options)
    : matcher_(matcher), options_(std::move(options)) {}

SnapshotManager::~SnapshotManager() { Shutdown(); }

Status SnapshotManager::LoadAndSwap(const std::string& index_path) {
  auto loaded = EmbeddingIndex::Load(index_path);
  if (!loaded.ok()) {
    SnapshotInstruments::Get().load_failures->Increment();
    return loaded.status();
  }
  std::unique_ptr<EmbeddingIndex> index = loaded.MoveValue();
  // Encoder-fingerprint handshake: a retuned model must not serve a
  // stale index (and vice versa).
  const uint32_t want = matcher_->EncoderFingerprint();
  if (index->model_fingerprint() != 0 &&
      index->model_fingerprint() != want) {
    SnapshotInstruments::Get().load_failures->Increment();
    return Status::InvalidArgument(
        "index " + index_path +
        " was built by a different model (fingerprint mismatch); "
        "rebuild with build-index");
  }
  return Swap(std::move(index), index_path);
}

Status SnapshotManager::SwapIndex(std::unique_ptr<EmbeddingIndex> index,
                                  std::string source) {
  if (index != nullptr && index->model_fingerprint() != 0 &&
      index->model_fingerprint() != matcher_->EncoderFingerprint()) {
    SnapshotInstruments::Get().load_failures->Increment();
    return Status::InvalidArgument(
        "in-process index fingerprint does not match the serving model");
  }
  return Swap(std::move(index), std::move(source));
}

Status SnapshotManager::Swap(std::unique_ptr<EmbeddingIndex> index,
                             std::string source) {
  // Build the whole next engine before touching the live pointer: the
  // current snapshot serves unperturbed through the expensive part.
  const int64_t next_version =
      version_.load(std::memory_order_relaxed) + 1;
  auto created = ServingSnapshot::Create(matcher_, std::move(index),
                                         options_, next_version,
                                         std::move(source));
  if (!created.ok()) {
    SnapshotInstruments::Get().load_failures->Increment();
    return created.status();
  }
  std::shared_ptr<ServingSnapshot> next(created.MoveValue().release());

  std::shared_ptr<ServingSnapshot> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // The freshly built engine is never published; tear it down here.
      next->Shutdown();
      return Status::Unavailable("SnapshotManager is shut down");
    }
    old = std::move(current_);
    current_ = next;
    version_.store(next_version, std::memory_order_relaxed);
    swaps_.fetch_add(1, std::memory_order_relaxed);
    if (old != nullptr) {
      // Retire in the background: in-flight leases finish on the old
      // engine; it is shut down only after the last returns.
      retirers_.emplace_back(
          [this, old = std::move(old)]() mutable { Retire(std::move(old)); });
    }
  }
  const auto& instruments = SnapshotInstruments::Get();
  instruments.swaps->Increment();
  instruments.version->Set(static_cast<double>(next_version));
  instruments.rows->Set(static_cast<double>(next->rows()));
  // Memory footprint of the live snapshot: with the rows gauge this
  // puts bytes/entity per snapshot version on /metrics and in the
  // /metrics/history flight recorder.
  instruments.index_bytes->Set(static_cast<double>(next->MemoryBytes()));
  instruments.index_entities->Set(static_cast<double>(next->rows()));
  return Status::OK();
}

void SnapshotManager::Retire(std::shared_ptr<ServingSnapshot> old) {
  old->WaitLeasesDrained();
  old->Shutdown();
}

SnapshotLease SnapshotManager::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_ || current_ == nullptr) return SnapshotLease();
  return SnapshotLease(current_);
}

void SnapshotManager::Shutdown() {
  std::shared_ptr<ServingSnapshot> last;
  std::vector<std::thread> retirers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && current_ == nullptr && retirers_.empty()) return;
    shutdown_ = true;
    last = std::move(current_);
    current_.reset();
    retirers.swap(retirers_);
  }
  if (last != nullptr) {
    last->WaitLeasesDrained();
    last->Shutdown();
  }
  for (std::thread& t : retirers) t.join();
}

}  // namespace serve
}  // namespace crossem
