#include "serve/stats.h"

#include <algorithm>
#include <cstdio>

namespace crossem {
namespace serve {

namespace {

/// Bucket index for a value: floor(log2(v)) clamped to the table.
int BucketFor(int64_t value) {
  if (value < 1) return 0;
  int b = 0;
  while (value > 1 && b < Histogram::kBuckets - 1) {
    value >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void Histogram::Record(int64_t value) {
  ++buckets_[BucketFor(value)];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-quantile observation (1-based, ceiling).
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(q * static_cast<double>(count_) + 0.9999999));
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // Upper bound of bucket b, capped by the true max.
      return std::min((int64_t{1} << (b + 1)) - 1, max_);
    }
  }
  return max_;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

void StatsCollector::RecordReceived() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.received;
}

void StatsCollector::RecordRejectedQueueFull() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.rejected_queue_full;
}

void StatsCollector::RecordRejectedShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.rejected_shutdown;
}

void StatsCollector::RecordExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.expired_deadline;
}

void StatsCollector::RecordBatch(int64_t batch_size, int64_t cache_hits,
                                 int64_t cache_misses) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.batches;
  counters_.cache_hits += cache_hits;
  counters_.cache_misses += cache_misses;
  batch_sizes_.Record(batch_size);
}

void StatsCollector::RecordCompleted(int64_t latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.completed;
  latency_us_.Record(latency_us);
}

ServiceStats StatsCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s = counters_;
  s.batch_size_p50 = batch_sizes_.Percentile(0.50);
  s.batch_size_p99 = batch_sizes_.Percentile(0.99);
  s.batch_size_mean = batch_sizes_.Mean();
  s.latency_p50_us = latency_us_.Percentile(0.50);
  s.latency_p99_us = latency_us_.Percentile(0.99);
  s.latency_max_us = latency_us_.max();
  s.latency_mean_us = latency_us_.Mean();
  return s;
}

std::string ServiceStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%lld completed=%lld rejected(queue=%lld, shutdown=%lld) "
      "expired=%lld batches=%lld batch_size(mean=%.1f, p50=%lld, p99=%lld) "
      "cache(hits=%lld, misses=%lld, rate=%.2f) "
      "latency_us(mean=%.0f, p50=%lld, p99=%lld, max=%lld)",
      static_cast<long long>(received), static_cast<long long>(completed),
      static_cast<long long>(rejected_queue_full),
      static_cast<long long>(rejected_shutdown),
      static_cast<long long>(expired_deadline),
      static_cast<long long>(batches), batch_size_mean,
      static_cast<long long>(batch_size_p50),
      static_cast<long long>(batch_size_p99),
      static_cast<long long>(cache_hits), static_cast<long long>(cache_misses),
      CacheHitRate(), latency_mean_us, static_cast<long long>(latency_p50_us),
      static_cast<long long>(latency_p99_us),
      static_cast<long long>(latency_max_us));
  return buf;
}

}  // namespace serve
}  // namespace crossem
