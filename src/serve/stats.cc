#include "serve/stats.h"

#include <cstdio>

namespace crossem {
namespace serve {

/// The process-wide `crossem_serve_*` aggregates every StatsCollector
/// double-writes into, so `crossem_serve --stats-out` (and any other
/// obs::ExportPrometheus caller) sees serving traffic without reaching
/// into individual services.
struct StatsCollector::SharedInstruments {
  obs::Counter* received;
  obs::Counter* rejected_queue_full;
  obs::Counter* rejected_shutdown;
  obs::Counter* expired_deadline;
  obs::Counter* completed;
  obs::Counter* batches;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Histogram* batch_size;
  obs::Histogram* latency_us;

  static const SharedInstruments& Instance() {
    static const SharedInstruments shared = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      SharedInstruments s;
      s.received = reg.GetCounter("crossem_serve_requests_received_total");
      s.rejected_queue_full =
          reg.GetCounter("crossem_serve_rejected_queue_full_total");
      s.rejected_shutdown =
          reg.GetCounter("crossem_serve_rejected_shutdown_total");
      s.expired_deadline =
          reg.GetCounter("crossem_serve_requests_expired_total");
      s.completed = reg.GetCounter("crossem_serve_requests_completed_total");
      s.batches = reg.GetCounter("crossem_serve_batches_total");
      s.cache_hits = reg.GetCounter("crossem_serve_cache_hits_total");
      s.cache_misses = reg.GetCounter("crossem_serve_cache_misses_total");
      s.batch_size = reg.GetHistogram("crossem_serve_batch_size");
      s.latency_us = reg.GetHistogram("crossem_serve_latency_us");
      return s;
    }();
    return shared;
  }
};

StatsCollector::StatsCollector() : shared_(SharedInstruments::Instance()) {}

void StatsCollector::RecordReceived() {
  received_.Increment();
  shared_.received->Increment();
}

void StatsCollector::RecordRejectedQueueFull() {
  rejected_queue_full_.Increment();
  shared_.rejected_queue_full->Increment();
}

void StatsCollector::RecordRejectedShutdown() {
  rejected_shutdown_.Increment();
  shared_.rejected_shutdown->Increment();
}

void StatsCollector::RecordExpired() {
  expired_deadline_.Increment();
  shared_.expired_deadline->Increment();
}

void StatsCollector::RecordBatch(int64_t batch_size, int64_t cache_hits,
                                 int64_t cache_misses) {
  batches_.Increment();
  cache_hits_.Add(cache_hits);
  cache_misses_.Add(cache_misses);
  batch_sizes_.Record(batch_size);
  shared_.batches->Increment();
  shared_.cache_hits->Add(cache_hits);
  shared_.cache_misses->Add(cache_misses);
  shared_.batch_size->Record(batch_size);
}

void StatsCollector::RecordCompleted(int64_t latency_us) {
  completed_.Increment();
  latency_us_.Record(latency_us);
  shared_.completed->Increment();
  shared_.latency_us->Record(latency_us);
}

ServiceStats StatsCollector::Snapshot() const {
  ServiceStats s;
  s.received = received_.Value();
  s.rejected_queue_full = rejected_queue_full_.Value();
  s.rejected_shutdown = rejected_shutdown_.Value();
  s.expired_deadline = expired_deadline_.Value();
  s.completed = completed_.Value();
  s.batches = batches_.Value();
  s.cache_hits = cache_hits_.Value();
  s.cache_misses = cache_misses_.Value();
  s.batch_size_p50 = batch_sizes_.Percentile(0.50);
  s.batch_size_p99 = batch_sizes_.Percentile(0.99);
  s.batch_size_mean = batch_sizes_.Mean();
  s.latency_p50_us = latency_us_.Percentile(0.50);
  s.latency_p99_us = latency_us_.Percentile(0.99);
  s.latency_max_us = latency_us_.max();
  s.latency_mean_us = latency_us_.Mean();
  return s;
}

std::string ServiceStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%lld completed=%lld rejected(queue=%lld, shutdown=%lld) "
      "expired=%lld batches=%lld batch_size(mean=%.1f, p50=%lld, p99=%lld) "
      "cache(hits=%lld, misses=%lld, rate=%.2f) "
      "latency_us(mean=%.0f, p50=%lld, p99=%lld, max=%lld)",
      static_cast<long long>(received), static_cast<long long>(completed),
      static_cast<long long>(rejected_queue_full),
      static_cast<long long>(rejected_shutdown),
      static_cast<long long>(expired_deadline),
      static_cast<long long>(batches), batch_size_mean,
      static_cast<long long>(batch_size_p50),
      static_cast<long long>(batch_size_p99),
      static_cast<long long>(cache_hits), static_cast<long long>(cache_misses),
      CacheHitRate(), latency_mean_us, static_cast<long long>(latency_p50_us),
      static_cast<long long>(latency_p99_us),
      static_cast<long long>(latency_max_us));
  return buf;
}

}  // namespace serve
}  // namespace crossem
