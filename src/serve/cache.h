// LRU vertex-embedding cache for the online matching service.
//
// Encoding a vertex (prompt generation + text-tower forward) dominates
// query latency, and production traffic is heavily repeated — so the
// service memoizes embeddings keyed by (vertex id, encoder fingerprint).
// The fingerprint half of the key (core::CrossEm::EncoderFingerprint)
// makes staleness structural: entries written under an old model can
// never satisfy lookups against a retuned one, no invalidation
// broadcast required.
//
// Entries can be stored block-quantized (serve/quant.h): a non-kF32
// format compresses each embedding on Insert and dequantizes on hit,
// trading a small reconstruction error for 2-3.5x more entries per
// byte. Capacity is dual: an entry-count cap and an optional byte cap
// (ApproxBytes per entry), whichever binds first; resident bytes are
// mirrored to the process-wide crossem_cache_bytes gauge.
//
// Thread-safe; all operations are O(1) amortized under one mutex.
#ifndef CROSSEM_SERVE_CACHE_H_
#define CROSSEM_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "serve/quant.h"

namespace crossem {
namespace serve {

struct EmbeddingCacheOptions {
  /// Max entries; <= 0 disables caching (every lookup misses).
  int64_t capacity = 0;
  /// Max resident payload bytes; 0 = no byte cap.
  int64_t max_bytes = 0;
  /// Storage format of cached embeddings.
  quant::QuantFormat format = quant::QuantFormat::kF32;
};

class EmbeddingCache {
 public:
  explicit EmbeddingCache(EmbeddingCacheOptions options)
      : options_(options) {}
  /// Entry-count-only construction (the pre-quantization interface).
  explicit EmbeddingCache(int64_t capacity)
      : EmbeddingCache(EmbeddingCacheOptions{capacity, 0,
                                             quant::QuantFormat::kF32}) {}

  /// Copies the cached embedding for (vertex, fingerprint) into `out`
  /// (dequantizing if needed) and marks the entry most-recently-used;
  /// false on miss.
  bool Lookup(graph::VertexId vertex, uint32_t fingerprint,
              std::vector<float>* out);

  /// Inserts (or refreshes) an entry — stored in options().format —
  /// then evicts least-recently-used entries until both the entry cap
  /// and the byte cap hold.
  void Insert(graph::VertexId vertex, uint32_t fingerprint,
              std::vector<float> embedding);

  int64_t size() const;
  int64_t capacity() const { return options_.capacity; }
  const EmbeddingCacheOptions& options() const { return options_; }
  /// Approximate resident payload bytes across all entries.
  int64_t ApproxBytes() const;
  int64_t hits() const;
  int64_t misses() const;

  void Clear();

 private:
  struct Key {
    graph::VertexId vertex;
    uint32_t fingerprint;
    bool operator==(const Key& o) const {
      return vertex == o.vertex && fingerprint == o.fingerprint;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      const uint64_t mix = static_cast<uint64_t>(k.vertex) * 0x9E3779B97F4A7C15ULL ^
                           (static_cast<uint64_t>(k.fingerprint) << 32);
      return static_cast<size_t>(mix ^ (mix >> 29));
    }
  };
  using Entry = std::pair<Key, quant::QuantizedVector>;

  /// Removes the LRU entry (caller holds mu_, lru_ non-empty).
  void EvictBack();
  /// Publishes a bytes_ delta to the crossem_cache_bytes gauge.
  static void PublishBytesDelta(int64_t delta);

  const EmbeddingCacheOptions options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace serve
}  // namespace crossem

#endif  // CROSSEM_SERVE_CACHE_H_
