// LRU vertex-embedding cache for the online matching service.
//
// Encoding a vertex (prompt generation + text-tower forward) dominates
// query latency, and production traffic is heavily repeated — so the
// service memoizes embeddings keyed by (vertex id, encoder fingerprint).
// The fingerprint half of the key (core::CrossEm::EncoderFingerprint)
// makes staleness structural: entries written under an old model can
// never satisfy lookups against a retuned one, no invalidation
// broadcast required.
//
// Thread-safe; all operations are O(1) amortized under one mutex.
#ifndef CROSSEM_SERVE_CACHE_H_
#define CROSSEM_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace crossem {
namespace serve {

class EmbeddingCache {
 public:
  /// `capacity` <= 0 disables caching (every lookup misses).
  explicit EmbeddingCache(int64_t capacity) : capacity_(capacity) {}

  /// Copies the cached embedding for (vertex, fingerprint) into `out`
  /// and marks the entry most-recently-used; false on miss.
  bool Lookup(graph::VertexId vertex, uint32_t fingerprint,
              std::vector<float>* out);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entries beyond capacity.
  void Insert(graph::VertexId vertex, uint32_t fingerprint,
              std::vector<float> embedding);

  int64_t size() const;
  int64_t capacity() const { return capacity_; }
  int64_t hits() const;
  int64_t misses() const;

  void Clear();

 private:
  struct Key {
    graph::VertexId vertex;
    uint32_t fingerprint;
    bool operator==(const Key& o) const {
      return vertex == o.vertex && fingerprint == o.fingerprint;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      const uint64_t mix = static_cast<uint64_t>(k.vertex) * 0x9E3779B97F4A7C15ULL ^
                           (static_cast<uint64_t>(k.fingerprint) << 32);
      return static_cast<size_t>(mix ^ (mix >> 29));
    }
  };
  using Entry = std::pair<Key, std::vector<float>>;

  const int64_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace serve
}  // namespace crossem

#endif  // CROSSEM_SERVE_CACHE_H_
