// MatchService — the online query engine of the serving layer.
//
// Requests (vertex id + top-k parameters) enter a bounded queue and a
// single worker thread drains them in micro-batches: it collects up to
// `max_batch` requests or waits at most `max_wait_micros` after the
// oldest queued request arrived, whichever comes first, then runs one
// CrossEm::EncodeVertices forward for every distinct uncached vertex in
// the batch. Batching is where the throughput comes from — the text
// tower's per-call overhead amortizes across the batch — and the wait
// deadline caps the latency cost of waiting for peers.
//
// Admission control:
//   * queue full         -> Status::Unavailable at Submit time
//                           (backpressure: the caller sheds or retries)
//   * service shut down  -> Status::Unavailable at Submit time
//   * deadline expired   -> Status::DeadlineExceeded when dequeued or
//                           after encoding (never silently dropped)
//   * Shutdown()         -> stops admissions, drains every queued
//                           request, then joins the worker (graceful).
//
// Results carry matching probabilities from the Eq. 4 softmax applied
// over the `probability_candidates` nearest images retrieved for the
// query (at the model's temperature tau). Over a flat index with
// candidates >= index size this is exactly Eq. 4; over HNSW (or a
// trimmed candidate set) it is the standard retrieve-then-normalize
// approximation, identical policy for both backends so swapping the
// backend never changes probability semantics.
#ifndef CROSSEM_SERVE_SERVICE_H_
#define CROSSEM_SERVE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/crossem.h"
#include "graph/graph.h"
#include "obs/request_trace.h"
#include "serve/cache.h"
#include "serve/index.h"
#include "serve/stats.h"
#include "util/status.h"

namespace crossem {
namespace serve {

struct MatchServiceOptions {
  /// Max requests waiting in the queue; submits beyond this are
  /// rejected with Status::Unavailable (backpressure).
  int64_t max_queue = 256;
  /// Micro-batch cap: the worker encodes at most this many distinct
  /// vertices per EncodeVertices call.
  int64_t max_batch = 16;
  /// How long the worker may hold the oldest queued request to let a
  /// batch fill up. 0 = never wait (every drain takes what is queued).
  int64_t max_wait_micros = 2000;
  /// LRU embedding-cache capacity; <= 0 disables caching.
  int64_t cache_capacity = 4096;
  /// Optional embedding-cache byte cap; 0 = entries-only capacity.
  int64_t cache_max_bytes = 0;
  /// Storage format of cached embeddings (quantized entries pack 2-3.5x
  /// more vertices into the same bytes; dequantized on hit).
  quant::QuantFormat cache_format = quant::QuantFormat::kF32;
  /// Nearest images retrieved per query for the probability softmax
  /// (clamped up to the request's k and down to the index size).
  int64_t probability_candidates = 64;
};

/// The embedding-cache configuration a MatchServiceOptions implies.
inline EmbeddingCacheOptions CacheOptionsFor(
    const MatchServiceOptions& options) {
  return EmbeddingCacheOptions{options.cache_capacity,
                               options.cache_max_bytes,
                               options.cache_format};
}

struct MatchRequest {
  graph::VertexId vertex = 0;
  /// Matches to return (top-k by similarity).
  int64_t k = 1;
  /// Drop matches whose Eq. 4 probability falls below this.
  float min_probability = 0.0f;
  /// Per-request deadline, microseconds from submit; 0 = none. A
  /// request still queued (or just encoded) past its deadline completes
  /// with Status::DeadlineExceeded.
  int64_t deadline_micros = 0;
  /// Request-scoped trace to record engine spans into (null = tracing
  /// off for this request; every engine hook is then one pointer test).
  std::shared_ptr<obs::RequestTrace> trace;
  /// Parent span for the engine's spans (the ingress-side span id).
  uint64_t parent_span_id = 0;
};

struct RankedMatch {
  int64_t image = 0;        // row index in the serving index
  std::string image_id;     // the index's external id for that row
  float similarity = 0.0f;  // cosine similarity
  float probability = 0.0f; // Eq. 4 softmax over the retrieved candidates
};

struct MatchResponse {
  std::vector<RankedMatch> matches;
  /// True when the vertex embedding came from the cache.
  bool cache_hit = false;
  /// Row-weighted fraction of the repository actually searched. Always
  /// 1.0 from MatchService; ShardedMatchService lowers it when shards
  /// are skipped, down, or out of time — the query still succeeds.
  double coverage = 1.0;
  /// True iff coverage < 1.0 (the explicit partial-result flag).
  bool degraded = false;
};

namespace internal {

/// The shared scoring tail of both services: Eq. 4 softmax at
/// `temperature` over the retrieved candidate list `found` (best first,
/// global row ids), keeping the top `k` above `min_probability`.
/// Identical arithmetic order whichever service runs it, so a sharded
/// merge that reproduces `found` bitwise also reproduces the
/// probabilities bitwise.
void AppendRankedMatches(const std::vector<eval::ScoredId>& found,
                         const std::vector<std::string>& ids, int64_t k,
                         float min_probability, float temperature,
                         std::vector<RankedMatch>* out);

}  // namespace internal

class MatchService {
 public:
  /// `matcher` and `index` are borrowed and must outlive the service.
  /// The worker thread starts immediately.
  MatchService(const core::CrossEm* matcher, const EmbeddingIndex* index,
               MatchServiceOptions options);
  ~MatchService();  // implies Shutdown()

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// Enqueue a request. The future is always eventually satisfied: with
  /// a response, or with the rejection/expiry Status. Rejections
  /// (queue full, shut down, invalid request) resolve immediately.
  std::future<Result<MatchResponse>> Submit(const MatchRequest& request);

  /// Convenience: Submit and block for the result.
  Result<MatchResponse> Match(const MatchRequest& request);

  /// Stop admitting, drain every queued request, join the worker.
  /// Idempotent.
  void Shutdown();

  ServiceStats Snapshot() const { return stats_.Snapshot(); }
  const EmbeddingCache& cache() const { return cache_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    MatchRequest request;
    std::promise<Result<MatchResponse>> promise;
    Clock::time_point submitted;
    Clock::time_point deadline;  // time_point::max() when none
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<Pending> batch);

  const core::CrossEm* matcher_;
  const EmbeddingIndex* index_;
  const MatchServiceOptions options_;
  const uint32_t fingerprint_;   // encoder fingerprint at construction
  const float temperature_;      // tau at construction

  EmbeddingCache cache_;
  StatsCollector stats_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  bool joined_ = false;  // exactly one Shutdown call joins the worker

  std::thread worker_;
};

}  // namespace serve
}  // namespace crossem

#endif  // CROSSEM_SERVE_SERVICE_H_
