// Service observability: counters plus log-bucketed histograms with
// percentile readout. The seed of the serving observability layer — a
// MatchService keeps one StatsCollector and hands out immutable
// ServiceStats snapshots, so monitoring never blocks the data path for
// longer than a mutex-protected bucket increment.
#ifndef CROSSEM_SERVE_STATS_H_
#define CROSSEM_SERVE_STATS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace crossem {
namespace serve {

/// Fixed log2-bucketed histogram: bucket i counts values in
/// [2^i, 2^{i+1}) (bucket 0 additionally takes values < 1). Percentiles
/// are read out at bucket upper bounds, so a reported p99 is an upper
/// bound within 2x of the true value — plenty for latency monitoring.
class Histogram {
 public:
  static constexpr int kBuckets = 40;  // covers > 10^11 units

  void Record(int64_t value);
  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t max() const { return max_; }
  /// Upper bound of the bucket holding quantile q in [0, 1]; 0 when empty.
  int64_t Percentile(double q) const;
  double Mean() const;

 private:
  int64_t buckets_[kBuckets] = {};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t max_ = 0;
};

/// Immutable stats snapshot (all counters since service start).
struct ServiceStats {
  int64_t received = 0;          // requests accepted into the queue
  int64_t rejected_queue_full = 0;
  int64_t rejected_shutdown = 0;
  int64_t expired_deadline = 0;  // dequeued after their deadline
  int64_t completed = 0;
  int64_t batches = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  /// Micro-batch sizes (requests per EncodeVertices call).
  int64_t batch_size_p50 = 0;
  int64_t batch_size_p99 = 0;
  double batch_size_mean = 0.0;

  /// End-to-end request latency, submit to completion, microseconds.
  int64_t latency_p50_us = 0;
  int64_t latency_p99_us = 0;
  int64_t latency_max_us = 0;
  double latency_mean_us = 0.0;

  double CacheHitRate() const {
    const int64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }

  /// One-line human-readable rendering (CLI / logs).
  std::string ToString() const;
};

/// Mutex-protected accumulator behind ServiceStats.
class StatsCollector {
 public:
  void RecordReceived();
  void RecordRejectedQueueFull();
  void RecordRejectedShutdown();
  void RecordExpired();
  void RecordBatch(int64_t batch_size, int64_t cache_hits,
                   int64_t cache_misses);
  void RecordCompleted(int64_t latency_us);

  ServiceStats Snapshot() const;

 private:
  mutable std::mutex mu_;
  ServiceStats counters_;
  Histogram batch_sizes_;
  Histogram latency_us_;
};

}  // namespace serve
}  // namespace crossem

#endif  // CROSSEM_SERVE_STATS_H_
