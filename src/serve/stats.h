// Service observability, built on the shared obs instruments
// (obs/metrics.h): lock-free counters plus log-bucketed histograms with
// percentile readout. A MatchService keeps one StatsCollector and hands
// out immutable ServiceStats snapshots, so monitoring never blocks the
// data path for longer than a few relaxed atomic adds.
//
// Every StatsCollector double-writes: its own per-service instruments
// back the exact ServiceStats snapshot (tests and embedders may run many
// services in one process), and the process-wide
// obs::MetricsRegistry::Default() `crossem_serve_*` instruments aggregate
// across services for the Prometheus exposition
// (obs::ExportPrometheus).
#ifndef CROSSEM_SERVE_STATS_H_
#define CROSSEM_SERVE_STATS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace crossem {
namespace serve {

/// The serving layer's log2 histogram is the shared obs one (it
/// originated here and moved down to src/obs when the process-wide
/// registry was introduced).
using obs::Histogram;

/// Immutable stats snapshot (all counters since service start).
struct ServiceStats {
  int64_t received = 0;          // requests accepted into the queue
  int64_t rejected_queue_full = 0;
  int64_t rejected_shutdown = 0;
  int64_t expired_deadline = 0;  // dequeued after their deadline
  int64_t completed = 0;
  int64_t batches = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  /// Micro-batch sizes (requests per EncodeVertices call).
  int64_t batch_size_p50 = 0;
  int64_t batch_size_p99 = 0;
  double batch_size_mean = 0.0;

  /// End-to-end request latency, submit to completion, microseconds.
  int64_t latency_p50_us = 0;
  int64_t latency_p99_us = 0;
  int64_t latency_max_us = 0;
  double latency_mean_us = 0.0;

  double CacheHitRate() const {
    const int64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }

  /// One-line human-readable rendering (CLI / logs).
  std::string ToString() const;
};

/// Lock-free accumulator behind ServiceStats. Snapshot() reads the
/// atomics without stopping writers, so a snapshot taken mid-update may
/// be off by in-flight increments — fine for monitoring.
class StatsCollector {
 public:
  StatsCollector();

  void RecordReceived();
  void RecordRejectedQueueFull();
  void RecordRejectedShutdown();
  void RecordExpired();
  void RecordBatch(int64_t batch_size, int64_t cache_hits,
                   int64_t cache_misses);
  void RecordCompleted(int64_t latency_us);

  /// Median end-to-end latency so far (0 before any completion) —
  /// backs the queue-full retry-after hint without a full Snapshot.
  int64_t LatencyP50Us() const { return latency_us_.Percentile(0.50); }

  ServiceStats Snapshot() const;

 private:
  // Per-service instruments: exact snapshot semantics per collector.
  obs::Counter received_;
  obs::Counter rejected_queue_full_;
  obs::Counter rejected_shutdown_;
  obs::Counter expired_deadline_;
  obs::Counter completed_;
  obs::Counter batches_;
  obs::Counter cache_hits_;
  obs::Counter cache_misses_;
  Histogram batch_sizes_;
  Histogram latency_us_;

  // Process-wide aggregates in obs::MetricsRegistry::Default(),
  // resolved once at construction (registry instruments are immortal).
  struct SharedInstruments;
  const SharedInstruments& shared_;
};

}  // namespace serve
}  // namespace crossem

#endif  // CROSSEM_SERVE_STATS_H_
