// Block-quantized embedding storage and quantized dot-product kernels
// for the serving layer (DESIGN.md §17).
//
// Formats (QuantFormat):
//   - kF32:  the original full-precision rows (no QuantStore involved);
//   - kF16:  IEEE binary16 per element — 2 bytes/dim, ~1e-3 relative
//            error, no scales;
//   - kInt8: symmetric int8 with one f32 scale per 32-element block
//            (kBlockSize): q = round(x / s), s = max|x| / 127 over the
//            block — 1 byte/dim + 4 bytes per block.
//
// Queries stay f32 (they come straight off the text tower); only stored
// rows are compressed, so a dot product is sum over blocks of
// scale_b * sum_i q[i] * query[i] — no query quantization error.
//
// Kernels follow the SetGemmKernel idiom from tensor/ops.h: a scalar
// reference (strict ascending accumulation, the numerics oracle) and a
// lane-blocked variant compiled with target_clones so the dynamic
// loader picks an AVX2 build on CPUs that have it. Each variant has a
// fixed accumulation order, so results never depend on thread count;
// the two variants differ within per-format NMSE tolerances
// (tests/serve/quant_kernels_test.cc runs the full format x kernel
// table against the f32 reference).
//
// Exact re-rank: quantized indexes keep the original f32 rows in an
// ExactStore — in RAM while the index is built in-process, memory-mapped
// from the "<index>.f32rank" side file after a Load — and re-score the
// top rerank_k candidates exactly, which restores recall@10 >= 0.99 on
// the bench world while the scan itself runs on compressed rows.
#ifndef CROSSEM_SERVE_QUANT_H_
#define CROSSEM_SERVE_QUANT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace crossem {
namespace serve {
namespace quant {

// -- Formats -----------------------------------------------------------------

enum class QuantFormat : uint32_t { kF32 = 0, kF16 = 1, kInt8 = 2 };

/// Elements per int8 scale block.
inline constexpr int64_t kBlockSize = 32;

/// "f32" / "f16" / "int8" — the token --quant accepts and files record.
const char* FormatName(QuantFormat format);
bool ParseFormat(const std::string& name, QuantFormat* out);

/// Scale blocks per row (ceil; the last block may be partial).
int64_t BlocksPerRow(int64_t dim);

/// Stored bytes per row: vector payload plus (int8) its block scales.
int64_t PayloadBytesPerRow(QuantFormat format, int64_t dim);

// -- Kernel dispatch ---------------------------------------------------------

/// kAuto is the lane-blocked production kernel (AVX2 via target_clones
/// where the build allows); kReference the scalar ascending-order
/// oracle. Process-wide, set only from single-threaded setup code —
/// same contract as SetGemmKernel.
enum class QuantKernel { kAuto, kReference };
void SetQuantKernel(QuantKernel kernel);
QuantKernel GetQuantKernel();

/// Dot of one quantized row against an f32 query, via the selected
/// kernel. `scales` points at the row's BlocksPerRow(dim) block scales.
float DotF16(const uint16_t* row, const float* query, int64_t dim);
float DotInt8(const int8_t* row, const float* scales, const float* query,
              int64_t dim);

/// Fixed-kernel entry points (the op-test table calls each explicitly).
float DotF16Reference(const uint16_t* row, const float* query, int64_t dim);
float DotF16Blocked(const uint16_t* row, const float* query, int64_t dim);
float DotInt8Reference(const int8_t* row, const float* scales,
                       const float* query, int64_t dim);
float DotInt8Blocked(const int8_t* row, const float* scales,
                     const float* query, int64_t dim);

// -- Row quantization --------------------------------------------------------

void QuantizeRowF16(const float* src, int64_t dim, uint16_t* out);
void DequantizeRowF16(const uint16_t* src, int64_t dim, float* out);
/// `scales` receives BlocksPerRow(dim) entries.
void QuantizeRowInt8(const float* src, int64_t dim, int8_t* out,
                     float* scales);
void DequantizeRowInt8(const int8_t* src, const float* scales, int64_t dim,
                       float* out);

// -- QuantStore --------------------------------------------------------------

/// Row-major storage of quantized embedding rows (kF16 or kInt8): the
/// compressed half of a quantized EmbeddingIndex.
class QuantStore {
 public:
  /// Must be called (once) before rows are appended. `format` kF32 is
  /// invalid here — f32 indexes never build a QuantStore.
  void Init(QuantFormat format, int64_t dim);

  QuantFormat format() const { return format_; }
  int64_t dim() const { return dim_; }
  int64_t size() const { return n_; }
  int64_t blocks_per_row() const { return BlocksPerRow(dim_); }

  /// Quantizes and appends `n` f32 rows (parallel over rows; each row's
  /// encoding depends only on its own values, so the result is
  /// thread-count independent).
  void AppendRows(const float* rows, int64_t n);

  /// Gathers rows `rows[0..n)` of `src` verbatim (bit-identical blocks
  /// and scales — the sharded-partition contract).
  void AppendFrom(const QuantStore& src, const int64_t* rows, int64_t n);

  float Dot(int64_t row, const float* query) const;
  void DequantizeRow(int64_t row, float* out) const;

  /// Bytes of quantized blocks + scales actually stored.
  int64_t PayloadBytes() const;

  // Serialization access (save writes these verbatim; load restores
  // them bitwise).
  const std::vector<uint16_t>& f16_rows() const { return f16_; }
  const std::vector<int8_t>& int8_rows() const { return q8_; }
  const std::vector<float>& scales() const { return scales_; }

  /// Restores a store from its serialized payload; validates sizes
  /// against (format, dim, n).
  Status Restore(QuantFormat format, int64_t dim, int64_t n,
                 const std::string& blocks, std::vector<float> scales);

 private:
  QuantFormat format_ = QuantFormat::kF16;
  int64_t dim_ = 0;
  int64_t n_ = 0;
  std::vector<uint16_t> f16_;    // kF16: [n, dim]
  std::vector<int8_t> q8_;       // kInt8: [n, dim]
  std::vector<float> scales_;    // kInt8: [n, blocks_per_row]
};

// -- QuantizedVector ---------------------------------------------------------

/// One embedding in any format — the EmbeddingCache entry type, so
/// cached vectors can be held compressed and dequantized on hit.
struct QuantizedVector {
  QuantFormat format = QuantFormat::kF32;
  int64_t dim = 0;
  std::vector<float> f32;        // kF32
  std::vector<uint16_t> f16;     // kF16
  std::vector<int8_t> q8;        // kInt8
  std::vector<float> scales;     // kInt8

  static QuantizedVector Encode(QuantFormat format, const float* src,
                                int64_t dim);
  void Decode(std::vector<float>* out) const;
  /// Heap bytes held by this entry (payload vectors' capacity).
  int64_t ApproxBytes() const;
};

// -- Exact f32 side store ----------------------------------------------------

/// Random access to the original (pre-quantization, L2-normalized) f32
/// rows backing a quantized index: the exact re-rank source.
class ExactStore {
 public:
  virtual ~ExactStore() = default;
  virtual int64_t size() const = 0;
  virtual int64_t dim() const = 0;
  /// Copies row `id` (dim() floats) into `out`; false on failure.
  /// Thread-safe.
  virtual bool Row(int64_t id, float* out) const = 0;
};

/// In-RAM rows — used while a quantized index is built in-process (the
/// rows are needed anyway to write the side file on Save).
class MemoryExactStore final : public ExactStore {
 public:
  explicit MemoryExactStore(int64_t dim) : dim_(dim) {}
  void AppendRows(const float* rows, int64_t n);
  int64_t size() const override {
    return static_cast<int64_t>(data_.size()) / dim_;
  }
  int64_t dim() const override { return dim_; }
  bool Row(int64_t id, float* out) const override;

 private:
  int64_t dim_;
  std::vector<float> data_;
};

/// A view over another store through a local-row -> base-row mapping:
/// index shards share the source's exact store instead of duplicating
/// the f32 rows per shard.
class MappedExactStore final : public ExactStore {
 public:
  MappedExactStore(std::shared_ptr<const ExactStore> base,
                   std::vector<int64_t> rows)
      : base_(std::move(base)), rows_(std::move(rows)) {}
  int64_t size() const override {
    return static_cast<int64_t>(rows_.size());
  }
  int64_t dim() const override { return base_->dim(); }
  bool Row(int64_t id, float* out) const override {
    return base_->Row(rows_[static_cast<size_t>(id)], out);
  }

 private:
  std::shared_ptr<const ExactStore> base_;
  std::vector<int64_t> rows_;
};

/// Memory-mapped "<index>.f32rank" side file: header-validated at open,
/// page-cache backed (no per-row syscall), safe for concurrent readers.
class FileExactStore final : public ExactStore {
 public:
  static Result<std::unique_ptr<FileExactStore>> Open(
      const std::string& path);
  ~FileExactStore() override;
  int64_t size() const override { return n_; }
  int64_t dim() const override { return dim_; }
  bool Row(int64_t id, float* out) const override;

 private:
  FileExactStore() = default;
  int64_t n_ = 0;
  int64_t dim_ = 0;
  void* map_ = nullptr;      // whole-file mapping
  size_t map_len_ = 0;
  const float* rows_ = nullptr;  // first row within the mapping
};

/// Side-file path convention for index file `index_path`.
std::string ExactSidePath(const std::string& index_path);

/// Writes every row of `rows` as an exact side file (atomic: tmp +
/// fsync + rename, via the fault-injectable io wrappers).
Status WriteExactSideFile(const ExactStore& rows, const std::string& path);

}  // namespace quant
}  // namespace serve
}  // namespace crossem

#endif  // CROSSEM_SERVE_QUANT_H_
