#include "serve/cache.h"

#include "obs/metrics.h"

namespace crossem {
namespace serve {

namespace {

obs::Gauge* CacheBytesGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Default().GetGauge("crossem_cache_bytes");
  return gauge;
}

}  // namespace

void EmbeddingCache::PublishBytesDelta(int64_t delta) {
  if (delta != 0) CacheBytesGauge()->Add(static_cast<double>(delta));
}

bool EmbeddingCache::Lookup(graph::VertexId vertex, uint32_t fingerprint,
                            std::vector<float>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(Key{vertex, fingerprint});
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second->second.Decode(out);
  ++hits_;
  return true;
}

void EmbeddingCache::EvictBack() {
  const int64_t freed = lru_.back().second.ApproxBytes();
  map_.erase(lru_.back().first);
  lru_.pop_back();
  bytes_ -= freed;
  PublishBytesDelta(-freed);
}

void EmbeddingCache::Insert(graph::VertexId vertex, uint32_t fingerprint,
                            std::vector<float> embedding) {
  if (options_.capacity <= 0) return;
  quant::QuantizedVector entry = quant::QuantizedVector::Encode(
      options_.format, embedding.data(),
      static_cast<int64_t>(embedding.size()));
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{vertex, fingerprint};
  auto it = map_.find(key);
  if (it != map_.end()) {
    const int64_t delta =
        entry.ApproxBytes() - it->second->second.ApproxBytes();
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    bytes_ += delta;
    PublishBytesDelta(delta);
  } else {
    const int64_t added = entry.ApproxBytes();
    lru_.emplace_front(key, std::move(entry));
    map_.emplace(key, lru_.begin());
    bytes_ += added;
    PublishBytesDelta(added);
  }
  while (static_cast<int64_t>(lru_.size()) > options_.capacity ||
         (options_.max_bytes > 0 && bytes_ > options_.max_bytes &&
          lru_.size() > 1)) {
    EvictBack();
  }
}

int64_t EmbeddingCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

int64_t EmbeddingCache::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t EmbeddingCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t EmbeddingCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void EmbeddingCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  PublishBytesDelta(-bytes_);
  bytes_ = 0;
}

}  // namespace serve
}  // namespace crossem
