#include "serve/cache.h"

namespace crossem {
namespace serve {

bool EmbeddingCache::Lookup(graph::VertexId vertex, uint32_t fingerprint,
                            std::vector<float>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(Key{vertex, fingerprint});
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->second;
  ++hits_;
  return true;
}

void EmbeddingCache::Insert(graph::VertexId vertex, uint32_t fingerprint,
                            std::vector<float> embedding) {
  if (capacity_ <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{vertex, fingerprint};
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(embedding);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(embedding));
  map_.emplace(key, lru_.begin());
  while (static_cast<int64_t>(lru_.size()) > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

int64_t EmbeddingCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

int64_t EmbeddingCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t EmbeddingCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void EmbeddingCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

}  // namespace serve
}  // namespace crossem
