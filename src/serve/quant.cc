#include "serve/quant.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>

#include "tensor/f16.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace crossem {
namespace serve {
namespace quant {

namespace {

QuantKernel g_quant_kernel = QuantKernel::kAuto;

// Function multi-versioning, exactly as the GEMM inner kernel
// (tensor/ops.cc): baseline x86-64 binary, AVX2+FMA clone picked by the
// loader's ifunc resolver. Sanitizer builds drop the clones — their
// runtimes crash on multi-versioned symbols.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define CROSSEM_QUANT_CLONES \
  __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define CROSSEM_QUANT_CLONES
#endif

/// Accumulator lanes of the blocked kernels: eight running sums updated
/// in a fixed round-robin order (an 8-wide AVX2 float vector), folded
/// pairwise at the end. The order is fixed, so a given kernel's result
/// is fully deterministic; it differs from the scalar reference only by
/// float reassociation (bounded by the op-test NMSE tolerances).
constexpr int64_t kLanes = 8;

inline float FoldLanes(const float* lane) {
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

}  // namespace

// -- Formats -----------------------------------------------------------------

const char* FormatName(QuantFormat format) {
  switch (format) {
    case QuantFormat::kF32:
      return "f32";
    case QuantFormat::kF16:
      return "f16";
    case QuantFormat::kInt8:
      return "int8";
  }
  return "?";
}

bool ParseFormat(const std::string& name, QuantFormat* out) {
  if (name == "f32") {
    *out = QuantFormat::kF32;
  } else if (name == "f16") {
    *out = QuantFormat::kF16;
  } else if (name == "int8") {
    *out = QuantFormat::kInt8;
  } else {
    return false;
  }
  return true;
}

int64_t BlocksPerRow(int64_t dim) {
  return (dim + kBlockSize - 1) / kBlockSize;
}

int64_t PayloadBytesPerRow(QuantFormat format, int64_t dim) {
  switch (format) {
    case QuantFormat::kF32:
      return dim * static_cast<int64_t>(sizeof(float));
    case QuantFormat::kF16:
      return dim * static_cast<int64_t>(sizeof(uint16_t));
    case QuantFormat::kInt8:
      return dim + BlocksPerRow(dim) * static_cast<int64_t>(sizeof(float));
  }
  return 0;
}

// -- Kernels -----------------------------------------------------------------

void SetQuantKernel(QuantKernel kernel) { g_quant_kernel = kernel; }
QuantKernel GetQuantKernel() { return g_quant_kernel; }

namespace {

/// All 2^16 half values decoded once (256 KiB): the branchy subnormal
/// handling in F16ToF32 is far too slow for a scan's inner loop, and a
/// table load is bit-identical to the function it memoizes, so both
/// kernels read it and the reference/blocked contract is untouched.
struct F16DecodeTable {
  float to_f32[1 << 16];
  F16DecodeTable() {
    for (uint32_t h = 0; h < (1u << 16); ++h) {
      to_f32[h] = F16ToF32(static_cast<uint16_t>(h));
    }
  }
};

const float* F16Lut() {
  static const F16DecodeTable table;
  return table.to_f32;
}

}  // namespace

float DotF16Reference(const uint16_t* row, const float* query, int64_t dim) {
  const float* lut = F16Lut();
  float acc = 0.0f;
  for (int64_t d = 0; d < dim; ++d) acc += lut[row[d]] * query[d];
  return acc;
}

CROSSEM_QUANT_CLONES
float DotF16Blocked(const uint16_t* row, const float* query, int64_t dim) {
  const float* lut = F16Lut();
  float lane[kLanes] = {0};
  int64_t d = 0;
  for (; d + kLanes <= dim; d += kLanes) {
    for (int64_t l = 0; l < kLanes; ++l) {
      lane[l] += lut[row[d + l]] * query[d + l];
    }
  }
  float acc = FoldLanes(lane);
  for (; d < dim; ++d) acc += lut[row[d]] * query[d];
  return acc;
}

float DotInt8Reference(const int8_t* row, const float* scales,
                       const float* query, int64_t dim) {
  float acc = 0.0f;
  for (int64_t b = 0; b * kBlockSize < dim; ++b) {
    const int64_t lo = b * kBlockSize;
    const int64_t hi = std::min(dim, lo + kBlockSize);
    float s = 0.0f;
    for (int64_t d = lo; d < hi; ++d) {
      s += static_cast<float>(row[d]) * query[d];
    }
    acc += scales[b] * s;
  }
  return acc;
}

CROSSEM_QUANT_CLONES
float DotInt8Blocked(const int8_t* row, const float* scales,
                     const float* query, int64_t dim) {
  const int64_t full = dim / kBlockSize;
  float acc = 0.0f;
  for (int64_t b = 0; b < full; ++b) {
    const int8_t* r = row + b * kBlockSize;
    const float* q = query + b * kBlockSize;
    float lane[kLanes] = {0};
    for (int64_t i = 0; i < kBlockSize; i += kLanes) {
      for (int64_t l = 0; l < kLanes; ++l) {
        lane[l] += static_cast<float>(r[i + l]) * q[i + l];
      }
    }
    acc += scales[b] * FoldLanes(lane);
  }
  const int64_t tail = full * kBlockSize;
  if (tail < dim) {
    float s = 0.0f;
    for (int64_t d = tail; d < dim; ++d) {
      s += static_cast<float>(row[d]) * query[d];
    }
    acc += scales[full] * s;
  }
  return acc;
}

float DotF16(const uint16_t* row, const float* query, int64_t dim) {
  return g_quant_kernel == QuantKernel::kReference
             ? DotF16Reference(row, query, dim)
             : DotF16Blocked(row, query, dim);
}

float DotInt8(const int8_t* row, const float* scales, const float* query,
              int64_t dim) {
  return g_quant_kernel == QuantKernel::kReference
             ? DotInt8Reference(row, scales, query, dim)
             : DotInt8Blocked(row, scales, query, dim);
}

// -- Row quantization --------------------------------------------------------

void QuantizeRowF16(const float* src, int64_t dim, uint16_t* out) {
  for (int64_t d = 0; d < dim; ++d) out[d] = F32ToF16(src[d]);
}

void DequantizeRowF16(const uint16_t* src, int64_t dim, float* out) {
  const float* lut = F16Lut();
  for (int64_t d = 0; d < dim; ++d) out[d] = lut[src[d]];
}

void QuantizeRowInt8(const float* src, int64_t dim, int8_t* out,
                     float* scales) {
  for (int64_t b = 0; b * kBlockSize < dim; ++b) {
    const int64_t lo = b * kBlockSize;
    const int64_t hi = std::min(dim, lo + kBlockSize);
    float amax = 0.0f;
    for (int64_t d = lo; d < hi; ++d) {
      amax = std::max(amax, std::fabs(src[d]));
    }
    const float scale = amax / 127.0f;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    scales[b] = scale;
    for (int64_t d = lo; d < hi; ++d) {
      // lrintf rounds to nearest even (default FP mode); |x * inv| <=
      // 127 by construction, so no clamp is needed.
      out[d] = static_cast<int8_t>(std::lrintf(src[d] * inv));
    }
  }
}

void DequantizeRowInt8(const int8_t* src, const float* scales, int64_t dim,
                       float* out) {
  for (int64_t b = 0; b * kBlockSize < dim; ++b) {
    const int64_t lo = b * kBlockSize;
    const int64_t hi = std::min(dim, lo + kBlockSize);
    const float s = scales[b];
    for (int64_t d = lo; d < hi; ++d) {
      out[d] = static_cast<float>(src[d]) * s;
    }
  }
}

// -- QuantStore --------------------------------------------------------------

void QuantStore::Init(QuantFormat format, int64_t dim) {
  CROSSEM_CHECK(format != QuantFormat::kF32);
  CROSSEM_CHECK_GT(dim, 0);
  CROSSEM_CHECK_EQ(n_, 0);
  format_ = format;
  dim_ = dim;
}

void QuantStore::AppendRows(const float* rows, int64_t n) {
  CROSSEM_CHECK_GT(dim_, 0);
  const int64_t first = n_;
  n_ += n;
  if (format_ == QuantFormat::kF16) {
    f16_.resize(static_cast<size_t>(n_ * dim_));
    ParallelFor(0, n, /*grain=*/256, [&](int64_t b, int64_t e) {
      for (int64_t r = b; r < e; ++r) {
        QuantizeRowF16(rows + r * dim_, dim_,
                       f16_.data() + (first + r) * dim_);
      }
    });
  } else {
    const int64_t bpr = blocks_per_row();
    q8_.resize(static_cast<size_t>(n_ * dim_));
    scales_.resize(static_cast<size_t>(n_ * bpr));
    ParallelFor(0, n, /*grain=*/256, [&](int64_t b, int64_t e) {
      for (int64_t r = b; r < e; ++r) {
        QuantizeRowInt8(rows + r * dim_, dim_,
                        q8_.data() + (first + r) * dim_,
                        scales_.data() + (first + r) * bpr);
      }
    });
  }
}

void QuantStore::AppendFrom(const QuantStore& src, const int64_t* rows,
                            int64_t n) {
  CROSSEM_CHECK(src.format_ == format_);
  CROSSEM_CHECK_EQ(src.dim_, dim_);
  const int64_t first = n_;
  n_ += n;
  if (format_ == QuantFormat::kF16) {
    f16_.resize(static_cast<size_t>(n_ * dim_));
    for (int64_t r = 0; r < n; ++r) {
      std::memcpy(f16_.data() + (first + r) * dim_,
                  src.f16_.data() + rows[r] * dim_,
                  static_cast<size_t>(dim_) * sizeof(uint16_t));
    }
  } else {
    const int64_t bpr = blocks_per_row();
    q8_.resize(static_cast<size_t>(n_ * dim_));
    scales_.resize(static_cast<size_t>(n_ * bpr));
    for (int64_t r = 0; r < n; ++r) {
      std::memcpy(q8_.data() + (first + r) * dim_,
                  src.q8_.data() + rows[r] * dim_,
                  static_cast<size_t>(dim_));
      std::memcpy(scales_.data() + (first + r) * bpr,
                  src.scales_.data() + rows[r] * bpr,
                  static_cast<size_t>(bpr) * sizeof(float));
    }
  }
}

float QuantStore::Dot(int64_t row, const float* query) const {
  if (format_ == QuantFormat::kF16) {
    return DotF16(f16_.data() + row * dim_, query, dim_);
  }
  return DotInt8(q8_.data() + row * dim_,
                 scales_.data() + row * blocks_per_row(), query, dim_);
}

void QuantStore::DequantizeRow(int64_t row, float* out) const {
  if (format_ == QuantFormat::kF16) {
    DequantizeRowF16(f16_.data() + row * dim_, dim_, out);
  } else {
    DequantizeRowInt8(q8_.data() + row * dim_,
                      scales_.data() + row * blocks_per_row(), dim_, out);
  }
}

int64_t QuantStore::PayloadBytes() const {
  return static_cast<int64_t>(f16_.size() * sizeof(uint16_t) +
                              q8_.size() * sizeof(int8_t) +
                              scales_.size() * sizeof(float));
}

Status QuantStore::Restore(QuantFormat format, int64_t dim, int64_t n,
                           const std::string& blocks,
                           std::vector<float> scales) {
  if (format == QuantFormat::kF32 || dim <= 0 || n < 0) {
    return Status::InvalidArgument("QuantStore::Restore: bad shape");
  }
  format_ = format;
  dim_ = dim;
  n_ = n;
  const size_t numel = static_cast<size_t>(n * dim);
  if (format == QuantFormat::kF16) {
    if (blocks.size() != numel * sizeof(uint16_t) || !scales.empty()) {
      return Status::InvalidArgument("QuantStore::Restore: f16 size mismatch");
    }
    f16_.resize(numel);
    std::memcpy(f16_.data(), blocks.data(), blocks.size());
  } else {
    if (blocks.size() != numel ||
        scales.size() != static_cast<size_t>(n * blocks_per_row())) {
      return Status::InvalidArgument(
          "QuantStore::Restore: int8 size mismatch");
    }
    q8_.resize(numel);
    std::memcpy(q8_.data(), blocks.data(), blocks.size());
    scales_ = std::move(scales);
  }
  return Status::OK();
}

// -- QuantizedVector ---------------------------------------------------------

QuantizedVector QuantizedVector::Encode(QuantFormat format, const float* src,
                                        int64_t dim) {
  QuantizedVector v;
  v.format = format;
  v.dim = dim;
  switch (format) {
    case QuantFormat::kF32:
      v.f32.assign(src, src + dim);
      break;
    case QuantFormat::kF16:
      v.f16.resize(static_cast<size_t>(dim));
      QuantizeRowF16(src, dim, v.f16.data());
      break;
    case QuantFormat::kInt8:
      v.q8.resize(static_cast<size_t>(dim));
      v.scales.resize(static_cast<size_t>(BlocksPerRow(dim)));
      QuantizeRowInt8(src, dim, v.q8.data(), v.scales.data());
      break;
  }
  return v;
}

void QuantizedVector::Decode(std::vector<float>* out) const {
  out->resize(static_cast<size_t>(dim));
  switch (format) {
    case QuantFormat::kF32:
      std::copy(f32.begin(), f32.end(), out->begin());
      break;
    case QuantFormat::kF16:
      DequantizeRowF16(f16.data(), dim, out->data());
      break;
    case QuantFormat::kInt8:
      DequantizeRowInt8(q8.data(), scales.data(), dim, out->data());
      break;
  }
}

int64_t QuantizedVector::ApproxBytes() const {
  return static_cast<int64_t>(f32.capacity() * sizeof(float) +
                              f16.capacity() * sizeof(uint16_t) +
                              q8.capacity() * sizeof(int8_t) +
                              scales.capacity() * sizeof(float));
}

// -- Exact f32 side store ----------------------------------------------------

void MemoryExactStore::AppendRows(const float* rows, int64_t n) {
  data_.insert(data_.end(), rows, rows + n * dim_);
}

bool MemoryExactStore::Row(int64_t id, float* out) const {
  std::memcpy(out, data_.data() + id * dim_,
              static_cast<size_t>(dim_) * sizeof(float));
  return true;
}

namespace {

// "<index>.f32rank" layout: 8-byte magic, i64 n, i64 dim, u32 CRC of
// the preceding 24 header bytes, then n*dim raw f32 rows. The payload
// carries no per-row checksum — a flipped bit there only perturbs
// re-rank scores — but the header CRC plus an exact file-size check
// reject truncation and header rot at open.
constexpr char kSideMagic[8] = {'C', 'E', 'M', 'F', '3', '2', 'R', '1'};
constexpr size_t kSideHeaderBytes =
    sizeof(kSideMagic) + 2 * sizeof(int64_t) + sizeof(uint32_t);

uint32_t SideHeaderCrc(int64_t n, int64_t dim) {
  uint32_t crc = Crc32Update(0, kSideMagic, sizeof(kSideMagic));
  crc = Crc32Update(crc, &n, sizeof(n));
  crc = Crc32Update(crc, &dim, sizeof(dim));
  return crc;
}

Status CorruptSide(const std::string& path, const std::string& what) {
  return Status::ParseError("corrupt exact side file '" + path + "': " +
                            what);
}

}  // namespace

std::string ExactSidePath(const std::string& index_path) {
  return index_path + ".f32rank";
}

Status WriteExactSideFile(const ExactStore& rows, const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = io::Fopen(tmp, "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + tmp + "' for writing");
  }
  const int64_t n = rows.size();
  const int64_t dim = rows.dim();
  const uint32_t crc = SideHeaderCrc(n, dim);
  bool ok = io::Fwrite(kSideMagic, 1, sizeof(kSideMagic), f) ==
                sizeof(kSideMagic) &&
            io::Fwrite(&n, sizeof(n), 1, f) == 1 &&
            io::Fwrite(&dim, sizeof(dim), 1, f) == 1 &&
            io::Fwrite(&crc, sizeof(crc), 1, f) == 1;
  std::vector<float> row(static_cast<size_t>(dim));
  for (int64_t i = 0; ok && i < n; ++i) {
    ok = rows.Row(i, row.data()) &&
         io::Fwrite(row.data(), sizeof(float), row.size(), f) == row.size();
  }
  ok = ok && io::Fflush(f) == 0 && io::Fsync(f) == 0;
  std::fclose(f);
  if (!ok) {
    io::Remove(tmp);
    return Status::IOError("write failed: '" + tmp + "'");
  }
  if (io::Rename(tmp, path) != 0) {
    io::Remove(tmp);
    return Status::IOError("rename failed: '" + tmp + "' -> '" + path + "'");
  }
  return Status::OK();
}

FileExactStore::~FileExactStore() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

Result<std::unique_ptr<FileExactStore>> FileExactStore::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat '" + path + "'");
  }
  const size_t file_len = static_cast<size_t>(st.st_size);
  if (file_len < kSideHeaderBytes) {
    ::close(fd);
    return CorruptSide(path, "truncated header");
  }
  void* map = ::mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return Status::IOError("cannot mmap '" + path + "'");
  }
  std::unique_ptr<FileExactStore> store(new FileExactStore());
  store->map_ = map;
  store->map_len_ = file_len;
  const char* p = static_cast<const char*>(map);
  if (std::memcmp(p, kSideMagic, sizeof(kSideMagic)) != 0) {
    return CorruptSide(path, "bad magic");
  }
  int64_t n = 0, dim = 0;
  uint32_t crc = 0;
  std::memcpy(&n, p + sizeof(kSideMagic), sizeof(n));
  std::memcpy(&dim, p + sizeof(kSideMagic) + sizeof(n), sizeof(dim));
  std::memcpy(&crc, p + sizeof(kSideMagic) + sizeof(n) + sizeof(dim),
              sizeof(crc));
  if (n < 0 || dim <= 0 || crc != SideHeaderCrc(n, dim)) {
    return CorruptSide(path, "header fails its checksum");
  }
  if (file_len != kSideHeaderBytes +
                      static_cast<size_t>(n) * static_cast<size_t>(dim) *
                          sizeof(float)) {
    return CorruptSide(path, "size does not match header");
  }
  store->n_ = n;
  store->dim_ = dim;
  store->rows_ = reinterpret_cast<const float*>(p + kSideHeaderBytes);
  return store;
}

bool FileExactStore::Row(int64_t id, float* out) const {
  if (id < 0 || id >= n_) return false;
  std::memcpy(out, rows_ + id * dim_,
              static_cast<size_t>(dim_) * sizeof(float));
  return true;
}

}  // namespace quant
}  // namespace serve
}  // namespace crossem
