// Versioned serving snapshots with atomic hot-swap (DESIGN.md §15).
//
// A ServingSnapshot is the unit a retrain rolls out: one immutable
// embedding index (optionally hash-partitioned into shards) plus the
// live query engine over it — MatchService for one shard,
// ShardedMatchService for several — under a single Match() surface.
// It is also the "engine wrapper" the CLI serves through, so the HTTP
// front end and crossem_serve share one code path.
//
// SnapshotManager is the RCU seam between request handlers and
// rollouts:
//
//   * Acquire() hands out a SnapshotLease — a shared_ptr to the
//     current snapshot plus a lease count inside the snapshot. The
//     fast path is one mutex-protected pointer copy and one relaxed
//     increment; a request keeps its lease for the duration of one
//     Match() call, so it always talks to one consistent
//     index+service pair even while a swap lands mid-request.
//
//   * LoadAndSwap(path) builds the NEXT snapshot in the calling thread
//     (CEMCKPT2 load, encoder-fingerprint handshake against the frozen
//     matcher, optional sharding, service construction) while the
//     CURRENT one keeps serving — the expensive part happens entirely
//     off the request path. Only the final pointer swap takes the
//     manager mutex. Then a detached-in-spirit retirer thread waits
//     for the old snapshot's leases to drain, shuts its service down
//     gracefully (which drains the service queue), and frees it.
//     Queries therefore never observe a missing or half-built engine:
//     zero dropped requests across a rollout is a hard invariant
//     (tests/net/snapshot_test.cc drills it under concurrent load).
//
// The handshake: an index whose recorded model fingerprint does not
// match the serving matcher is rejected before the swap — a retuned
// model cannot silently serve stale embeddings (same contract as
// crossem_serve's LoadIndexFor since PR 3).
#ifndef CROSSEM_SERVE_SNAPSHOT_H_
#define CROSSEM_SERVE_SNAPSHOT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/index.h"
#include "serve/service.h"
#include "serve/sharded.h"
#include "util/status.h"

namespace crossem {
namespace serve {

/// Engine shape shared by the CLI and the HTTP front end: how many
/// shards, and the front-end/resilience knobs.
struct EngineOptions {
  MatchServiceOptions base;
  /// > 1 partitions the index and serves through ShardedMatchService.
  int64_t shards = 1;
  ResilienceOptions resilience;
};

/// One immutable index + its query engine, with lease accounting.
class ServingSnapshot {
 public:
  /// Takes ownership of `index`; `matcher` is borrowed and must
  /// outlive the snapshot. Builds the (sharded) service immediately.
  static Result<std::unique_ptr<ServingSnapshot>> Create(
      const core::CrossEm* matcher, std::unique_ptr<EmbeddingIndex> index,
      const EngineOptions& options, int64_t version, std::string source);

  ~ServingSnapshot();

  Result<MatchResponse> Match(const MatchRequest& request);

  int64_t version() const { return version_; }
  const std::string& source() const { return source_; }
  int64_t rows() const { return index_->size(); }
  std::string backend() const { return index_->backend(); }
  quant::QuantFormat quant_format() const { return index_->quant_format(); }
  /// Approximate resident index bytes (all shards when sharded) —
  /// published as the crossem_index_bytes gauge at swap time.
  int64_t MemoryBytes() const {
    return sharded_index_ != nullptr ? sharded_index_->MemoryBytes()
                                     : index_->MemoryBytes();
  }
  uint32_t fingerprint() const { return index_->model_fingerprint(); }
  bool sharded() const { return sharded_service_ != nullptr; }
  int64_t shards() const {
    return sharded_index_ != nullptr ? sharded_index_->num_shards() : 1;
  }

  ServiceStats Stats() const;
  /// Engine p50 completion latency (admission Retry-After hint).
  int64_t LatencyP50Us() const;
  /// Resilience counters; empty stats when not sharded.
  ResilienceStats Resilience() const;

  /// Stops admitting, drains, joins workers. Idempotent; called by the
  /// manager's retirer after the lease count hits zero.
  void Shutdown();

  // Lease accounting (SnapshotLease calls these).
  void BeginLease() { leases_.fetch_add(1, std::memory_order_acquire); }
  void EndLease();
  /// Blocks until every outstanding lease is returned. Only called
  /// after the snapshot is unreachable from Acquire(), so the count is
  /// monotonically draining.
  void WaitLeasesDrained();
  int64_t leases() const { return leases_.load(std::memory_order_relaxed); }

 private:
  ServingSnapshot() = default;

  int64_t version_ = 0;
  std::string source_;
  std::unique_ptr<EmbeddingIndex> index_;
  std::unique_ptr<ShardedIndex> sharded_index_;
  std::unique_ptr<MatchService> single_service_;
  std::unique_ptr<ShardedMatchService> sharded_service_;

  std::atomic<int64_t> leases_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

/// RAII lease on the current snapshot. Falsy when the manager has no
/// snapshot yet (or is shut down) — the caller answers 503.
class SnapshotLease {
 public:
  SnapshotLease() = default;
  explicit SnapshotLease(std::shared_ptr<ServingSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {
    if (snapshot_ != nullptr) snapshot_->BeginLease();
  }
  SnapshotLease(SnapshotLease&& other) noexcept
      : snapshot_(std::move(other.snapshot_)) {
    other.snapshot_.reset();
  }
  SnapshotLease& operator=(SnapshotLease&& other) noexcept {
    Reset();
    snapshot_ = std::move(other.snapshot_);
    other.snapshot_.reset();
    return *this;
  }
  SnapshotLease(const SnapshotLease&) = delete;
  SnapshotLease& operator=(const SnapshotLease&) = delete;
  ~SnapshotLease() { Reset(); }

  void Reset() {
    if (snapshot_ != nullptr) {
      snapshot_->EndLease();
      snapshot_.reset();
    }
  }

  explicit operator bool() const { return snapshot_ != nullptr; }
  ServingSnapshot* operator->() { return snapshot_.get(); }
  const ServingSnapshot* operator->() const { return snapshot_.get(); }
  ServingSnapshot& operator*() { return *snapshot_; }

 private:
  std::shared_ptr<ServingSnapshot> snapshot_;
};

class SnapshotManager {
 public:
  /// `matcher` is borrowed and must outlive the manager. The manager
  /// starts empty: Acquire() is falsy until the first successful swap.
  SnapshotManager(const core::CrossEm* matcher, EngineOptions options);
  ~SnapshotManager();  // implies Shutdown()

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Loads a CEMCKPT2 index file, verifies the encoder-fingerprint
  /// handshake, builds the engine, swaps it in, and retires the old
  /// snapshot in the background. On any error the current snapshot
  /// keeps serving untouched.
  Status LoadAndSwap(const std::string& index_path);

  /// Same rollout protocol for an in-process index (tests, first boot
  /// from a freshly built index).
  Status SwapIndex(std::unique_ptr<EmbeddingIndex> index,
                   std::string source);

  /// Lease on the current snapshot; falsy when none is live.
  SnapshotLease Acquire();

  /// Version of the live snapshot (0 = none yet). Monotonic.
  int64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }
  int64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }

  /// Stops handing out leases, waits for the live snapshot to drain,
  /// shuts it down, joins every retirer. Idempotent.
  void Shutdown();

 private:
  Status Swap(std::unique_ptr<EmbeddingIndex> index, std::string source);
  void Retire(std::shared_ptr<ServingSnapshot> old);

  const core::CrossEm* matcher_;
  const EngineOptions options_;

  std::atomic<int64_t> version_{0};
  std::atomic<int64_t> swaps_{0};

  mutable std::mutex mu_;  // guards current_, retirers_, shutdown_
  std::shared_ptr<ServingSnapshot> current_;
  std::vector<std::thread> retirers_;
  bool shutdown_ = false;
};

}  // namespace serve
}  // namespace crossem

#endif  // CROSSEM_SERVE_SNAPSHOT_H_
