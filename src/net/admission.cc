#include "net/admission.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <memory>

namespace crossem {
namespace net {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(std::max(rate_per_sec, 0.0)),
      burst_(std::max(burst, 1.0)),
      tokens_(std::max(burst, 1.0)) {}

bool TokenBucket::TryAcquire(std::chrono::steady_clock::time_point now,
                             int64_t* retry_after_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!primed_) {
    primed_ = true;
    last_refill_ = now;
  }
  if (now > last_refill_ && rate_ > 0.0) {
    const double elapsed_s =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            now - last_refill_)
            .count();
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
  }
  // The clock never moves the refill anchor backwards (a caller-supplied
  // `now` predating the last refill must not mint tokens twice).
  last_refill_ = std::max(last_refill_, now);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    if (retry_after_micros != nullptr) *retry_after_micros = 0;
    return true;
  }
  if (retry_after_micros != nullptr) {
    *retry_after_micros =
        rate_ <= 0.0
            ? 0
            : static_cast<int64_t>(std::ceil((1.0 - tokens_) / rate_ * 1e6));
  }
  return false;
}

int64_t ClampRetryToDeadline(int64_t retry_after_micros,
                             int64_t remaining_deadline_micros) {
  if (remaining_deadline_micros <= 0) return retry_after_micros;
  return std::min(retry_after_micros, remaining_deadline_micros);
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {}

TokenBucket* AdmissionController::BucketFor(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(tenant);
  if (it != buckets_.end()) return it->second.get();
  if (static_cast<int64_t>(buckets_.size()) >= options_.max_tenants) {
    // Hostile key cardinality: everyone past the cap shares one bucket,
    // so the map stays bounded and known tenants stay isolated.
    if (overflow_bucket_ == nullptr) {
      overflow_bucket_ = std::make_unique<TokenBucket>(
          options_.tenant_rate, options_.tenant_burst);
    }
    return overflow_bucket_.get();
  }
  auto bucket = std::make_unique<TokenBucket>(options_.tenant_rate,
                                              options_.tenant_burst);
  TokenBucket* raw = bucket.get();
  buckets_.emplace(tenant, std::move(bucket));
  return raw;
}

AdmissionDecision AdmissionController::Admit(
    const std::string& tenant, std::chrono::steady_clock::time_point now,
    int64_t remaining_deadline_micros, int64_t p50_hint_micros,
    Ticket* ticket) {
  AdmissionDecision decision;

  // Tenant quota first: an over-quota tenant must not touch the global
  // limit (that is the isolation property the quota exists for).
  if (options_.tenant_rate > 0.0) {
    int64_t retry_after = 0;
    if (!BucketFor(tenant)->TryAcquire(now, &retry_after)) {
      decision.admitted = false;
      decision.http_status = 429;
      decision.reason = "tenant_quota_exhausted";
      decision.retry_after_micros = ClampRetryToDeadline(
          std::max(retry_after, options_.default_retry_after_micros),
          remaining_deadline_micros);
      return decision;
    }
  }

  if (options_.max_inflight > 0) {
    int64_t cur = inflight_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur >= options_.max_inflight) {
        decision.admitted = false;
        decision.http_status = 429;
        decision.reason = "concurrency_limit";
        decision.retry_after_micros = ClampRetryToDeadline(
            std::max(p50_hint_micros, options_.default_retry_after_micros),
            remaining_deadline_micros);
        return decision;
      }
      if (inflight_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_relaxed)) {
        break;
      }
    }
    *ticket = Ticket(this);
  }
  return decision;
}

Result<int64_t> ParseDeadlineMillis(const std::string& value) {
  if (value.empty()) {
    return Status::InvalidArgument("x-deadline-ms: empty value");
  }
  int64_t ms = 0;
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("x-deadline-ms: '" + value +
                                     "' is not a positive integer");
    }
    ms = ms * 10 + (c - '0');
    if (ms > 24LL * 3600 * 1000) {
      return Status::InvalidArgument("x-deadline-ms: '" + value +
                                     "' exceeds 24h");
    }
  }
  if (ms <= 0) {
    return Status::InvalidArgument("x-deadline-ms must be >= 1");
  }
  return ms;
}

}  // namespace net
}  // namespace crossem
