#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace crossem {
namespace net {

namespace {

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Trims ASCII spaces and tabs from both ends.
std::string TrimWs(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

const std::string* FindIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [k, v] : headers) {
    if (HeaderNameEquals(k, name)) return &v;
  }
  return nullptr;
}

bool KeepAliveFor(const std::string& version, const std::string* connection) {
  std::string token;
  if (connection != nullptr) {
    token = *connection;
    for (char& c : token) c = AsciiLower(c);
    token = TrimWs(token);
  }
  if (version == "HTTP/1.0") return token == "keep-alive";
  return token != "close";  // HTTP/1.1 (and later): persistent by default
}

}  // namespace

bool HeaderNameEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  return FindIn(headers, name);
}

bool HttpRequest::KeepAlive() const {
  return KeepAliveFor(version, FindHeader("Connection"));
}

const std::string* HttpResponse::FindHeader(const std::string& name) const {
  return FindIn(headers, name);
}

void HttpResponse::SetHeader(const std::string& name,
                             const std::string& value) {
  for (auto& [k, v] : headers) {
    if (HeaderNameEquals(k, name)) {
      v = value;
      return;
    }
  }
  headers.emplace_back(name, value);
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 206: return "Partial Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  bool have_length = false;
  bool have_connection = false;
  for (const auto& [k, v] : response.headers) {
    if (HeaderNameEquals(k, "Content-Length")) have_length = true;
    if (HeaderNameEquals(k, "Connection")) have_connection = true;
    out += k + ": " + v + "\r\n";
  }
  if (!have_length) {
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  if (!have_connection) {
    out += response.keep_alive ? "Connection: keep-alive\r\n"
                               : "Connection: close\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

std::string SerializeRequest(const HttpRequest& request) {
  std::string out = request.method + " " + request.target + " " +
                    (request.version.empty() ? "HTTP/1.1" : request.version) +
                    "\r\n";
  bool have_length = false;
  for (const auto& [k, v] : request.headers) {
    if (HeaderNameEquals(k, "Content-Length")) have_length = true;
    out += k + ": " + v + "\r\n";
  }
  if (!have_length && !request.body.empty()) {
    out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

// -- HttpParser --------------------------------------------------------------

HttpParser::HttpParser(Mode mode, HttpParserLimits limits)
    : mode_(mode), limits_(limits) {}

Status HttpParser::Fail(int http_status, const std::string& message) {
  state_ = State::kError;
  suggested_status_ = http_status;
  return Status::ParseError("HTTP parse error: " + message);
}

Status HttpParser::Feed(const char* data, size_t n) {
  if (state_ == State::kError) {
    return Status::ParseError("HTTP parser already failed");
  }
  buffer_.append(data, n);
  return Advance();
}

Status HttpParser::Advance() {
  for (;;) {
    switch (state_) {
      case State::kHeaders: {
        // Find the end of the header block: CRLFCRLF or LFLF (we accept
        // bare LF line endings throughout for robustness).
        size_t header_end = std::string::npos;
        size_t body_start = 0;
        for (size_t i = 0; i + 1 < buffer_.size(); ++i) {
          if (buffer_[i] == '\n') {
            if (buffer_[i + 1] == '\n') {
              header_end = i + 1;
              body_start = i + 2;
              break;
            }
            if (i + 2 < buffer_.size() && buffer_[i + 1] == '\r' &&
                buffer_[i + 2] == '\n') {
              header_end = i + 1;
              body_start = i + 3;
              break;
            }
          }
        }
        if (header_end == std::string::npos) {
          if (static_cast<int64_t>(buffer_.size()) >
              limits_.max_header_bytes) {
            return Fail(431, "header block exceeds " +
                                 std::to_string(limits_.max_header_bytes) +
                                 " bytes");
          }
          return Status::OK();  // need more bytes
        }
        if (static_cast<int64_t>(header_end) > limits_.max_header_bytes) {
          return Fail(431, "header block exceeds limit");
        }
        std::string block = buffer_.substr(0, header_end);
        buffer_.erase(0, body_start);
        {
          // Split into lines on '\n', trimming a trailing '\r'.
          std::vector<std::string> lines;
          size_t start = 0;
          while (start < block.size()) {
            size_t nl = block.find('\n', start);
            if (nl == std::string::npos) nl = block.size();
            std::string line = block.substr(start, nl - start);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            lines.push_back(std::move(line));
            start = nl + 1;
          }
          if (lines.empty() || lines[0].empty()) {
            return Fail(400, "empty start line");
          }
          // Start line.
          const std::string& start_line = lines[0];
          size_t sp1 = start_line.find(' ');
          size_t sp2 =
              sp1 == std::string::npos ? std::string::npos
                                       : start_line.find(' ', sp1 + 1);
          if (sp1 == std::string::npos || sp2 == std::string::npos) {
            return Fail(400, "malformed start line '" + start_line + "'");
          }
          if (mode_ == Mode::kRequest) {
            method_ = start_line.substr(0, sp1);
            target_ = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
            version_ = start_line.substr(sp2 + 1);
            if (version_ != "HTTP/1.1" && version_ != "HTTP/1.0") {
              return Fail(400, "unsupported version '" + version_ + "'");
            }
            if (method_.empty() || target_.empty() || target_[0] != '/') {
              return Fail(400, "malformed request line");
            }
          } else {
            version_ = start_line.substr(0, sp1);
            const std::string code = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
            if (code.size() != 3 || !std::isdigit(code[0]) ||
                !std::isdigit(code[1]) || !std::isdigit(code[2])) {
              return Fail(400, "malformed status line");
            }
            response_status_ = std::atoi(code.c_str());
          }
          // Header fields.
          headers_.clear();
          for (size_t i = 1; i < lines.size(); ++i) {
            if (lines[i].empty()) continue;
            size_t colon = lines[i].find(':');
            if (colon == std::string::npos || colon == 0) {
              return Fail(400, "malformed header '" + lines[i] + "'");
            }
            headers_.emplace_back(TrimWs(lines[i].substr(0, colon)),
                                  TrimWs(lines[i].substr(colon + 1)));
          }
        }
        // Framing: chunked beats Content-Length (RFC 7230 §3.3.3).
        const std::string* te = FindIn(headers_, "Transfer-Encoding");
        const std::string* cl = FindIn(headers_, "Content-Length");
        body_.clear();
        if (te != nullptr) {
          std::string enc = TrimWs(*te);
          for (char& c : enc) c = AsciiLower(c);
          if (enc != "chunked") {
            return Fail(501, "unsupported transfer-encoding '" + *te + "'");
          }
          state_ = State::kChunkSize;
        } else if (cl != nullptr) {
          char* end = nullptr;
          const long long v = std::strtoll(cl->c_str(), &end, 10);
          if (end == cl->c_str() || *end != '\0' || v < 0) {
            return Fail(400, "malformed Content-Length '" + *cl + "'");
          }
          if (v > limits_.max_body_bytes) {
            return Fail(413, "body of " + std::to_string(v) +
                                 " bytes exceeds limit");
          }
          content_length_ = v;
          state_ = v == 0 ? State::kComplete : State::kBody;
        } else {
          // No framing header: requests have no body; responses would
          // be read-to-close, which this server never emits.
          state_ = State::kComplete;
        }
        break;
      }
      case State::kBody: {
        const int64_t want = content_length_ - static_cast<int64_t>(body_.size());
        const int64_t have = static_cast<int64_t>(buffer_.size());
        const int64_t take = std::min(want, have);
        body_.append(buffer_, 0, static_cast<size_t>(take));
        buffer_.erase(0, static_cast<size_t>(take));
        if (static_cast<int64_t>(body_.size()) < content_length_) {
          return Status::OK();  // need more bytes
        }
        state_ = State::kComplete;
        break;
      }
      case State::kChunkSize: {
        size_t nl = buffer_.find('\n');
        if (nl == std::string::npos) {
          if (buffer_.size() > 32) return Fail(400, "oversized chunk header");
          return Status::OK();
        }
        std::string line = buffer_.substr(0, nl);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        buffer_.erase(0, nl + 1);
        // Chunk extensions (";...") are tolerated and ignored.
        size_t semi = line.find(';');
        if (semi != std::string::npos) line.erase(semi);
        line = TrimWs(line);
        char* end = nullptr;
        const long long size = std::strtoll(line.c_str(), &end, 16);
        if (line.empty() || end == line.c_str() || *end != '\0' || size < 0) {
          return Fail(400, "malformed chunk size '" + line + "'");
        }
        if (static_cast<int64_t>(body_.size()) + size >
            limits_.max_body_bytes) {
          return Fail(413, "chunked body exceeds limit");
        }
        chunk_remaining_ = size;
        state_ = size == 0 ? State::kChunkTrailer : State::kChunkData;
        break;
      }
      case State::kChunkData: {
        if (chunk_remaining_ > 0) {
          const int64_t take = std::min<int64_t>(
              chunk_remaining_, static_cast<int64_t>(buffer_.size()));
          body_.append(buffer_, 0, static_cast<size_t>(take));
          buffer_.erase(0, static_cast<size_t>(take));
          chunk_remaining_ -= take;
          if (chunk_remaining_ > 0) return Status::OK();
        }
        // Consume the CRLF (or LF) after the chunk data.
        if (buffer_.empty()) return Status::OK();
        if (buffer_[0] == '\r') {
          if (buffer_.size() < 2) return Status::OK();
          if (buffer_[1] != '\n') return Fail(400, "bad chunk terminator");
          buffer_.erase(0, 2);
        } else if (buffer_[0] == '\n') {
          buffer_.erase(0, 1);
        } else {
          return Fail(400, "bad chunk terminator");
        }
        state_ = State::kChunkSize;
        break;
      }
      case State::kChunkTrailer: {
        size_t nl = buffer_.find('\n');
        if (nl == std::string::npos) {
          if (static_cast<int64_t>(buffer_.size()) >
              limits_.max_header_bytes) {
            return Fail(431, "oversized chunk trailers");
          }
          return Status::OK();
        }
        std::string line = buffer_.substr(0, nl);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        buffer_.erase(0, nl + 1);
        if (line.empty()) state_ = State::kComplete;  // blank line ends
        break;                                        // trailers (dropped)
      }
      case State::kComplete:
        complete_ = true;
        return Status::OK();
      case State::kError:
        return Status::ParseError("HTTP parser already failed");
    }
  }
}

void HttpParser::ResetForNext() {
  state_ = State::kHeaders;
  complete_ = false;
  method_.clear();
  target_.clear();
  version_.clear();
  response_status_ = 0;
  headers_.clear();
  body_.clear();
  content_length_ = 0;
  chunk_remaining_ = 0;
}

HttpRequest HttpParser::TakeRequest() {
  HttpRequest out;
  out.method = std::move(method_);
  out.target = std::move(target_);
  out.version = std::move(version_);
  out.headers = std::move(headers_);
  out.body = std::move(body_);
  ResetForNext();
  // A pipelined next request may already be fully buffered.
  if (!buffer_.empty()) (void)Advance();
  return out;
}

HttpResponse HttpParser::TakeResponse() {
  HttpResponse out;
  out.status = response_status_;
  out.headers = std::move(headers_);
  out.body = std::move(body_);
  ResetForNext();
  if (!buffer_.empty()) (void)Advance();
  return out;
}

// -- Serving-layer status mapping -------------------------------------------

int64_t ParseRetryAfterMicros(const std::string& message) {
  static const char kMarker[] = "retry after ";
  const size_t pos = message.find(kMarker);
  if (pos == std::string::npos) return -1;
  const size_t digits = pos + sizeof(kMarker) - 1;
  size_t end = digits;
  while (end < message.size() && std::isdigit(message[end])) ++end;
  if (end == digits) return -1;
  if (end + 1 >= message.size() || message[end] != 'u' ||
      message[end + 1] != 's') {
    return -1;
  }
  return std::atoll(message.substr(digits, end - digits).c_str());
}

int HttpCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kDeadlineExceeded: return 504;
    case StatusCode::kUnavailable:
      // Queue-full backpressure embeds a drain-time hint — the client
      // should slow down and retry here (429). Shutdown and
      // breaker-open do not — the client should go elsewhere (503).
      return ParseRetryAfterMicros(status.message()) >= 0 ? 429 : 503;
    default: return 500;
  }
}

std::string RetryAfterSeconds(int64_t retry_after_micros) {
  const int64_t seconds = (std::max<int64_t>(retry_after_micros, 0) +
                           999999) / 1000000;
  return std::to_string(std::max<int64_t>(seconds, 1));
}

}  // namespace net
}  // namespace crossem
