// Dependency-free HTTP/1.1 server: one epoll event loop + a worker
// pool (DESIGN.md §15).
//
// Threading model:
//
//   * The event-loop thread owns the listener and the epoll set. Every
//     connection is registered EPOLLIN | EPOLLONESHOT: when it becomes
//     readable, epoll disarms it and the loop enqueues the connection
//     for a worker — so exactly one thread touches a connection at a
//     time, with no per-connection locks.
//
//   * A worker drains the socket, feeds the incremental HttpParser,
//     and for every complete request calls the handler and writes the
//     response (keep-alive: repeatedly, including pipelined requests
//     already buffered). When the connection goes quiet it re-arms the
//     oneshot registration and hands ownership back to the loop.
//
//   * Overload sheds at the front door: when the worker queue is full
//     the event loop answers 503 + Connection: close itself with a
//     best-effort nonblocking write — a saturated worker pool must not
//     translate into unbounded queueing.
//
//   * The loop's epoll_wait timeout doubles as the idle sweep: keep-
//     alive connections idle past idle_timeout are closed (only while
//     not checked out to a worker).
//
// Shutdown is graceful: Stop() closes the listener, wakes the loop via
// a pipe, lets workers finish in-flight requests, then closes every
// connection and joins all threads.
//
// Observability (obs::MetricsRegistry::Default()): crossem_http_
// connections/requests/responses by class, parse errors, overload
// sheds, request latency histogram, active-connection gauge.
#ifndef CROSSEM_NET_SERVER_H_
#define CROSSEM_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/http.h"
#include "util/status.h"

namespace crossem {
namespace net {

struct HttpServerOptions {
  /// Bind address. Default loopback: exposing the matcher to a network
  /// is an explicit operator decision (--host 0.0.0.0).
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (tests); port() reports the real one.
  int port = 0;
  int64_t workers = 4;
  /// Accepted connections beyond this are closed immediately.
  int64_t max_connections = 1024;
  /// Dispatch backlog; overflow is answered 503 by the event loop.
  int64_t worker_queue = 256;
  /// Keep-alive connections idle past this are reaped.
  int64_t idle_timeout_micros = 30 * 1000 * 1000;
  /// Per-response write budget before the connection is dropped.
  int64_t write_timeout_micros = 5 * 1000 * 1000;
  HttpParserLimits limits;
};

/// Application hook: one complete request in, one response out. Called
/// from worker threads (must be thread-safe).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer(HttpServerOptions options, HttpHandler handler);
  ~HttpServer();  // implies Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the loop + workers. Fails with
  /// IOError if the address cannot be bound.
  Status Start();

  /// Graceful stop; idempotent.
  void Stop();

  /// The bound port (after Start); useful with options.port == 0.
  int port() const { return port_; }

  int64_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    HttpParser parser{HttpParser::Mode::kRequest};
    bool busy = false;          // checked out to a worker
    bool peer_closed = false;   // recv returned 0
    std::chrono::steady_clock::time_point last_active;
  };

  void EventLoop();
  void WorkerLoop();
  /// Services one checked-out connection: read, parse, respond.
  void ServeConnection(Connection* conn);
  /// Blocking-with-timeout full write (poll on EAGAIN).
  bool WriteAll(int fd, const std::string& data);
  void CloseConnection(Connection* conn);  // must hold conns_mu_
  bool RearmConnection(Connection* conn);
  void AcceptNew();
  void SweepIdle(std::chrono::steady_clock::time_point now);

  const HttpServerOptions options_;
  const HttpHandler handler_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex conns_mu_;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::atomic<int64_t> active_connections_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> work_queue_;  // connection fds checked out to workers

  std::thread loop_;
  std::vector<std::thread> workers_;

  struct Instruments;
  const Instruments* instruments_ = nullptr;
};

}  // namespace net
}  // namespace crossem

#endif  // CROSSEM_NET_SERVER_H_
