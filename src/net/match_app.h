// The HTTP application over the match engine: routing, request/response
// JSON, and the admission-control front door (DESIGN.md §15).
//
// Routes:
//   POST /v1/match       — one match query. Body {"entity": LABEL,
//                          "k": N, "min_probability": P}; tenant key
//                          from the x-tenant header, per-request budget
//                          from x-deadline-ms. Degraded (partial-
//                          coverage) answers are HTTP 206 with the
//                          coverage / degraded fields set, mirroring
//                          the ShardedMatchService contract.
//   GET  /healthz        — liveness + live snapshot version.
//   GET  /metrics        — the process-wide obs registry; Prometheus
//                          text by default, obs::ExportJson when the
//                          client sends Accept: application/json or
//                          ?format=json.
//   GET  /metrics/history— the time-series flight recorder's ring
//                          buffers as JSON (404 unless a recorder has
//                          been attached via set_recorder()).
//   GET  /debug/tracez   — tail-sampled completed request traces:
//                          minimal HTML table by default, full span
//                          trees with ?format=json.
//   POST /admin/snapshot — hot-swap: {"index": PATH} loads a CEMCKPT2
//                          file (fingerprint handshake), builds the
//                          next engine off the request path, swaps it
//                          in with zero dropped queries.
//   GET  /admin/snapshot — the live snapshot's version/source/rows.
//
// Rejection contract (asserted by tests/net/server_e2e_test.cc):
//   429 + Retry-After    — tenant quota exhausted or global concurrency
//                          limit hit (admission), and engine queue-full
//                          backpressure (the MatchService drain hint);
//                          every hint is clamped to the request's
//                          remaining x-deadline-ms budget.
//   503                  — no snapshot yet / shutting down / breaker.
//   504                  — deadline exceeded inside the engine.
//   400 / 404            — malformed JSON or headers / unknown entity.
//
// Float fields are emitted with %.9g, which round-trips binary32
// exactly: a client parsing the JSON recovers bitwise-identical
// similarities and probabilities to an in-process Match() call.
#ifndef CROSSEM_NET_MATCH_APP_H_
#define CROSSEM_NET_MATCH_APP_H_

#include <cstdint>
#include <memory>
#include <string>

#include "graph/graph.h"
#include "net/admission.h"
#include "net/http.h"
#include "obs/request_trace.h"
#include "obs/timeseries.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace crossem {
namespace net {

struct MatchAppOptions {
  AdmissionOptions admission;
  /// Default / cap for the request "k" field.
  int64_t default_k = 5;
  int64_t max_k = 1000;
  /// Tenant key when the x-tenant header is absent.
  std::string default_tenant = "default";
  /// When true, every /v1/match request gets a RequestTrace (tail
  /// sampling in the tracez buffer decides what is kept). When false
  /// (the default) only requests that carry a traceparent or
  /// x-request-id header are traced — untraced requests pay two header
  /// lookups, and the engine hooks stay on the null-pointer fast path.
  bool trace_all_requests = false;
};

/// Stateless-per-request application handler; thread-safe (called from
/// every server worker). Borrows the graph and the snapshot manager,
/// both of which must outlive it.
class MatchApp {
 public:
  MatchApp(const graph::Graph* graph, serve::SnapshotManager* snapshots,
           MatchAppOptions options);

  /// The HttpServer handler.
  HttpResponse Handle(const HttpRequest& request);

  AdmissionController& admission() { return admission_; }

  /// Attaches (borrows) the flight recorder served by /metrics/history.
  /// Null (the default) answers that route 404.
  void set_recorder(obs::TimeSeriesRecorder* recorder) {
    recorder_ = recorder;
  }

 private:
  HttpResponse HandleMatch(const HttpRequest& request);
  HttpResponse HandleMatchImpl(const HttpRequest& request,
                               const std::shared_ptr<obs::RequestTrace>& trace);
  HttpResponse HandleHealth();
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleMetricsHistory();
  HttpResponse HandleTracez(const HttpRequest& request);
  HttpResponse HandleSnapshot(const HttpRequest& request);

  const graph::Graph* graph_;
  serve::SnapshotManager* snapshots_;
  const MatchAppOptions options_;
  AdmissionController admission_;
  obs::TimeSeriesRecorder* recorder_ = nullptr;
};

/// %.9g — the shortest printf format that round-trips every binary32
/// value exactly through a double parse. Shared with the load
/// generator's bitwise-identity drill.
std::string FormatFloatExact(float v);

/// {"error": MESSAGE, "reason": REASON} with proper escaping; reason
/// omitted when empty.
std::string ErrorBody(const std::string& message, const std::string& reason);

}  // namespace net
}  // namespace crossem

#endif  // CROSSEM_NET_MATCH_APP_H_
