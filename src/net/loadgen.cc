#include "net/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>

#include "obs/json.h"
#include "util/random.h"

namespace crossem {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ExactPercentile(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t idx = static_cast<size_t>(std::llround(std::ceil(pos)));
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

// -- HttpClient --------------------------------------------------------------

HttpClient::HttpClient(std::string host, int port)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { Disconnect(); }

Status HttpClient::Connect() {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return Status::InvalidArgument("bad address: " + host_);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IOError("connect " + host_ + ":" +
                                    std::to_string(port_) + ": " +
                                    std::strerror(errno));
    Disconnect();
    return status;
  }
  return Status::OK();
}

void HttpClient::Disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Result<HttpResponse> HttpClient::SendAndReceive(const HttpRequest& request,
                                                int64_t timeout_micros) {
  timeval tv{};
  tv.tv_sec = timeout_micros / 1000000;
  tv.tv_usec = timeout_micros % 1000000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  const std::string wire = SerializeRequest(request);
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }

  HttpParser parser(HttpParser::Mode::kResponse);
  char buf[16 * 1024];
  while (!parser.HasMessage()) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::IOError("connection closed mid-response");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv: " + std::string(std::strerror(errno)));
    }
    CROSSEM_RETURN_NOT_OK(parser.Feed(buf, static_cast<size_t>(n)));
  }
  return parser.TakeResponse();
}

Result<HttpResponse> HttpClient::RoundTrip(const HttpRequest& request,
                                           int64_t timeout_micros) {
  if (fd_ < 0) {
    CROSSEM_RETURN_NOT_OK(Connect());
  }
  auto first = SendAndReceive(request, timeout_micros);
  if (first.ok()) {
    if (!first.value().keep_alive) Disconnect();
    return first;
  }
  // The keep-alive connection may have been reaped between requests;
  // one reconnect distinguishes a stale socket from a down server.
  CROSSEM_RETURN_NOT_OK(Connect());
  auto second = SendAndReceive(request, timeout_micros);
  if (second.ok() && !second.value().keep_alive) Disconnect();
  if (!second.ok()) Disconnect();
  return second;
}

// -- RunLoadGen --------------------------------------------------------------

Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options) {
  if (options.entities.empty()) {
    return Status::InvalidArgument("loadgen: no entities to query");
  }
  if (options.qps <= 0.0) {
    return Status::InvalidArgument("loadgen: qps must be > 0");
  }

  // The full arrival schedule is drawn before the run starts — the
  // open-loop property lives here.
  std::vector<int64_t> arrivals_us;  // offsets from run start
  {
    Rng rng(options.seed);
    double t_us = 0.0;
    while (true) {
      // Exponential inter-arrival: -ln(U) / rate.
      const double u = std::max(rng.Uniform(0.0, 1.0), 1e-12);
      t_us += -std::log(u) / options.qps * 1e6;
      if (t_us >= static_cast<double>(options.duration_micros)) break;
      arrivals_us.push_back(static_cast<int64_t>(t_us));
    }
  }

  const int64_t connections = std::max<int64_t>(1, options.connections);
  struct ClientState {
    std::vector<int64_t> latencies_us;
    int64_t sent = 0;
    int64_t completed = 0;
    int64_t transport_errors = 0;
    int64_t s200 = 0, s206 = 0, s429 = 0, s4xx = 0, s5xx = 0;
    int64_t s503 = 0, s504 = 0;
  };
  std::vector<ClientState> states(static_cast<size_t>(connections));

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(connections));
  for (int64_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      ClientState& state = states[static_cast<size_t>(c)];
      HttpClient client(options.host, options.port);
      for (size_t i = static_cast<size_t>(c); i < arrivals_us.size();
           i += static_cast<size_t>(connections)) {
        const Clock::time_point scheduled =
            start + std::chrono::microseconds(arrivals_us[i]);
        std::this_thread::sleep_until(scheduled);

        HttpRequest request;
        request.method = "POST";
        request.target = "/v1/match";
        request.version = "HTTP/1.1";
        request.headers.emplace_back("Host", options.host);
        request.headers.emplace_back("x-tenant", options.tenant);
        if (options.deadline_ms > 0) {
          request.headers.emplace_back("x-deadline-ms",
                                       std::to_string(options.deadline_ms));
        }
        request.headers.emplace_back("Content-Type", "application/json");
        const std::string& entity =
            options.entities[i % options.entities.size()];
        request.body = "{\"entity\":" + obs::JsonString(entity) +
                       ",\"k\":" + std::to_string(options.k) + "}";

        ++state.sent;
        auto response =
            client.RoundTrip(request, options.response_timeout_micros);
        // Latency from the *scheduled* arrival: queueing delay the
        // server caused is charged to the server.
        const int64_t latency_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - scheduled)
                .count();
        if (!response.ok()) {
          ++state.transport_errors;
          continue;
        }
        ++state.completed;
        state.latencies_us.push_back(latency_us);
        const int status = response.value().status;
        if (status == 200) {
          ++state.s200;
        } else if (status == 206) {
          ++state.s206;
        } else if (status == 429) {
          ++state.s429;
        } else if (status >= 500) {
          ++state.s5xx;
          if (status == 503) ++state.s503;
          if (status == 504) ++state.s504;
        } else if (status >= 400) {
          ++state.s4xx;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                start)
          .count();

  LoadGenReport report;
  report.name = options.name;
  report.offered_qps = options.qps;
  report.duration_s = wall_s;
  std::vector<int64_t> latencies;
  double latency_sum = 0.0;
  for (const ClientState& state : states) {
    report.sent += state.sent;
    report.completed += state.completed;
    report.transport_errors += state.transport_errors;
    report.status_200 += state.s200;
    report.status_206 += state.s206;
    report.status_429 += state.s429;
    report.status_4xx += state.s4xx;
    report.status_5xx += state.s5xx;
    report.status_503 += state.s503;
    report.status_504 += state.s504;
    for (int64_t l : state.latencies_us) {
      latencies.push_back(l);
      latency_sum += static_cast<double>(l);
    }
  }
  std::sort(latencies.begin(), latencies.end());
  report.latency_p50_us = ExactPercentile(latencies, 0.50);
  report.latency_p90_us = ExactPercentile(latencies, 0.90);
  report.latency_p99_us = ExactPercentile(latencies, 0.99);
  report.latency_max_us = latencies.empty() ? 0 : latencies.back();
  report.latency_mean_us =
      latencies.empty() ? 0.0
                        : latency_sum / static_cast<double>(latencies.size());
  report.achieved_qps =
      wall_s > 0.0 ? static_cast<double>(report.completed) / wall_s : 0.0;
  return report;
}

// -- BENCH_net.json ----------------------------------------------------------

std::string RenderBenchNetJson(const std::vector<LoadGenReport>& arms,
                               const RecorderSummary* recorder) {
  std::string out = "{\"net\":[";
  for (size_t i = 0; i < arms.size(); ++i) {
    const LoadGenReport& a = arms[i];
    if (i != 0) out += ",";
    out += "{\"name\":" + obs::JsonString(a.name);
    out += ",\"offered_qps\":" + obs::JsonNumber(a.offered_qps);
    out += ",\"achieved_qps\":" + obs::JsonNumber(a.achieved_qps);
    out += ",\"duration_s\":" + obs::JsonNumber(a.duration_s);
    out += ",\"sent\":" + obs::JsonNumber(a.sent);
    out += ",\"completed\":" + obs::JsonNumber(a.completed);
    out += ",\"transport_errors\":" + obs::JsonNumber(a.transport_errors);
    out += ",\"status_200\":" + obs::JsonNumber(a.status_200);
    out += ",\"status_206\":" + obs::JsonNumber(a.status_206);
    out += ",\"status_429\":" + obs::JsonNumber(a.status_429);
    out += ",\"status_4xx\":" + obs::JsonNumber(a.status_4xx);
    out += ",\"status_5xx\":" + obs::JsonNumber(a.status_5xx);
    out += ",\"status_503\":" + obs::JsonNumber(a.status_503);
    out += ",\"status_504\":" + obs::JsonNumber(a.status_504);
    out += ",\"p50_us\":" + obs::JsonNumber(a.latency_p50_us);
    out += ",\"p90_us\":" + obs::JsonNumber(a.latency_p90_us);
    out += ",\"p99_us\":" + obs::JsonNumber(a.latency_p99_us);
    out += ",\"max_us\":" + obs::JsonNumber(a.latency_max_us);
    out += ",\"mean_us\":" + obs::JsonNumber(a.latency_mean_us);
    out += "}";
  }
  out += "]";
  if (recorder != nullptr) {
    out += ",\"recorder\":{";
    bool first = true;
    auto field = [&](const char* key, int64_t value) {
      if (value < 0) return;
      if (!first) out += ",";
      first = false;
      out += "\"" + std::string(key) + "\":" + obs::JsonNumber(value);
    };
    field("samples", recorder->samples);
    field("dropped", recorder->dropped);
    field("nominal_dropped", recorder->nominal_dropped);
    out += "}";
  }
  out += "}\n";
  return out;
}

Status WriteBenchNetJson(const std::string& path,
                         const std::vector<LoadGenReport>& arms,
                         const RecorderSummary* recorder) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot write '" + path + "'");
  out << RenderBenchNetJson(arms, recorder);
  out.flush();
  if (!out) return Status::IOError("cannot write '" + path + "'");
  return Status::OK();
}

}  // namespace net
}  // namespace crossem
