// Dependency-free HTTP/1.1 message layer for the network front end.
//
// This header owns the wire format only — no sockets, no threads:
//   * HttpRequest / HttpResponse value types with case-insensitive
//     header lookup and the HTTP/1.1 keep-alive rules;
//   * HttpParser, an incremental push parser for both requests and
//     responses (Content-Length and chunked Transfer-Encoding bodies,
//     CRLF or bare-LF line endings, hard header/body size limits so a
//     hostile peer cannot balloon memory). Feed() accepts bytes as they
//     arrive off a socket; complete messages are taken one at a time,
//     which is what keep-alive connections and pipelined peers need;
//   * SerializeResponse / SerializeRequest, which emit a complete
//     framed message (Content-Length always set, Connection header
//     from the keep_alive flag);
//   * the serving-layer Status -> HTTP status-code mapping shared by
//     the server routes and asserted by tests/net/http_test.cc:
//     admission rejections that carry the MatchService "retry after
//     <n>us" drain hint become 429 + Retry-After, everything else
//     kUnavailable is 503, kDeadlineExceeded is 504.
#ifndef CROSSEM_NET_HTTP_H_
#define CROSSEM_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace crossem {
namespace net {

/// Case-insensitive ASCII comparison (header names).
bool HeaderNameEquals(const std::string& a, const std::string& b);

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // origin-form, e.g. "/v1/match"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;  // wire order
  std::string body;

  /// First header with that name (case-insensitive); nullptr if absent.
  const std::string* FindHeader(const std::string& name) const;
  /// HTTP/1.1 defaults to keep-alive unless "Connection: close";
  /// HTTP/1.0 defaults to close unless "Connection: keep-alive".
  bool KeepAlive() const;
};

struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Whether the connection may be reused after this response; the
  /// serializer turns it into the Connection header.
  bool keep_alive = true;

  const std::string* FindHeader(const std::string& name) const;
  /// Sets (replacing any previous value of) a header.
  void SetHeader(const std::string& name, const std::string& value);
};

/// Standard reason phrase for a status code ("OK", "Too Many
/// Requests", ...); "Unknown" for codes the server never emits.
const char* ReasonPhrase(int status);

/// Emits the full response bytes: status line, headers (Content-Length
/// always present, Connection from keep_alive), blank line, body.
std::string SerializeResponse(const HttpResponse& response);

/// Emits the full request bytes (used by the load generator's client).
std::string SerializeRequest(const HttpRequest& request);

/// Parser memory bounds. A message exceeding them is a parse error
/// whose suggested_status() is 431 (headers) or 413 (body).
struct HttpParserLimits {
  int64_t max_header_bytes = 16 * 1024;
  int64_t max_body_bytes = 4 * 1024 * 1024;
};

/// Incremental HTTP/1.1 message parser.
///
/// Push bytes with Feed(); once HasMessage() is true, take the message
/// with TakeRequest()/TakeResponse() — the parser then continues with
/// any residual bytes (keep-alive reuse, pipelined requests). After a
/// non-OK Feed() the parser is poisoned: suggested_status() says what
/// to answer (400/413/431/501) and the connection should close.
class HttpParser {
 public:
  enum class Mode { kRequest, kResponse };

  explicit HttpParser(Mode mode = Mode::kRequest,
                      HttpParserLimits limits = {});

  /// Consumes `n` bytes. Returns ParseError/OutOfRange on a malformed
  /// or over-limit message; further Feed() calls keep failing.
  Status Feed(const char* data, size_t n);

  /// True when a complete message is ready to take.
  bool HasMessage() const { return complete_; }
  /// Bytes buffered but not yet part of a complete message (a partial
  /// next message on a keep-alive connection).
  bool HasPartial() const { return !complete_ && !buffer_.empty(); }

  /// Takes the parsed request (Mode::kRequest) and resets for the next
  /// message. Requires HasMessage().
  HttpRequest TakeRequest();
  /// Takes the parsed response (Mode::kResponse) likewise.
  HttpResponse TakeResponse();

  /// For Mode::kResponse only: the status code of the in-progress
  /// message (valid once headers are parsed).
  int response_status() const { return response_status_; }

  /// The HTTP status a server should answer when Feed() failed:
  /// 431 (headers too large), 413 (body too large), 501 (unsupported
  /// transfer-encoding), 400 (anything else malformed).
  int suggested_status() const { return suggested_status_; }

 private:
  enum class State {
    kHeaders,      // accumulating up to the blank line
    kBody,         // fixed Content-Length body
    kChunkSize,    // chunked: size line
    kChunkData,    // chunked: data + trailing CRLF
    kChunkTrailer, // chunked: trailers up to the blank line
    kComplete,
    kError,
  };

  Status Fail(int http_status, const std::string& message);
  /// Parses buffered bytes as far as possible (may complete a message).
  Status Advance();
  void ResetForNext();

  // Not const so a parser can be re-assigned (fresh connection state).
  Mode mode_;
  HttpParserLimits limits_;
  State state_ = State::kHeaders;
  std::string buffer_;  // unconsumed input
  bool complete_ = false;
  int suggested_status_ = 0;

  // In-progress message (request fields double for responses).
  std::string method_, target_, version_;
  int response_status_ = 0;
  std::vector<std::pair<std::string, std::string>> headers_;
  std::string body_;
  int64_t content_length_ = 0;  // kBody remaining
  int64_t chunk_remaining_ = 0; // kChunkData remaining
};

// -- Serving-layer status mapping -------------------------------------------

/// Extracts the "retry after <n>us" drain hint the MatchService /
/// ShardedMatchService queue-full rejection embeds in its message.
/// Returns -1 when the message carries no hint.
int64_t ParseRetryAfterMicros(const std::string& message);

/// Maps a serving-layer Status to the HTTP status code of the response:
///   kOk               -> 200
///   kInvalidArgument  -> 400
///   kNotFound         -> 404
///   kOutOfRange       -> 400
///   kDeadlineExceeded -> 504
///   kUnavailable      -> 429 when the message carries a retry-after
///                        hint (queue-full backpressure: the client
///                        should back off and retry), else 503
///                        (shutdown / breaker open: find another
///                        replica);
///   anything else     -> 500.
int HttpCodeForStatus(const Status& status);

/// Formats a Retry-After header value (whole seconds, rounded up, at
/// least 1) from a microsecond hint.
std::string RetryAfterSeconds(int64_t retry_after_micros);

}  // namespace net
}  // namespace crossem

#endif  // CROSSEM_NET_HTTP_H_
