// Admission control for the HTTP front end: who gets to reach the
// match engine, and what the rejected are told.
//
// Two gates run before a request touches the serving queue:
//
//   1. A global concurrency limiter — at most max_inflight /v1/match
//      requests may hold a Ticket at once. The limit bounds the worker
//      pool's exposure to the engine: when the engine slows down, the
//      front end starts answering 429 immediately instead of stacking
//      worker threads on a saturated queue. The Retry-After hint is the
//      engine's observed p50 completion latency (the same drain signal
//      MatchService embeds in its queue-full rejection).
//
//   2. Per-tenant token buckets — the tenant key comes from the
//      x-tenant header. Each tenant refills at tenant_rate tokens/s up
//      to tenant_burst; an empty bucket answers 429 with Retry-After =
//      time until the next token accrues. One tenant exhausting its
//      quota cannot consume the global limit: the bucket is checked
//      first and never blocks.
//
// Both hints obey the deadline clamp: a client that sent x-deadline-ms
// is never told to retry later than its own remaining budget — a retry
// arriving post-deadline is wasted work on both sides.
//
// Clocks are passed in explicitly so tests drive refill deterministically.
#ifndef CROSSEM_NET_ADMISSION_H_
#define CROSSEM_NET_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"

namespace crossem {
namespace net {

/// Classic token bucket with an injectable clock. Thread-safe.
class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue continuously up to `burst`. The
  /// bucket starts full.
  TokenBucket(double rate_per_sec, double burst);

  /// Takes one token if available at `now`. On refusal returns false
  /// and sets *retry_after_micros to the time until a full token has
  /// accrued (0 when the rate is zero — i.e. never).
  bool TryAcquire(std::chrono::steady_clock::time_point now,
                  int64_t* retry_after_micros);

  double rate_per_sec() const { return rate_; }

 private:
  const double rate_;
  const double burst_;
  std::mutex mu_;
  double tokens_;
  bool primed_ = false;  // first TryAcquire stamps last_refill_
  std::chrono::steady_clock::time_point last_refill_{};
};

struct AdmissionOptions {
  /// Concurrent /v1/match requests admitted across all tenants;
  /// <= 0 disables the global limiter.
  int64_t max_inflight = 128;
  /// Per-tenant sustained rate (tokens/s) and burst capacity;
  /// rate <= 0 disables tenant quotas.
  double tenant_rate = 200.0;
  double tenant_burst = 100.0;
  /// Distinct tenant buckets kept; beyond this, unseen tenants share
  /// one overflow bucket (bounds hostile tenant-key cardinality).
  int64_t max_tenants = 1024;
  /// Retry-After fallback when the engine has no latency signal yet.
  int64_t default_retry_after_micros = 2000;
};

/// The outcome of an admission check.
struct AdmissionDecision {
  bool admitted = true;
  /// For rejections: the HTTP status (429), a machine-readable reason
  /// ("tenant_quota_exhausted" / "concurrency_limit"), and the
  /// deadline-clamped Retry-After hint.
  int http_status = 0;
  std::string reason;
  int64_t retry_after_micros = 0;
};

/// Clamps a retry hint to the request's remaining deadline budget:
/// never advise a retry that would arrive after the request's own
/// deadline. `remaining_deadline_micros` <= 0 means no deadline.
int64_t ClampRetryToDeadline(int64_t retry_after_micros,
                             int64_t remaining_deadline_micros);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// RAII permit against the global concurrency limit. Admit() hands
  /// one out on success; releasing is automatic.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionController* owner) : owner_(owner) {}
    Ticket(Ticket&& other) noexcept : owner_(other.owner_) {
      other.owner_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      owner_ = other.owner_;
      other.owner_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release() {
      if (owner_ != nullptr) {
        owner_->inflight_.fetch_sub(1, std::memory_order_relaxed);
        owner_ = nullptr;
      }
    }

   private:
    AdmissionController* owner_ = nullptr;
  };

  /// Checks tenant quota then the global limit. On admission, *ticket
  /// holds the concurrency permit for the caller's scope.
  /// `p50_hint_micros` is the engine's observed median completion
  /// latency (0 when unknown); `remaining_deadline_micros` <= 0 means
  /// the request carries no deadline.
  AdmissionDecision Admit(const std::string& tenant,
                          std::chrono::steady_clock::time_point now,
                          int64_t remaining_deadline_micros,
                          int64_t p50_hint_micros, Ticket* ticket);

  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  const AdmissionOptions& options() const { return options_; }

 private:
  TokenBucket* BucketFor(const std::string& tenant);

  const AdmissionOptions options_;
  std::atomic<int64_t> inflight_{0};

  std::mutex mu_;  // guards buckets_ (bucket internals self-lock)
  std::map<std::string, std::unique_ptr<TokenBucket>> buckets_;
  std::unique_ptr<TokenBucket> overflow_bucket_;  // beyond max_tenants
};

/// Parses the x-deadline-ms header value: a positive integer
/// millisecond budget. Malformed or non-positive values are an
/// InvalidArgument (the route answers 400 — a silent default would hide
/// client bugs).
Result<int64_t> ParseDeadlineMillis(const std::string& value);

}  // namespace net
}  // namespace crossem

#endif  // CROSSEM_NET_ADMISSION_H_
