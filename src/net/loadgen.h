// Open-loop Poisson load generator for the HTTP front end.
//
// Open-loop means arrivals are scheduled from an exponential
// inter-arrival clock fixed *before* the run: a slow server does not
// slow the generator down, so queueing delay shows up in the measured
// latency instead of silently throttling the offered load (the
// coordinated-omission trap closed-loop clients fall into). Latency is
// measured from the scheduled arrival time, not from when the socket
// write finally happened.
//
// The schedule is deterministic per seed: arrival i is assigned to
// client connection i % connections, each connection is a keep-alive
// HTTP/1.1 socket that reconnects on failure, and every response is
// parsed with the same HttpParser the server uses (Mode::kResponse).
//
// RunLoadGen drives one arm (one offered QPS); the report carries the
// per-status counts and exact (sorted-sample) latency percentiles.
// RenderBenchNetJson emits the BENCH_net.json document the CI gate
// (tools/check_bench_regression.py --net) consumes:
//   {"net":[{"name":...,"offered_qps":...,"p50_us":...,...}, ...]}
#ifndef CROSSEM_NET_LOADGEN_H_
#define CROSSEM_NET_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/http.h"
#include "util/status.h"

namespace crossem {
namespace net {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Entities queried round-robin across arrivals.
  std::vector<std::string> entities;
  /// Offered load (Poisson arrival rate).
  double qps = 20.0;
  int64_t duration_micros = 2 * 1000 * 1000;
  /// Client connections (and threads); arrivals are sharded i % N.
  int64_t connections = 2;
  std::string tenant = "bench";
  int64_t k = 5;
  /// Sent as x-deadline-ms when > 0.
  int64_t deadline_ms = 0;
  /// Socket receive timeout per response.
  int64_t response_timeout_micros = 5 * 1000 * 1000;
  uint64_t seed = 1;
  /// Arm label in BENCH_net.json ("nominal", "overload", ...).
  std::string name = "arm";
};

struct LoadGenReport {
  std::string name;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;  // completed / wall duration
  double duration_s = 0.0;
  int64_t sent = 0;
  int64_t completed = 0;       // any HTTP response received
  int64_t transport_errors = 0;
  int64_t status_200 = 0;
  int64_t status_206 = 0;
  int64_t status_429 = 0;
  int64_t status_4xx = 0;  // other 4xx
  int64_t status_5xx = 0;  // all 5xx (503 + 504 + other)
  // 5xx breakdown: shed-vs-deadline failure modes look identical in the
  // aggregate count but call for opposite remediations.
  int64_t status_503 = 0;
  int64_t status_504 = 0;
  // Exact percentiles over per-request latencies measured from the
  // scheduled arrival (microseconds).
  int64_t latency_p50_us = 0;
  int64_t latency_p90_us = 0;
  int64_t latency_p99_us = 0;
  int64_t latency_max_us = 0;
  double latency_mean_us = 0.0;
};

/// Drives one arm against a running server. Fails only on setup errors
/// (no entities, unresolvable address); per-request failures are
/// counted in the report instead.
Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options);

/// Flight-recorder health captured by the bench harness: sample counts
/// from the obs::TimeSeriesRecorder running alongside the arms, plus the
/// dropped-tick count observed during the nominal arm specifically (the
/// CI gate fails when the recorder lost samples under nominal load).
/// Fields < 0 mean "not measured" and are omitted from the JSON.
struct RecorderSummary {
  int64_t samples = -1;
  int64_t dropped = -1;
  int64_t nominal_dropped = -1;
};

/// The BENCH_net.json document for a set of arms; `recorder` (optional)
/// adds a top-level "recorder" object.
std::string RenderBenchNetJson(const std::vector<LoadGenReport>& arms,
                               const RecorderSummary* recorder = nullptr);
Status WriteBenchNetJson(const std::string& path,
                         const std::vector<LoadGenReport>& arms,
                         const RecorderSummary* recorder = nullptr);

/// One blocking keep-alive HTTP client connection (shared by the load
/// generator and tests that need a raw client).
class HttpClient {
 public:
  HttpClient(std::string host, int port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Sends the request and blocks for the full response, reconnecting
  /// once if the keep-alive connection had gone stale.
  Result<HttpResponse> RoundTrip(const HttpRequest& request,
                                 int64_t timeout_micros);

 private:
  Status Connect();
  void Disconnect();
  Result<HttpResponse> SendAndReceive(const HttpRequest& request,
                                      int64_t timeout_micros);

  const std::string host_;
  const int port_;
  int fd_ = -1;
};

}  // namespace net
}  // namespace crossem

#endif  // CROSSEM_NET_LOADGEN_H_
