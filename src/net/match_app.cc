#include "net/match_app.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "graph/json.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/tracez.h"

namespace crossem {
namespace net {

namespace {

struct AppInstruments {
  obs::Counter* match_requests;
  obs::Counter* match_ok;
  obs::Counter* match_degraded;
  obs::Counter* admission_rejections;
  obs::Counter* engine_rejections;

  static const AppInstruments& Get() {
    static const AppInstruments* instruments = [] {
      auto& registry = obs::MetricsRegistry::Default();
      auto* i = new AppInstruments();
      i->match_requests =
          registry.GetCounter("crossem_net_match_requests_total");
      i->match_ok = registry.GetCounter("crossem_net_match_ok_total");
      i->match_degraded =
          registry.GetCounter("crossem_net_match_degraded_total");
      i->admission_rejections =
          registry.GetCounter("crossem_net_admission_rejections_total");
      i->engine_rejections =
          registry.GetCounter("crossem_net_engine_rejections_total");
      return i;
    }();
    return *instruments;
  }
};

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.SetHeader("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse ErrorResponse(int status, const std::string& message,
                           const std::string& reason) {
  return JsonResponse(status, ErrorBody(message, reason));
}

/// Path without the query string.
std::string PathOf(const std::string& target) {
  const size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

/// Value of `key` in the target's query string ("" when absent).
std::string QueryParam(const std::string& target, const std::string& key) {
  const size_t q = target.find('?');
  if (q == std::string::npos) return "";
  size_t pos = q + 1;
  while (pos < target.size()) {
    size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const size_t eq = target.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        target.compare(pos, eq - pos, key) == 0) {
      return target.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

/// True when the client asked for JSON (?format=json or an Accept
/// header naming application/json).
bool WantsJson(const HttpRequest& request) {
  if (QueryParam(request.target, "format") == "json") return true;
  const std::string* accept = request.FindHeader("accept");
  return accept != nullptr &&
         accept->find("application/json") != std::string::npos;
}

/// Per-tenant request accounting, keyed into the registry namespace via
/// SanitizeMetricName so the exposition name matches the registry key.
void CountTenantRequest(const std::string& tenant, bool rejected) {
  auto& registry = obs::MetricsRegistry::Default();
  const std::string safe = obs::SanitizeMetricName(tenant);
  registry.GetCounter("crossem_net_tenant_requests_total:" + safe)
      ->Increment();
  if (rejected) {
    registry.GetCounter("crossem_net_tenant_rejections_total:" + safe)
        ->Increment();
  }
}

}  // namespace

std::string FormatFloatExact(float v) {
  if (std::isnan(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

std::string ErrorBody(const std::string& message, const std::string& reason) {
  std::string body = "{\"error\":" + obs::JsonString(message);
  if (!reason.empty()) body += ",\"reason\":" + obs::JsonString(reason);
  body += "}\n";
  return body;
}

MatchApp::MatchApp(const graph::Graph* graph,
                   serve::SnapshotManager* snapshots, MatchAppOptions options)
    : graph_(graph),
      snapshots_(snapshots),
      options_(std::move(options)),
      admission_(options_.admission) {}

HttpResponse MatchApp::Handle(const HttpRequest& request) {
  const std::string path = PathOf(request.target);
  if (path == "/v1/match") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST", "method_not_allowed");
    }
    return HandleMatch(request);
  }
  if (path == "/healthz") return HandleHealth();
  if (path == "/metrics") return HandleMetrics(request);
  if (path == "/metrics/history") return HandleMetricsHistory();
  if (path == "/debug/tracez") return HandleTracez(request);
  if (path == "/admin/snapshot") return HandleSnapshot(request);
  return ErrorResponse(404, "no route for " + path, "not_found");
}

HttpResponse MatchApp::HandleMatch(const HttpRequest& request) {
  const auto ingress = std::chrono::steady_clock::now();
  // Trace identity: adopt an incoming W3C traceparent, else derive from
  // x-request-id, else mint one when the app traces every request. The
  // no-header, trace-off path costs two header lookups and nothing else.
  std::shared_ptr<obs::RequestTrace> trace;
  {
    obs::TraceId trace_id;
    uint64_t remote_parent = 0;
    bool have = false;
    if (const std::string* tp = request.FindHeader("traceparent")) {
      have = obs::ParseTraceparent(*tp, &trace_id, &remote_parent);
    }
    std::string request_id;
    const std::string* rid = request.FindHeader("x-request-id");
    if (rid != nullptr && !rid->empty()) {
      request_id = *rid;
      if (!have) {
        trace_id = obs::DeriveTraceId(request_id);
        have = true;
      }
    }
    if (!have && options_.trace_all_requests) {
      trace_id = obs::MintTraceId();
      have = true;
    }
    if (have) {
      if (request_id.empty()) request_id = obs::TraceIdHex(trace_id);
      const std::string* th = request.FindHeader("x-tenant");
      trace = std::make_shared<obs::RequestTrace>(
          trace_id, std::move(request_id),
          (th != nullptr && !th->empty()) ? *th : options_.default_tenant);
    }
  }

  HttpResponse response = HandleMatchImpl(request, trace);

  if (trace != nullptr) {
    // Echo the identity so the client can find this request in tracez.
    response.SetHeader("x-request-id", trace->request_id());
    response.SetHeader("traceparent", obs::FormatTraceparent(
                                          trace->trace_id(),
                                          trace->root_span_id()));
    const int64_t elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - ingress)
            .count();
    trace->Complete(response.status, elapsed_us,
                    /*degraded=*/response.status == 206);
    obs::TracezBuffer::Default().Record(trace);
  }
  return response;
}

HttpResponse MatchApp::HandleMatchImpl(
    const HttpRequest& request,
    const std::shared_ptr<obs::RequestTrace>& trace) {
  AppInstruments::Get().match_requests->Increment();

  const std::string* tenant_header = request.FindHeader("x-tenant");
  const std::string tenant =
      (tenant_header != nullptr && !tenant_header->empty())
          ? *tenant_header
          : options_.default_tenant;

  // Deadline budget from x-deadline-ms; malformed values are a client
  // bug and answered 400 rather than silently defaulted.
  int64_t remaining_micros = 0;  // 0 = no deadline
  if (const std::string* dl = request.FindHeader("x-deadline-ms")) {
    auto parsed = ParseDeadlineMillis(*dl);
    if (!parsed.ok()) {
      CountTenantRequest(tenant, true);
      return ErrorResponse(400, parsed.status().message(), "bad_deadline");
    }
    remaining_micros = parsed.value() * 1000;
  }

  auto doc = graph::ParseJson(request.body);
  if (!doc.ok()) {
    CountTenantRequest(tenant, true);
    return ErrorResponse(400, "body is not valid JSON: " +
                                  doc.status().message(),
                         "bad_json");
  }
  const graph::JsonValue* entity = doc.value().Find("entity");
  if (entity == nullptr || !entity->is_string()) {
    CountTenantRequest(tenant, true);
    return ErrorResponse(400, "body must carry a string \"entity\" field",
                         "bad_request");
  }
  int64_t k = options_.default_k;
  if (const graph::JsonValue* kv = doc.value().Find("k")) {
    if (!kv->is_number() || kv->number_value() < 1) {
      CountTenantRequest(tenant, true);
      return ErrorResponse(400, "\"k\" must be a positive number",
                           "bad_request");
    }
    k = static_cast<int64_t>(kv->number_value());
  }
  k = std::min(k, options_.max_k);
  float min_probability = 0.0f;
  if (const graph::JsonValue* mp = doc.value().Find("min_probability")) {
    if (!mp->is_number()) {
      CountTenantRequest(tenant, true);
      return ErrorResponse(400, "\"min_probability\" must be a number",
                           "bad_request");
    }
    min_probability = static_cast<float>(mp->number_value());
  }

  const graph::VertexId vertex = graph_->FindVertex(entity->string_value());
  if (vertex < 0) {
    CountTenantRequest(tenant, true);
    return ErrorResponse(404, "no such entity: " + entity->string_value(),
                         "unknown_entity");
  }

  // Covers snapshot acquisition + the admission decision; tagged with
  // the outcome so a shed request's trace shows who said no.
  obs::RequestSpan admission_span(
      trace, "admission", trace != nullptr ? trace->root_span_id() : 0);
  admission_span.Arg("tenant", tenant);

  serve::SnapshotLease lease = snapshots_->Acquire();
  if (!lease) {
    CountTenantRequest(tenant, true);
    admission_span.Arg("outcome", std::string("no_snapshot"));
    return ErrorResponse(503, "no index snapshot is live", "no_snapshot");
  }
  admission_span.Arg("snapshot_version", lease->version());

  AdmissionController::Ticket ticket;
  const AdmissionDecision decision =
      admission_.Admit(tenant, std::chrono::steady_clock::now(),
                       remaining_micros, lease->LatencyP50Us(), &ticket);
  if (!decision.admitted) {
    AppInstruments::Get().admission_rejections->Increment();
    CountTenantRequest(tenant, true);
    admission_span.Arg("outcome", decision.reason)
        .Arg("retry_after_us", decision.retry_after_micros);
    HttpResponse response = ErrorResponse(
        decision.http_status, "request rejected by admission control",
        decision.reason);
    response.SetHeader("Retry-After",
                       RetryAfterSeconds(decision.retry_after_micros));
    response.SetHeader("x-retry-after-us",
                       std::to_string(decision.retry_after_micros));
    return response;
  }
  CountTenantRequest(tenant, false);
  admission_span.Arg("outcome", std::string("admitted"));
  admission_span.End();

  serve::MatchRequest match_request;
  match_request.vertex = vertex;
  match_request.k = k;
  match_request.min_probability = min_probability;
  match_request.deadline_micros = remaining_micros;
  if (trace != nullptr) {
    match_request.trace = trace;
    match_request.parent_span_id = trace->root_span_id();
  }
  auto result = lease->Match(match_request);
  if (!result.ok()) {
    AppInstruments::Get().engine_rejections->Increment();
    const int code = HttpCodeForStatus(result.status());
    HttpResponse response =
        ErrorResponse(code, result.status().message(), "engine");
    if (code == 429) {
      // Queue-full backpressure: surface the engine's (already
      // deadline-clamped) drain hint as a proper Retry-After.
      const int64_t hint = ClampRetryToDeadline(
          ParseRetryAfterMicros(result.status().message()), remaining_micros);
      response.SetHeader("Retry-After", RetryAfterSeconds(hint));
      response.SetHeader("x-retry-after-us", std::to_string(hint));
    }
    return response;
  }

  const serve::MatchResponse& match = result.value();
  std::string body = "{\"entity\":" + obs::JsonString(entity->string_value());
  body += ",\"snapshot_version\":" + obs::JsonNumber(lease->version());
  body += ",\"cache_hit\":";
  body += match.cache_hit ? "true" : "false";
  body += ",\"coverage\":" + obs::JsonNumber(match.coverage);
  body += ",\"degraded\":";
  body += match.degraded ? "true" : "false";
  body += ",\"matches\":[";
  for (size_t i = 0; i < match.matches.size(); ++i) {
    const serve::RankedMatch& m = match.matches[i];
    if (i != 0) body += ",";
    body += "{\"image_id\":" + obs::JsonString(m.image_id);
    body += ",\"image\":" + obs::JsonNumber(m.image);
    body += ",\"similarity\":" + FormatFloatExact(m.similarity);
    body += ",\"probability\":" + FormatFloatExact(m.probability);
    body += "}";
  }
  body += "]}\n";
  if (match.degraded) {
    AppInstruments::Get().match_degraded->Increment();
    // 206: the engine answered from a subset of shards (coverage < 1).
    return JsonResponse(206, std::move(body));
  }
  AppInstruments::Get().match_ok->Increment();
  return JsonResponse(200, std::move(body));
}

HttpResponse MatchApp::HandleHealth() {
  serve::SnapshotLease lease = snapshots_->Acquire();
  if (!lease) {
    return JsonResponse(503, "{\"status\":\"no_snapshot\"}\n");
  }
  return JsonResponse(
      200, "{\"status\":\"ok\",\"snapshot_version\":" +
               obs::JsonNumber(lease->version()) + "}\n");
}

HttpResponse MatchApp::HandleMetrics(const HttpRequest& request) {
  HttpResponse response;
  response.status = 200;
  if (WantsJson(request)) {
    response.SetHeader("Content-Type", "application/json");
    response.body =
        obs::ExportJson(obs::MetricsRegistry::Default().Snapshot());
  } else {
    response.SetHeader("Content-Type", "text/plain; version=0.0.4");
    response.body =
        obs::ExportPrometheus(obs::MetricsRegistry::Default().Snapshot());
  }
  return response;
}

HttpResponse MatchApp::HandleMetricsHistory() {
  if (recorder_ == nullptr) {
    return ErrorResponse(404, "no time-series recorder attached",
                         "recorder_disabled");
  }
  return JsonResponse(200, recorder_->RenderJson());
}

HttpResponse MatchApp::HandleTracez(const HttpRequest& request) {
  if (request.method != "GET") {
    return ErrorResponse(405, "method not allowed", "method_not_allowed");
  }
  if (WantsJson(request)) {
    return JsonResponse(200, obs::TracezBuffer::Default().RenderJson());
  }
  HttpResponse response;
  response.status = 200;
  response.SetHeader("Content-Type", "text/html; charset=utf-8");
  response.body = obs::TracezBuffer::Default().RenderHtml();
  return response;
}

HttpResponse MatchApp::HandleSnapshot(const HttpRequest& request) {
  if (request.method == "GET") {
    serve::SnapshotLease lease = snapshots_->Acquire();
    if (!lease) {
      return ErrorResponse(503, "no index snapshot is live", "no_snapshot");
    }
    std::string body = "{\"version\":" + obs::JsonNumber(lease->version());
    body += ",\"source\":" + obs::JsonString(lease->source());
    body += ",\"rows\":" + obs::JsonNumber(lease->rows());
    body += ",\"backend\":" + obs::JsonString(lease->backend());
    body += ",\"shards\":" + obs::JsonNumber(lease->shards());
    body += ",\"swaps\":" + obs::JsonNumber(snapshots_->swaps());
    body += "}\n";
    return JsonResponse(200, std::move(body));
  }
  if (request.method != "POST") {
    return ErrorResponse(405, "use GET or POST", "method_not_allowed");
  }
  auto doc = graph::ParseJson(request.body);
  if (!doc.ok()) {
    return ErrorResponse(400, "body is not valid JSON: " +
                                  doc.status().message(),
                         "bad_json");
  }
  const graph::JsonValue* index = doc.value().Find("index");
  if (index == nullptr || !index->is_string()) {
    return ErrorResponse(400, "body must carry a string \"index\" path",
                         "bad_request");
  }
  // Heavy on purpose: the load + engine build runs on this worker
  // thread while every other worker keeps serving the old snapshot.
  Status swapped = snapshots_->LoadAndSwap(index->string_value());
  if (!swapped.ok()) {
    return ErrorResponse(HttpCodeForStatus(swapped), swapped.message(),
                         "snapshot_load_failed");
  }
  return JsonResponse(
      200, "{\"version\":" + obs::JsonNumber(snapshots_->version()) +
               ",\"swaps\":" + obs::JsonNumber(snapshots_->swaps()) + "}\n");
}

}  // namespace net
}  // namespace crossem
