#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace crossem {
namespace net {

namespace {

constexpr int kEpollTickMillis = 200;
constexpr uint32_t kConnEvents = EPOLLIN | EPOLLONESHOT | EPOLLRDHUP;

/// Canned response the event loop writes itself when the worker queue
/// is full — sheds load without involving the saturated pool.
const char kOverloadResponse[] =
    "HTTP/1.1 503 Service Unavailable\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 30\r\n"
    "Connection: close\r\n"
    "\r\n"
    "{\"error\":\"server_overloaded\"}\n";

}  // namespace

struct HttpServer::Instruments {
  obs::Counter* connections;
  obs::Counter* requests;
  obs::Counter* responses_2xx;
  obs::Counter* responses_4xx;
  obs::Counter* responses_5xx;
  obs::Counter* parse_errors;
  obs::Counter* overload_sheds;
  obs::Gauge* active;
  obs::Histogram* latency_us;

  static const Instruments* Get() {
    static const Instruments* instruments = [] {
      auto& registry = obs::MetricsRegistry::Default();
      auto* i = new Instruments();
      i->connections = registry.GetCounter("crossem_http_connections_total");
      i->requests = registry.GetCounter("crossem_http_requests_total");
      i->responses_2xx =
          registry.GetCounter("crossem_http_responses_2xx_total");
      i->responses_4xx =
          registry.GetCounter("crossem_http_responses_4xx_total");
      i->responses_5xx =
          registry.GetCounter("crossem_http_responses_5xx_total");
      i->parse_errors = registry.GetCounter("crossem_http_parse_errors_total");
      i->overload_sheds =
          registry.GetCounter("crossem_http_overload_sheds_total");
      i->active = registry.GetGauge("crossem_http_active_connections");
      i->latency_us =
          registry.GetHistogram("crossem_http_request_latency_us");
      return i;
    }();
    return instruments;
  }
};

HttpServer::HttpServer(HttpServerOptions options, HttpHandler handler)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      instruments_(Instruments::Get()) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::IOError("bind " + options_.host + ":" +
                                    std::to_string(options_.port) + ": " +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status status =
        Status::IOError("listen: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("epoll_create1: " +
                           std::string(std::strerror(errno)));
  }
  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(epoll_fd_);
    ::close(listen_fd_);
    epoll_fd_ = listen_fd_ = -1;
    return Status::IOError("pipe2: " + std::string(std::strerror(errno)));
  }

  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: listener and wake pipe
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_pipe_[0];
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev);

  stopping_.store(false, std::memory_order_release);
  started_ = true;
  const int64_t workers = options_.workers > 0 ? options_.workers : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int64_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  loop_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_release);
  // Wake the event loop out of epoll_wait.
  char b = 1;
  (void)!::write(wake_pipe_[1], &b, 1);
  if (loop_.joinable()) loop_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_cv_.notify_all();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    // Workers are gone: every remaining connection is safe to close.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& entry : conns_) ::close(entry.second->fd);
    conns_.clear();
    active_connections_.store(0, std::memory_order_relaxed);
    instruments_->active->Set(0.0);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  listen_fd_ = epoll_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
}

void HttpServer::EventLoop() {
  obs::SetThreadName("http-loop");
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, kEpollTickMillis);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      if (fd == wake_pipe_[0]) {
        char drain[64];
        while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      // A connection became readable (or hung up). EPOLLONESHOT has
      // already disarmed it; hand it to a worker.
      {
        std::lock_guard<std::mutex> conns_lock(conns_mu_);
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // closed by an idle sweep race
        std::lock_guard<std::mutex> queue_lock(queue_mu_);
        if (static_cast<int64_t>(work_queue_.size()) >=
            options_.worker_queue) {
          // Front-door shed: the loop answers 503 itself (best-effort,
          // nonblocking) rather than queueing behind a saturated pool.
          (void)::send(fd, kOverloadResponse, sizeof(kOverloadResponse) - 1,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
          CloseConnection(it->second.get());
          instruments_->overload_sheds->Increment();
          instruments_->responses_5xx->Increment();
        } else {
          it->second->busy = true;
          work_queue_.push_back(fd);
          queue_cv_.notify_one();
        }
      }
    }
    SweepIdle(std::chrono::steady_clock::now());
  }
}

void HttpServer::AcceptNew() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd =
        ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient accept failure
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      ::close(fd);
      instruments_->overload_sheds->Increment();
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->parser = HttpParser(HttpParser::Mode::kRequest, options_.limits);
    conn->last_active = std::chrono::steady_clock::now();

    epoll_event ev{};
    ev.events = kConnEvents;
    ev.data.fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      conns_.emplace(fd, std::move(conn));
      const int64_t active =
          active_connections_.fetch_add(1, std::memory_order_relaxed) + 1;
      instruments_->active->Set(static_cast<double>(active));
    }
    instruments_->connections->Increment();
  }
}

void HttpServer::SweepIdle(std::chrono::steady_clock::time_point now) {
  if (options_.idle_timeout_micros <= 0) return;
  const auto cutoff =
      now - std::chrono::microseconds(options_.idle_timeout_micros);
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection* conn = it->second.get();
    if (!conn->busy && conn->last_active < cutoff) {
      ++it;  // CloseConnection erases; advance first
      CloseConnection(conn);
    } else {
      ++it;
    }
  }
}

void HttpServer::CloseConnection(Connection* conn) {
  const int fd = conn->fd;
  ::close(fd);  // also removes fd from the epoll set
  conns_.erase(fd);
  const int64_t active =
      active_connections_.fetch_sub(1, std::memory_order_relaxed) - 1;
  instruments_->active->Set(static_cast<double>(active));
}

bool HttpServer::RearmConnection(Connection* conn) {
  epoll_event ev{};
  ev.events = kConnEvents;
  ev.data.fd = conn->fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0;
}

void HttpServer::WorkerLoop() {
  obs::SetThreadName("http-worker");
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return !work_queue_.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      fd = work_queue_.front();
      work_queue_.pop_front();
    }
    Connection* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      conn = it->second.get();
    }
    // `conn` stays valid: busy connections are only closed by the
    // worker that checked them out (sweeps and the loop skip them).
    ServeConnection(conn);
  }
}

void HttpServer::ServeConnection(Connection* conn) {
  bool close_conn = false;

  // Drain the socket.
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      Status fed = conn->parser.Feed(buf, static_cast<size_t>(n));
      if (!fed.ok()) {
        instruments_->parse_errors->Increment();
        HttpResponse response;
        response.status = conn->parser.suggested_status() != 0
                              ? conn->parser.suggested_status()
                              : 400;
        response.SetHeader("Content-Type", "application/json");
        response.body = "{\"error\":\"malformed_request\"}\n";
        response.keep_alive = false;
        (void)WriteAll(conn->fd, SerializeResponse(response));
        instruments_->responses_4xx->Increment();
        close_conn = true;
        break;
      }
      if (static_cast<size_t>(n) < sizeof(buf) && conn->parser.HasMessage()) {
        break;  // likely drained; serve what we have
      }
      continue;
    }
    if (n == 0) {
      conn->peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn = true;  // ECONNRESET and friends
    break;
  }

  // Answer every complete request that is buffered (keep-alive and
  // pipelined peers may have several).
  while (!close_conn && conn->parser.HasMessage()) {
    HttpRequest request = conn->parser.TakeRequest();
    instruments_->requests->Increment();
    const auto start = std::chrono::steady_clock::now();
    HttpResponse response = handler_(request);
    const auto elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    instruments_->latency_us->Record(elapsed_us);
    if (!request.KeepAlive()) response.keep_alive = false;
    if (response.status >= 500) {
      instruments_->responses_5xx->Increment();
    } else if (response.status >= 400) {
      instruments_->responses_4xx->Increment();
    } else {
      instruments_->responses_2xx->Increment();
    }
    if (!WriteAll(conn->fd, SerializeResponse(response))) {
      close_conn = true;
      break;
    }
    if (!response.keep_alive) {
      close_conn = true;
      break;
    }
  }

  if (conn->peer_closed && !conn->parser.HasMessage()) close_conn = true;

  std::lock_guard<std::mutex> lock(conns_mu_);
  if (close_conn) {
    CloseConnection(conn);
    return;
  }
  conn->busy = false;
  conn->last_active = std::chrono::steady_clock::now();
  if (!RearmConnection(conn)) CloseConnection(conn);
}

bool HttpServer::WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(options_.write_timeout_micros);
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      pollfd pfd{fd, POLLOUT, 0};
      const auto remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count();
      if (::poll(&pfd, 1,
                 static_cast<int>(std::min<int64_t>(remaining_ms, 100))) < 0 &&
          errno != EINTR) {
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer went away mid-response
  }
  return true;
}

}  // namespace net
}  // namespace crossem
