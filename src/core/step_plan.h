// Compiled training steps for CrossEm::Fit (tensor/plan.h applied to the
// tuning loop).
//
// A tuning step has a fixed dataflow once its shapes are known: gather the
// batch's image patches, encode both towers, score, pick mutual-nearest
// pseudo-positives, and take the contrastive(+orthogonal) loss over the
// confident pairs. FitStepPlanner traces that dataflow ONCE per shape and
// replays the recorded closures on every later step:
//
//   - The "encode" segment — image tower (no grad), soft-prompt text
//     encode, similarity matrix — is keyed on (batch_vertices,
//     batch_images, padded_token_len). Per-step inputs flow through index
//     slots (vertex ids, token ids) and write-in buffers (image patches,
//     attention mask) that the host refreshes before each replay.
//   - Pseudo-positive selection is host code over the retained similarity
//     buffers (exactly the eager argmax/mutual-NN scan).
//   - The loss segment depends on the number of confident pairs, so each
//     distinct pair count gets its own traced variant chaining into the
//     retained encode tape; the pair rows/targets are slots. The variant's
//     first backward runs eagerly under a capture scope, which records the
//     tape schedule for ReplayBackward.
//
// Replay is bitwise-identical to the eager step (see tensor/plan.h): the
// recorded closures ARE the eager computation over the same buffers.
// Plans self-invalidate on kernel-table changes and stale parameter
// storages (re-trace), and any step whose capture sees an uninstrumented
// op falls back to eager permanently for that shape.
//
// Eligibility: soft prompt mode with the text tower frozen
// (!tune_text_encoder) — the planner's precomputed label-summary table
// requires a frozen token-embedding table — and plan::Enabled()
// (CROSSEM_EXEC_PLAN kill switch). A planner instance is built per Fit
// call and must not outlive its `images` tensor or model.
#ifndef CROSSEM_CORE_STEP_PLAN_H_
#define CROSSEM_CORE_STEP_PLAN_H_

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "clip/clip.h"
#include "core/soft_prompt.h"
#include "graph/graph.h"
#include "tensor/plan.h"
#include "tensor/tensor.h"

namespace crossem {
namespace core {

struct CrossEmOptions;

/// Trace-once/replay-many executor for the Fit tuning step.
class FitStepPlanner {
 public:
  /// All pointers/tensors must outlive the planner (it is a Fit-scoped
  /// object). `params` is the trainable set the plans validate against.
  FitStepPlanner(clip::ClipModel* model, SoftPromptGenerator* soft_gen,
                 const CrossEmOptions* options, std::vector<Tensor> params,
                 const Tensor& images);
  FitStepPlanner(const FitStepPlanner&) = delete;
  FitStepPlanner& operator=(const FitStepPlanner&) = delete;

  /// Whether the configuration supports planned steps at all.
  static bool Eligible(const CrossEmOptions& options);

  struct StepOutcome {
    Tensor loss;                 // undefined when num_confident == 0
    int64_t num_confident = 0;   // mutual-NN pseudo-positive count
    bool replayed = false;       // replayed (vs freshly traced) encode
  };

  /// Runs encode + score + pseudo-positive selection + loss through the
  /// plan machinery. Returns false when this batch cannot be planned
  /// (incomplete capture) — the caller must run the eager step instead.
  bool RunForward(const std::vector<graph::VertexId>& verts,
                  const std::vector<int64_t>& image_indices,
                  StepOutcome* out);

  /// Backward for the loss the last RunForward returned: tape replay
  /// when the variant has a recorded backward, otherwise the eager
  /// backward under a capture scope (recording it for next time).
  /// Only call after RunForward returned true with num_confident > 0.
  void RunBackward();

 private:
  struct LossVariant {
    plan::ExecutionPlan plan;
    plan::IndexSlot rows;     // confident text rows
    plan::IndexSlot targets;  // their image columns
    Tensor loss;
  };
  struct StepContext {
    plan::ExecutionPlan encode;
    plan::IndexSlot vertices;     // vertex ids, re-read per replay
    plan::IndexSlot flat_tokens;  // row-major padded token ids
    Tensor images_in;             // write-in [Ni, P, patch_dim]
    Tensor mask;                  // write-in [Nv, len + 1]
    Tensor text_emb, image_emb, sim, sim_t;  // retained outputs
    std::map<int64_t, LossVariant> variants;  // keyed by pair count
    bool bad = false;  // capture was incomplete: always eager
  };
  using Key = std::tuple<int64_t, int64_t, int64_t>;  // (Nv, Ni, len)

  void RefreshInputs(StepContext* ctx,
                     const std::vector<graph::VertexId>& verts,
                     const std::vector<std::vector<int64_t>>& token_batch,
                     const std::vector<int64_t>& image_indices);

  clip::ClipModel* model_;
  SoftPromptGenerator* soft_gen_;
  const CrossEmOptions* options_;
  std::vector<Tensor> params_;
  Tensor images_;         // the Fit candidate images [N, P, patch_dim]
  Tensor label_summary_;  // precomputed h(l_v) table [N, model_dim]
  std::map<Key, StepContext> contexts_;
  LossVariant* active_ = nullptr;
  // The encode plan active_'s variant chains into; RunBackward zeroes its
  // retained gradient buffers before recording the variant's first
  // (eager) backward.
  plan::ExecutionPlan* active_encode_ = nullptr;
};

}  // namespace core
}  // namespace crossem

#endif  // CROSSEM_CORE_STEP_PLAN_H_
