#include "core/hard_prompt.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/logging.h"

namespace crossem {
namespace core {

HardPromptGenerator::HardPromptGenerator(const graph::Graph* graph,
                                         HardPromptOptions options)
    : graph_(graph), options_(options) {
  CROSSEM_CHECK(graph != nullptr);
  CROSSEM_CHECK_GE(options.hops, 0);
}

std::string HardPromptGenerator::BaselinePrompt(graph::VertexId v) const {
  return "a photo of " + graph_->VertexLabel(v);
}

std::string HardPromptGenerator::Generate(graph::VertexId v) const {
  // BFS over the d-hop neighborhood recording tree edges (the blue
  // induction directions of paper Fig. 3).
  struct TreeEdge {
    graph::VertexId parent;
    graph::VertexId child;
    std::string label;
  };
  std::vector<TreeEdge> tree;
  std::unordered_set<graph::VertexId> visited = {v};
  std::deque<std::pair<graph::VertexId, int64_t>> frontier = {{v, 0}};

  auto edge_label_between = [&](graph::VertexId a,
                                graph::VertexId b) -> std::string {
    for (graph::EdgeId e : graph_->OutEdges(a)) {
      if (graph_->GetEdge(e).dst == b) return graph_->GetEdge(e).label;
    }
    for (graph::EdgeId e : graph_->InEdges(a)) {
      if (graph_->GetEdge(e).src == b) return graph_->GetEdge(e).label;
    }
    return "related to";
  };

  while (!frontier.empty()) {
    auto [u, depth] = frontier.front();
    frontier.pop_front();
    if (depth == options_.hops) continue;
    for (graph::VertexId w : graph_->Neighbors(u)) {
      if (!visited.insert(w).second) continue;
      tree.push_back(TreeEdge{u, w, edge_label_between(u, w)});
      frontier.emplace_back(w, depth + 1);
    }
  }

  // Template design (the paper stresses the template must be tailored to
  // the graph structure): attribute edges ("has ...") describe visual
  // properties and come first; entity-entity relation edges ("rel ...",
  // "ref ...") are appended last and truncated first, since neighbor
  // entity names describe OTHER entities' appearance.
  auto is_attr = [](const TreeEdge& e) {
    return e.label.rfind("has ", 0) == 0;
  };
  std::stable_sort(tree.begin(), tree.end(),
                   [&](const TreeEdge& a, const TreeEdge& b) {
                     return is_attr(a) && !is_attr(b);
                   });
  // Cap the relation-neighbor tail.
  int64_t keep = 0;
  int64_t relations = 0;
  for (const TreeEdge& te : tree) {
    if (!is_attr(te)) {
      if (relations >= options_.max_relation_sub_prompts) break;
      ++relations;
    }
    ++keep;
  }
  tree.resize(static_cast<size_t>(keep));

  // Concatenate sub-prompts (Eq. 5): Concat(S, T).
  const int64_t limit =
      std::min<int64_t>(options_.max_sub_prompts,
                        static_cast<int64_t>(tree.size()));

  if (options_.style == HardPromptStyle::kCaption) {
    // Caption template: center label followed by neighbor labels; deeper
    // neighbors are prefixed by their parent.
    std::string prompt = "a photo of " + graph_->VertexLabel(v);
    for (int64_t i = 0; i < limit; ++i) {
      const TreeEdge& te = tree[static_cast<size_t>(i)];
      if (i == 0) {
        prompt += " with ";
      } else if (i + 1 == limit) {
        prompt += " and ";
      } else {
        prompt += ", ";
      }
      if (te.parent != v) prompt += graph_->VertexLabel(te.parent) + " ";
      prompt += graph_->VertexLabel(te.child);
    }
    return prompt;
  }

  std::string prompt = graph_->VertexLabel(v);
  for (int64_t i = 0; i < limit; ++i) {
    const TreeEdge& te = tree[static_cast<size_t>(i)];
    std::string sub;
    if (te.parent != v) {
      sub = graph_->VertexLabel(te.parent) + " ";
    }
    sub += te.label + " in " + graph_->VertexLabel(te.child);
    if (i == 0) {
      prompt += " " + sub;
    } else if (i + 1 == limit) {
      prompt += ", and " + sub;
    } else {
      prompt += ", " + sub;
    }
  }
  return prompt;
}

}  // namespace core
}  // namespace crossem
