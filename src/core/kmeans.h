// Lloyd's k-means over dense row vectors (used by PCP phase 3 to cluster
// images by their proximity distributions, paper Alg. 2 line 16).
#ifndef CROSSEM_CORE_KMEANS_H_
#define CROSSEM_CORE_KMEANS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/random.h"

namespace crossem {
namespace core {

struct KMeansResult {
  /// assignments[i] in [0, k) for each input row.
  std::vector<int64_t> assignments;
  /// Cluster centroids [k, dim].
  Tensor centroids;
  int64_t iterations = 0;
};

/// Clusters the rows of `points` ([n, dim]) into at most `k` clusters
/// (k is clamped to n). Deterministic given `rng`'s state: k-means++
/// style seeding followed by Lloyd iterations until convergence or
/// `max_iters`.
KMeansResult KMeans(const Tensor& points, int64_t k, Rng* rng,
                    int64_t max_iters = 50);

}  // namespace core
}  // namespace crossem

#endif  // CROSSEM_CORE_KMEANS_H_
