// CrossEM+ loss components: the orthogonal prompt constraint (paper
// Sec. IV-C, Eq. 9) and the combined objective (Eq. 10).
#ifndef CROSSEM_CORE_LOSSES_H_
#define CROSSEM_CORE_LOSSES_H_

#include "tensor/tensor.h"

namespace crossem {
namespace core {

/// L_o = || f f^T - I ||_F1 over a mini-batch prompt matrix f ([B, D],
/// rows are the soft prompts of the batch's vertices). Element-level
/// absolute-value norm per the paper. Rows are L2-normalized first so
/// the diagonal target of 1 is attainable regardless of prompt scale.
Tensor OrthogonalPromptLoss(const Tensor& prompt_matrix);

/// L = beta * contrastive + (1 - beta) * orthogonal  (Eq. 10).
Tensor CombinedLoss(const Tensor& contrastive, const Tensor& orthogonal,
                    float beta);

}  // namespace core
}  // namespace crossem

#endif  // CROSSEM_CORE_LOSSES_H_
