#include "core/step_plan.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "core/crossem.h"
#include "core/losses.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace core {

namespace {

// Bounds the shape-keyed context cache. Each context retains one traced
// step's activations, so a pathological batch-size mix could otherwise
// grow without limit; hitting the cap simply drops every plan (warm keys
// re-trace, which is just an instrumented eager step).
constexpr size_t kMaxContexts = 16;

}  // namespace

FitStepPlanner::FitStepPlanner(clip::ClipModel* model,
                               SoftPromptGenerator* soft_gen,
                               const CrossEmOptions* options,
                               std::vector<Tensor> params,
                               const Tensor& images)
    : model_(model),
      soft_gen_(soft_gen),
      options_(options),
      params_(std::move(params)),
      images_(images) {
  CROSSEM_CHECK(model != nullptr);
  CROSSEM_CHECK(soft_gen != nullptr);
  CROSSEM_CHECK(options != nullptr);
  CROSSEM_CHECK(images.defined());
  CROSSEM_CHECK_EQ(images.dim(), 3);
  // h(l_v) for every vertex, gathered by slot inside the traced graph.
  // Valid for the whole Fit because eligibility requires the token table
  // frozen (!tune_text_encoder).
  label_summary_ = soft_gen->BuildLabelSummaryTable();
}

bool FitStepPlanner::Eligible(const CrossEmOptions& options) {
  return plan::Enabled() && options.prompt_mode == PromptMode::kSoft &&
         !options.tune_text_encoder;
}

void FitStepPlanner::RefreshInputs(
    StepContext* ctx, const std::vector<graph::VertexId>& verts,
    const std::vector<std::vector<int64_t>>& token_batch,
    const std::vector<int64_t>& image_indices) {
  const int64_t b = static_cast<int64_t>(verts.size());
  const int64_t len = static_cast<int64_t>(token_batch[0].size());
  const int64_t total = len + 1;

  ctx->vertices->assign(verts.begin(), verts.end());

  std::vector<int64_t>& flat = *ctx->flat_tokens;
  flat.clear();
  flat.reserve(static_cast<size_t>(b * len));
  for (const auto& row : token_batch) {
    flat.insert(flat.end(), row.begin(), row.end());
  }

  // Attention mask, identical to SoftPromptGenerator::Generate()'s.
  float* m = ctx->mask.data();
  std::fill_n(m, b * total, 0.0f);
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < len; ++j) {
      if (token_batch[static_cast<size_t>(i)][static_cast<size_t>(j)] !=
          text::Vocabulary::kPad) {
        m[i * total + j] = 1.0f;
      }
    }
    m[i * total + len] = 1.0f;  // injected prompt slot
  }

  // Batch image patches, gathered on the host into the write-in buffer.
  // Byte-equal to the eager Stack-of-Slices (both are contiguous row
  // copies out of `images_`).
  const int64_t row_elems = images_.size(1) * images_.size(2);
  float* dst = ctx->images_in.data();
  const float* src = images_.data();
  for (size_t i = 0; i < image_indices.size(); ++i) {
    const int64_t idx = image_indices[i];
    CROSSEM_CHECK_GE(idx, 0);
    CROSSEM_CHECK_LT(idx, images_.size(0));
    std::memcpy(dst + static_cast<int64_t>(i) * row_elems,
                src + idx * row_elems,
                static_cast<size_t>(row_elems) * sizeof(float));
  }
}

bool FitStepPlanner::RunForward(const std::vector<graph::VertexId>& verts,
                                const std::vector<int64_t>& image_indices,
                                StepOutcome* out) {
  CROSSEM_CHECK(out != nullptr);
  active_ = nullptr;
  active_encode_ = nullptr;
  if (verts.empty() || image_indices.empty()) return false;

  // Host tokenization (the same work Generate() does eagerly); the padded
  // row length is part of the plan's shape key.
  const std::vector<std::vector<int64_t>> token_batch =
      soft_gen_->TokenizeLabels(verts);
  const int64_t nv = static_cast<int64_t>(verts.size());
  const int64_t ni = static_cast<int64_t>(image_indices.size());
  const int64_t len = static_cast<int64_t>(token_batch[0].size());
  const Key key{nv, ni, len};

  auto it = contexts_.find(key);
  bool need_trace = false;
  if (it == contexts_.end()) {
    if (contexts_.size() >= kMaxContexts) {
      CROSSEM_LOG(Warning) << "fit-step plan cache full (" << contexts_.size()
                           << " shapes); dropping all plans";
      contexts_.clear();
    }
    it = contexts_.try_emplace(key).first;
    need_trace = true;
  } else if (it->second.bad) {
    return false;
  } else {
    std::string reason;
    if (!it->second.encode.Validate(&reason)) {
      CROSSEM_LOG(Info) << "fit-step plan invalidated (" << reason
                        << "); re-tracing";
      contexts_.erase(it);
      it = contexts_.try_emplace(key).first;
      need_trace = true;
    }
  }
  StepContext& ctx = it->second;

  if (need_trace) {
    ctx.vertices = plan::MakeIndexSlot();
    ctx.flat_tokens = plan::MakeIndexSlot();
    ctx.images_in = Tensor::Zeros({ni, images_.size(1), images_.size(2)});
    ctx.mask = Tensor::Zeros({nv, len + 1});
  }
  RefreshInputs(&ctx, verts, token_batch, image_indices);

  if (need_trace) {
    CROSSEM_TRACE_SPAN("plan_trace");
    {
      plan::CaptureScope scope(&ctx.encode);
      {
        // Frozen image tower, no tape — exactly the eager step's scope.
        NoGradGuard guard;
        ctx.image_emb = model_->image().Forward(ctx.images_in);
      }
      SoftPromptGenerator::PromptBatch batch = soft_gen_->GenerateSlot(
          ctx.vertices, ctx.flat_tokens, len, label_summary_, ctx.mask);
      ctx.text_emb = model_->text().ForwardFromEmbeddings(batch.embeddings,
                                                          batch.mask);
      {
        NoGradGuard guard;
        ctx.sim = clip::ClipModel::SimilarityMatrix(ctx.text_emb.Detach(),
                                                    ctx.image_emb);
        ctx.sim_t = ops::Transpose(ctx.sim, 0, 1);
      }
    }
    ctx.encode.BindParams(params_);
    if (!ctx.encode.complete()) {
      ctx.bad = true;  // uninstrumented op on this path: stay eager
      return false;
    }
  } else {
    ctx.encode.Replay();
  }

  // Pseudo-positive selection: the eager mutual-nearest-neighbour scan,
  // reading the retained similarity buffers.
  std::vector<int64_t> confident_rows;
  std::vector<int64_t> confident_targets;
  {
    const std::vector<int64_t> t2i = ops::ArgMax(ctx.sim, -1);
    const std::vector<int64_t> i2t = ops::ArgMax(ctx.sim_t, -1);
    for (size_t r = 0; r < t2i.size(); ++r) {
      const int64_t img = t2i[r];
      if (i2t[static_cast<size_t>(img)] == static_cast<int64_t>(r)) {
        confident_rows.push_back(static_cast<int64_t>(r));
        confident_targets.push_back(img);
      }
    }
  }

  out->replayed = !need_trace;
  out->num_confident = static_cast<int64_t>(confident_rows.size());
  if (confident_rows.empty()) return true;  // planned; no trustworthy pair

  const int64_t nc = out->num_confident;
  auto vit = ctx.variants.find(nc);
  if (vit == ctx.variants.end()) {
    vit = ctx.variants.try_emplace(nc).first;
    LossVariant& v = vit->second;
    v.rows = plan::MakeIndexSlot(std::move(confident_rows));
    v.targets = plan::MakeIndexSlot(std::move(confident_targets));
    {
      CROSSEM_TRACE_SPAN("plan_trace");
      plan::CaptureScope scope(&v.plan);
      Tensor selected = ops::IndexSelectSlot(ctx.text_emb, v.rows);
      v.loss = model_->ContrastiveLossSlot(selected, ctx.image_emb, v.targets);
      if (options_->use_orthogonal_constraint) {
        Tensor lo =
            OrthogonalPromptLoss(soft_gen_->PromptFeaturesSlot(ctx.vertices));
        v.loss = CombinedLoss(v.loss, lo, options_->beta);
      }
    }
    v.plan.BindParams(params_);
    if (!v.plan.complete()) {
      ctx.variants.erase(vit);
      ctx.bad = true;
      return false;
    }
  } else {
    LossVariant& v = vit->second;
    std::string reason;
    if (!v.plan.Validate(&reason)) {
      // Unreachable in practice (the encode plan validated moments ago
      // against the same state), but drop the whole context and fall
      // back rather than replay a stale tape.
      CROSSEM_LOG(Info) << "fit-step loss plan invalidated (" << reason
                        << "); dropping context";
      contexts_.erase(it);
      return false;
    }
    *v.rows = std::move(confident_rows);
    *v.targets = std::move(confident_targets);
    v.plan.Replay();
  }

  active_ = &vit->second;
  active_encode_ = &ctx.encode;
  out->loss = active_->loss;
  return true;
}

void FitStepPlanner::RunBackward() {
  CROSSEM_CHECK(active_ != nullptr)
      << "RunBackward without a planned loss from RunForward";
  if (active_->plan.has_backward()) {
    active_->plan.ReplayBackward();
    return;
  }
  // First backward of this variant: run the eager tape under a capture
  // scope so Tensor::Backward() hands the plan its schedule. The tape
  // closures are raw-loop kernels (no tensor ops), so nothing else
  // records. The retained encode tape may still hold gradients from an
  // earlier variant's backward — eager Backward() accumulates into
  // whatever the buffers contain, and a fresh eager graph would have had
  // newly-zeroed ones — so zero the retained tape first.
  active_encode_->ZeroRetainedGrads();
  plan::CaptureScope scope(&active_->plan);
  active_->loss.Backward();
}

}  // namespace core
}  // namespace crossem
