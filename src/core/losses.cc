#include "core/losses.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace core {

Tensor OrthogonalPromptLoss(const Tensor& prompt_matrix) {
  CROSSEM_CHECK_EQ(prompt_matrix.dim(), 2);
  const int64_t b = prompt_matrix.size(0);
  Tensor f = ops::L2Normalize(prompt_matrix);
  Tensor gram = ops::MatMul(f, ops::Transpose(f, 0, 1));  // [B, B]
  Tensor deviation = ops::Abs(ops::Sub(gram, ops::Eye(b)));
  // Mean over entries keeps the magnitude comparable across batch sizes.
  return ops::Mean(deviation);
}

Tensor CombinedLoss(const Tensor& contrastive, const Tensor& orthogonal,
                    float beta) {
  CROSSEM_CHECK_GE(beta, 0.0f);
  CROSSEM_CHECK_LE(beta, 1.0f);
  return ops::Add(ops::MulScalar(contrastive, beta),
                  ops::MulScalar(orthogonal, 1.0f - beta));
}

}  // namespace core
}  // namespace crossem
