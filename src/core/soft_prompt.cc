#include "core/soft_prompt.h"

#include <algorithm>

#include "core/hard_prompt.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace core {

SoftPromptGenerator::SoftPromptGenerator(const graph::Graph* graph,
                                         const clip::TextEncoder* text_encoder,
                                         const text::Tokenizer* tokenizer,
                                         SoftPromptOptions options, Rng* rng)
    : graph_(graph),
      text_encoder_(text_encoder),
      tokenizer_(tokenizer),
      options_(options) {
  CROSSEM_CHECK(graph != nullptr);
  CROSSEM_CHECK(text_encoder != nullptr);
  CROSSEM_CHECK(tokenizer != nullptr);
  CROSSEM_CHECK_GE(options.alpha, 0.0f);
  CROSSEM_CHECK_LE(options.alpha, 1.0f);

  const int64_t n = graph->NumVertices();
  const int64_t d = text_encoder->model_dim();

  // Initialize vertex features from the pre-trained token embeddings of
  // each label (paper: "initialize each embedding by utilizing
  // pre-trained language models such as BERT").
  Tensor init = Tensor::Zeros({n, d});
  {
    NoGradGuard guard;
    const Tensor& table = text_encoder->token_embedding().table();
    for (graph::VertexId v = 0; v < n; ++v) {
      auto words = text::SplitWords(graph->VertexLabel(v));
      std::vector<int64_t> ids;
      for (const auto& w : words) ids.push_back(tokenizer->vocab().Id(w));
      if (ids.empty()) ids.push_back(text::Vocabulary::kUnk);
      float* row = init.data() + v * d;
      const float inv = 1.0f / static_cast<float>(ids.size());
      for (int64_t id : ids) {
        const float* emb = table.data() + id * d;
        for (int64_t c = 0; c < d; ++c) row[c] += emb[c] * inv;
      }
    }
  }
  vertex_features_ = RegisterParameter("vertex_features", init);

  // Constant neighbor-average operator over the full graph.
  nn::AdjacencyList adj(static_cast<size_t>(n));
  for (graph::VertexId v = 0; v < n; ++v) {
    adj[static_cast<size_t>(v)] = graph->Neighbors(v);
  }
  neighbor_mean_ = nn::NeighborMeanMatrix(adj);

  if (options.backbone == SoftBackbone::kGraphSage) {
    sage_ = std::make_unique<nn::GraphSageLayer>(d, d, rng);
    RegisterModule("sage", sage_.get());
  }
  injector_ = std::make_unique<nn::Linear>(2 * d, d, rng);
  RegisterModule("injector", injector_.get());
  // Near-zero init: the injected prompt token starts as a no-op so the
  // untuned soft model matches the baseline, and tuning grows the prompt
  // from the task gradient (the "learned from the feedback of the model
  // on the task objective" behaviour of Sec. I, contribution 2).
  {
    Tensor w = injector_->weight();
    float* p = w.data();
    for (int64_t i = 0; i < w.numel(); ++i) p[i] *= 0.01f;
  }
}

Tensor SoftPromptGenerator::PromptFeatures(
    const std::vector<graph::VertexId>& vertices) const {
  Tensor all;
  if (options_.backbone == SoftBackbone::kGraphSage) {
    all = sage_->Forward(vertex_features_, neighbor_mean_);
  } else {
    all = nn::MeanAggregate(vertex_features_, neighbor_mean_, options_.alpha);
  }
  return ops::IndexSelect(all, vertices);
}

Tensor SoftPromptGenerator::PromptFeaturesSlot(
    const plan::IndexSlot& vertices) const {
  Tensor all;
  if (options_.backbone == SoftBackbone::kGraphSage) {
    all = sage_->Forward(vertex_features_, neighbor_mean_);
  } else {
    all = nn::MeanAggregate(vertex_features_, neighbor_mean_, options_.alpha);
  }
  return ops::IndexSelectSlot(all, vertices);
}

std::vector<int64_t> SoftPromptGenerator::LabelTokenIds(
    graph::VertexId v) const {
  auto words = text::SplitWords(graph_->VertexLabel(v));
  std::vector<int64_t> ids;
  for (const auto& w : words) ids.push_back(tokenizer_->vocab().Id(w));
  if (ids.empty()) ids.push_back(text::Vocabulary::kUnk);
  return ids;
}

Tensor SoftPromptGenerator::LabelSummary(
    const std::vector<graph::VertexId>& vertices) const {
  const int64_t d = text_encoder_->model_dim();
  const Tensor& table = text_encoder_->token_embedding().table();
  std::vector<Tensor> rows;
  rows.reserve(vertices.size());
  for (graph::VertexId v : vertices) {
    Tensor emb = ops::IndexSelect(table, LabelTokenIds(v));  // [L, D]
    rows.push_back(ops::Mean(emb, 0, /*keepdim=*/false));    // [D]
  }
  Tensor out = ops::Stack(rows);  // [B, D]
  CROSSEM_CHECK_EQ(out.size(1), d);
  return out;
}

Tensor SoftPromptGenerator::BuildLabelSummaryTable() const {
  NoGradGuard guard;
  const int64_t n = graph_->NumVertices();
  const int64_t d = text_encoder_->model_dim();
  const Tensor& table = text_encoder_->token_embedding().table();
  Tensor out = Tensor::Zeros({n, d});
  for (graph::VertexId v = 0; v < n; ++v) {
    // The same IndexSelect+Mean graph LabelSummary() runs per batch; the
    // stored row is the identical float vector, so gathering from this
    // table is bitwise-equal to recomputing (while the token table is
    // frozen).
    Tensor row = ops::Mean(ops::IndexSelect(table, LabelTokenIds(v)), 0,
                           /*keepdim=*/false);
    std::copy_n(row.data(), d, out.data() + v * d);
  }
  return out;
}

std::vector<std::vector<int64_t>> SoftPromptGenerator::TokenizeLabels(
    const std::vector<graph::VertexId>& vertices) const {
  // Textual part: the structure-aware caption serialization (same text
  // the hard prompt produces), padded to the batch's longest row; one
  // slot of the context is reserved for the injected prompt vector. The
  // untuned soft model therefore starts from the hard prompt's operating
  // point, and tuning refines the continuous part on top.
  const int64_t context = text_encoder_->context_length();
  text::Tokenizer label_tokenizer(&tokenizer_->vocab(), context - 1);
  HardPromptOptions hard_options;
  hard_options.hops = 1;
  HardPromptGenerator hard(graph_, hard_options);
  std::vector<std::string> labels;
  labels.reserve(vertices.size());
  for (graph::VertexId v : vertices) {
    labels.push_back(hard.Generate(v));
  }
  return label_tokenizer.EncodeBatch(labels);
}

SoftPromptGenerator::PromptBatch SoftPromptGenerator::Generate(
    const std::vector<graph::VertexId>& vertices) const {
  CROSSEM_CHECK(!vertices.empty());
  const int64_t b = static_cast<int64_t>(vertices.size());
  const int64_t d = text_encoder_->model_dim();
  const int64_t context = text_encoder_->context_length();

  std::vector<std::vector<int64_t>> token_batch = TokenizeLabels(vertices);

  const int64_t len = static_cast<int64_t>(token_batch[0].size());
  const int64_t total = len + 1;  // plus the injected prompt slot
  CROSSEM_CHECK_LE(total, context);

  // Token embeddings WITHOUT positions (ForwardFromEmbeddings adds them).
  std::vector<int64_t> flat;
  for (const auto& row : token_batch) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  Tensor tok = text_encoder_->token_embedding().Forward(flat);
  tok = ops::Reshape(tok, {b, len, d});

  // h^l(v) = ReLU(W (h(l_v) ++ f_pro^s(v)))  (Eq. 7).
  Tensor label_summary = LabelSummary(vertices);        // [B, D]
  Tensor prompt = PromptFeatures(vertices);             // [B, D]
  Tensor injected = ops::Relu(injector_->Forward(
      ops::Concat({label_summary, prompt}, /*dim=*/1)));  // [B, D]
  injected = ops::Reshape(injected, {b, 1, d});

  // Append the prompt vector after the textual tokens so every real
  // token keeps the position it had during pre-training (inserting
  // earlier would shift the whole sequence off the learned positional
  // embeddings): [CLS], tokens..., [SEP], h^l(v).
  PromptBatch batch;
  batch.embeddings = ops::Concat({tok, injected}, 1);  // [B, T, D]

  batch.mask = Tensor::Zeros({b, total});
  float* m = batch.mask.data();
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < len; ++j) {
      if (token_batch[static_cast<size_t>(i)][static_cast<size_t>(j)] !=
          text::Vocabulary::kPad) {
        m[i * total + j] = 1.0f;
      }
    }
    m[i * total + len] = 1.0f;  // injected prompt
  }
  return batch;
}

SoftPromptGenerator::PromptBatch SoftPromptGenerator::GenerateSlot(
    const plan::IndexSlot& vertices, const plan::IndexSlot& flat_tokens,
    int64_t padded_len, const Tensor& label_summary,
    const Tensor& mask) const {
  CROSSEM_CHECK(vertices != nullptr && !vertices->empty());
  CROSSEM_CHECK(flat_tokens != nullptr);
  const int64_t b = static_cast<int64_t>(vertices->size());
  const int64_t d = text_encoder_->model_dim();
  CROSSEM_CHECK_EQ(static_cast<int64_t>(flat_tokens->size()), b * padded_len);
  CROSSEM_CHECK_LE(padded_len + 1, text_encoder_->context_length());
  CROSSEM_CHECK_EQ(mask.size(0), b);
  CROSSEM_CHECK_EQ(mask.size(1), padded_len + 1);

  // Same graph as Generate(), op for op, with the token ids / vertex ids
  // flowing through slots and the mask a caller-refreshed write-in buffer.
  Tensor tok = text_encoder_->token_embedding().ForwardSlot(flat_tokens);
  tok = ops::Reshape(tok, {b, padded_len, d});

  Tensor summary = ops::IndexSelectSlot(label_summary, vertices);  // [B, D]
  Tensor prompt = PromptFeaturesSlot(vertices);                    // [B, D]
  Tensor injected = ops::Relu(injector_->Forward(
      ops::Concat({summary, prompt}, /*dim=*/1)));                 // [B, D]
  injected = ops::Reshape(injected, {b, 1, d});

  PromptBatch batch;
  batch.embeddings = ops::Concat({tok, injected}, 1);  // [B, T, D]
  batch.mask = mask;
  return batch;
}

}  // namespace core
}  // namespace crossem
