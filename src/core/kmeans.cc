#include "core/kmeans.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace crossem {
namespace core {

namespace {
double SquaredDistance(const float* a, const float* b, int64_t dim) {
  double acc = 0.0;
  for (int64_t d = 0; d < dim; ++d) {
    const double diff = static_cast<double>(a[d]) - b[d];
    acc += diff * diff;
  }
  return acc;
}
}  // namespace

KMeansResult KMeans(const Tensor& points, int64_t k, Rng* rng,
                    int64_t max_iters) {
  CROSSEM_CHECK_EQ(points.dim(), 2);
  CROSSEM_CHECK_GT(k, 0);
  CROSSEM_CHECK(rng != nullptr);
  const int64_t n = points.size(0);
  const int64_t dim = points.size(1);
  k = std::min(k, n);
  CROSSEM_TRACE_SPAN_V(span, "kmeans");
  span.Arg("n", n).Arg("dim", dim).Arg("k", k);

  const float* p = points.data();
  KMeansResult result;
  result.centroids = Tensor::Zeros({k, dim});
  float* c = result.centroids.data();

  // k-means++ seeding: first centroid uniform, then proportional to
  // squared distance from the nearest chosen centroid.
  std::vector<int64_t> seeds;
  seeds.push_back(rng->UniformInt(0, n - 1));
  std::vector<double> dist2(static_cast<size_t>(n),
                            std::numeric_limits<double>::max());
  // ~3 scalar ops (sub, mul, add) per accumulated dimension; the grain
  // math uses the true op count so medium-sized clusterings clear the
  // dispatch cutoff instead of running serially.
  const int64_t seed_work = std::max<int64_t>(3 * dim, 1);
  const int64_t seed_grain = GrainWithCutoff(
      std::max<int64_t>(1, (int64_t{1} << 14) / seed_work), n, seed_work);
  while (static_cast<int64_t>(seeds.size()) < k) {
    const float* last = p + seeds.back() * dim;
    // Per-point min update: disjoint writes, bitwise-identical at any
    // thread count.
    ParallelFor(0, n, seed_grain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        dist2[static_cast<size_t>(i)] =
            std::min(dist2[static_cast<size_t>(i)],
                     SquaredDistance(p + i * dim, last, dim));
      }
    });
    double total = 0.0;
    for (double d : dist2) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; pick uniformly.
      seeds.push_back(rng->UniformInt(0, n - 1));
      continue;
    }
    std::vector<double> weights(dist2.begin(), dist2.end());
    seeds.push_back(rng->Categorical(weights));
  }
  for (int64_t j = 0; j < k; ++j) {
    std::copy_n(p + seeds[static_cast<size_t>(j)] * dim, dim, c + j * dim);
  }

  result.assignments.assign(static_cast<size_t>(n), 0);
  for (int64_t iter = 0; iter < max_iters; ++iter) {
    result.iterations = iter + 1;
    // Assignment step: each point's nearest centroid is independent.
    std::atomic<bool> changed{false};
    // ~3 scalar ops per accumulated dimension across all k centroids.
    // The old accounting (k * dim) undercounted by 3x, which kept the
    // bench-sized clusterings under the dispatch cutoff — the flat 1.0x
    // kmeans scaling in BENCH_parallel.json — while chunks of ~2^14 ops
    // keep enough of them in flight to balance an 8-thread sweep.
    const int64_t work_per_point = std::max<int64_t>(3 * k * dim, 1);
    // Stay serial unless the whole assignment pass carries enough work to
    // pay for a pool dispatch (small clusterings were slower at 8 threads
    // than at 1 with the old unconditional split).
    const int64_t grain = GrainWithCutoff(
        std::max<int64_t>(1, (int64_t{1} << 14) / work_per_point), n,
        work_per_point);
    ParallelFor(0, n, grain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        int64_t best = 0;
        double best_d = std::numeric_limits<double>::max();
        for (int64_t j = 0; j < k; ++j) {
          const double d = SquaredDistance(p + i * dim, c + j * dim, dim);
          if (d < best_d) {
            best_d = d;
            best = j;
          }
        }
        if (result.assignments[static_cast<size_t>(i)] != best) {
          result.assignments[static_cast<size_t>(i)] = best;
          changed.store(true, std::memory_order_relaxed);
        }
      }
    });
    if (!changed.load(std::memory_order_relaxed) && iter > 0) break;
    // Update step.
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    std::fill_n(c, k * dim, 0.0f);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t j = result.assignments[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(j)];
      for (int64_t d = 0; d < dim; ++d) c[j * dim + d] += p[i * dim + d];
    }
    for (int64_t j = 0; j < k; ++j) {
      if (counts[static_cast<size_t>(j)] == 0) {
        // Re-seed an empty cluster at a random point.
        const int64_t pick = rng->UniformInt(0, n - 1);
        std::copy_n(p + pick * dim, dim, c + j * dim);
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(j)]);
      for (int64_t d = 0; d < dim; ++d) c[j * dim + d] *= inv;
    }
  }
  return result;
}

}  // namespace core
}  // namespace crossem
