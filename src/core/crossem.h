// CrossEM — the paper's prompt-tuning framework for cross-modal entity
// matching (Sec. II-C, Algorithm 1), and CrossEM+ — its improved variant
// with mini-batch generation, property-based negative sampling, and the
// orthogonal prompt constraint (Sec. IV).
//
// Usage:
//   clip::ClipModel model(...);            // pre-trained (clip/pretrain.h)
//   core::CrossEmOptions opt = core::CrossEmPlusOptions();
//   core::CrossEm matcher(&model, &graph, &tokenizer, opt);
//   matcher.Fit(vertices, images);          // unsupervised prompt tuning
//   auto pairs = matcher.FindMatches(vertices, images);
//
// The matching objective is the matching-probability formulation of
// Eq. 4 (not classification): tuning minimizes the symmetric contrastive
// loss of Eq. 2-3 with positives chosen as the top-similarity pairs of
// each mini-batch, and the image encoder + contrastive head stay frozen.
#ifndef CROSSEM_CORE_CROSSEM_H_
#define CROSSEM_CORE_CROSSEM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "clip/clip.h"
#include "core/hard_prompt.h"
#include "core/negative_sampling.h"
#include "core/pcp.h"
#include "core/soft_prompt.h"
#include "graph/graph.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/status.h"

namespace crossem {
namespace core {

class FitStepPlanner;

/// Prompt generation mechanism (paper Sec. III).
enum class PromptMode {
  kBaseline,  // naive "a photo of <label>" (the zero-shot CLIP baseline)
  kHard,      // discrete structure-aware prompt f_pro^h (Sec. III-B)
  kSoft,      // continuous structure-aware prompt f_pro^s (Sec. III-C)
};

struct CrossEmOptions {
  PromptMode prompt_mode = PromptMode::kHard;
  HardPromptOptions hard;
  SoftPromptOptions soft;

  int64_t epochs = 5;
  int64_t batch_vertices = 8;   // N1 of the contrastive batch
  int64_t batch_images = 16;    // N2 of the contrastive batch
  float learning_rate = 2e-3f;
  float grad_clip = 5.0f;
  /// Paper Sec. II-C: the image encoder and contrastive head are frozen.
  bool freeze_image_encoder = true;
  /// Prompt tuning proper updates only the prompt parameters (the soft
  /// prompt's vertex features, aggregator and injector); the pre-trained
  /// text tower stays frozen. Enabling this additionally fine-tunes the
  /// text encoder (more capacity, but risks drifting the pre-trained
  /// alignment — the fine-tuning/prompt-tuning trade-off of Sec. II-B).
  bool tune_text_encoder = false;

  // -- CrossEM+ optimizations (Sec. IV); all off = plain CrossEM -----------
  bool use_mini_batch_generation = false;   // MBG, Sec. IV-A
  bool use_negative_sampling = false;       // NS, Sec. IV-B
  bool use_orthogonal_constraint = false;   // OPC, Sec. IV-C
  /// Loss mix of Eq. 10 (beta weights the contrastive term).
  float beta = 0.85f;
  PcpOptions pcp;
  NegativeSamplingOptions negative_sampling;

  uint64_t seed = 13;

  // -- Fault tolerance -----------------------------------------------------
  /// When non-empty, Fit writes a resumable training checkpoint (module
  /// parameters + optimizer/RNG state, nn/serialize.h TrainState) here.
  std::string checkpoint_path;
  /// Checkpoint cadence; the final epoch is always checkpointed too.
  int64_t checkpoint_every_epochs = 1;
  /// Resume from `checkpoint_path` if it exists (bit-for-bit: the resumed
  /// run produces exactly the losses and parameters of an uninterrupted
  /// one). A missing checkpoint file starts fresh; a corrupt or
  /// unreadable one fails the Fit.
  bool resume = false;
  /// A batch whose loss or gradients come out non-finite is skipped (no
  /// optimizer step) and counted. If more than this fraction of an
  /// epoch's loss-producing batches go bad, the epoch is rolled back to
  /// its start snapshot and retried with the learning rate halved.
  float max_bad_batch_fraction = 0.5f;
  /// Rollback retries per epoch before Fit gives up with an error.
  int64_t max_epoch_retries = 2;

  // -- Observability -------------------------------------------------------
  /// When non-empty, Fit appends one obs::EpochTelemetry JSON object per
  /// epoch to this file (JSONL). A fresh run truncates the file; a
  /// resumed one appends, so an interrupted + resumed training still
  /// yields one line per epoch. An unwritable path fails the Fit.
  std::string telemetry_path;
};

/// The full CrossEM+ configuration (soft prompt + MBG + NS + OPC).
CrossEmOptions CrossEmPlusOptions();

/// Per-epoch training telemetry (Table III / Fig. 8 measurements).
struct EpochStats {
  float loss = 0.0f;
  double seconds = 0.0;
  int64_t peak_bytes = 0;
  int64_t num_batches = 0;
  /// Candidate pairs processed: sum over batches of |V_i| * |I_i|
  /// (the quantity MBG reduces from |V||I|, Sec. IV-A).
  int64_t num_pairs = 0;
  /// Batches skipped by the non-finite loss/gradient guard.
  int64_t bad_batches = 0;
  /// Divergence rollbacks this epoch consumed before succeeding.
  int64_t retries = 0;
  /// Learning rate in effect when the epoch finished (halved on rollback).
  float learning_rate = 0.0f;
  /// Mean pre-clip global gradient L2 norm over the stepped batches.
  float grad_norm = 0.0f;
  // Phase breakdown of the successful attempt, seconds. The phases do
  // not sum to `seconds`: batch bookkeeping, the divergence-guard
  // snapshot, and any rolled-back attempts sit outside them.
  double batch_gen_seconds = 0.0;
  double encode_seconds = 0.0;
  double score_seconds = 0.0;
  double backward_seconds = 0.0;
  double optimizer_seconds = 0.0;
};

struct FitStats {
  std::vector<EpochStats> epochs;
  double total_seconds = 0.0;
  int64_t peak_bytes = 0;

  double AvgEpochSeconds() const;
  float FinalLoss() const;
};

/// A matched (vertex, image) pair of the output set S (Def. 2).
struct MatchingPair {
  graph::VertexId vertex;
  int64_t image;   // index into the fitted image tensor
  float score;     // matching probability p(v, I) of Eq. 4
};

/// The matcher: owns prompt generators and the tuning loop; the CLIP
/// model is borrowed and updated in place.
class CrossEm {
 public:
  /// All pointers must outlive the matcher.
  CrossEm(clip::ClipModel* model, const graph::Graph* graph,
          const text::Tokenizer* tokenizer, CrossEmOptions options);

  /// Unsupervised prompt tuning (Algorithm 1; CrossEM+ when the
  /// optimization toggles are on) over the candidate pairs
  /// `vertices` x `images` ([N, P, patch_dim]).
  ///
  /// Baseline and hard prompt modes are discrete — there is nothing to
  /// tune unless tune_text_encoder is set (paper Tables III-IV report no
  /// training cost for CrossEM w/ f_pro^h) — so Fit returns empty stats
  /// for them.
  Result<FitStats> Fit(const std::vector<graph::VertexId>& vertices,
                       const Tensor& images);

  /// Joint-space embeddings of vertices under the configured prompt mode
  /// (inference; no gradients).
  Tensor EncodeVertices(const std::vector<graph::VertexId>& vertices) const;

  /// Joint-space embeddings of images [N, embed_dim] (chunked; frozen).
  Tensor EncodeImages(const Tensor& images) const;

  /// Cosine score matrix [num_vertices, num_images].
  Tensor ScoreMatrix(const std::vector<graph::VertexId>& vertices,
                     const Tensor& images) const;

  /// The matching set S: for each vertex, its top image by matching
  /// probability (Eq. 4), kept when the probability is at least
  /// `min_probability`.
  std::vector<MatchingPair> FindMatches(
      const std::vector<graph::VertexId>& vertices, const Tensor& images,
      float min_probability = 0.0f) const;

  /// High-precision variant: only pairs that are MUTUAL nearest
  /// neighbours (the image is the vertex's best match AND the vertex is
  /// that image's best match). A subset of FindMatches; the same
  /// criterion the unsupervised tuning uses for its pseudo-positives.
  std::vector<MatchingPair> FindMutualMatches(
      const std::vector<graph::VertexId>& vertices,
      const Tensor& images) const;

  /// CRC-32 fingerprint of everything EncodeVertices depends on: the
  /// prompt mode, the text tower's parameters and, in soft mode, the
  /// soft prompt's parameters. The serving layer keys its vertex
  /// embedding cache on this so entries from a stale model never
  /// satisfy queries against a retuned one.
  uint32_t EncoderFingerprint() const;

  /// The model's current temperature tau (Eq. 4 softmax scale).
  float Temperature() const;

  const CrossEmOptions& options() const { return options_; }
  const graph::Graph& graph() const { return *graph_; }
  SoftPromptGenerator* soft_prompt() { return soft_gen_.get(); }
  const HardPromptGenerator& hard_prompt() const { return hard_gen_; }

 private:
  /// Vertex embeddings with gradients (training path).
  Tensor EncodeVerticesForTraining(
      const std::vector<graph::VertexId>& vertices) const;

  /// Trainable parameter set under the current options.
  std::vector<Tensor> TrainableParameters() const;

  /// Same tensors, in the same order, with stable checkpoint names
  /// ("model.text.*", "soft_prompt.*", "model.image.*").
  std::vector<std::pair<std::string, Tensor>> NamedTrainableParameters() const;

  /// One full pass over the (re)generated mini-batches, with the
  /// non-finite batch guard. Fills loss/num_batches/num_pairs/bad_batches
  /// of `es`; the caller decides whether the attempt diverged. `planner`
  /// (may be null) runs eligible batches as compiled trace/replay steps
  /// (core/step_plan.h); any batch it declines falls back to the eager
  /// path below it.
  Status RunEpochAttempt(const std::vector<graph::VertexId>& vertices,
                         const Tensor& images, const Tensor& proximity,
                         MiniBatchGenerator* generator,
                         nn::Optimizer* optimizer,
                         const std::vector<Tensor>& params, int64_t num_images,
                         FitStepPlanner* planner, EpochStats* es);

  clip::ClipModel* model_;
  const graph::Graph* graph_;
  const text::Tokenizer* tokenizer_;
  CrossEmOptions options_;
  mutable Rng rng_;
  HardPromptGenerator hard_gen_;
  std::unique_ptr<SoftPromptGenerator> soft_gen_;
};

}  // namespace core
}  // namespace crossem

#endif  // CROSSEM_CORE_CROSSEM_H_
