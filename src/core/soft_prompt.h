// Soft (continuous) prompt f_pro^s (paper Sec. III-C, Eq. 6-7).
//
// Each vertex gets a trainable structural feature; prompts are produced
// by aggregating d-hop neighbor features:
//
//   f_pro^s(v) = alpha * h(v) + (1 - alpha) * sum_{u in N(v)} h(u)   (Eq. 6)
//
// (the sum realized as a mean via the neighbor-average operator, or a
// GraphSAGE layer for the FB-style datasets, per the paper's
// implementation details). The prompt is injected into the text encoder
// input (the feature-based encoder of Fig. 4(b)):
//
//   h^l(v) = ReLU(W (h(l_v) (+) f_pro^s(v)))                          (Eq. 7)
//
// where h(l_v) is the label's token embedding summary, and h^l(v) is
// spliced into the token-embedding sequence right after [CLS].
//
// Vertex features are initialized from the pre-trained token embeddings
// of the vertex label (the paper initializes from BERT/RoBERTa) and are
// updated by backpropagation — this module owns the trainable prompt
// parameters of CrossEM w/ f_pro^s.
#ifndef CROSSEM_CORE_SOFT_PROMPT_H_
#define CROSSEM_CORE_SOFT_PROMPT_H_

#include <memory>
#include <vector>

#include "clip/clip.h"
#include "graph/graph.h"
#include "nn/graph_agg.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/plan.h"
#include "text/tokenizer.h"

namespace crossem {
namespace core {

/// Structural-feature backbone choice (paper: GNN for CUB/SUN,
/// GraphSAGE for FB15K).
enum class SoftBackbone { kGnn, kGraphSage };

struct SoftPromptOptions {
  /// Aggregation weight alpha of Eq. 6 (grid-searched in the paper).
  float alpha = 0.5f;
  SoftBackbone backbone = SoftBackbone::kGnn;
};

/// Trainable continuous prompt generator.
class SoftPromptGenerator : public nn::Module {
 public:
  /// `graph`, `text_encoder` and `tokenizer` must outlive the generator.
  /// Vertex features are initialized from `text_encoder`'s token table.
  SoftPromptGenerator(const graph::Graph* graph,
                      const clip::TextEncoder* text_encoder,
                      const text::Tokenizer* tokenizer,
                      SoftPromptOptions options, Rng* rng);

  /// Input-embedding sequences ready for
  /// TextEncoder::ForwardFromEmbeddings.
  struct PromptBatch {
    Tensor embeddings;  // [B, T, model_dim]
    Tensor mask;        // [B, T]; 1 = attended position
  };

  /// Builds prompt-injected input sequences for a vertex batch.
  PromptBatch Generate(const std::vector<graph::VertexId>& vertices) const;

  /// The raw prompt features f_pro^s for a vertex batch [B, model_dim]
  /// (stacked prompt matrix f_i^s used by the orthogonal constraint,
  /// Eq. 9).
  Tensor PromptFeatures(const std::vector<graph::VertexId>& vertices) const;

  /// PromptFeatures with the vertex batch routed through an execution-plan
  /// slot (re-read at every replay).
  Tensor PromptFeaturesSlot(const plan::IndexSlot& vertices) const;

  /// The padded label-token rows Generate() encodes for a vertex batch —
  /// exposed so an execution-plan caller can tokenize on the host and feed
  /// the ids through a slot. Row length varies with the batch (padding to
  /// the longest serialization), so it is part of a plan's shape key.
  std::vector<std::vector<int64_t>> TokenizeLabels(
      const std::vector<graph::VertexId>& vertices) const;

  /// Plan-capture variant of Generate(): every per-step input flows
  /// through a slot or a caller-owned write-in buffer so one traced graph
  /// serves every batch of the same shape.
  ///   `vertices`      — vertex ids, batch of B
  ///   `flat_tokens`   — row-major padded token ids, B * padded_len
  ///   `padded_len`    — the traced token row length
  ///   `label_summary` — [N, model_dim] table from BuildLabelSummaryTable()
  ///   `mask`          — caller-owned [B, padded_len + 1] attention mask,
  ///                     refreshed by the host before each replay
  PromptBatch GenerateSlot(const plan::IndexSlot& vertices,
                           const plan::IndexSlot& flat_tokens,
                           int64_t padded_len, const Tensor& label_summary,
                           const Tensor& mask) const;

  /// Precomputes h(l_v) for EVERY vertex as an [N, model_dim] constant,
  /// each row built by the same IndexSelect+Mean graph LabelSummary()
  /// runs per batch (so gathered rows are bitwise-equal to eager
  /// recomputation). Only valid while the token-embedding table is frozen
  /// — callers (the fit-step planner) must rebuild it per tuning run.
  Tensor BuildLabelSummaryTable() const;

  const Tensor& vertex_features() const { return vertex_features_; }

 private:
  /// Mean label-token embedding h(l_v) for a vertex batch [B, model_dim].
  Tensor LabelSummary(const std::vector<graph::VertexId>& vertices) const;

  /// Label token ids for one vertex (shared by init, LabelSummary and the
  /// precomputed table).
  std::vector<int64_t> LabelTokenIds(graph::VertexId v) const;

  const graph::Graph* graph_;
  const clip::TextEncoder* text_encoder_;
  const text::Tokenizer* tokenizer_;
  SoftPromptOptions options_;
  Tensor vertex_features_;  // trainable [N, model_dim]
  Tensor neighbor_mean_;    // constant [N, N]
  std::unique_ptr<nn::GraphSageLayer> sage_;
  std::unique_ptr<nn::Linear> injector_;  // W of Eq. 7
};

}  // namespace core
}  // namespace crossem

#endif  // CROSSEM_CORE_SOFT_PROMPT_H_
