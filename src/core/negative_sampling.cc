#include "core/negative_sampling.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "util/logging.h"

namespace crossem {
namespace core {

NegativeSampler::NegativeSampler(NegativeSamplingOptions options)
    : options_(options) {
  CROSSEM_CHECK_GT(options.batch_size, 0);
  CROSSEM_CHECK_GT(options.max_top_k, 0);
}

std::vector<MiniBatch> NegativeSampler::Apply(
    std::vector<MiniBatch> partitions, const Tensor& proximity,
    const std::vector<graph::VertexId>& vertex_order, Rng* rng) const {
  CROSSEM_CHECK_EQ(proximity.dim(), 2);
  const int64_t ni = proximity.size(1);
  std::map<graph::VertexId, int64_t> vertex_row;
  for (size_t i = 0; i < vertex_order.size(); ++i) {
    vertex_row.emplace(vertex_order[i], static_cast<int64_t>(i));
  }
  const float* s = proximity.data();

  for (MiniBatch& part : partitions) {
    rng->Shuffle(&part.image_indices);  // Alg. 3 line 3
    const int64_t n = options_.batch_size;
    const int64_t size = static_cast<int64_t>(part.image_indices.size());
    int64_t count = ((size + n - 1) / n) * n - size;  // Alg. 3 line 5
    if (count == 0) continue;

    std::set<int64_t> present(part.image_indices.begin(),
                              part.image_indices.end());
    for (graph::VertexId v : part.vertices) {
      if (count <= 0) break;
      auto it = vertex_row.find(v);
      if (it == vertex_row.end()) continue;
      const float* row = s + it->second * ni;
      // Random top-k window (Alg. 3 line 9).
      const int64_t k = rng->UniformInt(
          1, std::min<int64_t>(options_.max_top_k, ni));
      // Partial top-k by proximity over all images.
      std::vector<int64_t> idx(static_cast<size_t>(ni));
      std::iota(idx.begin(), idx.end(), 0);
      std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                        [row](int64_t a, int64_t b) {
                          return row[a] > row[b];
                        });
      for (int64_t j = 0; j < k && count > 0; ++j) {
        const int64_t img = idx[static_cast<size_t>(j)];
        if (present.insert(img).second) {
          part.image_indices.push_back(img);  // hard negative merged
          --count;
        }
      }
    }
    rng->Shuffle(&part.image_indices);  // Alg. 3 line 16
  }
  rng->Shuffle(&partitions);  // Alg. 3 line 17
  return partitions;
}

}  // namespace core
}  // namespace crossem
