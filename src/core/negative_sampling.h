// Property-based negative sampling (paper Sec. IV-B, Alg. 3).
//
// For each data partition D_i = (V_i, I_i), samples images that have
// HIGH proximity to V_i's vertices but are not in I_i — hard negatives
// that share properties without matching — and merges them into the
// partition until the candidate-pair count reaches the nearest multiple
// of the batch size. Batches and partitions are shuffled to reduce the
// model's dependence on data order.
#ifndef CROSSEM_CORE_NEGATIVE_SAMPLING_H_
#define CROSSEM_CORE_NEGATIVE_SAMPLING_H_

#include <vector>

#include "core/pcp.h"
#include "graph/graph.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace crossem {
namespace core {

struct NegativeSamplingOptions {
  /// Target batch size N of Alg. 3: image counts are padded to a multiple.
  int64_t batch_size = 8;
  /// Upper bound of the random top-k window (Alg. 3 line 9).
  int64_t max_top_k = 8;
};

/// Augments PCP partitions with hard negatives.
class NegativeSampler {
 public:
  explicit NegativeSampler(NegativeSamplingOptions options);

  /// `proximity` is S(V, I) with rows aligned to `vertex_order` (the
  /// vertex list PCP ran on) and columns indexing the image list.
  /// Returns the augmented, shuffled partitions.
  std::vector<MiniBatch> Apply(std::vector<MiniBatch> partitions,
                               const Tensor& proximity,
                               const std::vector<graph::VertexId>& vertex_order,
                               Rng* rng) const;

 private:
  NegativeSamplingOptions options_;
};

}  // namespace core
}  // namespace crossem

#endif  // CROSSEM_CORE_NEGATIVE_SAMPLING_H_
