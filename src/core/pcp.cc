#include "core/pcp.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "core/kmeans.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace crossem {
namespace core {

MiniBatchGenerator::MiniBatchGenerator(const clip::ClipModel* model,
                                       const graph::Graph* graph,
                                       const text::Tokenizer* tokenizer,
                                       PcpOptions options)
    : model_(model),
      graph_(graph),
      tokenizer_(tokenizer),
      options_(options) {
  CROSSEM_CHECK(model != nullptr);
  CROSSEM_CHECK(graph != nullptr);
  CROSSEM_CHECK(tokenizer != nullptr);
  CROSSEM_CHECK_GT(options.num_vertex_subsets, 0);
  CROSSEM_CHECK_GT(options.num_image_clusters, 0);
}

Tensor MiniBatchGenerator::ComputeProximity(
    const std::vector<graph::VertexId>& vertices, const Tensor& images) const {
  NoGradGuard guard;
  CROSSEM_CHECK_EQ(images.dim(), 3);
  const int64_t num_images = images.size(0);
  const int64_t patches = images.size(1);
  const int64_t patch_dim = images.size(2);
  CROSSEM_TRACE_SPAN_V(span, "pcp_proximity");
  span.Arg("vertices", static_cast<int64_t>(vertices.size()))
      .Arg("images", num_images);

  // Property sets N(v) = {v} + d-hop neighbors; collect distinct property
  // vertices so each label is embedded once (phase 1).
  std::vector<std::vector<graph::VertexId>> property_sets;
  std::map<graph::VertexId, int64_t> property_row;
  std::vector<graph::VertexId> property_order;
  for (graph::VertexId v : vertices) {
    graph::Subgraph sub = graph_->DHopSubgraph(v, options_.hops);
    property_sets.push_back(sub.vertices);  // includes v itself
    for (graph::VertexId u : sub.vertices) {
      if (property_row.emplace(u, static_cast<int64_t>(property_order.size()))
              .second) {
        property_order.push_back(u);
      }
    }
  }

  // Embed property labels via the frozen text tower (stand-in for the
  // paper's BERT property features).
  std::vector<std::string> property_labels;
  for (graph::VertexId u : property_order) {
    property_labels.push_back(graph_->VertexLabel(u));
  }
  Tensor property_emb;
  {
    CROSSEM_TRACE_SPAN("pcp_property_embed");
    property_emb =
        model_->text().Forward(tokenizer_->EncodeBatch(property_labels));
  }

  // Embed every patch as a one-patch image through the frozen image tower
  // (stand-in for ResNet patch features), in chunks.
  Tensor patch_rows = ops::Reshape(images, {num_images * patches, 1,
                                            patch_dim});
  const int64_t chunk = 256;
  std::vector<Tensor> chunks(static_cast<size_t>(
      NumChunks(0, num_images * patches, chunk)));
  {
    CROSSEM_TRACE_SPAN("pcp_patch_embed");
    // Chunks are independent inference forwards; run them across the pool.
    // Worker threads default to grad-on, so each chunk opens its own
    // no-grad scope.
    ParallelForChunks(0, num_images * patches, chunk,
                      [&](int64_t c, int64_t start, int64_t end) {
                        NoGradGuard guard;
                        chunks[static_cast<size_t>(c)] =
                            model_->image().Forward(
                                ops::Slice(patch_rows, 0, start, end));
                      });
  }
  Tensor patch_emb = ops::Concat(chunks, 0);  // [N*P, E]

  // Phase 1 closeness: S_c = A x C^T.
  Tensor closeness;
  {
    CROSSEM_TRACE_SPAN("pcp_closeness");
    // A x C^T without materializing C^T (bitwise-equal; see MatMulTransB).
    closeness = ops::MatMulTransB(property_emb, patch_emb);
  }

  // Phase 2 proximity (Eq. 8).
  const int64_t nv = static_cast<int64_t>(vertices.size());
  Tensor proximity = Tensor::Zeros({nv, num_images});
  float* s = proximity.data();
  const float* sc = closeness.data();
  const int64_t sc_cols = num_images * patches;
  // Each vertex row of the proximity matrix is independent. Average the
  // per-vertex cost for the cutoff: tiny graphs run serially.
  int64_t total_props = 0;
  for (const auto& ps : property_sets) {
    total_props += static_cast<int64_t>(ps.size());
  }
  const int64_t work_per_vertex =
      std::max<int64_t>(1, total_props / std::max<int64_t>(nv, 1)) * sc_cols;
  ParallelFor(0, nv, GrainWithCutoff(1, nv, work_per_vertex),
              [&](int64_t v0, int64_t v1) {
    for (int64_t vi = v0; vi < v1; ++vi) {
      for (graph::VertexId u : property_sets[static_cast<size_t>(vi)]) {
        const int64_t row = property_row.at(u);
        const float* sc_row = sc + row * sc_cols;
        for (int64_t img = 0; img < num_images; ++img) {
          float best = sc_row[img * patches];
          for (int64_t k = 1; k < patches; ++k) {
            best = std::max(best, sc_row[img * patches + k]);
          }
          s[vi * num_images + img] += best;
        }
      }
    }
  });
  return proximity;
}

Result<MiniBatchGenerator::Output> MiniBatchGenerator::Generate(
    const std::vector<graph::VertexId>& vertices, const Tensor& images,
    Rng* rng) const {
  if (vertices.empty()) return Status::InvalidArgument("no vertices");
  if (!images.defined() || images.size(0) == 0) {
    return Status::InvalidArgument("no images");
  }
  Output out;
  out.proximity = ComputeProximity(vertices, images);
  CROSSEM_ASSIGN_OR_RETURN(
      out.partitions, PartitionFromProximity(vertices, out.proximity, rng));
  return out;
}

Result<std::vector<MiniBatch>> MiniBatchGenerator::PartitionFromProximity(
    const std::vector<graph::VertexId>& vertices, const Tensor& proximity,
    Rng* rng) const {
  if (vertices.empty()) return Status::InvalidArgument("no vertices");
  if (!proximity.defined() || proximity.dim() != 2 ||
      proximity.size(0) != static_cast<int64_t>(vertices.size())) {
    return Status::InvalidArgument("proximity rows must match vertices");
  }
  std::vector<MiniBatch> partitions;
  const int64_t nv = static_cast<int64_t>(vertices.size());
  const int64_t ni = proximity.size(1);
  CROSSEM_TRACE_SPAN_V(span, "pcp_partition");
  span.Arg("vertices", nv).Arg("images", ni);
  const float* s = proximity.data();

  // Phase 3, step 1: random vertex subsets.
  std::vector<int64_t> order(static_cast<size_t>(nv));
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  const int64_t k1 =
      std::min<int64_t>(options_.num_vertex_subsets, nv);
  std::vector<std::vector<int64_t>> vertex_subsets(static_cast<size_t>(k1));
  for (int64_t i = 0; i < nv; ++i) {
    vertex_subsets[static_cast<size_t>(i % k1)].push_back(
        order[static_cast<size_t>(i)]);
  }

  for (const auto& subset : vertex_subsets) {
    if (subset.empty()) continue;
    // Subset-level proximity of each image (Alg. 2 line 14).
    std::vector<float> subset_prox(static_cast<size_t>(ni), 0.0f);
    for (int64_t row : subset) {
      for (int64_t img = 0; img < ni; ++img) {
        subset_prox[static_cast<size_t>(img)] += s[row * ni + img];
      }
    }
    // Prune images below the quantile threshold theta.
    std::vector<float> sorted = subset_prox;
    std::sort(sorted.begin(), sorted.end());
    const size_t theta_idx = static_cast<size_t>(
        options_.prune_quantile * static_cast<float>(ni));
    const float theta =
        sorted[std::min(theta_idx, sorted.size() - 1)];
    std::vector<int64_t> survivors;
    for (int64_t img = 0; img < ni; ++img) {
      if (subset_prox[static_cast<size_t>(img)] > theta) {
        survivors.push_back(img);
      }
    }
    if (survivors.empty()) {
      // Degenerate pruning (uniform proximities): keep everything.
      survivors.resize(static_cast<size_t>(ni));
      std::iota(survivors.begin(), survivors.end(), 0);
    }

    // Proximity distribution P_i(I) over the subset's vertices for each
    // surviving image, then k-means into k2 clusters.
    const int64_t sv = static_cast<int64_t>(survivors.size());
    const int64_t sd = static_cast<int64_t>(subset.size());
    Tensor dist = Tensor::Zeros({sv, sd});
    float* dp = dist.data();
    ParallelFor(0, sv,
                GrainWithCutoff(
                    std::max<int64_t>(1, 2048 / std::max<int64_t>(sd, 1)), sv,
                    std::max<int64_t>(sd, 1)),
                [&](int64_t r0, int64_t r1) {
                  for (int64_t r = r0; r < r1; ++r) {
                    const int64_t img = survivors[static_cast<size_t>(r)];
                    float total = 0.0f;
                    for (int64_t c = 0; c < sd; ++c) {
                      const float val =
                          s[subset[static_cast<size_t>(c)] * ni + img];
                      dp[r * sd + c] = val;
                      total += std::max(val, 0.0f);
                    }
                    if (total > 0.0f) {
                      for (int64_t c = 0; c < sd; ++c) {
                        dp[r * sd + c] = std::max(dp[r * sd + c], 0.0f) / total;
                      }
                    }
                  }
                });
    KMeansResult clusters =
        KMeans(dist, options_.num_image_clusters, rng);

    // Emit one partition per non-empty cluster; shuffle cluster order.
    std::vector<std::vector<int64_t>> cluster_images(
        static_cast<size_t>(options_.num_image_clusters));
    for (int64_t r = 0; r < sv; ++r) {
      cluster_images[static_cast<size_t>(clusters.assignments[
          static_cast<size_t>(r)])]
          .push_back(survivors[static_cast<size_t>(r)]);
    }
    rng->Shuffle(&cluster_images);
    for (auto& imgs : cluster_images) {
      if (imgs.empty()) continue;
      MiniBatch mb;
      for (int64_t row : subset) {
        mb.vertices.push_back(vertices[static_cast<size_t>(row)]);
      }
      rng->Shuffle(&imgs);
      mb.image_indices = std::move(imgs);
      partitions.push_back(std::move(mb));
    }
  }
  rng->Shuffle(&partitions);
  return partitions;
}

}  // namespace core
}  // namespace crossem
