// Hard-encoding prompt f_pro^h (paper Sec. III-B, Eq. 5).
//
// Serializes a vertex's d-hop subgraph into a textual template by
// concatenating neighboring sub-prompts along BFS induction directions,
// e.g. (paper Example 2):
//
//   "laysan albatross has crown color in white, has under tail color in
//    black, has wing shape in long-wings, and long-wings has wing color
//    in grey"
//
// Sub-prompts from the center omit the center's label; deeper sub-prompts
// name their source vertex. The pre-defined token set T is {", ", "and",
// "in"}.
#ifndef CROSSEM_CORE_HARD_PROMPT_H_
#define CROSSEM_CORE_HARD_PROMPT_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace crossem {
namespace core {

/// Textual template for serializing the subgraph. The paper stresses that
/// "the hard-encoding prompt template needs to be carefully designed for
/// different graph structures" (Sec. III-B, drawback 1) — both templates
/// carry the same structural knowledge but differ in surface form.
enum class HardPromptStyle {
  /// Caption-style, matched to the pre-training caption distribution:
  /// "a photo of <label> with <n1>, <n2>, and <nk>".
  kCaption,
  /// The paper's Example 2 serialization:
  /// "<label> has crown color in white, ..., and long-wings has wing
  /// color in grey".
  kSerialized,
};

/// Options for hard prompt construction.
struct HardPromptOptions {
  /// Subgraph radius d (paper uses small d; 1-2 hop neighborhoods).
  int64_t hops = 1;
  /// Maximum sub-prompts concatenated (guards the encoder context).
  int64_t max_sub_prompts = 16;
  /// Of those, at most this many entity-entity relation neighbors
  /// ("rel ..."/"ref ..." edges) — neighbor entity names describe other
  /// entities' appearance and dilute the visual prompt.
  int64_t max_relation_sub_prompts = 2;
  HardPromptStyle style = HardPromptStyle::kCaption;
};

/// Generates discrete textual prompts from graph structure.
class HardPromptGenerator {
 public:
  /// `graph` must outlive the generator.
  HardPromptGenerator(const graph::Graph* graph, HardPromptOptions options);

  /// The structure-aware prompt for vertex v.
  std::string Generate(graph::VertexId v) const;

  /// The naive baseline prompt used by zero-shot CLIP (paper Sec. II-B):
  /// "a photo of <label>".
  std::string BaselinePrompt(graph::VertexId v) const;

 private:
  const graph::Graph* graph_;
  HardPromptOptions options_;
};

}  // namespace core
}  // namespace crossem

#endif  // CROSSEM_CORE_HARD_PROMPT_H_
