// PCP — property-based closeness partition (paper Sec. IV-A, Alg. 2):
// the mini-batch generation optimization of CrossEM+.
//
// Three phases:
//  1. Property closeness: embed vertex properties (d-hop neighbor labels,
//     via the pre-trained text encoder) and image properties (patches,
//     via the pre-trained image encoder) into the joint space, and form
//     the closeness matrix S_c = A x C.
//  2. Pairwise proximity (Eq. 8): S(v, I) = sum over neighbors of the max
//     patch closeness.
//  3. Cluster-based partition: split V randomly into k1 subsets, prune
//     low-proximity images per subset, k-means the surviving images by
//     their proximity distributions into k2 clusters, emit shuffled
//     (V_i, I_j) partitions.
#ifndef CROSSEM_CORE_PCP_H_
#define CROSSEM_CORE_PCP_H_

#include <vector>

#include "clip/clip.h"
#include "graph/graph.h"
#include "tensor/tensor.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/status.h"

namespace crossem {
namespace core {

struct PcpOptions {
  /// Neighborhood radius d for property sets.
  int64_t hops = 1;
  /// k1: random vertex subsets.
  int64_t num_vertex_subsets = 2;
  /// k2: image clusters per vertex subset.
  int64_t num_image_clusters = 3;
  /// Images whose subset-level proximity falls below this quantile of the
  /// subset's proximity values are pruned (theta in Alg. 2 line 14).
  float prune_quantile = 0.25f;
};

/// One mini-batch partition D_i = (V_i, I_j).
struct MiniBatch {
  std::vector<graph::VertexId> vertices;
  std::vector<int64_t> image_indices;  // into the caller's image list
};

/// Mini-batch generator over a (graph, image set) pair.
class MiniBatchGenerator {
 public:
  /// `model`, `graph`, `tokenizer` must outlive the generator. The model
  /// is used frozen (no gradients) to extract property features.
  MiniBatchGenerator(const clip::ClipModel* model, const graph::Graph* graph,
                     const text::Tokenizer* tokenizer, PcpOptions options);

  /// Runs phases 1-2: the pairwise proximity matrix S(V, I)
  /// [num_vertices, num_images]. `images` is the stacked patch tensor
  /// [N, P, patch_dim] aligned with image indices 0..N-1.
  Tensor ComputeProximity(const std::vector<graph::VertexId>& vertices,
                          const Tensor& images) const;

  /// Full Alg. 2: partitions of the candidate pairs. The same proximity
  /// matrix is reused by negative sampling, so it is returned too.
  struct Output {
    std::vector<MiniBatch> partitions;
    Tensor proximity;  // S(V, I), rows aligned with `vertices`
  };
  Result<Output> Generate(const std::vector<graph::VertexId>& vertices,
                          const Tensor& images, Rng* rng) const;

  /// Phase 3 only, reusing a proximity matrix from a prior
  /// ComputeProximity call (PCP phases 1-2 are data preprocessing and
  /// run once; the cluster-based partition is re-run per epoch for fresh
  /// shuffles).
  Result<std::vector<MiniBatch>> PartitionFromProximity(
      const std::vector<graph::VertexId>& vertices, const Tensor& proximity,
      Rng* rng) const;

 private:
  const clip::ClipModel* model_;
  const graph::Graph* graph_;
  const text::Tokenizer* tokenizer_;
  PcpOptions options_;
};

}  // namespace core
}  // namespace crossem

#endif  // CROSSEM_CORE_PCP_H_
