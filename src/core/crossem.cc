#include "core/crossem.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>

#include <cstring>
#include <map>
#include <tuple>

#include "core/losses.h"
#include "core/step_plan.h"
#include "eval/topk.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "tensor/ops.h"
#include "tensor/plan.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/memory_tracker.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace crossem {
namespace core {

CrossEmOptions CrossEmPlusOptions() {
  CrossEmOptions opt;
  opt.prompt_mode = PromptMode::kSoft;
  opt.use_mini_batch_generation = true;
  opt.use_negative_sampling = true;
  opt.use_orthogonal_constraint = true;
  return opt;
}

double FitStats::AvgEpochSeconds() const {
  if (epochs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& e : epochs) total += e.seconds;
  return total / static_cast<double>(epochs.size());
}

float FitStats::FinalLoss() const {
  return epochs.empty() ? 0.0f : epochs.back().loss;
}

CrossEm::CrossEm(clip::ClipModel* model, const graph::Graph* graph,
                 const text::Tokenizer* tokenizer, CrossEmOptions options)
    : model_(model),
      graph_(graph),
      tokenizer_(tokenizer),
      options_(options),
      rng_(options.seed),
      hard_gen_(graph, options.hard) {
  CROSSEM_CHECK(model != nullptr);
  CROSSEM_CHECK(graph != nullptr);
  CROSSEM_CHECK(tokenizer != nullptr);
  if (options_.prompt_mode == PromptMode::kSoft) {
    soft_gen_ = std::make_unique<SoftPromptGenerator>(
        graph, &model->text(), tokenizer, options_.soft, &rng_);
  }
}

Tensor CrossEm::EncodeVerticesForTraining(
    const std::vector<graph::VertexId>& vertices) const {
  CROSSEM_CHECK(!vertices.empty());
  if (options_.prompt_mode == PromptMode::kSoft) {
    SoftPromptGenerator::PromptBatch batch = soft_gen_->Generate(vertices);
    return model_->text().ForwardFromEmbeddings(batch.embeddings, batch.mask);
  }
  std::vector<std::string> prompts;
  prompts.reserve(vertices.size());
  for (graph::VertexId v : vertices) {
    prompts.push_back(options_.prompt_mode == PromptMode::kHard
                          ? hard_gen_.Generate(v)
                          : hard_gen_.BaselinePrompt(v));
  }
  return model_->text().Forward(tokenizer_->EncodeBatch(prompts));
}

Tensor CrossEm::EncodeVertices(
    const std::vector<graph::VertexId>& vertices) const {
  NoGradGuard guard;
  return EncodeVerticesForTraining(vertices);
}

namespace {

// One worker's compiled image-encode chunk (tensor/plan.h): the encoder
// forward traced once per (encoder, chunk shape), replayed thereafter
// through a write-in patch buffer. Thread-local, so concurrent workers
// replay their own plans without sharing buffers.
struct ImageEncodePlan {
  plan::ExecutionPlan plan;
  const void* first_param;  // identity of the encoder traced against
  Tensor input;             // write-in [rows, P, patch_dim]
  Tensor output;            // retained [rows, embed_dim]
};
using ImageEncodeKey = std::tuple<const void*, int64_t, int64_t, int64_t>;

std::map<ImageEncodeKey, std::unique_ptr<ImageEncodePlan>>&
ThreadImageEncodePlans() {
  thread_local std::map<ImageEncodeKey, std::unique_ptr<ImageEncodePlan>>
      plans;
  return plans;
}

}  // namespace

Tensor CrossEm::EncodeImages(const Tensor& images) const {
  NoGradGuard guard;
  CROSSEM_CHECK_EQ(images.dim(), 3);
  const int64_t n = images.size(0);
  const int64_t chunk = 64;
  if (!plan::Enabled() || n == 0) {
    std::vector<Tensor> chunks(static_cast<size_t>(NumChunks(0, n, chunk)));
    // Chunks are independent inference forwards over the frozen image
    // tower; spread them across the pool. Workers default to grad-on, so
    // each chunk opens its own no-grad scope.
    ParallelForChunks(0, n, chunk, [&](int64_t c, int64_t start, int64_t end) {
      NoGradGuard chunk_guard;
      chunks[static_cast<size_t>(c)] =
          model_->image().Forward(ops::Slice(images, 0, start, end));
    });
    return ops::Concat(chunks, 0);
  }

  // Planned path: byte-equal to the eager chunk forward + Concat (the
  // Slice in and the row copy out are both contiguous row copies), with
  // the transformer forward replayed from each worker's traced plan.
  const std::vector<Tensor> image_params = model_->image().Parameters();
  const void* first_param = image_params.front().impl().get();
  const int64_t row_elems = images.size(1) * images.size(2);
  const int64_t embed = model_->config().embed_dim;
  Tensor out = Tensor::Zeros({n, embed});
  ParallelForChunks(0, n, chunk, [&](int64_t, int64_t start, int64_t end) {
    NoGradGuard chunk_guard;
    const int64_t rows = end - start;
    auto& cache = ThreadImageEncodePlans();
    const ImageEncodeKey key{model_, rows, images.size(1), images.size(2)};
    auto it = cache.find(key);
    ImageEncodePlan* ep = it != cache.end() ? it->second.get() : nullptr;
    std::string reason;
    if (ep != nullptr &&
        (ep->first_param != first_param || !ep->plan.Validate(&reason))) {
      cache.erase(it);  // encoder replaced or plan stale: re-trace
      ep = nullptr;
    }
    if (ep == nullptr) {
      if (cache.size() >= 8) cache.clear();  // bound retained buffers
      auto fresh = std::make_unique<ImageEncodePlan>();
      fresh->first_param = first_param;
      fresh->input = Tensor::Zeros({rows, images.size(1), images.size(2)});
      std::memcpy(fresh->input.data(), images.data() + start * row_elems,
                  static_cast<size_t>(rows * row_elems) * sizeof(float));
      {
        plan::CaptureScope scope(&fresh->plan);
        fresh->output = model_->image().Forward(fresh->input);
      }
      fresh->plan.BindParams(image_params);
      std::memcpy(out.data() + start * embed, fresh->output.data(),
                  static_cast<size_t>(rows * embed) * sizeof(float));
      // An incomplete capture still computed the chunk (tracing IS an
      // instrumented eager forward); it just is not worth caching.
      if (fresh->plan.complete()) cache.emplace(key, std::move(fresh));
    } else {
      std::memcpy(ep->input.data(), images.data() + start * row_elems,
                  static_cast<size_t>(rows * row_elems) * sizeof(float));
      ep->plan.Replay();
      std::memcpy(out.data() + start * embed, ep->output.data(),
                  static_cast<size_t>(rows * embed) * sizeof(float));
    }
  });
  return out;
}

Tensor CrossEm::ScoreMatrix(const std::vector<graph::VertexId>& vertices,
                            const Tensor& images) const {
  NoGradGuard guard;
  Tensor v = EncodeVertices(vertices);
  Tensor i = EncodeImages(images);
  return clip::ClipModel::SimilarityMatrix(v, i);
}

float CrossEm::Temperature() const {
  NoGradGuard guard;
  return model_->Temperature().item();
}

std::vector<MatchingPair> CrossEm::FindMatches(
    const std::vector<graph::VertexId>& vertices, const Tensor& images,
    float min_probability) const {
  // With no vertices or no images the matching set is trivially empty;
  // without this guard the best-image scan below would index into an
  // empty probability row.
  if (vertices.empty() || !images.defined() || images.dim() != 3 ||
      images.size(0) == 0) {
    return {};
  }
  NoGradGuard guard;
  Tensor v = EncodeVertices(vertices);
  Tensor i = EncodeImages(images);
  Tensor prob = model_->MatchingProbability(v, i);  // [Nv, Ni], Eq. 4
  // Shared ranking kernel (eval/topk.h): k = 1 with its lower-index
  // tie-break reproduces the original strictly-greater argmax scan.
  std::vector<std::vector<eval::ScoredId>> best = eval::TopKRows(prob, 1);
  std::vector<MatchingPair> out;
  for (size_t row = 0; row < vertices.size(); ++row) {
    if (best[row].front().score >= min_probability) {
      out.push_back(MatchingPair{vertices[row], best[row].front().id,
                                 best[row].front().score});
    }
  }
  return out;
}

std::vector<MatchingPair> CrossEm::FindMutualMatches(
    const std::vector<graph::VertexId>& vertices,
    const Tensor& images) const {
  if (vertices.empty() || !images.defined() || images.dim() != 3 ||
      images.size(0) == 0) {
    return {};
  }
  NoGradGuard guard;
  Tensor v = EncodeVertices(vertices);
  Tensor i = EncodeImages(images);
  Tensor prob = model_->MatchingProbability(v, i);
  Tensor sim = clip::ClipModel::SimilarityMatrix(v, i);
  // Both directions' best-match scans ride the shared top-k kernel; the
  // lower-index tie-break matches ops::ArgMax's first-maximum scan.
  std::vector<std::vector<eval::ScoredId>> v2i = eval::TopKRows(sim, 1);
  std::vector<std::vector<eval::ScoredId>> i2v =
      eval::TopKRows(ops::Transpose(sim, 0, 1), 1);
  std::vector<MatchingPair> out;
  const int64_t ni = prob.size(1);
  for (size_t row = 0; row < vertices.size(); ++row) {
    const int64_t img = v2i[row].front().id;
    if (i2v[static_cast<size_t>(img)].front().id ==
        static_cast<int64_t>(row)) {
      out.push_back(MatchingPair{
          vertices[row], img,
          prob.at(static_cast<int64_t>(row) * ni + img)});
    }
  }
  return out;
}

uint32_t CrossEm::EncoderFingerprint() const {
  const uint32_t mode = static_cast<uint32_t>(options_.prompt_mode);
  uint32_t crc = Crc32Update(0, &mode, sizeof(mode));
  const uint32_t text_fp = nn::ModuleFingerprint(model_->text());
  crc = Crc32Update(crc, &text_fp, sizeof(text_fp));
  if (soft_gen_) {
    const uint32_t soft_fp = nn::ModuleFingerprint(*soft_gen_);
    crc = Crc32Update(crc, &soft_fp, sizeof(soft_fp));
  }
  return crc;
}

std::vector<Tensor> CrossEm::TrainableParameters() const {
  std::vector<Tensor> params;
  if (options_.tune_text_encoder) {
    for (Tensor p : model_->text().Parameters()) params.push_back(p);
  }
  if (soft_gen_) {
    for (Tensor p : soft_gen_->Parameters()) params.push_back(p);
  }
  if (!options_.freeze_image_encoder) {
    for (Tensor p : model_->image().Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<std::pair<std::string, Tensor>> CrossEm::NamedTrainableParameters()
    const {
  // Must enumerate in exactly the TrainableParameters() order: the AdamW
  // moment slots saved in a checkpoint are indexed by position.
  std::vector<std::pair<std::string, Tensor>> named;
  if (options_.tune_text_encoder) {
    for (auto& [n, p] : model_->text().NamedParameters()) {
      named.emplace_back("model.text." + n, p);
    }
  }
  if (soft_gen_) {
    for (auto& [n, p] : soft_gen_->NamedParameters()) {
      named.emplace_back("soft_prompt." + n, p);
    }
  }
  if (!options_.freeze_image_encoder) {
    for (auto& [n, p] : model_->image().NamedParameters()) {
      named.emplace_back("model.image." + n, p);
    }
  }
  return named;
}

Result<FitStats> CrossEm::Fit(const std::vector<graph::VertexId>& vertices,
                              const Tensor& images) {
  if (vertices.empty()) return Status::InvalidArgument("no vertices to fit");
  if (!images.defined() || images.dim() != 3 || images.size(0) == 0) {
    return Status::InvalidArgument("images must be a [N, P, patch_dim] tensor");
  }
  for (graph::VertexId v : vertices) {
    if (v < 0 || v >= graph_->NumVertices()) {
      return Status::OutOfRange("vertex id out of range");
    }
  }
  if (options_.resume && options_.checkpoint_path.empty()) {
    return Status::InvalidArgument("resume requires a checkpoint_path");
  }
  if (options_.checkpoint_every_epochs < 1) {
    return Status::InvalidArgument("checkpoint_every_epochs must be >= 1");
  }
  if (options_.max_bad_batch_fraction < 0.0f ||
      options_.max_bad_batch_fraction > 1.0f) {
    return Status::InvalidArgument(
        "max_bad_batch_fraction must be within [0, 1]");
  }
  if (options_.max_epoch_retries < 0) {
    return Status::InvalidArgument("max_epoch_retries must be >= 0");
  }

  // Discrete prompt modes have no trainable prompt parameters: matching
  // runs zero-shot on the frozen pre-trained model.
  std::vector<Tensor> params = TrainableParameters();
  if (params.empty()) {
    if (options_.prompt_mode == PromptMode::kSoft) {
      return Status::Internal("soft prompt generator exposed no parameters");
    }
    return FitStats{};
  }

  // Freeze per paper Sec. II-C: image tower and the contrastive head
  // (temperature) stay fixed; prompt-side parameters train.
  model_->SetTraining(true);
  if (options_.freeze_image_encoder) {
    model_->image().SetRequiresGrad(false);
  }
  if (!options_.tune_text_encoder) {
    model_->text().SetRequiresGrad(false);
  }
  nn::AdamW optimizer(params, options_.learning_rate);

  // Whatever path Fit exits through — success, checkpoint I/O failure,
  // retry exhaustion — the shared model must come back in inference mode
  // with requires_grad restored for its other users.
  struct ModeRestore {
    CrossEm* self;
    ~ModeRestore() {
      self->model_->SetTraining(false);
      if (self->options_.freeze_image_encoder) {
        self->model_->image().SetRequiresGrad(true);
      }
      if (!self->options_.tune_text_encoder) {
        self->model_->text().SetRequiresGrad(true);
      }
    }
  } mode_restore{this};

  // Compiled tuning steps (core/step_plan.h): trace the step once per
  // batch shape, replay thereafter. Built AFTER the freeze above so the
  // traced tapes see the final requires_grad state; batches the planner
  // declines run the eager path unchanged. CROSSEM_EXEC_PLAN=0 disables.
  std::unique_ptr<FitStepPlanner> planner;
  if (soft_gen_ && FitStepPlanner::Eligible(options_)) {
    planner = std::make_unique<FitStepPlanner>(model_, soft_gen_.get(),
                                               &options_, params, images);
  }

  const int64_t num_images = images.size(0);
  FitStats stats;
  MemoryTracker::Instance().ResetPeak();
  Timer total_timer;

  MiniBatchGenerator generator(model_, graph_, tokenizer_, options_.pcp);
  Tensor proximity;

  // ---- Resume (bit-for-bit) ----
  // The checkpoint restores everything an uninterrupted run would carry
  // into epoch k: parameters, AdamW moments/step, the data-order RNG, the
  // (possibly backed-off) learning rate, and the proximity matrix — which
  // must be reloaded, not recomputed, because an uninterrupted run builds
  // it once from the pre-tuning encoders.
  const bool checkpointing = !options_.checkpoint_path.empty();
  const std::vector<std::pair<std::string, Tensor>> named_params =
      NamedTrainableParameters();
  int64_t start_epoch = 0;
  if (checkpointing && options_.resume &&
      io::FileExists(options_.checkpoint_path)) {
    nn::TrainState train_state;
    CROSSEM_RETURN_NOT_OK(nn::LoadTrainState(named_params, &train_state,
                                             options_.checkpoint_path));
    CROSSEM_RETURN_NOT_OK(optimizer.ImportState(train_state.optimizer));
    CROSSEM_RETURN_NOT_OK(rng_.LoadState(train_state.rng_state));
    optimizer.set_learning_rate(train_state.learning_rate);
    proximity = train_state.proximity;
    start_epoch = train_state.next_epoch;
    if (options_.use_mini_batch_generation && !proximity.defined()) {
      return Status::InvalidArgument(
          "checkpoint '" + options_.checkpoint_path +
          "' lacks the proximity matrix mini-batch generation needs");
    }
    CROSSEM_LOG(Info) << "resumed from '" << options_.checkpoint_path
                      << "' at epoch " << start_epoch;
  }

  // PCP phases 1-2 are data preprocessing (paper Fig. 5): the property
  // closeness and proximity matrices are computed once, under the frozen
  // pre-trained encoders, and reused across epochs.
  if (options_.use_mini_batch_generation && !proximity.defined()) {
    proximity = generator.ComputeProximity(vertices, images);
  }

  // ---- Telemetry sink (JSONL, one line per epoch) ----
  // A fresh run truncates so stale lines from a previous run can't mix
  // into the new curve; a resume appends to keep one line per epoch
  // across the interruption.
  std::ofstream telemetry_out;
  if (!options_.telemetry_path.empty()) {
    telemetry_out.open(options_.telemetry_path,
                       start_epoch > 0 ? std::ios::app : std::ios::trunc);
    if (!telemetry_out) {
      return Status::IOError("cannot open telemetry file '" +
                             options_.telemetry_path + "' for writing");
    }
  }

  for (int64_t epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    CROSSEM_TRACE_SPAN_V(epoch_span, "epoch");
    epoch_span.Arg("epoch", epoch);
    Timer epoch_timer;
    PeakMemoryScope mem_scope;

    // Epoch-start snapshot the divergence guard rolls back to. The RNG is
    // part of it so a retried epoch replays the same batch sequence.
    std::vector<Tensor> param_snapshot;
    param_snapshot.reserve(params.size());
    for (const Tensor& p : params) param_snapshot.push_back(p.Clone());
    const nn::Adam::State opt_snapshot = optimizer.ExportState();
    const std::string rng_snapshot = rng_.SaveState();

    int64_t retries = 0;
    EpochStats es;
    for (;;) {
      CROSSEM_RETURN_NOT_OK(RunEpochAttempt(vertices, images, proximity,
                                            &generator, &optimizer, params,
                                            num_images, planner.get(), &es));
      const int64_t attempted = es.num_batches + es.bad_batches;
      const bool diverged =
          attempted > 0 &&
          static_cast<float>(es.bad_batches) >
              options_.max_bad_batch_fraction * static_cast<float>(attempted);
      if (!diverged) break;

      // Roll back to the epoch-start snapshot; nothing of the failed
      // attempt survives.
      for (size_t i = 0; i < params.size(); ++i) {
        Tensor p = params[i];
        std::copy_n(param_snapshot[i].data(), param_snapshot[i].numel(),
                    p.data());
      }
      CROSSEM_RETURN_NOT_OK(optimizer.ImportState(opt_snapshot));
      CROSSEM_RETURN_NOT_OK(rng_.LoadState(rng_snapshot));
      if (retries >= options_.max_epoch_retries) {
        return Status::Internal(
            "epoch " + std::to_string(epoch) + " diverged (" +
            std::to_string(es.bad_batches) + "/" + std::to_string(attempted) +
            " batches with non-finite loss/gradients) after " +
            std::to_string(retries) + " retries; learning rate backed off to " +
            std::to_string(optimizer.learning_rate()) +
            "; parameters rolled back to the last good state");
      }
      ++retries;
      optimizer.set_learning_rate(0.5f * optimizer.learning_rate());
      CROSSEM_LOG(Warning) << "epoch " << epoch << " diverged ("
                           << es.bad_batches << "/" << attempted
                           << " bad batches); retry " << retries
                           << " with learning rate "
                           << optimizer.learning_rate();
    }
    es.retries = retries;
    es.learning_rate = optimizer.learning_rate();
    es.seconds = epoch_timer.ElapsedSeconds();
    es.peak_bytes = mem_scope.PeakBytes();
    stats.peak_bytes = std::max(stats.peak_bytes, es.peak_bytes);
    stats.epochs.push_back(es);

    if (telemetry_out.is_open()) {
      obs::EpochTelemetry t;
      t.epoch = epoch;
      t.loss = es.loss;
      t.grad_norm = es.grad_norm;
      t.learning_rate = es.learning_rate;
      t.num_batches = es.num_batches;
      t.num_pairs = es.num_pairs;
      t.bad_batches = es.bad_batches;
      t.retries = es.retries;
      t.peak_bytes = es.peak_bytes;
      t.seconds = es.seconds;
      t.batch_gen_seconds = es.batch_gen_seconds;
      t.encode_seconds = es.encode_seconds;
      t.score_seconds = es.score_seconds;
      t.backward_seconds = es.backward_seconds;
      t.optimizer_seconds = es.optimizer_seconds;
      telemetry_out << obs::EpochTelemetryJson(t) << '\n';
      telemetry_out.flush();  // each line survives a mid-training crash
      if (!telemetry_out) {
        return Status::IOError("failed writing telemetry to '" +
                               options_.telemetry_path + "'");
      }
    }

    if (checkpointing &&
        ((epoch + 1) % options_.checkpoint_every_epochs == 0 ||
         epoch + 1 == options_.epochs)) {
      CROSSEM_TRACE_SPAN("checkpoint");
      nn::TrainState train_state;
      train_state.next_epoch = epoch + 1;
      train_state.learning_rate = optimizer.learning_rate();
      train_state.optimizer = optimizer.ExportState();
      train_state.rng_state = rng_.SaveState();
      train_state.proximity = proximity;
      CROSSEM_RETURN_NOT_OK(nn::SaveTrainState(named_params, train_state,
                                               options_.checkpoint_path));
    }
  }
  stats.total_seconds = total_timer.ElapsedSeconds();
  return stats;
}

Status CrossEm::RunEpochAttempt(const std::vector<graph::VertexId>& vertices,
                                const Tensor& images, const Tensor& proximity,
                                MiniBatchGenerator* generator,
                                nn::Optimizer* optimizer,
                                const std::vector<Tensor>& params,
                                int64_t num_images, FitStepPlanner* planner,
                                EpochStats* es) {
  *es = EpochStats{};

  // ---- Mini-batch construction (Alg. 1 line 3 / Alg. 2 + Alg. 3) ----
  Timer phase_timer;
  std::vector<MiniBatch> batches;
  if (options_.use_mini_batch_generation) {
    CROSSEM_ASSIGN_OR_RETURN(
        batches, generator->PartitionFromProximity(vertices, proximity, &rng_));
    if (options_.use_negative_sampling) {
      NegativeSampler sampler(options_.negative_sampling);
      batches =
          sampler.Apply(std::move(batches), proximity, vertices, &rng_);
    }
    // Cap contrastive batch sizes: split oversize partitions.
    std::vector<MiniBatch> sized;
    for (MiniBatch& mb : batches) {
      for (size_t vs = 0; vs < mb.vertices.size();
           vs += static_cast<size_t>(options_.batch_vertices)) {
        for (size_t is = 0; is < mb.image_indices.size();
             is += static_cast<size_t>(options_.batch_images)) {
          MiniBatch piece;
          piece.vertices.assign(
              mb.vertices.begin() + static_cast<int64_t>(vs),
              mb.vertices.begin() +
                  std::min(vs + static_cast<size_t>(options_.batch_vertices),
                           mb.vertices.size()));
          piece.image_indices.assign(
              mb.image_indices.begin() + static_cast<int64_t>(is),
              mb.image_indices.begin() +
                  std::min(is + static_cast<size_t>(options_.batch_images),
                           mb.image_indices.size()));
          sized.push_back(std::move(piece));
        }
      }
    }
    batches = std::move(sized);
  } else {
    // Random split of the full candidate-pair set V x I: every vertex
    // chunk is paired with every image chunk (the quadratic training
    // cost CrossEM+ avoids, Sec. III-C discussion).
    std::vector<graph::VertexId> vs = vertices;
    rng_.Shuffle(&vs);
    std::vector<int64_t> is(static_cast<size_t>(num_images));
    std::iota(is.begin(), is.end(), 0);
    rng_.Shuffle(&is);
    for (size_t v0 = 0; v0 < vs.size();
         v0 += static_cast<size_t>(options_.batch_vertices)) {
      for (size_t i0 = 0; i0 < is.size();
           i0 += static_cast<size_t>(options_.batch_images)) {
        MiniBatch mb;
        mb.vertices.assign(
            vs.begin() + static_cast<int64_t>(v0),
            vs.begin() +
                std::min(v0 + static_cast<size_t>(options_.batch_vertices),
                         vs.size()));
        mb.image_indices.assign(
            is.begin() + static_cast<int64_t>(i0),
            is.begin() +
                std::min(i0 + static_cast<size_t>(options_.batch_images),
                         is.size()));
        batches.push_back(std::move(mb));
      }
    }
  }

  es->batch_gen_seconds = phase_timer.ElapsedSeconds();

  // ---- Tuning steps (Alg. 1 lines 4-10) ----
  double epoch_loss = 0.0;
  double grad_norm_sum = 0.0;
  int64_t steps = 0;
  int64_t pairs = 0;
  int64_t bad = 0;
  for (const MiniBatch& mb : batches) {
    if (mb.vertices.empty() || mb.image_indices.empty()) continue;
    pairs += static_cast<int64_t>(mb.vertices.size()) *
             static_cast<int64_t>(mb.image_indices.size());

    Tensor loss;
    bool have_pairs = false;
    bool planned = false;
    if (planner != nullptr) {
      // Compiled step: encode + score + loss replayed from the traced
      // plan (or traced now, which is the same eager math instrumented).
      FitStepPlanner::StepOutcome fwd;
      phase_timer.Restart();
      planned = planner->RunForward(mb.vertices, mb.image_indices, &fwd);
      if (planned) {
        // The planned step fuses encode and score; book it under encode.
        es->encode_seconds += phase_timer.ElapsedSeconds();
        have_pairs = fwd.num_confident > 0;
        loss = fwd.loss;
      }
    }
    if (!planned) {
      // Image side: frozen tower, no tape (saves the activation memory
      // the paper's frozen-encoder design saves on GPU).
      phase_timer.Restart();
      Tensor image_emb;
      {
        CROSSEM_TRACE_SPAN("encode");
        {
          NoGradGuard guard;
          std::vector<Tensor> rows;
          rows.reserve(mb.image_indices.size());
          for (int64_t idx : mb.image_indices) {
            CROSSEM_CHECK_GE(idx, 0);
            CROSSEM_CHECK_LT(idx, num_images);
            rows.push_back(ops::Reshape(ops::Slice(images, 0, idx, idx + 1),
                                        {images.size(1), images.size(2)}));
          }
          image_emb = model_->image().Forward(ops::Stack(rows));
        }
      }
      Tensor text_emb;
      {
        CROSSEM_TRACE_SPAN("encode");
        text_emb = EncodeVerticesForTraining(mb.vertices);
      }
      es->encode_seconds += phase_timer.ElapsedSeconds();

      // Pseudo-positives X_p: the top-similarity pairs of the batch
      // (paper Sec. II-B: "X_p is collected from the pairs with top
      // similarity"; the rest forms X_n). We take mutual nearest
      // neighbors — (v, I) where I is v's best image AND v is I's best
      // vertex — which keeps only confident pairs and avoids the drift
      // of forcing a positive for every vertex.
      phase_timer.Restart();
      std::vector<int64_t> confident_rows;
      std::vector<int64_t> confident_targets;
      {
        CROSSEM_TRACE_SPAN("score");
        {
          NoGradGuard guard;
          Tensor sim = clip::ClipModel::SimilarityMatrix(text_emb.Detach(),
                                                         image_emb);
          std::vector<int64_t> t2i = ops::ArgMax(sim, -1);
          std::vector<int64_t> i2t =
              ops::ArgMax(ops::Transpose(sim, 0, 1), -1);
          for (size_t r = 0; r < t2i.size(); ++r) {
            const int64_t img = t2i[r];
            if (i2t[static_cast<size_t>(img)] == static_cast<int64_t>(r)) {
              confident_rows.push_back(static_cast<int64_t>(r));
              confident_targets.push_back(img);
            }
          }
        }
        if (!confident_rows.empty()) {
          Tensor selected_text = ops::IndexSelect(text_emb, confident_rows);
          loss = model_->ContrastiveLoss(selected_text, image_emb,
                                         confident_targets);
          if (options_.use_orthogonal_constraint && soft_gen_) {
            Tensor lo = OrthogonalPromptLoss(
                soft_gen_->PromptFeatures(mb.vertices));
            loss = CombinedLoss(loss, lo, options_.beta);
          }
        }
      }
      es->score_seconds += phase_timer.ElapsedSeconds();
      have_pairs = !confident_rows.empty();
    }
    if (!have_pairs) continue;  // no trustworthy pair

    optimizer->ZeroGrad();

    // Numeric guard: a batch whose loss or gradients are non-finite is
    // dropped before it can poison the parameters or the Adam moments.
    const float loss_value = loss.item();
    bool finite = std::isfinite(loss_value);
    float batch_grad_norm = 0.0f;
    if (finite) {
      phase_timer.Restart();
      {
        CROSSEM_TRACE_SPAN("backward");
        if (planned) {
          planner->RunBackward();  // tape replay (or first-time record)
        } else {
          loss.Backward();
        }
        batch_grad_norm = nn::ClipGradNorm(params, options_.grad_clip);
      }
      es->backward_seconds += phase_timer.ElapsedSeconds();
      finite = std::isfinite(batch_grad_norm);
    }
    if (!finite) {
      optimizer->ZeroGrad();
      ++bad;
      CROSSEM_LOG(Warning)
          << "skipping batch with non-finite loss/gradients (loss="
          << loss_value << ", " << mb.vertices.size() << " vertices x "
          << mb.image_indices.size() << " images)";
      continue;
    }
    phase_timer.Restart();
    optimizer->Step();  // carries its own "optimizer_step" span
    es->optimizer_seconds += phase_timer.ElapsedSeconds();
    epoch_loss += loss_value;
    grad_norm_sum += batch_grad_norm;
    ++steps;
  }

  es->loss = steps > 0 ? static_cast<float>(epoch_loss / steps) : 0.0f;
  es->grad_norm =
      steps > 0 ? static_cast<float>(grad_norm_sum / steps) : 0.0f;
  es->num_batches = steps;
  es->num_pairs = pairs;
  es->bad_batches = bad;
  return Status::OK();
}

}  // namespace core
}  // namespace crossem
