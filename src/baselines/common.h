// Shared interface for the paper's competitor methods (Sec. V-A):
// dual-encoder (CLIP, ALIGN), fusion-encoder (VisualBERT, ViLBERT, IMRAM,
// TransAE) and prompt-tuning (GPPT) families. Each is a miniature but
// mechanism-faithful reimplementation on this repository's substrate
// (see DESIGN.md).
//
// Heterogeneous vertices are serialized into texts "as presented in our
// hard prompt" (paper Sec. V-A: "We modify these models by serializing
// the graph into texts").
#ifndef CROSSEM_BASELINES_COMMON_H_
#define CROSSEM_BASELINES_COMMON_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/graph.h"
#include "tensor/tensor.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/status.h"

namespace crossem {
namespace baselines {

/// Everything a baseline needs to train and score.
struct BaselineContext {
  /// The dataset (world generates pre-training corpora; graph and images
  /// define the matching task).
  const data::CrossModalDataset* dataset = nullptr;
  const text::Tokenizer* tokenizer = nullptr;
  /// Matching-task queries: entity vertices of the test classes.
  std::vector<graph::VertexId> vertices;
  /// Matching-task candidates: stacked patch tensor [N, P, patch_dim].
  Tensor images;
  /// Class id of each image row (used only by supervised baselines,
  /// which may train on TRAIN-class labels — never on test classes).
  std::vector<int64_t> image_classes;
  uint64_t seed = 7;
};

/// A cross-modal matching method under evaluation.
class CrossModalBaseline {
 public:
  virtual ~CrossModalBaseline() = default;

  virtual std::string name() const = 0;

  /// Pre-trains / fits the method. Implementations must not read
  /// test-class supervision.
  virtual Status Fit(const BaselineContext& ctx) = 0;

  /// Score matrix [ctx.vertices.size(), ctx.images.size(0)]; higher is a
  /// better match.
  virtual Result<Tensor> Score(const BaselineContext& ctx) = 0;
};

/// Serializes a vertex and its 1-hop neighborhood into text (the hard
/// caption serialization shared by all text-consuming baselines).
std::string SerializeVertex(const graph::Graph& graph, graph::VertexId v);

/// Mean patch vector per image: [N, patch_dim] from [N, P, patch_dim]
/// (the cheap visual summary several baselines build on).
Tensor MeanPatches(const Tensor& images);

}  // namespace baselines
}  // namespace crossem

#endif  // CROSSEM_BASELINES_COMMON_H_
