// Dual-encoder competitors (paper Sec. V-A, "Dual encoder approaches"):
//   - CLIP [17]: the shared pre-trained mini-CLIP queried zero-shot with
//     the naive "a photo of <label>" prompt (the paper's baseline of
//     Sec. II-B).
//   - ALIGN [18]: an independently pre-trained dual encoder trained on a
//     noisier caption corpus ("large amounts of noisy text data"),
//     reproduced by raising caption noise and shortening training.
#ifndef CROSSEM_BASELINES_DUAL_ENCODER_H_
#define CROSSEM_BASELINES_DUAL_ENCODER_H_

#include <memory>

#include "baselines/common.h"
#include "clip/clip.h"
#include "clip/pretrain.h"

namespace crossem {
namespace baselines {

/// Zero-shot CLIP with the naive label prompt.
class ClipZeroShot : public CrossModalBaseline {
 public:
  /// `model` is the shared pre-trained CLIP; not owned, not modified.
  explicit ClipZeroShot(const clip::ClipModel* model);

  std::string name() const override { return "CLIP"; }
  Status Fit(const BaselineContext& ctx) override;
  Result<Tensor> Score(const BaselineContext& ctx) override;

 private:
  const clip::ClipModel* model_;
};

/// ALIGN-style noisy dual encoder (owns its model).
class AlignBaseline : public CrossModalBaseline {
 public:
  AlignBaseline() = default;

  std::string name() const override { return "ALIGN"; }
  Status Fit(const BaselineContext& ctx) override;
  Result<Tensor> Score(const BaselineContext& ctx) override;

 private:
  std::unique_ptr<clip::ClipModel> model_;
};

}  // namespace baselines
}  // namespace crossem

#endif  // CROSSEM_BASELINES_DUAL_ENCODER_H_
