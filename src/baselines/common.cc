#include "baselines/common.h"

#include "core/hard_prompt.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace baselines {

std::string SerializeVertex(const graph::Graph& graph, graph::VertexId v) {
  core::HardPromptOptions opt;
  opt.hops = 1;
  core::HardPromptGenerator gen(&graph, opt);
  return gen.Generate(v);
}

Tensor MeanPatches(const Tensor& images) {
  CROSSEM_CHECK_EQ(images.dim(), 3);
  return ops::Mean(images, 1, /*keepdim=*/false);
}

}  // namespace baselines
}  // namespace crossem
