#include "baselines/dual_encoder.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace baselines {

namespace {

/// Encodes images in chunks through a frozen tower.
Tensor EncodeImagesChunked(const clip::ClipModel& model, const Tensor& images) {
  NoGradGuard guard;
  const int64_t n = images.size(0);
  std::vector<Tensor> chunks;
  for (int64_t start = 0; start < n; start += 64) {
    const int64_t end = std::min<int64_t>(start + 64, n);
    chunks.push_back(model.image().Forward(ops::Slice(images, 0, start, end)));
  }
  return ops::Concat(chunks, 0);
}

Tensor ScoreWithModel(const clip::ClipModel& model,
                      const BaselineContext& ctx) {
  NoGradGuard guard;
  std::vector<std::string> prompts;
  for (graph::VertexId v : ctx.vertices) {
    prompts.push_back("a photo of " + ctx.dataset->graph.VertexLabel(v));
  }
  Tensor text_emb =
      model.text().Forward(ctx.tokenizer->EncodeBatch(prompts));
  Tensor image_emb = EncodeImagesChunked(model, ctx.images);
  return clip::ClipModel::SimilarityMatrix(text_emb, image_emb);
}

}  // namespace

ClipZeroShot::ClipZeroShot(const clip::ClipModel* model) : model_(model) {
  CROSSEM_CHECK(model != nullptr);
}

Status ClipZeroShot::Fit(const BaselineContext&) {
  return Status::OK();  // pre-trained; applied zero-shot
}

Result<Tensor> ClipZeroShot::Score(const BaselineContext& ctx) {
  if (ctx.dataset == nullptr || ctx.tokenizer == nullptr) {
    return Status::InvalidArgument("baseline context incomplete");
  }
  return ScoreWithModel(*model_, ctx);
}

Status AlignBaseline::Fit(const BaselineContext& ctx) {
  if (ctx.dataset == nullptr || ctx.tokenizer == nullptr) {
    return Status::InvalidArgument("baseline context incomplete");
  }
  const data::World& world = *ctx.dataset->world;
  clip::ClipConfig cc;
  cc.vocab_size = ctx.tokenizer->vocab().size();
  cc.text_context = ctx.tokenizer->max_len();
  cc.model_dim = 32;
  cc.text_layers = 2;
  cc.text_heads = 4;
  cc.image_layers = 2;
  cc.image_heads = 4;
  cc.patch_dim = world.config().patch_dim;
  cc.max_patches = 32;
  cc.embed_dim = 24;
  Rng rng(ctx.seed + 101);
  model_ = std::make_unique<clip::ClipModel>(cc, &rng);

  clip::PretrainConfig pc;
  pc.epochs = 24;            // shorter than the shared CLIP
  pc.batches_per_epoch = 20;
  pc.batch_size = 12;
  pc.caption_noise = 0.35f;  // ALIGN's defining trait: noisy supervision
  pc.name_mention_prob = 0.45f;
  pc.seed = ctx.seed + 102;
  std::vector<int64_t> all(static_cast<size_t>(world.num_classes()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
  auto stats =
      clip::PretrainClip(model_.get(), world, all, *ctx.tokenizer, pc);
  return stats.ok() ? Status::OK() : stats.status();
}

Result<Tensor> AlignBaseline::Score(const BaselineContext& ctx) {
  if (!model_) return Status::Internal("AlignBaseline::Fit not called");
  return ScoreWithModel(*model_, ctx);
}

}  // namespace baselines
}  // namespace crossem
