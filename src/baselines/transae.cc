#include "baselines/transae.h"

#include <map>

#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace baselines {

class TransAeBaseline::Model : public nn::Module {
 public:
  Model(const TransAeConfig& cfg, int64_t vocab_size, int64_t patch_dim,
        int64_t num_relations, Rng* rng)
      : cfg_(cfg),
        tokens_(vocab_size, cfg.model_dim, rng),
        visual_proj_(patch_dim, cfg.model_dim, rng),
        enc_(2 * cfg.model_dim, cfg.hidden_dim, rng),
        dec_(cfg.hidden_dim, 2 * cfg.model_dim, rng),
        relations_(num_relations, cfg.hidden_dim, rng) {
    RegisterModule("tokens", &tokens_);
    RegisterModule("visual_proj", &visual_proj_);
    RegisterModule("enc", &enc_);
    RegisterModule("dec", &dec_);
    RegisterModule("relations", &relations_);
  }

  Tensor EmbedText(const std::vector<std::vector<int64_t>>& token_batch) const {
    const int64_t b = static_cast<int64_t>(token_batch.size());
    const int64_t t = static_cast<int64_t>(token_batch[0].size());
    std::vector<int64_t> flat;
    for (const auto& row : token_batch) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    Tensor emb = ops::Reshape(tokens_.Forward(flat), {b, t, cfg_.model_dim});
    return ops::Mean(emb, 1, /*keepdim=*/false);
  }

  Tensor EmbedVisual(const Tensor& images) const {
    return visual_proj_.Forward(MeanPatches(images));
  }

  /// Unified hidden from the multi-modal input [text ; visual].
  Tensor Hidden(const Tensor& text, const Tensor& visual) const {
    return ops::Tanh(enc_.Forward(ops::Concat({text, visual}, 1)));
  }

  /// Text-only / image-only hidden projections (the other half zeroed),
  /// used to place single-modality entities in the unified space.
  Tensor TextHidden(const Tensor& text) const {
    Tensor zeros = Tensor::Zeros({text.size(0), cfg_.model_dim});
    return Hidden(text, zeros);
  }
  Tensor ImageHidden(const Tensor& visual) const {
    Tensor zeros = Tensor::Zeros({visual.size(0), cfg_.model_dim});
    return ops::Tanh(enc_.Forward(ops::Concat({zeros, visual}, 1)));
  }

  Tensor Reconstruct(const Tensor& hidden) const {
    return dec_.Forward(hidden);
  }

  Tensor RelationEmbedding(const std::vector<int64_t>& rel_ids) const {
    return relations_.Forward(rel_ids);
  }

  const TransAeConfig& config() const { return cfg_; }

 private:
  TransAeConfig cfg_;
  nn::Embedding tokens_;
  nn::Linear visual_proj_;
  nn::Linear enc_;
  nn::Linear dec_;
  nn::Embedding relations_;
};

TransAeBaseline::TransAeBaseline(TransAeConfig config) : config_(config) {}
TransAeBaseline::~TransAeBaseline() = default;

Status TransAeBaseline::Fit(const BaselineContext& ctx) {
  if (ctx.dataset == nullptr || ctx.tokenizer == nullptr) {
    return Status::InvalidArgument("baseline context incomplete");
  }
  Rng rng(ctx.seed + 501);
  const data::World& world = *ctx.dataset->world;
  const graph::Graph& graph = ctx.dataset->graph;

  // Relation vocabulary from edge labels.
  std::map<std::string, int64_t> relation_ids;
  for (graph::EdgeId e = 0; e < graph.NumEdges(); ++e) {
    relation_ids.emplace(graph.GetEdge(e).label,
                         static_cast<int64_t>(relation_ids.size()));
  }
  model_ = std::make_unique<Model>(
      config_, ctx.tokenizer->vocab().size(), world.config().patch_dim,
      std::max<int64_t>(1, static_cast<int64_t>(relation_ids.size())), &rng);
  nn::AdamW opt(model_->Parameters(), config_.learning_rate);

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (int64_t step = 0; step < config_.batches_per_epoch; ++step) {
      // -- Reconstruction over caption-image pairs --------------------------
      auto classes = rng.SampleWithoutReplacement(
          world.num_classes(),
          std::min<int64_t>(config_.batch_size, world.num_classes()));
      std::vector<std::string> captions;
      std::vector<Tensor> patch_list;
      for (int64_t cls : classes) {
        captions.push_back(world.SampleCaption(cls, 3, &rng));
        patch_list.push_back(world.SampleImage(cls, 8, 4, &rng).patches);
      }
      Tensor text = model_->EmbedText(ctx.tokenizer->EncodeBatch(captions));
      Tensor visual = model_->EmbedVisual(ops::Stack(patch_list));
      Tensor input = ops::Concat({text, visual}, 1);
      Tensor hidden = model_->Hidden(text, visual);
      Tensor diff = ops::Sub(model_->Reconstruct(hidden), input.Detach());
      Tensor recon_loss = ops::Mean(ops::Mul(diff, diff));

      // -- TransE loss over sampled graph edges -------------------------------
      Tensor structure_loss = Tensor::Scalar(0.0f);
      if (graph.NumEdges() > 0) {
        const int64_t n_edges =
            std::min<int64_t>(config_.batch_size, graph.NumEdges());
        std::vector<std::string> head_texts, tail_texts, corrupt_texts;
        std::vector<int64_t> rels;
        for (int64_t i = 0; i < n_edges; ++i) {
          const auto& edge = graph.GetEdge(
              rng.UniformInt(0, graph.NumEdges() - 1));
          head_texts.push_back(graph.VertexLabel(edge.src));
          tail_texts.push_back(graph.VertexLabel(edge.dst));
          corrupt_texts.push_back(graph.VertexLabel(
              rng.UniformInt(0, graph.NumVertices() - 1)));
          rels.push_back(relation_ids.at(edge.label));
        }
        Tensor h = model_->TextHidden(
            model_->EmbedText(ctx.tokenizer->EncodeBatch(head_texts)));
        Tensor t = model_->TextHidden(
            model_->EmbedText(ctx.tokenizer->EncodeBatch(tail_texts)));
        Tensor t_neg = model_->TextHidden(
            model_->EmbedText(ctx.tokenizer->EncodeBatch(corrupt_texts)));
        Tensor r = model_->RelationEmbedding(rels);
        // margin + ||h+r-t|| - ||h+r-t'||, hinged at zero.
        auto translate_dist = [&](const Tensor& tail) {
          Tensor d = ops::Sub(ops::Add(h, r), tail);
          return ops::Sqrt(ops::AddScalar(
              ops::Sum(ops::Mul(d, d), 1, false), 1e-8f));
        };
        Tensor pos = translate_dist(t);
        Tensor neg = translate_dist(t_neg);
        structure_loss = ops::Mean(ops::Relu(
            ops::AddScalar(ops::Sub(pos, neg), config_.margin)));
      }

      Tensor loss = ops::Add(
          recon_loss,
          ops::MulScalar(structure_loss, config_.structure_weight));
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model_->Parameters(), 5.0f);
      opt.Step();
    }
  }
  return Status::OK();
}

Result<Tensor> TransAeBaseline::Score(const BaselineContext& ctx) {
  if (!model_) return Status::Internal("Fit not called");
  NoGradGuard guard;
  std::vector<std::string> prompts;
  for (graph::VertexId v : ctx.vertices) {
    prompts.push_back(SerializeVertex(ctx.dataset->graph, v));
  }
  Tensor vh = ops::L2Normalize(model_->TextHidden(
      model_->EmbedText(ctx.tokenizer->EncodeBatch(prompts))));
  Tensor ih = ops::L2Normalize(
      model_->ImageHidden(model_->EmbedVisual(ctx.images)));
  return ops::MatMul(vh, ops::Transpose(ih, 0, 1));
}

}  // namespace baselines
}  // namespace crossem
