#include "baselines/kge.h"

#include <map>

#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace baselines {

const char* KgeScoreFnName(KgeScoreFn fn) {
  switch (fn) {
    case KgeScoreFn::kTransE:
      return "TransE";
    case KgeScoreFn::kDistMult:
      return "DistMult";
    case KgeScoreFn::kRotatE:
      return "RotatE";
    case KgeScoreFn::kRsme:
      return "RSME";
  }
  return "?";
}

class KgeBaseline::Model : public nn::Module {
 public:
  Model(const KgeConfig& cfg, int64_t num_graph_vertices, int64_t num_images,
        int64_t num_relations, int64_t patch_dim, Rng* rng)
      : cfg_(cfg),
        num_graph_vertices_(num_graph_vertices),
        entities_(num_graph_vertices + num_images, cfg.dim, rng,
                  /*init_stddev=*/0.1f),
        relations_(num_relations, cfg.dim, rng, /*init_stddev=*/0.1f),
        visual_proj_(patch_dim, cfg.dim, rng) {
    RegisterModule("entities", &entities_);
    RegisterModule("relations", &relations_);
    RegisterModule("visual_proj", &visual_proj_);
    if (cfg.score_fn == KgeScoreFn::kRsme) {
      visual_gate_ = RegisterParameter("visual_gate",
                                       Tensor::Zeros({cfg.dim}));
    }
  }

  int64_t ImageNode(int64_t image_index) const {
    return num_graph_vertices_ + image_index;
  }

  /// Entity embeddings for a list of node ids; image nodes of RSME blend
  /// in their projected visual summary through the learned gate.
  Tensor Embed(const std::vector<int64_t>& nodes,
               const Tensor& image_summaries) const {
    Tensor base = entities_.Forward(nodes);
    if (cfg_.score_fn != KgeScoreFn::kRsme) return base;
    // Visual rows: zero for graph vertices, projected summary for images.
    const int64_t b = static_cast<int64_t>(nodes.size());
    Tensor visual = Tensor::Zeros({b, cfg_.dim});
    std::vector<int64_t> image_rows;
    std::vector<int64_t> batch_rows;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] >= num_graph_vertices_) {
        image_rows.push_back(nodes[i] - num_graph_vertices_);
        batch_rows.push_back(static_cast<int64_t>(i));
      }
    }
    if (image_rows.empty()) return base;
    Tensor projected = visual_proj_.Forward(
        ops::IndexSelect(image_summaries, image_rows));
    // Scatter the projected rows into the right batch positions by
    // building the dense visual tensor (no-grad copy of values is not
    // allowed: keep it differentiable via Concat of selected rows).
    // Simpler differentiable route: gate applies only to image rows.
    Tensor gate = ops::Sigmoid(visual_gate_);
    Tensor blended_rows = ops::Add(
        ops::Mul(ops::IndexSelect(base, batch_rows),
                 ops::AddScalar(ops::Neg(gate), 1.0f)),
        ops::Mul(projected, gate));
    // Reassemble: rows not in batch_rows keep base.
    std::vector<Tensor> out_rows;
    size_t next_image = 0;
    for (int64_t i = 0; i < b; ++i) {
      if (next_image < batch_rows.size() && batch_rows[next_image] == i) {
        out_rows.push_back(ops::Slice(blended_rows, 0,
                                      static_cast<int64_t>(next_image),
                                      static_cast<int64_t>(next_image) + 1));
        ++next_image;
      } else {
        out_rows.push_back(ops::Slice(base, 0, i, i + 1));
      }
    }
    return ops::Concat(out_rows, 0);
  }

  /// Triple scores for aligned (h, r, t) rows: [B].
  Tensor ScoreTriples(const Tensor& h, const std::vector<int64_t>& rels,
                      const Tensor& t) const {
    Tensor r = relations_.Forward(rels);
    switch (cfg_.score_fn) {
      case KgeScoreFn::kTransE: {
        Tensor d = ops::Sub(ops::Add(h, r), t);
        return ops::Neg(ops::Sqrt(ops::AddScalar(
            ops::Sum(ops::Mul(d, d), 1, false), 1e-8f)));
      }
      case KgeScoreFn::kDistMult:
      case KgeScoreFn::kRsme:
        return ops::Sum(ops::Mul(ops::Mul(h, r), t), 1, false);
      case KgeScoreFn::kRotatE: {
        const int64_t half = cfg_.dim / 2;
        Tensor hre = ops::Slice(h, 1, 0, half);
        Tensor him = ops::Slice(h, 1, half, cfg_.dim);
        Tensor theta = ops::Slice(r, 1, 0, half);
        Tensor tre = ops::Slice(t, 1, 0, half);
        Tensor tim = ops::Slice(t, 1, half, cfg_.dim);
        Tensor c = ops::Cos(theta);
        Tensor s = ops::Sin(theta);
        Tensor rot_re = ops::Sub(ops::Mul(hre, c), ops::Mul(him, s));
        Tensor rot_im = ops::Add(ops::Mul(hre, s), ops::Mul(him, c));
        Tensor dre = ops::Sub(rot_re, tre);
        Tensor dim = ops::Sub(rot_im, tim);
        Tensor dist2 = ops::Add(ops::Sum(ops::Mul(dre, dre), 1, false),
                                ops::Sum(ops::Mul(dim, dim), 1, false));
        return ops::Neg(ops::Sqrt(ops::AddScalar(dist2, 1e-8f)));
      }
    }
    return Tensor();
  }

  bool uses_margin_loss() const {
    return cfg_.score_fn == KgeScoreFn::kTransE ||
           cfg_.score_fn == KgeScoreFn::kRotatE;
  }

 private:
  KgeConfig cfg_;
  int64_t num_graph_vertices_;
  nn::Embedding entities_;
  nn::Embedding relations_;
  nn::Linear visual_proj_;
  Tensor visual_gate_;
};

KgeBaseline::KgeBaseline(KgeConfig config) : config_(config) {
  CROSSEM_CHECK_EQ(config.dim % 2, 0);
}
KgeBaseline::~KgeBaseline() = default;

Status KgeBaseline::Fit(const BaselineContext& ctx) {
  if (ctx.dataset == nullptr) {
    return Status::InvalidArgument("baseline context incomplete");
  }
  if (ctx.image_classes.size() !=
      static_cast<size_t>(ctx.images.size(0))) {
    return Status::InvalidArgument("image_classes must align with images");
  }
  const data::CrossModalDataset& ds = *ctx.dataset;
  const graph::Graph& graph = ds.graph;
  Rng rng(ctx.seed + 701);

  // Relation vocabulary: edge labels + has_image.
  std::map<std::string, int64_t> relation_ids;
  for (graph::EdgeId e = 0; e < graph.NumEdges(); ++e) {
    relation_ids.emplace(graph.GetEdge(e).label,
                         static_cast<int64_t>(relation_ids.size()));
  }
  const int64_t has_image_rel =
      relation_ids.emplace("has_image", static_cast<int64_t>(relation_ids.size()))
          .first->second;
  has_image_rel_ = has_image_rel;

  model_ = std::make_unique<Model>(
      config_, graph.NumVertices(), ctx.images.size(0),
      static_cast<int64_t>(relation_ids.size()),
      ds.world->config().patch_dim, &rng);
  image_summaries_ = MeanPatches(ctx.images).Detach();

  // Training triples: the graph plus TRAIN-class image links.
  struct Triple {
    int64_t h, r, t;
  };
  std::vector<Triple> triples;
  for (graph::EdgeId e = 0; e < graph.NumEdges(); ++e) {
    const auto& edge = graph.GetEdge(e);
    triples.push_back({edge.src, relation_ids.at(edge.label), edge.dst});
  }
  std::vector<bool> is_train(ds.entities.size(), false);
  for (int64_t c : ds.train_classes) is_train[static_cast<size_t>(c)] = true;
  for (int64_t img = 0; img < ctx.images.size(0); ++img) {
    const int64_t cls = ctx.image_classes[static_cast<size_t>(img)];
    if (cls >= 0 && cls < static_cast<int64_t>(is_train.size()) &&
        is_train[static_cast<size_t>(cls)]) {
      triples.push_back({ds.entities[static_cast<size_t>(cls)], has_image_rel,
                         model_->ImageNode(img)});
    }
  }
  if (triples.empty()) return Status::InvalidArgument("no training triples");

  const int64_t total_nodes = graph.NumVertices() + ctx.images.size(0);
  nn::AdamW opt(model_->Parameters(), config_.learning_rate);
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (int64_t step = 0; step < config_.batches_per_epoch; ++step) {
      std::vector<int64_t> heads, rels, tails, corrupt;
      for (int64_t i = 0; i < config_.batch_size; ++i) {
        const Triple& tr = triples[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(triples.size()) - 1))];
        heads.push_back(tr.h);
        rels.push_back(tr.r);
        tails.push_back(tr.t);
        corrupt.push_back(rng.UniformInt(0, total_nodes - 1));
      }
      Tensor h = model_->Embed(heads, image_summaries_);
      Tensor t = model_->Embed(tails, image_summaries_);
      Tensor t_neg = model_->Embed(corrupt, image_summaries_);
      Tensor pos = model_->ScoreTriples(h, rels, t);
      Tensor neg = model_->ScoreTriples(h, rels, t_neg);
      Tensor loss;
      if (model_->uses_margin_loss()) {
        loss = ops::Mean(ops::Relu(
            ops::AddScalar(ops::Sub(neg, pos), config_.margin)));
      } else {
        // Logistic: softplus(-pos) + softplus(neg).
        Tensor lp = ops::Log(ops::AddScalar(ops::Exp(ops::Neg(pos)), 1.0f));
        Tensor ln = ops::Log(ops::AddScalar(ops::Exp(neg), 1.0f));
        loss = ops::Add(ops::Mean(lp), ops::Mean(ln));
      }
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model_->Parameters(), 5.0f);
      opt.Step();
    }
  }
  return Status::OK();
}

Result<Tensor> KgeBaseline::Score(const BaselineContext& ctx) {
  if (!model_) return Status::Internal("Fit not called");
  NoGradGuard guard;
  const int64_t nv = static_cast<int64_t>(ctx.vertices.size());
  const int64_t ni = ctx.images.size(0);
  std::vector<int64_t> image_nodes;
  for (int64_t img = 0; img < ni; ++img) {
    image_nodes.push_back(model_->ImageNode(img));
  }
  Tensor tails = model_->Embed(image_nodes, image_summaries_);
  Tensor scores = Tensor::Zeros({nv, ni});
  for (int64_t v = 0; v < nv; ++v) {
    std::vector<int64_t> head_rep(static_cast<size_t>(ni), ctx.vertices[v]);
    std::vector<int64_t> rel_rep(static_cast<size_t>(ni), has_image_rel_);
    Tensor h = model_->Embed(head_rep, image_summaries_);
    Tensor s = model_->ScoreTriples(h, rel_rep, tails);
    for (int64_t i = 0; i < ni; ++i) scores.data()[v * ni + i] = s.at(i);
  }
  return scores;
}

}  // namespace baselines
}  // namespace crossem
