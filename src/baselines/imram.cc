#include "baselines/imram.h"

#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace baselines {

class ImramBaseline::Model : public nn::Module {
 public:
  Model(const ImramConfig& cfg, int64_t vocab_size, int64_t patch_dim,
        Rng* rng)
      : cfg_(cfg),
        tokens_(vocab_size, cfg.model_dim, rng),
        patch_proj_(patch_dim, cfg.model_dim, rng),
        memory_update_(cfg.model_dim, cfg.model_dim, rng),
        gate_(2 * cfg.model_dim, cfg.model_dim, rng) {
    RegisterModule("tokens", &tokens_);
    RegisterModule("patch_proj", &patch_proj_);
    RegisterModule("memory_update", &memory_update_);
    RegisterModule("gate", &gate_);
  }

  /// Text embeddings [B, D]: mean of token embeddings (pad-excluded
  /// weighting kept simple: pads embed near zero after training).
  Tensor EmbedText(const std::vector<std::vector<int64_t>>& token_batch) const {
    const int64_t b = static_cast<int64_t>(token_batch.size());
    const int64_t t = static_cast<int64_t>(token_batch[0].size());
    std::vector<int64_t> flat;
    for (const auto& row : token_batch) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    Tensor emb = ops::Reshape(tokens_.Forward(flat), {b, t, cfg_.model_dim});
    return ops::Mean(emb, 1, /*keepdim=*/false);
  }

  /// Iterative attention-memory refinement (the defining IMRAM step):
  /// r_{k} = r_{k-1} + g * W(attend(r_{k-1}, patches)).
  Tensor Refine(const Tensor& text_summary, const Tensor& patches) const {
    Tensor p = patch_proj_.Forward(patches);  // [B, P, D]
    Tensor r = text_summary;                  // [B, D]
    const int64_t b = p.size(0);
    for (int64_t k = 0; k < cfg_.iterations; ++k) {
      // Attention of r over patches: scores [B, P].
      Tensor q = ops::Reshape(r, {b, 1, cfg_.model_dim});
      Tensor scores = ops::Softmax(
          ops::Reshape(ops::MatMul(q, ops::Transpose(p, -1, -2)),
                       {b, p.size(1)}));
      Tensor attended = ops::Reshape(
          ops::MatMul(ops::Reshape(scores, {b, 1, p.size(1)}), p),
          {b, cfg_.model_dim});
      // Gated memory update.
      Tensor g = ops::Sigmoid(gate_.Forward(ops::Concat({r, attended}, 1)));
      Tensor update = ops::Tanh(memory_update_.Forward(attended));
      r = ops::Add(r, ops::Mul(g, update));
    }
    return ops::L2Normalize(r);
  }

  /// Scores every (text row, image row) pair: [B_t, B_i].
  Tensor ScoreAll(const std::vector<std::vector<int64_t>>& token_batch,
                  const Tensor& patches) const {
    Tensor text = EmbedText(token_batch);           // [Bt, D]
    const int64_t bt = text.size(0);
    const int64_t bi = patches.size(0);
    // Each text must be refined against each image: replicate.
    std::vector<Tensor> rows;
    for (int64_t v = 0; v < bt; ++v) {
      Tensor tv = ops::Slice(text, 0, v, v + 1);    // [1, D]
      std::vector<Tensor> rep(static_cast<size_t>(bi), tv);
      Tensor tv_rep = ops::Concat(rep, 0);          // [Bi, D]
      Tensor refined = Refine(tv_rep, patches);     // [Bi, D]
      Tensor img_summary = ops::L2Normalize(
          ops::Mean(patch_proj_.Forward(patches), 1, false));  // [Bi, D]
      Tensor cos = ops::Sum(ops::Mul(refined, img_summary), 1, false);
      rows.push_back(ops::Reshape(cos, {1, bi}));
    }
    return ops::Concat(rows, 0);
  }

 private:
  ImramConfig cfg_;
  nn::Embedding tokens_;
  nn::Linear patch_proj_;
  nn::Linear memory_update_;
  nn::Linear gate_;
};

ImramBaseline::ImramBaseline(ImramConfig config) : config_(config) {}
ImramBaseline::~ImramBaseline() = default;

Status ImramBaseline::Fit(const BaselineContext& ctx) {
  if (ctx.dataset == nullptr || ctx.tokenizer == nullptr) {
    return Status::InvalidArgument("baseline context incomplete");
  }
  Rng rng(ctx.seed + 401);
  model_ = std::make_unique<Model>(config_, ctx.tokenizer->vocab().size(),
                                   ctx.dataset->world->config().patch_dim,
                                   &rng);
  nn::AdamW opt(model_->Parameters(), config_.learning_rate);
  const data::World& world = *ctx.dataset->world;
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (int64_t step = 0; step < config_.batches_per_epoch; ++step) {
      auto classes = rng.SampleWithoutReplacement(
          world.num_classes(),
          std::min<int64_t>(config_.batch_size, world.num_classes()));
      std::vector<std::string> captions;
      std::vector<Tensor> patch_list;
      for (int64_t cls : classes) {
        captions.push_back(
            world.SampleCaption(cls, config_.caption_attrs, &rng));
        patch_list.push_back(world.SampleImage(cls, 8, 4, &rng).patches);
      }
      Tensor scores = model_->ScoreAll(ctx.tokenizer->EncodeBatch(captions),
                                       ops::Stack(patch_list));
      // InfoNCE over the diagonal.
      std::vector<int64_t> diag(classes.size());
      for (size_t i = 0; i < diag.size(); ++i) {
        diag[i] = static_cast<int64_t>(i);
      }
      Tensor loss = ops::NllLoss(
          ops::LogSoftmax(ops::MulScalar(scores, 10.0f)), diag);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model_->Parameters(), 5.0f);
      opt.Step();
    }
  }
  return Status::OK();
}

Result<Tensor> ImramBaseline::Score(const BaselineContext& ctx) {
  if (!model_) return Status::Internal("Fit not called");
  NoGradGuard guard;
  std::vector<std::string> prompts;
  for (graph::VertexId v : ctx.vertices) {
    prompts.push_back(SerializeVertex(ctx.dataset->graph, v));
  }
  return model_->ScoreAll(ctx.tokenizer->EncodeBatch(prompts), ctx.images);
}

}  // namespace baselines
}  // namespace crossem
