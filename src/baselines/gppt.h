// GPPT [31]: "a supervised graph prompt model that generalizes graph
// representation model to downstream graph tasks. We modify its task
// objective to binary classification objective like previous EM works
// and provide feedback in a supervised manner" (paper Sec. V-A).
//
// Reproduced mechanism: a GraphSAGE representation of vertices plus a
// projected image summary feed a binary match classifier, trained with
// labeled pairs of the TRAIN classes only. Like the paper's GPPT row in
// Table II, the supervised classifier transfers poorly to unseen test
// classes.
#ifndef CROSSEM_BASELINES_GPPT_H_
#define CROSSEM_BASELINES_GPPT_H_

#include <memory>

#include "baselines/common.h"

namespace crossem {
namespace baselines {

struct GpptConfig {
  int64_t model_dim = 24;
  int64_t epochs = 10;
  int64_t batches_per_epoch = 12;
  int64_t batch_size = 16;
  float learning_rate = 2e-3f;
};

class GpptBaseline : public CrossModalBaseline {
 public:
  explicit GpptBaseline(GpptConfig config = {});
  ~GpptBaseline() override;

  std::string name() const override { return "GPPT"; }
  Status Fit(const BaselineContext& ctx) override;
  Result<Tensor> Score(const BaselineContext& ctx) override;

 private:
  class Model;
  GpptConfig config_;
  std::unique_ptr<Model> model_;
};

}  // namespace baselines
}  // namespace crossem

#endif  // CROSSEM_BASELINES_GPPT_H_
