#include "baselines/fusion.h"

#include <cmath>

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace baselines {

namespace {

/// Binary cross-entropy from logits against float labels.
Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& labels) {
  CROSSEM_CHECK_EQ(logits.numel(), static_cast<int64_t>(labels.size()));
  Tensor y = Tensor::FromVector(logits.shape(), labels);
  // loss = softplus(x) - y * x (numerically fine at our logit scales).
  Tensor softplus = ops::Log(ops::AddScalar(ops::Exp(logits), 1.0f));
  return ops::Mean(ops::Sub(softplus, ops::Mul(y, logits)));
}

/// Draws a balanced matched/mismatched caption-image batch from the world.
struct PairBatch {
  std::vector<std::string> captions;
  std::vector<Tensor> patch_list;
  std::vector<float> labels;
};

PairBatch SamplePairBatch(const data::World& world, int64_t batch_size,
                          int64_t caption_attrs, Rng* rng) {
  PairBatch batch;
  const int64_t n_cls = world.num_classes();
  for (int64_t i = 0; i < batch_size; ++i) {
    const int64_t cls = rng->UniformInt(0, n_cls - 1);
    const bool positive = (i % 2 == 0);
    int64_t caption_cls = cls;
    if (!positive) {
      do {
        caption_cls = rng->UniformInt(0, n_cls - 1);
      } while (caption_cls == cls && n_cls > 1);
    }
    batch.captions.push_back(
        world.SampleCaption(caption_cls, caption_attrs, rng));
    batch.patch_list.push_back(world.SampleImage(cls, 8, 4, rng).patches);
    batch.labels.push_back(positive ? 1.0f : 0.0f);
  }
  return batch;
}

}  // namespace

// -- VisualBERT ---------------------------------------------------------------

class VisualBertBaseline::Model : public nn::Module {
 public:
  Model(const FusionTrainConfig& cfg, int64_t vocab_size, int64_t patch_dim,
        Rng* rng)
      : dim_(cfg.model_dim),
        tokens_(vocab_size, cfg.model_dim, rng),
        patch_proj_(patch_dim, cfg.model_dim, rng),
        encoder_(/*num_layers=*/2, cfg.model_dim, cfg.heads,
                 4 * cfg.model_dim, rng),
        head_(cfg.model_dim, 1, rng) {
    positional_ = RegisterParameter(
        "positional", Tensor::Randn({64, cfg.model_dim}, rng, 0.02f));
    RegisterModule("tokens", &tokens_);
    RegisterModule("patch_proj", &patch_proj_);
    RegisterModule("encoder", &encoder_);
    RegisterModule("head", &head_);
  }

  /// Joint forward: logits [B] for (token rows, patches [B, P, pd]).
  Tensor Forward(const std::vector<std::vector<int64_t>>& token_batch,
                 const Tensor& patches) const {
    const int64_t b = static_cast<int64_t>(token_batch.size());
    const int64_t t = static_cast<int64_t>(token_batch[0].size());
    const int64_t p = patches.size(1);
    std::vector<int64_t> flat;
    for (const auto& row : token_batch) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    Tensor text = ops::Reshape(tokens_.Forward(flat), {b, t, dim_});
    Tensor vis = patch_proj_.Forward(patches);  // [B, P, D]
    Tensor seq = ops::Concat({text, vis}, 1);   // single stream
    seq = ops::Add(seq, ops::Slice(positional_, 0, 0, t + p));
    // Mask: text pads masked out; patches always visible.
    Tensor mask = Tensor::Ones({b, t + p});
    float* m = mask.data();
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t j = 0; j < t; ++j) {
        if (token_batch[static_cast<size_t>(i)][static_cast<size_t>(j)] ==
            text::Vocabulary::kPad) {
          m[i * (t + p) + j] = 0.0f;
        }
      }
    }
    Tensor h = encoder_.Forward(seq, mask);
    Tensor cls = ops::Reshape(ops::Slice(h, 1, 0, 1), {b, dim_});
    return ops::Reshape(head_.Forward(cls), {b});
  }

 private:
  int64_t dim_;
  nn::Embedding tokens_;
  nn::Linear patch_proj_;
  Tensor positional_;
  nn::TransformerEncoder encoder_;
  nn::Linear head_;
};

VisualBertBaseline::VisualBertBaseline(FusionTrainConfig config)
    : config_(config) {}
VisualBertBaseline::~VisualBertBaseline() = default;

Status VisualBertBaseline::Fit(const BaselineContext& ctx) {
  if (ctx.dataset == nullptr || ctx.tokenizer == nullptr) {
    return Status::InvalidArgument("baseline context incomplete");
  }
  Rng rng(ctx.seed + 201);
  model_ = std::make_unique<Model>(config_, ctx.tokenizer->vocab().size(),
                                   ctx.dataset->world->config().patch_dim,
                                   &rng);
  nn::AdamW opt(model_->Parameters(), config_.learning_rate);
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (int64_t step = 0; step < config_.batches_per_epoch; ++step) {
      PairBatch batch = SamplePairBatch(*ctx.dataset->world,
                                        config_.batch_size,
                                        config_.caption_attrs, &rng);
      Tensor logits = model_->Forward(
          ctx.tokenizer->EncodeBatch(batch.captions),
          ops::Stack(batch.patch_list));
      Tensor loss = BceWithLogits(logits, batch.labels);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model_->Parameters(), 5.0f);
      opt.Step();
    }
  }
  return Status::OK();
}

Result<Tensor> VisualBertBaseline::Score(const BaselineContext& ctx) {
  if (!model_) return Status::Internal("Fit not called");
  NoGradGuard guard;
  const int64_t nv = static_cast<int64_t>(ctx.vertices.size());
  const int64_t ni = ctx.images.size(0);
  Tensor scores = Tensor::Zeros({nv, ni});
  std::vector<std::string> prompts;
  for (graph::VertexId v : ctx.vertices) {
    prompts.push_back(SerializeVertex(ctx.dataset->graph, v));
  }
  auto token_rows = ctx.tokenizer->EncodeBatch(prompts);
  // Score one vertex against all images per pass (batched over images).
  for (int64_t vi = 0; vi < nv; ++vi) {
    for (int64_t start = 0; start < ni; start += 32) {
      const int64_t end = std::min<int64_t>(start + 32, ni);
      std::vector<std::vector<int64_t>> rep(
          static_cast<size_t>(end - start), token_rows[static_cast<size_t>(vi)]);
      Tensor logits =
          model_->Forward(rep, ops::Slice(ctx.images, 0, start, end));
      for (int64_t j = 0; j < end - start; ++j) {
        scores.data()[vi * ni + start + j] = logits.at(j);
      }
    }
  }
  return scores;
}

// -- ViLBERT --------------------------------------------------------------------

class VilBertBaseline::Model : public nn::Module {
 public:
  Model(const FusionTrainConfig& cfg, int64_t vocab_size, int64_t patch_dim,
        Rng* rng)
      : dim_(cfg.model_dim),
        tokens_(vocab_size, cfg.model_dim, rng),
        patch_proj_(patch_dim, cfg.model_dim, rng),
        text_stream_(/*num_layers=*/1, cfg.model_dim, cfg.heads,
                     4 * cfg.model_dim, rng),
        image_stream_(/*num_layers=*/1, cfg.model_dim, cfg.heads,
                      4 * cfg.model_dim, rng),
        co_text_(cfg.model_dim, cfg.heads, rng),
        co_image_(cfg.model_dim, cfg.heads, rng),
        head_(2 * cfg.model_dim, 1, rng) {
    positional_ = RegisterParameter(
        "positional", Tensor::Randn({64, cfg.model_dim}, rng, 0.02f));
    RegisterModule("tokens", &tokens_);
    RegisterModule("patch_proj", &patch_proj_);
    RegisterModule("text_stream", &text_stream_);
    RegisterModule("image_stream", &image_stream_);
    RegisterModule("co_text", &co_text_);
    RegisterModule("co_image", &co_image_);
    RegisterModule("head", &head_);
  }

  Tensor Forward(const std::vector<std::vector<int64_t>>& token_batch,
                 const Tensor& patches) const {
    const int64_t b = static_cast<int64_t>(token_batch.size());
    const int64_t t = static_cast<int64_t>(token_batch[0].size());
    std::vector<int64_t> flat;
    for (const auto& row : token_batch) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    Tensor text = ops::Reshape(tokens_.Forward(flat), {b, t, dim_});
    text = ops::Add(text, ops::Slice(positional_, 0, 0, t));
    Tensor mask = Tensor::Ones({b, t});
    float* m = mask.data();
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t j = 0; j < t; ++j) {
        if (token_batch[static_cast<size_t>(i)][static_cast<size_t>(j)] ==
            text::Vocabulary::kPad) {
          m[i * t + j] = 0.0f;
        }
      }
    }
    Tensor vis = patch_proj_.Forward(patches);

    // Independent streams, then co-attention interaction.
    Tensor ht = text_stream_.Forward(text, mask);
    Tensor hv = image_stream_.Forward(vis);
    Tensor ct = ops::Add(ht, co_text_.Forward(ht, hv));    // text <- image
    Tensor cv = ops::Add(hv, co_image_.Forward(hv, ht, mask));  // image <- text

    Tensor pooled_t = ops::Reshape(ops::Slice(ct, 1, 0, 1), {b, dim_});
    Tensor pooled_v = ops::Mean(cv, 1, /*keepdim=*/false);
    Tensor joint = ops::Concat({pooled_t, pooled_v}, 1);
    return ops::Reshape(head_.Forward(joint), {b});
  }

 private:
  int64_t dim_;
  nn::Embedding tokens_;
  nn::Linear patch_proj_;
  Tensor positional_;
  nn::TransformerEncoder text_stream_;
  nn::TransformerEncoder image_stream_;
  nn::MultiHeadAttention co_text_;
  nn::MultiHeadAttention co_image_;
  nn::Linear head_;
};

VilBertBaseline::VilBertBaseline(FusionTrainConfig config)
    : config_(config) {}
VilBertBaseline::~VilBertBaseline() = default;

Status VilBertBaseline::Fit(const BaselineContext& ctx) {
  if (ctx.dataset == nullptr || ctx.tokenizer == nullptr) {
    return Status::InvalidArgument("baseline context incomplete");
  }
  Rng rng(ctx.seed + 301);
  model_ = std::make_unique<Model>(config_, ctx.tokenizer->vocab().size(),
                                   ctx.dataset->world->config().patch_dim,
                                   &rng);
  nn::AdamW opt(model_->Parameters(), config_.learning_rate);
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (int64_t step = 0; step < config_.batches_per_epoch; ++step) {
      PairBatch batch = SamplePairBatch(*ctx.dataset->world,
                                        config_.batch_size,
                                        config_.caption_attrs, &rng);
      Tensor logits = model_->Forward(
          ctx.tokenizer->EncodeBatch(batch.captions),
          ops::Stack(batch.patch_list));
      Tensor loss = BceWithLogits(logits, batch.labels);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model_->Parameters(), 5.0f);
      opt.Step();
    }
  }
  return Status::OK();
}

Result<Tensor> VilBertBaseline::Score(const BaselineContext& ctx) {
  if (!model_) return Status::Internal("Fit not called");
  NoGradGuard guard;
  const int64_t nv = static_cast<int64_t>(ctx.vertices.size());
  const int64_t ni = ctx.images.size(0);
  Tensor scores = Tensor::Zeros({nv, ni});
  std::vector<std::string> prompts;
  for (graph::VertexId v : ctx.vertices) {
    prompts.push_back(SerializeVertex(ctx.dataset->graph, v));
  }
  auto token_rows = ctx.tokenizer->EncodeBatch(prompts);
  for (int64_t vi = 0; vi < nv; ++vi) {
    for (int64_t start = 0; start < ni; start += 32) {
      const int64_t end = std::min<int64_t>(start + 32, ni);
      std::vector<std::vector<int64_t>> rep(
          static_cast<size_t>(end - start), token_rows[static_cast<size_t>(vi)]);
      Tensor logits =
          model_->Forward(rep, ops::Slice(ctx.images, 0, start, end));
      for (int64_t j = 0; j < end - start; ++j) {
        scores.data()[vi * ni + start + j] = logits.at(j);
      }
    }
  }
  return scores;
}

}  // namespace baselines
}  // namespace crossem
