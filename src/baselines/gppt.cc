#include "baselines/gppt.h"

#include "nn/graph_agg.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"
#include "util/logging.h"

namespace crossem {
namespace baselines {

class GpptBaseline::Model : public nn::Module {
 public:
  Model(const GpptConfig& cfg, const graph::Graph& graph,
        const text::Vocabulary& vocab, int64_t patch_dim, Rng* rng)
      : cfg_(cfg),
        word_emb_(vocab.size(), cfg.model_dim, rng),
        sage_(cfg.model_dim, cfg.model_dim, rng),
        image_proj_(patch_dim, cfg.model_dim, rng),
        classifier_in_(4 * cfg.model_dim, cfg.model_dim, rng),
        classifier_out_(cfg.model_dim, 1, rng) {
    RegisterModule("word_emb", &word_emb_);
    RegisterModule("sage", &sage_);
    RegisterModule("image_proj", &image_proj_);
    RegisterModule("classifier_in", &classifier_in_);
    RegisterModule("classifier_out", &classifier_out_);

    // Label bag-of-words ids for every vertex + the neighbor operator.
    const int64_t n = graph.NumVertices();
    vertex_word_ids_.resize(static_cast<size_t>(n));
    for (graph::VertexId v = 0; v < n; ++v) {
      for (const std::string& w : text::SplitWords(graph.VertexLabel(v))) {
        vertex_word_ids_[static_cast<size_t>(v)].push_back(vocab.Id(w));
      }
      if (vertex_word_ids_[static_cast<size_t>(v)].empty()) {
        vertex_word_ids_[static_cast<size_t>(v)].push_back(
            text::Vocabulary::kUnk);
      }
    }
    nn::AdjacencyList adj(static_cast<size_t>(n));
    for (graph::VertexId v = 0; v < n; ++v) adj[v] = graph.Neighbors(v);
    neighbor_mean_ = nn::NeighborMeanMatrix(adj);
  }

  /// GraphSAGE vertex representations for all graph vertices [N, D].
  Tensor VertexRepresentations() const {
    std::vector<Tensor> rows;
    for (const auto& ids : vertex_word_ids_) {
      rows.push_back(ops::Mean(word_emb_.Forward(ids), 0, false));
    }
    Tensor feats = ops::Stack(rows);
    return sage_.Forward(feats, neighbor_mean_);
  }

  Tensor ImageRepresentations(const Tensor& images) const {
    return image_proj_.Forward(MeanPatches(images));
  }

  /// Match logits for aligned rows of vertex/image representations.
  Tensor PairLogits(const Tensor& v, const Tensor& i) const {
    Tensor joint = ops::Concat(
        {v, i, ops::Abs(ops::Sub(v, i)), ops::Mul(v, i)}, 1);
    Tensor h = ops::Relu(classifier_in_.Forward(joint));
    return ops::Reshape(classifier_out_.Forward(h), {v.size(0)});
  }

 private:
  GpptConfig cfg_;
  nn::Embedding word_emb_;
  nn::GraphSageLayer sage_;
  nn::Linear image_proj_;
  nn::Linear classifier_in_;
  nn::Linear classifier_out_;
  std::vector<std::vector<int64_t>> vertex_word_ids_;
  Tensor neighbor_mean_;
};

GpptBaseline::GpptBaseline(GpptConfig config) : config_(config) {}
GpptBaseline::~GpptBaseline() = default;

Status GpptBaseline::Fit(const BaselineContext& ctx) {
  if (ctx.dataset == nullptr || ctx.tokenizer == nullptr) {
    return Status::InvalidArgument("baseline context incomplete");
  }
  if (ctx.dataset->train_classes.empty()) {
    return Status::InvalidArgument("GPPT is supervised and needs train classes");
  }
  Rng rng(ctx.seed + 601);
  const data::CrossModalDataset& ds = *ctx.dataset;
  model_ = std::make_unique<Model>(config_, ds.graph, ds.vocab,
                                   ds.world->config().patch_dim, &rng);
  nn::AdamW opt(model_->Parameters(), config_.learning_rate);

  const auto& train = ds.train_classes;
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (int64_t step = 0; step < config_.batches_per_epoch; ++step) {
      Tensor all_vertices = model_->VertexRepresentations();
      std::vector<int64_t> vertex_rows;
      std::vector<Tensor> patch_list;
      std::vector<float> labels;
      for (int64_t i = 0; i < config_.batch_size; ++i) {
        const int64_t cls = train[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(train.size()) - 1))];
        const bool positive = (i % 2 == 0);
        int64_t img_cls = cls;
        if (!positive) {
          do {
            img_cls = train[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(train.size()) - 1))];
          } while (img_cls == cls && train.size() > 1);
        }
        vertex_rows.push_back(ds.entities[static_cast<size_t>(cls)]);
        patch_list.push_back(ds.world->SampleImage(img_cls, 8, 4, &rng).patches);
        labels.push_back(positive ? 1.0f : 0.0f);
      }
      Tensor v = ops::IndexSelect(all_vertices, vertex_rows);
      Tensor im = model_->ImageRepresentations(ops::Stack(patch_list));
      Tensor logits = model_->PairLogits(v, im);
      Tensor y = Tensor::FromVector(logits.shape(), labels);
      Tensor softplus = ops::Log(ops::AddScalar(ops::Exp(logits), 1.0f));
      Tensor loss = ops::Mean(ops::Sub(softplus, ops::Mul(y, logits)));
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model_->Parameters(), 5.0f);
      opt.Step();
    }
  }
  return Status::OK();
}

Result<Tensor> GpptBaseline::Score(const BaselineContext& ctx) {
  if (!model_) return Status::Internal("Fit not called");
  NoGradGuard guard;
  Tensor all_vertices = model_->VertexRepresentations();
  Tensor v = ops::IndexSelect(all_vertices, ctx.vertices);
  Tensor im = model_->ImageRepresentations(ctx.images);
  const int64_t nv = v.size(0);
  const int64_t ni = im.size(0);
  Tensor scores = Tensor::Zeros({nv, ni});
  for (int64_t i = 0; i < ni; ++i) {
    Tensor irow = ops::Slice(im, 0, i, i + 1);
    std::vector<Tensor> rep(static_cast<size_t>(nv), irow);
    Tensor logits = model_->PairLogits(v, ops::Concat(rep, 0));
    for (int64_t r = 0; r < nv; ++r) {
      scores.data()[r * ni + i] = logits.at(r);
    }
  }
  return scores;
}

}  // namespace baselines
}  // namespace crossem
