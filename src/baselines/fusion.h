// Fusion-encoder competitors (paper Sec. V-A, "Fusion encoder
// approaches"): map the two modalities into a common space with
// attention and score pairs with a trained matching head.
//
//   - VisualBERT [26]: a SINGLE-stream Transformer over the concatenated
//     sequence [text tokens ; projected patches], matching score from the
//     [CLS] position ("implicitly align elements of an input text and
//     regions in an associated input image with self-attention").
//   - ViLBERT [27]: TWO separate streams that interact through
//     co-attention layers ("processes both visual and textual inputs in
//     separate streams, and interacts through co-attention transformer
//     layers").
//
// Both are pre-trained on the world's caption-image corpus with a binary
// matched/mismatched objective and then applied to the task (the paper
// uses the published pre-trained checkpoints the same way).
#ifndef CROSSEM_BASELINES_FUSION_H_
#define CROSSEM_BASELINES_FUSION_H_

#include <memory>

#include "baselines/common.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace crossem {
namespace baselines {

/// Training knobs shared by both fusion baselines.
struct FusionTrainConfig {
  int64_t epochs = 8;
  int64_t batches_per_epoch = 16;
  int64_t batch_size = 16;  // half positives, half mismatched
  float learning_rate = 2e-3f;
  int64_t model_dim = 32;
  int64_t heads = 4;
  int64_t caption_attrs = 3;
};

/// Single-stream fusion (VisualBERT-style).
class VisualBertBaseline : public CrossModalBaseline {
 public:
  explicit VisualBertBaseline(FusionTrainConfig config = {});
  ~VisualBertBaseline() override;

  std::string name() const override { return "VisualBERT"; }
  Status Fit(const BaselineContext& ctx) override;
  Result<Tensor> Score(const BaselineContext& ctx) override;

 private:
  class Model;
  FusionTrainConfig config_;
  std::unique_ptr<Model> model_;
};

/// Two-stream co-attention fusion (ViLBERT-style).
class VilBertBaseline : public CrossModalBaseline {
 public:
  explicit VilBertBaseline(FusionTrainConfig config = {});
  ~VilBertBaseline() override;

  std::string name() const override { return "ViLBERT"; }
  Status Fit(const BaselineContext& ctx) override;
  Result<Tensor> Score(const BaselineContext& ctx) override;

 private:
  class Model;
  FusionTrainConfig config_;
  std::unique_ptr<Model> model_;
};

}  // namespace baselines
}  // namespace crossem

#endif  // CROSSEM_BASELINES_FUSION_H_
