// TransAE [43]: "combines multi-modal auto-encoder with TransE to encode
// the visual and textual knowledge into the unified representation,
// where the hidden layer of the auto-encoder is used to be entity
// representations in the TransE model."
//
// Reproduced mechanism: an autoencoder over concatenated (text summary,
// visual summary) features learns a unified hidden space; the hidden
// vectors double as entity embeddings in a TransE loss over the graph's
// edges. Matching scores are cosine similarities between text-side and
// image-side hidden projections.
#ifndef CROSSEM_BASELINES_TRANSAE_H_
#define CROSSEM_BASELINES_TRANSAE_H_

#include <memory>

#include "baselines/common.h"

namespace crossem {
namespace baselines {

struct TransAeConfig {
  int64_t hidden_dim = 24;
  int64_t model_dim = 32;
  int64_t epochs = 10;
  int64_t batches_per_epoch = 16;
  int64_t batch_size = 16;
  float learning_rate = 2e-3f;
  /// Weight of the TransE structural loss against reconstruction.
  float structure_weight = 0.3f;
  float margin = 1.0f;
};

class TransAeBaseline : public CrossModalBaseline {
 public:
  explicit TransAeBaseline(TransAeConfig config = {});
  ~TransAeBaseline() override;

  std::string name() const override { return "TransAE"; }
  Status Fit(const BaselineContext& ctx) override;
  Result<Tensor> Score(const BaselineContext& ctx) override;

 private:
  class Model;
  TransAeConfig config_;
  std::unique_ptr<Model> model_;
};

}  // namespace baselines
}  // namespace crossem

#endif  // CROSSEM_BASELINES_TRANSAE_H_
