// IMRAM [19]: "iterative matching with recurrent attention memory" for
// cross-modal retrieval. Reproduced mechanism: a text summary vector is
// iteratively refined by attending over image patch features through a
// gated memory update; the final refinement is scored against the image
// summary. Trained contrastively on the world's caption-image corpus.
#ifndef CROSSEM_BASELINES_IMRAM_H_
#define CROSSEM_BASELINES_IMRAM_H_

#include <memory>

#include "baselines/common.h"

namespace crossem {
namespace baselines {

struct ImramConfig {
  int64_t iterations = 3;  // K attention-memory refinement rounds
  int64_t model_dim = 32;
  int64_t epochs = 8;
  int64_t batches_per_epoch = 16;
  int64_t batch_size = 12;
  float learning_rate = 2e-3f;
  int64_t caption_attrs = 3;
};

class ImramBaseline : public CrossModalBaseline {
 public:
  explicit ImramBaseline(ImramConfig config = {});
  ~ImramBaseline() override;

  std::string name() const override { return "IMRAM"; }
  Status Fit(const BaselineContext& ctx) override;
  Result<Tensor> Score(const BaselineContext& ctx) override;

 private:
  class Model;
  ImramConfig config_;
  std::unique_ptr<Model> model_;
};

}  // namespace baselines
}  // namespace crossem

#endif  // CROSSEM_BASELINES_IMRAM_H_
